//! E6 — §4.1.5: partitioned-view pruning. Point/range queries on the
//! seven-way partitioned `lineitem` with (a) static pruning, (b) runtime
//! startup-filter pruning of a parameterized query, (c) pruning disabled.

use criterion::{criterion_group, criterion_main, Criterion};
use dhqp_bench::{dpv_federation, reset_links, total_traffic};
use dhqp_types::{value::parse_date, Value};
use dhqp_workload::tpch::TpchScale;
use std::collections::HashMap;

// 1993 lives on remote member1, so pruned-vs-unpruned differs in both
// rows shipped and round trips.
const STATIC_SQL: &str = "SELECT COUNT(*) AS n, SUM(l_extendedprice) AS rev FROM lineitem_all \
     WHERE l_commitdate >= '1993-01-01' AND l_commitdate <= '1993-12-31'";
const PARAM_SQL: &str = "SELECT COUNT(*) AS n FROM lineitem_all WHERE l_commitdate = @d";

fn bench(c: &mut Criterion) {
    let fed = dpv_federation(TpchScale::small(), 2, true);
    let mut params = HashMap::new();
    params.insert(
        "d".to_string(),
        Value::Date(parse_date("1994-06-15").expect("date")),
    );

    // Warm + traffic report.
    fed.head.query(STATIC_SQL).unwrap();
    reset_links(&fed.links);
    fed.head.query(STATIC_SQL).unwrap();
    let pruned = total_traffic(&fed.links);
    let mut off = fed.head.optimizer_config();
    off.simplify.constraint_pruning = false;
    off.simplify.startup_filters = false;
    let on = fed.head.optimizer_config();
    fed.head.set_optimizer_config(off.clone());
    fed.head.query(STATIC_SQL).unwrap();
    reset_links(&fed.links);
    fed.head.query(STATIC_SQL).unwrap();
    let unpruned = total_traffic(&fed.links);
    fed.head.set_optimizer_config(on.clone());
    eprintln!(
        "[dpv] static range query: pruned {} rows / {} reqs vs unpruned {} rows / {} reqs",
        pruned.rows, pruned.requests, unpruned.rows, unpruned.requests
    );

    let mut g = c.benchmark_group("dpv_pruning");
    g.sample_size(10);
    g.bench_function("static_pruned", |b| {
        b.iter(|| fed.head.query(STATIC_SQL).unwrap())
    });
    g.bench_function("runtime_startup_filters", |b| {
        b.iter(|| {
            fed.head
                .query_with_params(PARAM_SQL, params.clone())
                .unwrap()
        })
    });
    // Point query through routed member access.
    g.bench_function("point_query", |b| {
        b.iter(|| {
            fed.head
                .query("SELECT COUNT(*) AS n FROM lineitem_all WHERE l_commitdate = '1996-03-03'")
                .unwrap()
        })
    });
    // Ablation: both pruning mechanisms off.
    fed.head.set_optimizer_config(off);
    fed.head.query(STATIC_SQL).unwrap();
    g.bench_function("ablation_no_pruning", |b| {
        b.iter(|| fed.head.query(STATIC_SQL).unwrap())
    });
    fed.head.set_optimizer_config(on);
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
