//! E5 — §2.4: the salesman's heterogeneous mail + Access query, end to
//! end, at increasing mailbox sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dhqp::Engine;
use dhqp_oledb::SqlSupport;
use dhqp_providers::{MailboxProvider, MiniSqlProvider};
use dhqp_storage::{StorageEngine, TableDef};
use dhqp_types::{value::parse_date, Column, DataType, Row, Schema, Value};
use dhqp_workload::mailgen::{generate_mailbox, MailboxSpec};
use std::sync::Arc;

const SALESMAN_SQL: &str = "SELECT m1.msgid, c.Address \
    FROM mail.mbx.dbo.messages m1, access.db.dbo.Customers c \
    WHERE m1.date >= DATE '2004-06-12' \
      AND m1.from_addr = c.Emailaddr AND c.City = 'Seattle' \
      AND m1.to_addr = 'smith@corp.example' \
      AND NOT EXISTS (SELECT * FROM mail.mbx.dbo.messages m2 \
                      WHERE m2.inreplyto = m1.msgid)";

fn setup(inbound: usize) -> Engine {
    let today = parse_date("2004-06-14").expect("valid date");
    let engine = Engine::new("local");
    let spec = MailboxSpec {
        owner: "smith@corp.example".into(),
        customers: MailboxSpec::customer_addresses(24),
        inbound,
        reply_fraction: 0.5,
        today,
    };
    engine
        .add_linked_server(
            "mail",
            Arc::new(
                MailboxProvider::from_text("d:\\mail\\smith.mmf", &generate_mailbox(&spec, 5))
                    .unwrap(),
            ),
        )
        .unwrap();
    let mdb = Arc::new(StorageEngine::new("enterprise.mdb"));
    mdb.create_table(TableDef::new(
        "Customers",
        Schema::new(vec![
            Column::not_null("Emailaddr", DataType::Str),
            Column::not_null("City", DataType::Str),
            Column::new("Address", DataType::Str),
        ]),
    ))
    .unwrap();
    let rows: Vec<Row> = spec
        .customers
        .iter()
        .enumerate()
        .map(|(i, a)| {
            Row::new(vec![
                Value::Str(a.clone()),
                Value::Str(if i % 2 == 0 { "Seattle" } else { "Portland" }.into()),
                Value::Str(format!("{i} Pine St")),
            ])
        })
        .collect();
    mdb.insert_rows("Customers", &rows).unwrap();
    engine
        .add_linked_server(
            "access",
            Arc::new(MiniSqlProvider::new("mdb", mdb, SqlSupport::OdbcCore).unwrap()),
        )
        .unwrap();
    engine
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("email_hetero");
    g.sample_size(10);
    for inbound in [50usize, 200, 800] {
        let engine = setup(inbound);
        let hits = engine.query(SALESMAN_SQL).unwrap().len();
        eprintln!("[email] inbound={inbound}: {hits} unanswered Seattle messages");
        g.bench_with_input(
            BenchmarkId::new("salesman_query", inbound),
            &inbound,
            |b, _| b.iter(|| engine.query(SALESMAN_SQL).unwrap()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
