//! E11 — §4.1.5's federated-system claim (the 32-instance TPC-C record):
//! transfer-style transactions over a federation of N member engines under
//! 2PC. The qualitative shape: single-site transactions stay cheap as the
//! federation grows, cross-site transactions pay the 2PC round trips.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dhqp::{Engine, EngineDataSource, ParallelConfig};
use dhqp_bench::{remote_dpv_federation, warm};
use dhqp_netsim::{NetworkConfig, NetworkLink, NetworkedDataSource};
use dhqp_oledb::{DataSource, RowsetExt};
use dhqp_types::{Row, Value};
use dhqp_workload::accounts::create_account_partition;
use dhqp_workload::tpch::TpchScale;
use std::sync::Arc;

const ACCOUNTS_PER_MEMBER: i64 = 100;

struct Fed {
    head: Engine,
    sources: Vec<Arc<dyn DataSource>>,
}

fn federation(members: usize) -> Fed {
    let head = Engine::new("head");
    let mut sources: Vec<Arc<dyn DataSource>> = Vec::new();
    for i in 0..members {
        let member = Engine::new(format!("m{i}-engine"));
        let lo = i as i64 * ACCOUNTS_PER_MEMBER;
        create_account_partition(
            member.storage(),
            &format!("accounts_{i}"),
            lo,
            lo + ACCOUNTS_PER_MEMBER - 1,
            1000,
        )
        .unwrap();
        let link = NetworkLink::new(format!("m{i}"), NetworkConfig::lan());
        let source: Arc<dyn DataSource> = Arc::new(NetworkedDataSource::new(
            Arc::new(EngineDataSource::new(member)),
            link,
        ));
        head.add_linked_server(&format!("m{i}"), Arc::clone(&source))
            .unwrap();
        sources.push(source);
    }
    Fed { head, sources }
}

/// One transfer transaction touching `sites` distinct members.
fn transfer(fed: &Fed, from: i64, to: i64) -> dhqp_types::Result<()> {
    let m_from = (from / ACCOUNTS_PER_MEMBER) as usize;
    let m_to = (to / ACCOUNTS_PER_MEMBER) as usize;
    let mut txn = fed.head.dtc().begin();
    for m in [m_from, m_to] {
        let name = format!("m{m}");
        if !txn.participant_names().contains(&name) {
            txn.enlist(name, fed.sources[m].create_session()?)?;
        }
    }
    for (account, member, delta) in [(from, m_from, -1i64), (to, m_to, 1)] {
        let table = format!("accounts_{member}");
        let session = txn.session_mut(&format!("m{member}"))?;
        let rows = session.open_rowset(&table)?.collect_rows()?;
        let row = rows
            .iter()
            .find(|r| r.get(0) == &Value::Int(account))
            .expect("account");
        let Value::Int(balance) = row.get(1) else {
            panic!("balance")
        };
        session.update_by_bookmarks(
            &table,
            &[row.bookmark.expect("bookmark")],
            &[Row::new(vec![
                Value::Int(account),
                Value::Int(balance + delta),
            ])],
        )?;
    }
    txn.commit()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("federation_scaling");
    g.sample_size(10);
    for members in [1usize, 2, 4, 8] {
        let fed = federation(members);
        // Same-site transfers: one participant, no cross-server 2PC cost.
        let e = &fed;
        g.bench_with_input(
            BenchmarkId::new("same_site_txn", members),
            &members,
            |b, _| {
                let mut i = 0i64;
                b.iter(|| {
                    let base = (i % members as i64) * ACCOUNTS_PER_MEMBER;
                    transfer(e, base + (i % 50), base + 50 + (i % 50)).unwrap();
                    i += 1;
                })
            },
        );
        if members >= 2 {
            // Cross-site transfers: two participants, full 2PC.
            g.bench_with_input(
                BenchmarkId::new("cross_site_txn", members),
                &members,
                |b, _| {
                    let mut i = 0i64;
                    b.iter(|| {
                        let m1 = i % members as i64;
                        let m2 = (i + 1) % members as i64;
                        transfer(
                            e,
                            m1 * ACCOUNTS_PER_MEMBER + (i % 100),
                            m2 * ACCOUNTS_PER_MEMBER + (i % 100),
                        )
                        .unwrap();
                        i += 1;
                    })
                },
            );
        }
        let (commits, aborts) = fed.head.dtc().stats();
        eprintln!("[federation] members={members}: {commits} commits, {aborts} aborts");
    }
    g.finish();
}

/// Serial union vs parallel exchange over a latency-simulated DPV: the
/// same seven-branch scan with branch dispatch and prefetch on or off.
fn bench_parallel_dispatch(c: &mut Criterion) {
    let scale = TpchScale {
        nations: 10,
        customers: 300,
        suppliers: 50,
        orders: 1000,
        lineitems_per_order: 3,
    };
    let fed = remote_dpv_federation(scale, 4, NetworkConfig::wan_timed());
    let sql = "SELECT l_orderkey, l_linenumber, l_quantity FROM lineitem_all";
    warm(&fed.head, sql);
    let mut g = c.benchmark_group("parallel_dpv_scan");
    g.sample_size(10);
    for (name, config) in [
        ("serial_union", ParallelConfig::serial()),
        ("parallel_exchange", ParallelConfig::parallel()),
    ] {
        fed.head.set_parallel_config(config);
        g.bench_function(name, |b| b.iter(|| fed.head.query(sql).unwrap()));
    }
    g.finish();
    let m = fed.head.metrics();
    eprintln!(
        "[parallel] exchanges={} workers={} prefetches={}",
        m.parallel_exchanges, m.exchange_workers, m.remote_prefetches
    );
}

criterion_group!(benches, bench, bench_parallel_dispatch);
criterion_main!(benches);
