//! E4 — Figure 2 / §2.3: full-text CONTAINS through the search service's
//! (key, rank) rowset joined on row identity, against the naive LIKE-scan
//! the integration replaces.

use criterion::{criterion_group, criterion_main, Criterion};
use dhqp::Engine;
use dhqp_storage::TableDef;
use dhqp_types::{Column, DataType, Row, Schema, Value};
use dhqp_workload::docs::generate_documents;

fn bench(c: &mut Criterion) {
    let engine = Engine::new("local");
    engine
        .create_table(
            TableDef::new(
                "articles",
                Schema::new(vec![
                    Column::not_null("id", DataType::Int),
                    Column::not_null("topic", DataType::Str),
                    Column::new("body", DataType::Str),
                ]),
            )
            .with_index("pk_articles", &["id"], true),
        )
        .unwrap();
    // Reuse the corpus generator's bodies as row text.
    let docs = generate_documents(1500, 77);
    let rows: Vec<Row> = docs
        .iter()
        .enumerate()
        .map(|(i, d)| {
            Row::new(vec![
                Value::Int(i as i64),
                Value::Str(d.path.split('\\').nth(2).unwrap_or("misc").to_string()),
                Value::Str(d.raw.clone()),
            ])
        })
        .collect();
    engine.insert("articles", &rows).unwrap();
    engine
        .create_fulltext_index("articles", "id", "body", "articles_ft")
        .unwrap();

    let contains = "SELECT COUNT(*) AS n FROM articles \
                    WHERE CONTAINS(body, 'parallel AND database')";
    let like = "SELECT COUNT(*) AS n FROM articles \
                WHERE body LIKE '%parallel%' AND body LIKE '%database%'";
    let n_ft = engine.query(contains).unwrap();
    let n_like = engine.query(like).unwrap();
    eprintln!(
        "[fig2] CONTAINS matched {} rows (stemmed), LIKE matched {} rows (exact substrings)",
        n_ft.value(0, 0),
        n_like.value(0, 0)
    );

    let mut g = c.benchmark_group("fig2");
    g.sample_size(20);
    g.bench_function("contains_via_search_service", |b| {
        b.iter(|| engine.query(contains).unwrap())
    });
    g.bench_function("like_scan_baseline", |b| {
        b.iter(|| engine.query(like).unwrap())
    });
    // Phrase + rank-ordered variant (the §2.2-style query shape).
    let phrase = "SELECT COUNT(*) AS n FROM articles \
                  WHERE CONTAINS(body, '\"parallel database\" OR \"query optimization\"')";
    g.bench_function("contains_phrases", |b| {
        b.iter(|| engine.query(phrase).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
