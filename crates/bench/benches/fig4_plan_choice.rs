//! E1 — Figure 4 / Example 1: cost-based distributed join placement.
//!
//! Regenerates the paper's plan comparison: the optimizer's plan (b)
//! (separate remote access, supplier⋈nation joined locally first) against
//! the forced plan (a) (customer⋈supplier pushed whole). Wall time includes
//! simulated LAN latency/bandwidth so the traffic difference is visible;
//! rows/bytes shipped are printed once per run.

use criterion::{criterion_group, criterion_main, Criterion};
use dhqp_bench::{example1, warm, EXAMPLE1_PLAN_A_SQL, EXAMPLE1_SQL};
use dhqp_workload::tpch::TpchScale;

fn bench(c: &mut Criterion) {
    let ex = example1(TpchScale::small(), true);
    warm(&ex.local, EXAMPLE1_SQL);
    warm(&ex.local, EXAMPLE1_PLAN_A_SQL);

    // One-shot traffic report (the paper-shaped numbers).
    ex.link.reset();
    ex.local.query(EXAMPLE1_SQL).unwrap();
    let plan_b = ex.link.snapshot();
    ex.link.reset();
    ex.local.query(EXAMPLE1_PLAN_A_SQL).unwrap();
    let plan_a = ex.link.snapshot();
    eprintln!(
        "[fig4] plan(b) optimizer-chosen: {} rows / {} bytes shipped; \
         plan(a) forced pushed join: {} rows / {} bytes shipped ({}x)",
        plan_b.rows,
        plan_b.bytes,
        plan_a.rows,
        plan_a.bytes,
        plan_a.bytes / plan_b.bytes.max(1)
    );

    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("plan_b_optimizer_chosen", |b| {
        b.iter(|| ex.local.query(EXAMPLE1_SQL).unwrap())
    });
    g.bench_function("plan_a_forced_remote_join", |b| {
        b.iter(|| ex.local.query(EXAMPLE1_PLAN_A_SQL).unwrap())
    });
    // Ablation: locality grouping off (the §4.1.2 join-grouping rule).
    let mut config = ex.local.optimizer_config();
    config.enable_locality_grouping = false;
    ex.local.set_optimizer_config(config);
    warm(&ex.local, EXAMPLE1_SQL);
    g.bench_function("plan_b_no_locality_grouping", |b| {
        b.iter(|| ex.local.query(EXAMPLE1_SQL).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
