//! E9 — §4.1.1: the three optimization phases. Optimization time and plan
//! cost per forced phase across query complexities, plus the adaptive
//! ladder with early exit ("the optimizer will not spend too much time on
//! optimizing easy queries, while for complex queries it will spend longer
//! time").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dhqp::OptimizationPhase;
use dhqp_bench::{example1, EXAMPLE1_SQL};
use dhqp_workload::tpch::TpchScale;

fn bench(c: &mut Criterion) {
    let ex = example1(TpchScale::small(), false);
    // Add orders/lineitem locally so the 5-way join has depth.
    {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let scale = TpchScale::small();
        dhqp_workload::tpch::create_orders(ex.local.storage(), &scale, &mut rng).unwrap();
        dhqp_workload::tpch::create_lineitem(ex.local.storage(), &scale, &mut rng).unwrap();
        ex.local.storage().analyze("orders", 16).unwrap();
        ex.local.storage().analyze("lineitem", 16).unwrap();
    }
    let queries: Vec<(&str, String)> = vec![
        (
            "point_lookup",
            "SELECT c_name FROM remote0.tpch.dbo.customer WHERE c_custkey = 7".to_string(),
        ),
        ("three_way_join", EXAMPLE1_SQL.to_string()),
        (
            "five_way_join",
            "SELECT n.n_name, COUNT(*) AS n FROM remote0.tpch.dbo.customer c, \
             remote0.tpch.dbo.supplier s, nation n, orders o, lineitem l \
             WHERE c.c_nationkey = n.n_nationkey AND n.n_nationkey = s.s_nationkey \
               AND o.o_custkey = c.c_custkey AND l.l_orderkey = o.o_orderkey \
               AND l.l_suppkey = s.s_suppkey \
             GROUP BY n.n_name"
                .to_string(),
        ),
    ];

    // Cost/phase report (the paper's quality-vs-effort trade).
    for (name, sql) in &queries {
        let mut line = format!("[phases] {name}:");
        for phase in [
            OptimizationPhase::TransactionProcessing,
            OptimizationPhase::QuickPlan,
            OptimizationPhase::Full,
        ] {
            let mut config = ex.local.optimizer_config();
            config.forced_phase = Some(phase);
            ex.local.set_optimizer_config(config);
            match ex.local.explain(sql) {
                Ok(p) => line.push_str(&format!(" {}={:.0}", phase.name(), p.est_cost)),
                Err(_) => line.push_str(&format!(" {}=∅", phase.name())),
            }
        }
        let mut config = ex.local.optimizer_config();
        config.forced_phase = None;
        ex.local.set_optimizer_config(config);
        let adaptive = ex.local.explain(sql).unwrap();
        line.push_str(&format!(
            " adaptive={:.0} (phases run: {}, early_exit: {})",
            adaptive.est_cost,
            adaptive.stats.phases.len(),
            adaptive.stats.early_exit
        ));
        eprintln!("{line}");
    }

    let mut g = c.benchmark_group("opt_phases");
    for (name, sql) in &queries {
        for phase in [
            Some(OptimizationPhase::TransactionProcessing),
            Some(OptimizationPhase::QuickPlan),
            Some(OptimizationPhase::Full),
            None,
        ] {
            let label = phase.map(|p| p.name()).unwrap_or("adaptive");
            let mut config = ex.local.optimizer_config();
            config.forced_phase = phase;
            ex.local.set_optimizer_config(config.clone());
            let e = ex.local.clone();
            let q = sql.clone();
            g.bench_with_input(BenchmarkId::new(*name, label), &q, move |b, q| {
                b.iter(|| {
                    // Optimization time only (explain = bind + optimize).
                    let _ = e.explain(q);
                })
            });
        }
    }
    let mut config = ex.local.optimizer_config();
    config.forced_phase = None;
    ex.local.set_optimizer_config(config);
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
