//! E10 — §4.1.2: parameterized remote access (remote range/fetch) versus
//! shipping the table, as the driving side's selectivity grows. The
//! crossover is the paper's cost-based access-path story: per-probe round
//! trips win while the outer is small, bulk shipping wins once the outer
//! covers the table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dhqp_bench::{example1, warm};
use dhqp_workload::tpch::TpchScale;

fn bench(c: &mut Criterion) {
    let ex = example1(TpchScale::small(), true);

    // The outer is a nation-key range: 1, 5 or 25 of the 25 nations.
    let sql = |hi: i64| {
        format!(
            "SELECT COUNT(*) AS n FROM nation n, remote0.tpch.dbo.supplier s \
             WHERE n.n_nationkey = s.s_nationkey AND n.n_nationkey < {hi}"
        )
    };

    // Traffic crossover report.
    for hi in [1i64, 5, 25] {
        let q = sql(hi);
        warm(&ex.local, &q);
        ex.link.reset();
        ex.local.query(&q).unwrap();
        let param = ex.link.snapshot();
        let mut config = ex.local.optimizer_config();
        config.enable_remote_param = false;
        let on = ex.local.optimizer_config();
        ex.local.set_optimizer_config(config);
        warm(&ex.local, &q);
        ex.link.reset();
        ex.local.query(&q).unwrap();
        let bulk = ex.link.snapshot();
        ex.local.set_optimizer_config(on);
        eprintln!(
            "[access] outer={hi}/25 nations: param path {} rows / {} reqs; \
             bulk path {} rows / {} reqs",
            param.rows, param.requests, bulk.rows, bulk.requests
        );
    }

    let mut g = c.benchmark_group("remote_access_paths");
    g.sample_size(10);
    for hi in [1i64, 5, 25] {
        let q = sql(hi);
        warm(&ex.local, &q);
        let e = ex.local.clone();
        let q2 = q.clone();
        g.bench_with_input(BenchmarkId::new("parameterized", hi), &hi, move |b, _| {
            b.iter(|| e.query(&q2).unwrap())
        });
        let mut config = ex.local.optimizer_config();
        config.enable_remote_param = false;
        let on = ex.local.optimizer_config();
        ex.local.set_optimizer_config(config);
        warm(&ex.local, &q);
        let e = ex.local.clone();
        let q2 = q.clone();
        g.bench_with_input(BenchmarkId::new("bulk_ship", hi), &hi, move |b, _| {
            b.iter(|| e.query(&q2).unwrap())
        });
        ex.local.set_optimizer_config(on);
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
