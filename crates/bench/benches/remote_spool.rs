//! E8 — §4.1.2/§4.1.4: the *spool over remote operation* enforcer. A
//! non-commutable outer join forces the remote table onto the rescanned
//! inner side; the spool fetches it once instead of once per outer row.

use criterion::{criterion_group, criterion_main, Criterion};
use dhqp_bench::{example1, reset_links, warm};
use dhqp_workload::tpch::TpchScale;

const SQL: &str = "SELECT COUNT(*) AS n FROM nation n \
     LEFT OUTER JOIN remote0.tpch.dbo.supplier s ON s.s_suppkey > n.n_nationkey";

fn bench(c: &mut Criterion) {
    let ex = example1(TpchScale::small(), true);
    warm(&ex.local, SQL);

    // Traffic report.
    reset_links(std::slice::from_ref(&ex.link));
    ex.local.query(SQL).unwrap();
    let with_spool = ex.link.snapshot();
    let mut off = ex.local.optimizer_config();
    off.enable_spool = false;
    let on = ex.local.optimizer_config();
    ex.local.set_optimizer_config(off.clone());
    warm(&ex.local, SQL);
    ex.link.reset();
    ex.local.query(SQL).unwrap();
    let without_spool = ex.link.snapshot();
    ex.local.set_optimizer_config(on.clone());
    eprintln!(
        "[spool] with spool: {} rows / {} reqs; without: {} rows / {} reqs ({}x rows)",
        with_spool.rows,
        with_spool.requests,
        without_spool.rows,
        without_spool.requests,
        without_spool.rows / with_spool.rows.max(1)
    );

    let mut g = c.benchmark_group("remote_spool");
    g.sample_size(10);
    g.bench_function("spool_enabled", |b| b.iter(|| ex.local.query(SQL).unwrap()));
    ex.local.set_optimizer_config(off);
    g.bench_function("spool_disabled", |b| {
        b.iter(|| ex.local.query(SQL).unwrap())
    });
    ex.local.set_optimizer_config(on);
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
