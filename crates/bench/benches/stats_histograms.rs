//! E7 — §3.2.4: remote histogram statistics. The paper claims histograms
//! shipped through OLE DB give "order of magnitude improvements on
//! cardinality estimates". We measure estimate error and plan quality on
//! skewed remote data, with and without statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use dhqp::{Engine, EngineDataSource};
use dhqp_netsim::{NetworkConfig, NetworkLink, NetworkedDataSource};
use dhqp_storage::TableDef;
use dhqp_types::{Column, DataType, Row, Schema, Value};
use std::sync::Arc;

const N: i64 = 20_000;

/// Remote table with heavy skew: status 0 covers 95% of rows.
fn remote_engine(analyze: bool) -> Engine {
    let remote = Engine::new("skewed-engine");
    remote
        .create_table(
            TableDef::new(
                "events",
                Schema::new(vec![
                    Column::not_null("id", DataType::Int),
                    Column::not_null("status", DataType::Int),
                    Column::not_null("payload", DataType::Int),
                ]),
            )
            .with_index("pk_events", &["id"], true),
        )
        .unwrap();
    let rows: Vec<Row> = (0..N)
        .map(|i| {
            let status = if i % 20 == 0 { (i % 7) + 1 } else { 0 };
            Row::new(vec![Value::Int(i), Value::Int(status), Value::Int(i % 997)])
        })
        .collect();
    remote.storage().insert_rows("events", &rows).unwrap();
    if analyze {
        remote.storage().analyze("events", 32).unwrap();
    }
    remote
}

fn setup(analyze: bool) -> Engine {
    let local = Engine::new("local");
    let link = NetworkLink::new("skew", NetworkConfig::lan());
    local
        .add_linked_server(
            "skew",
            Arc::new(NetworkedDataSource::new(
                Arc::new(EngineDataSource::new(remote_engine(analyze))),
                link,
            )),
        )
        .unwrap();
    local
}

fn bench(c: &mut Criterion) {
    let with_stats = setup(true);
    let without_stats = setup(false);
    let rare = "SELECT COUNT(*) AS n FROM skew.db.dbo.events WHERE status = 5";
    let common = "SELECT COUNT(*) AS n FROM skew.db.dbo.events WHERE status = 0";
    // Row-returning variants expose the remote filter estimate in explain
    // (aggregates always estimate one output row).
    let rare_rows = "SELECT id FROM skew.db.dbo.events WHERE status = 5";
    let common_rows = "SELECT id FROM skew.db.dbo.events WHERE status = 0";

    // Estimate-error report: compare optimizer estimates to truth.
    for (name, engine) in [
        ("with-histograms", &with_stats),
        ("without", &without_stats),
    ] {
        for (qname, sql, count_sql) in [("rare", rare_rows, rare), ("common", common_rows, common)]
        {
            let plan = engine.explain(sql).unwrap();
            let truth = match engine.query(count_sql).unwrap().value(0, 0) {
                Value::Int(n) => *n as f64,
                _ => 0.0,
            };
            // The interesting estimate is the remote subtree's output row
            // count; the aggregate above always estimates 1.
            let est = plan
                .plan_text
                .lines()
                .find(|l| l.contains("Remote"))
                .and_then(|l| l.split("rows=").nth(1))
                .and_then(|s| s.trim().parse::<f64>().ok())
                .unwrap_or(f64::NAN);
            eprintln!(
                "[stats] {name}/{qname}: estimated {est:.0} rows, actual {truth:.0} \
                 (error {:.1}x)",
                (est.max(truth) / est.min(truth).max(1.0))
            );
        }
    }

    let mut g = c.benchmark_group("stats");
    g.sample_size(10);
    g.bench_function("rare_with_histograms", |b| {
        b.iter(|| with_stats.query(rare).unwrap())
    });
    g.bench_function("rare_without_histograms", |b| {
        b.iter(|| without_stats.query(rare).unwrap())
    });
    // Join plan quality: the local probe side is tiny; with histograms the
    // optimizer knows status=5 is rare remotely.
    with_stats
        .create_table(TableDef::new(
            "watch",
            Schema::new(vec![Column::not_null("status", DataType::Int)]),
        ))
        .unwrap();
    with_stats
        .insert("watch", &[Row::new(vec![Value::Int(5)])])
        .unwrap();
    without_stats
        .create_table(TableDef::new(
            "watch",
            Schema::new(vec![Column::not_null("status", DataType::Int)]),
        ))
        .unwrap();
    without_stats
        .insert("watch", &[Row::new(vec![Value::Int(5)])])
        .unwrap();
    let join = "SELECT COUNT(*) AS n FROM watch w, skew.db.dbo.events e \
                WHERE w.status = e.status";
    g.bench_function("join_with_histograms", |b| {
        b.iter(|| with_stats.query(join).unwrap())
    });
    g.bench_function("join_without_histograms", |b| {
        b.iter(|| without_stats.query(join).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
