//! E2 — Table 1: one query shape against each provider class the paper
//! lists (relational SQL, desktop SQL, simple/tabular, full-text
//! pass-through), measuring how much work each class lets the DHQP push.

use criterion::{criterion_group, criterion_main, Criterion};
use dhqp::{Engine, EngineDataSource};
use dhqp_fulltext::FullTextProvider;
use dhqp_netsim::{NetworkConfig, NetworkLink, NetworkedDataSource};
use dhqp_oledb::{DataSource, SqlSupport};
use dhqp_providers::{CsvProvider, MiniSqlProvider};
use dhqp_storage::{StorageEngine, TableDef};
use dhqp_types::{Column, DataType, Row, Schema, Value};
use dhqp_workload::docs::generate_documents;
use std::fmt::Write as _;
use std::sync::Arc;

const N: i64 = 2000;

fn item_rows() -> Vec<Row> {
    (0..N)
        .map(|i| {
            Row::new(vec![
                Value::Int(i),
                Value::Str(format!("cat{}", i % 10)),
                Value::Int(i * 3 % 1000),
            ])
        })
        .collect()
}

fn item_schema() -> Schema {
    Schema::new(vec![
        Column::not_null("id", DataType::Int),
        Column::not_null("category", DataType::Str),
        Column::not_null("price", DataType::Int),
    ])
}

fn storage_with_items(name: &str) -> Arc<StorageEngine> {
    let s = Arc::new(StorageEngine::new(name));
    s.create_table(TableDef::new("items", item_schema()))
        .unwrap();
    s.insert_rows("items", &item_rows()).unwrap();
    s
}

fn csv_items() -> CsvProvider {
    let mut text = String::from("id,category,price\n");
    for r in item_rows() {
        let _ = writeln!(text, "{},{},{}", r.get(0), r.get(1), r.get(2));
    }
    CsvProvider::new("files", &[("items", &text)]).unwrap()
}

fn bench(c: &mut Criterion) {
    let engine = Engine::new("local");
    let link = |name: &str| NetworkLink::new(name, NetworkConfig::lan());

    // Relational SQL Server class (Transact-SQL row of Table 1).
    let sql_server = Engine::new("sqlsrv-engine");
    sql_server
        .create_table(TableDef::new("items", item_schema()))
        .unwrap();
    sql_server
        .storage()
        .insert_rows("items", &item_rows())
        .unwrap();
    let l_sql = link("sqlsrv");
    engine
        .add_linked_server(
            "sqlsrv",
            Arc::new(NetworkedDataSource::new(
                Arc::new(EngineDataSource::new(sql_server)),
                l_sql.clone(),
            )),
        )
        .unwrap();

    // Desktop SQL class (Access row).
    let l_acc = link("access");
    engine
        .add_linked_server(
            "access",
            Arc::new(NetworkedDataSource::new(
                Arc::new(
                    MiniSqlProvider::new("mdb", storage_with_items("mdb"), SqlSupport::OdbcCore)
                        .unwrap(),
                ),
                l_acc.clone(),
            )),
        )
        .unwrap();

    // Simple tabular class (text files / Excel row).
    let l_csv = link("files");
    engine
        .add_linked_server(
            "files",
            Arc::new(NetworkedDataSource::new(
                Arc::new(csv_items()),
                l_csv.clone(),
            )),
        )
        .unwrap();

    // Full-text class (Index Server row): proprietary language, queried via
    // pass-through only.
    let service = Arc::clone(engine.fulltext_service());
    service.create_catalog("lit").unwrap();
    for d in generate_documents(200, 1) {
        service.index_document("lit", d).unwrap();
    }
    let svc = Arc::clone(&service);
    engine.register_openrowset_provider(
        "MSIDXS",
        Arc::new(move |cat: &str| {
            Ok(Arc::new(FullTextProvider::new(Arc::clone(&svc), cat)) as Arc<dyn DataSource>)
        }),
    );

    let shape = |server: &str| {
        format!(
            "SELECT category, COUNT(*) AS n FROM {server}.db.dbo.items \
             WHERE price < 100 GROUP BY category"
        )
    };
    let ft_query = "SELECT FS.path FROM OPENROWSET('MSIDXS','lit',\
                    'Select path, rank from SCOPE() where CONTAINS(''database'')') AS FS";

    // Traffic report.
    for (name, sql, l) in [
        ("sql-server", shape("sqlsrv"), &l_sql),
        ("access-odbc-core", shape("access"), &l_acc),
        ("simple-csv", shape("files"), &l_csv),
    ] {
        engine.query(&sql).unwrap();
        l.reset();
        engine.query(&sql).unwrap();
        let t = l.snapshot();
        eprintln!(
            "[table1] {name}: {} rows / {} bytes shipped",
            t.rows, t.bytes
        );
    }

    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("relational_sql92", |b| {
        b.iter(|| engine.query(&shape("sqlsrv")).unwrap())
    });
    g.bench_function("desktop_odbc_core", |b| {
        b.iter(|| engine.query(&shape("access")).unwrap())
    });
    g.bench_function("simple_csv", |b| {
        b.iter(|| engine.query(&shape("files")).unwrap())
    });
    g.bench_function("fulltext_pass_through", |b| {
        b.iter(|| engine.query(ft_query).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
