//! E3 — Table 2 / §3.3: the same data exposed at increasing capability
//! levels — simple rowset-only, SQL Minimum, ODBC Core, SQL-92 with
//! indexes — running the same query. Pushdown (and therefore traffic and
//! time) improves monotonically with capability.

use criterion::{criterion_group, criterion_main, Criterion};
use dhqp::{Engine, EngineDataSource};
use dhqp_netsim::{NetworkConfig, NetworkLink, NetworkedDataSource};
use dhqp_oledb::SqlSupport;
use dhqp_providers::{CsvProvider, MiniSqlProvider};
use dhqp_storage::{StorageEngine, TableDef};
use dhqp_types::{Column, DataType, Row, Schema, Value};
use std::fmt::Write as _;
use std::sync::Arc;

const N: i64 = 3000;

fn schema() -> Schema {
    Schema::new(vec![
        Column::not_null("k", DataType::Int),
        Column::not_null("grp", DataType::Int),
        Column::not_null("v", DataType::Int),
    ])
}

fn rows() -> Vec<Row> {
    (0..N)
        .map(|i| {
            Row::new(vec![
                Value::Int(i),
                Value::Int(i % 20),
                Value::Int(i * 7 % 500),
            ])
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let engine = Engine::new("local");

    // simple: rowset-only CSV.
    let mut text = String::from("k,grp,v\n");
    for r in rows() {
        let _ = writeln!(text, "{},{},{}", r.get(0), r.get(1), r.get(2));
    }
    let l_simple = NetworkLink::new("simple", NetworkConfig::lan());
    engine
        .add_linked_server(
            "simple",
            Arc::new(NetworkedDataSource::new(
                Arc::new(CsvProvider::new("csv", &[("t", &text)]).unwrap()),
                l_simple.clone(),
            )),
        )
        .unwrap();

    // SQL Minimum and ODBC Core over identical storage.
    let mut links = vec![("simple", l_simple)];
    for (name, level) in [
        ("minimum", SqlSupport::Minimum),
        ("odbccore", SqlSupport::OdbcCore),
    ] {
        let s = Arc::new(StorageEngine::new(name));
        s.create_table(TableDef::new("t", schema())).unwrap();
        s.insert_rows("t", &rows()).unwrap();
        let link = NetworkLink::new(name, NetworkConfig::lan());
        engine
            .add_linked_server(
                name,
                Arc::new(NetworkedDataSource::new(
                    Arc::new(MiniSqlProvider::new(name, s, level).unwrap()),
                    link.clone(),
                )),
            )
            .unwrap();
        links.push((name, link));
    }

    // SQL-92 + index provider: a full engine.
    let full = Engine::new("full-engine");
    full.create_table(TableDef::new("t", schema()).with_index("pk_t", &["k"], true))
        .unwrap();
    full.storage().insert_rows("t", &rows()).unwrap();
    full.storage().analyze("t", 16).unwrap();
    let l_full = NetworkLink::new("sql92", NetworkConfig::lan());
    engine
        .add_linked_server(
            "sql92",
            Arc::new(NetworkedDataSource::new(
                Arc::new(EngineDataSource::new(full)),
                l_full.clone(),
            )),
        )
        .unwrap();
    links.push(("sql92", l_full));

    // The workload: an aggregate over a selective disjunctive filter —
    // needs OR (beyond Minimum) and GROUP BY (beyond ODBC Core).
    let sql = |server: &str| {
        format!(
            "SELECT grp, COUNT(*) AS n FROM {server}.db.dbo.t \
             WHERE v < 50 OR v > 450 GROUP BY grp"
        )
    };

    for (name, link) in &links {
        let q = sql(name);
        engine.query(&q).unwrap();
        link.reset();
        engine.query(&q).unwrap();
        let t = link.snapshot();
        eprintln!(
            "[table2] {name}: {} rows / {} bytes shipped",
            t.rows, t.bytes
        );
    }

    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    for (name, _) in &links {
        let q = sql(name);
        let e = engine.clone();
        g.bench_function(*name, move |b| b.iter(|| e.query(&q).unwrap()));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
