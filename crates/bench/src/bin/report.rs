//! `report` — regenerate every paper table/figure reproduction in one run
//! and print the measured rows recorded in EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p dhqp-bench --bin report
//! ```

use dhqp::{
    BatchConfig, BreakerConfig, DegradedMode, Engine, EngineDataSource, EventConfig, FaultConfig,
    OptimizationPhase, ParallelConfig, RetryPolicy, TraceConfig, WaitClass,
};
use dhqp_bench::{
    dpv_federation, example1, remote_dpv_federation, remote_dpv_federation_with_faults,
    reset_links, semijoin_fixture, total_traffic, warm, EXAMPLE1_PLAN_A_SQL, EXAMPLE1_SQL,
    SEMIJOIN_SQL,
};
use dhqp_fulltext::FullTextProvider;
use dhqp_netsim::{NetworkConfig, NetworkLink, NetworkedDataSource};
use dhqp_oledb::{DataSource, RowsetExt, SqlSupport};
use dhqp_providers::{CsvProvider, MailboxProvider, MiniSqlProvider};
use dhqp_storage::{StorageEngine, TableDef};
use dhqp_types::{value::parse_date, Column, DataType, Row, Schema, Value};
use dhqp_workload::accounts::create_account_partition;
use dhqp_workload::docs::generate_documents;
use dhqp_workload::mailgen::{generate_mailbox, MailboxSpec};
use dhqp_workload::tpch::TpchScale;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

fn timed<T>(f: impl FnOnce() -> T) -> (T, std::time::Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

fn header(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

fn e1_figure4() {
    header("E1  Figure 4 / Example 1 — cost-based distributed join placement");
    let ex = example1(TpchScale::small(), true);
    warm(&ex.local, EXAMPLE1_SQL);
    warm(&ex.local, EXAMPLE1_PLAN_A_SQL);
    println!("optimizer's plan for Example 1 (expect plan b):");
    print!("{}", ex.local.explain(EXAMPLE1_SQL).unwrap().plan_text);
    let mut rows = Vec::new();
    for (name, sql) in [
        ("plan (b) chosen", EXAMPLE1_SQL),
        ("plan (a) forced", EXAMPLE1_PLAN_A_SQL),
    ] {
        ex.link.reset();
        let (r, t) = timed(|| ex.local.query(sql).unwrap());
        let traffic = ex.link.snapshot();
        rows.push((name, r.len(), traffic.rows, traffic.bytes, t));
    }
    println!(
        "\n{:<18} {:>10} {:>12} {:>12} {:>12}",
        "plan", "result", "rows shipped", "bytes", "time"
    );
    for (name, result, shipped, bytes, t) in &rows {
        println!("{name:<18} {result:>10} {shipped:>12} {bytes:>12} {t:>12.2?}");
    }
    let factor = rows[1].3 as f64 / rows[0].3.max(1) as f64;
    println!("→ plan (b) ships {factor:.1}x fewer bytes; the paper's Figure 4 choice holds.");
}

fn e2_table1() {
    header("E2  Table 1 — provider classes under one query shape");
    let engine = Engine::new("local");
    let n = 2000i64;
    let schema = Schema::new(vec![
        Column::not_null("id", DataType::Int),
        Column::not_null("category", DataType::Str),
        Column::not_null("price", DataType::Int),
    ]);
    let rows: Vec<Row> = (0..n)
        .map(|i| {
            Row::new(vec![
                Value::Int(i),
                Value::Str(format!("cat{}", i % 10)),
                Value::Int(i * 3 % 1000),
            ])
        })
        .collect();

    let sqlsrv = Engine::new("sqlsrv-engine");
    sqlsrv
        .create_table(TableDef::new("items", schema.clone()))
        .unwrap();
    sqlsrv.storage().insert_rows("items", &rows).unwrap();
    let l1 = NetworkLink::new("sqlsrv", NetworkConfig::lan());
    engine
        .add_linked_server(
            "sqlsrv",
            Arc::new(NetworkedDataSource::new(
                Arc::new(EngineDataSource::new(sqlsrv)),
                l1.clone(),
            )),
        )
        .unwrap();

    let mdb = Arc::new(StorageEngine::new("mdb"));
    mdb.create_table(TableDef::new("items", schema.clone()))
        .unwrap();
    mdb.insert_rows("items", &rows).unwrap();
    let l2 = NetworkLink::new("access", NetworkConfig::lan());
    engine
        .add_linked_server(
            "access",
            Arc::new(NetworkedDataSource::new(
                Arc::new(MiniSqlProvider::new("mdb", mdb, SqlSupport::OdbcCore).unwrap()),
                l2.clone(),
            )),
        )
        .unwrap();

    let mut text = String::from("id,category,price\n");
    for r in &rows {
        text.push_str(&format!("{},{},{}\n", r.get(0), r.get(1), r.get(2)));
    }
    let l3 = NetworkLink::new("files", NetworkConfig::lan());
    engine
        .add_linked_server(
            "files",
            Arc::new(NetworkedDataSource::new(
                Arc::new(CsvProvider::new("csv", &[("items", &text)]).unwrap()),
                l3.clone(),
            )),
        )
        .unwrap();

    let service = Arc::clone(engine.fulltext_service());
    service.create_catalog("lit").unwrap();
    for d in generate_documents(200, 1) {
        service.index_document("lit", d).unwrap();
    }
    let svc = Arc::clone(&service);
    engine.register_openrowset_provider(
        "MSIDXS",
        Arc::new(move |cat: &str| {
            Ok(Arc::new(FullTextProvider::new(Arc::clone(&svc), cat)) as Arc<dyn DataSource>)
        }),
    );

    let shape = |server: &str| {
        format!(
            "SELECT category, COUNT(*) AS n FROM {server}.db.dbo.items \
             WHERE price < 100 GROUP BY category"
        )
    };
    println!(
        "{:<26} {:>10} {:>14} {:>12} {:>12}",
        "provider class", "pushdown", "rows shipped", "bytes", "time"
    );
    for (name, server, link, pushes) in [
        ("relational (SQL-92)", "sqlsrv", &l1, "full stmt"),
        ("desktop SQL (ODBC core)", "access", &l2, "join+filter"),
        ("simple (CSV rowsets)", "files", &l3, "none"),
    ] {
        let q = shape(server);
        warm(&engine, &q);
        link.reset();
        let (_, t) = timed(|| engine.query(&q).unwrap());
        let tr = link.snapshot();
        println!(
            "{name:<26} {pushes:>10} {:>14} {:>12} {t:>12.2?}",
            tr.rows, tr.bytes
        );
    }
    let ft = "SELECT FS.path FROM OPENROWSET('MSIDXS','lit',\
              'Select path, rank from SCOPE() where CONTAINS(''database'')') AS FS";
    let (r, t) = timed(|| engine.query(ft).unwrap());
    println!(
        "{:<26} {:>10} {:>14} {:>12} {t:>12.2?}",
        "full-text (proprietary)",
        "pass-thru",
        r.len(),
        "-"
    );
}

fn e3_table2() {
    header("E3  Table 2 / §3.3 — capability levels of one source");
    let engine = Engine::new("local");
    let n = 3000i64;
    let schema = Schema::new(vec![
        Column::not_null("k", DataType::Int),
        Column::not_null("grp", DataType::Int),
        Column::not_null("v", DataType::Int),
    ]);
    let rows: Vec<Row> = (0..n)
        .map(|i| {
            Row::new(vec![
                Value::Int(i),
                Value::Int(i % 20),
                Value::Int(i * 7 % 500),
            ])
        })
        .collect();
    let mut entries: Vec<(&str, NetworkLink)> = Vec::new();
    let mut text = String::from("k,grp,v\n");
    for r in &rows {
        text.push_str(&format!("{},{},{}\n", r.get(0), r.get(1), r.get(2)));
    }
    let l = NetworkLink::new("simple", NetworkConfig::lan());
    engine
        .add_linked_server(
            "simple",
            Arc::new(NetworkedDataSource::new(
                Arc::new(CsvProvider::new("csv", &[("t", &text)]).unwrap()),
                l.clone(),
            )),
        )
        .unwrap();
    entries.push(("simple", l));
    for (name, level) in [
        ("minimum", SqlSupport::Minimum),
        ("odbccore", SqlSupport::OdbcCore),
    ] {
        let s = Arc::new(StorageEngine::new(name));
        s.create_table(TableDef::new("t", schema.clone())).unwrap();
        s.insert_rows("t", &rows).unwrap();
        let l = NetworkLink::new(name, NetworkConfig::lan());
        engine
            .add_linked_server(
                name,
                Arc::new(NetworkedDataSource::new(
                    Arc::new(MiniSqlProvider::new(name, s, level).unwrap()),
                    l.clone(),
                )),
            )
            .unwrap();
        entries.push((name, l));
    }
    let full = Engine::new("full-engine");
    full.create_table(TableDef::new("t", schema).with_index("pk_t", &["k"], true))
        .unwrap();
    full.storage().insert_rows("t", &rows).unwrap();
    full.storage().analyze("t", 16).unwrap();
    let l = NetworkLink::new("sql92", NetworkConfig::lan());
    engine
        .add_linked_server(
            "sql92",
            Arc::new(NetworkedDataSource::new(
                Arc::new(EngineDataSource::new(full)),
                l.clone(),
            )),
        )
        .unwrap();
    entries.push(("sql92", l));

    println!(
        "{:<12} {:>14} {:>12} {:>12}   notes",
        "level", "rows shipped", "bytes", "time"
    );
    for (name, link) in &entries {
        let q = format!(
            "SELECT grp, COUNT(*) AS cnt FROM {name}.db.dbo.t \
             WHERE v < 50 OR v > 450 GROUP BY grp"
        );
        warm(&engine, &q);
        link.reset();
        let (_, t) = timed(|| engine.query(&q).unwrap());
        let tr = link.snapshot();
        let notes = match *name {
            "simple" => "ships table; all local",
            "minimum" => "OR exceeds level; ships table",
            "odbccore" => "filter pushed; agg local",
            _ => "whole statement pushed",
        };
        println!(
            "{name:<12} {:>14} {:>12} {t:>12.2?}   {notes}",
            tr.rows, tr.bytes
        );
    }
}

fn e4_fulltext() {
    header("E4  Figure 2 / §2.3 — full-text integration vs LIKE baseline");
    let engine = Engine::new("local");
    engine
        .create_table(
            TableDef::new(
                "articles",
                Schema::new(vec![
                    Column::not_null("id", DataType::Int),
                    Column::new("body", DataType::Str),
                ]),
            )
            .with_index("pk", &["id"], true),
        )
        .unwrap();
    let docs = generate_documents(1500, 77);
    let rows: Vec<Row> = docs
        .iter()
        .enumerate()
        .map(|(i, d)| Row::new(vec![Value::Int(i as i64), Value::Str(d.raw.clone())]))
        .collect();
    engine.insert("articles", &rows).unwrap();
    engine
        .create_fulltext_index("articles", "id", "body", "ft")
        .unwrap();
    let contains =
        "SELECT COUNT(*) AS n FROM articles WHERE CONTAINS(body, 'parallel AND database')";
    let like = "SELECT COUNT(*) AS n FROM articles \
                WHERE body LIKE '%parallel%' AND body LIKE '%database%'";
    let (rc, tc) = timed(|| engine.query(contains).unwrap());
    let (rl, tl) = timed(|| engine.query(like).unwrap());
    println!("{:<28} {:>8} {:>12}", "path", "matches", "time");
    println!(
        "{:<28} {:>8} {tc:>12.2?}",
        "CONTAINS via search service",
        rc.value(0, 0)
    );
    println!("{:<28} {:>8} {tl:>12.2?}", "LIKE full scan", rl.value(0, 0));
    println!(
        "→ CONTAINS is {:.1}x faster and matches inflected forms the LIKE scan misses.",
        tl.as_secs_f64() / tc.as_secs_f64().max(1e-9)
    );
}

fn e5_email() {
    header("E5  §2.4 — heterogeneous mail + Access salesman query");
    let today = parse_date("2004-06-14").unwrap();
    for inbound in [50usize, 200, 800] {
        let engine = Engine::new("local");
        let spec = MailboxSpec {
            owner: "smith@corp.example".into(),
            customers: MailboxSpec::customer_addresses(24),
            inbound,
            reply_fraction: 0.5,
            today,
        };
        engine
            .add_linked_server(
                "mail",
                Arc::new(
                    MailboxProvider::from_text("d:\\mail\\smith.mmf", &generate_mailbox(&spec, 5))
                        .unwrap(),
                ),
            )
            .unwrap();
        let mdb = Arc::new(StorageEngine::new("enterprise.mdb"));
        mdb.create_table(TableDef::new(
            "Customers",
            Schema::new(vec![
                Column::not_null("Emailaddr", DataType::Str),
                Column::not_null("City", DataType::Str),
                Column::new("Address", DataType::Str),
            ]),
        ))
        .unwrap();
        let rows: Vec<Row> = spec
            .customers
            .iter()
            .enumerate()
            .map(|(i, a)| {
                Row::new(vec![
                    Value::Str(a.clone()),
                    Value::Str(if i % 2 == 0 { "Seattle" } else { "Portland" }.into()),
                    Value::Str(format!("{i} Pine St")),
                ])
            })
            .collect();
        mdb.insert_rows("Customers", &rows).unwrap();
        engine
            .add_linked_server(
                "access",
                Arc::new(MiniSqlProvider::new("mdb", mdb, SqlSupport::OdbcCore).unwrap()),
            )
            .unwrap();
        let sql = "SELECT m1.msgid, c.Address \
                   FROM mail.mbx.dbo.messages m1, access.db.dbo.Customers c \
                   WHERE m1.date >= DATE '2004-06-12' \
                     AND m1.from_addr = c.Emailaddr AND c.City = 'Seattle' \
                     AND m1.to_addr = 'smith@corp.example' \
                     AND NOT EXISTS (SELECT * FROM mail.mbx.dbo.messages m2 \
                                     WHERE m2.inreplyto = m1.msgid)";
        warm(&engine, sql);
        let (r, t) = timed(|| engine.query(sql).unwrap());
        println!(
            "inbound={inbound:<5} unanswered-seattle={:<4} time={t:.2?}",
            r.len()
        );
    }
}

fn e6_dpv() {
    header("E6  §4.1.5 — partitioned-view pruning (static / runtime / off)");
    let fed = dpv_federation(TpchScale::small(), 2, true);
    // 1993 lives on remote member1: pruning leaves one remote round trip;
    // disabling it contacts every member.
    let static_sql = "SELECT COUNT(*) AS n FROM lineitem_all \
                      WHERE l_commitdate >= '1993-01-01' AND l_commitdate <= '1993-12-31'";
    let param_sql = "SELECT COUNT(*) AS n FROM lineitem_all WHERE l_commitdate = @d";
    let mut params = HashMap::new();
    params.insert(
        "d".to_string(),
        Value::Date(parse_date("1994-06-15").unwrap()),
    );

    println!(
        "{:<26} {:>14} {:>10} {:>12}",
        "configuration", "rows shipped", "reqs", "time"
    );
    warm(&fed.head, static_sql);
    reset_links(&fed.links);
    let (_, t) = timed(|| fed.head.query(static_sql).unwrap());
    let tr = total_traffic(&fed.links);
    println!(
        "{:<26} {:>14} {:>10} {t:>12.2?}",
        "static pruning", tr.rows, tr.requests
    );

    fed.head
        .query_with_params(param_sql, params.clone())
        .unwrap();
    reset_links(&fed.links);
    let (_, t) = timed(|| {
        fed.head
            .query_with_params(param_sql, params.clone())
            .unwrap()
    });
    let tr = total_traffic(&fed.links);
    println!(
        "{:<26} {:>14} {:>10} {t:>12.2?}",
        "runtime startup filters", tr.rows, tr.requests
    );

    let mut off = fed.head.optimizer_config();
    off.simplify.constraint_pruning = false;
    off.simplify.startup_filters = false;
    fed.head.set_optimizer_config(off);
    warm(&fed.head, static_sql);
    reset_links(&fed.links);
    let (_, t) = timed(|| fed.head.query(static_sql).unwrap());
    let tr = total_traffic(&fed.links);
    println!(
        "{:<26} {:>14} {:>10} {t:>12.2?}",
        "pruning disabled", tr.rows, tr.requests
    );
}

fn e7_stats() {
    header("E7  §3.2.4 — remote histogram statistics and estimate error");
    for (label, analyze) in [("with histograms", true), ("without", false)] {
        let remote = Engine::new("skewed-engine");
        remote
            .create_table(TableDef::new(
                "events",
                Schema::new(vec![
                    Column::not_null("id", DataType::Int),
                    Column::not_null("status", DataType::Int),
                ]),
            ))
            .unwrap();
        let rows: Vec<Row> = (0..20_000i64)
            .map(|i| {
                let status = if i % 20 == 0 { (i % 7) + 1 } else { 0 };
                Row::new(vec![Value::Int(i), Value::Int(status)])
            })
            .collect();
        remote.storage().insert_rows("events", &rows).unwrap();
        if analyze {
            remote.storage().analyze("events", 32).unwrap();
        }
        let local = Engine::new("local");
        local
            .add_linked_server(
                "skew",
                Arc::new(NetworkedDataSource::new(
                    Arc::new(EngineDataSource::new(remote)),
                    NetworkLink::new("skew", NetworkConfig::lan()),
                )),
            )
            .unwrap();
        for (qname, sql, truth) in [
            (
                "status=5 (rare)",
                "SELECT id FROM skew.db.dbo.events WHERE status = 5",
                143.0,
            ),
            (
                "status=0 (common)",
                "SELECT id FROM skew.db.dbo.events WHERE status = 0",
                19000.0,
            ),
        ] {
            let plan = local.explain(sql).unwrap();
            let est = plan
                .plan_text
                .lines()
                .find(|l| l.contains("Remote"))
                .and_then(|l| l.split("rows=").nth(1))
                .and_then(|s| s.trim().parse::<f64>().ok())
                .unwrap_or(f64::NAN);
            println!(
                "{label:<18} {qname:<18} estimate={est:>8.0}  truth≈{truth:>8.0}  error={:>6.1}x",
                (est.max(truth) / est.min(truth).max(1.0))
            );
        }
    }
    println!("→ histograms close the order-of-magnitude gap the paper describes.");
}

fn e8_spool() {
    header("E8  §4.1.2 — spool over remote operations");
    let ex = example1(TpchScale::small(), true);
    let sql = "SELECT COUNT(*) AS n FROM nation n \
               LEFT OUTER JOIN remote0.tpch.dbo.supplier s ON s.s_suppkey > n.n_nationkey";
    warm(&ex.local, sql);
    ex.link.reset();
    let (_, t_on) = timed(|| ex.local.query(sql).unwrap());
    let on = ex.link.snapshot();
    let mut config = ex.local.optimizer_config();
    config.enable_spool = false;
    ex.local.set_optimizer_config(config);
    warm(&ex.local, sql);
    ex.link.reset();
    let (_, t_off) = timed(|| ex.local.query(sql).unwrap());
    let off = ex.link.snapshot();
    println!(
        "{:<16} {:>14} {:>10} {:>12}",
        "spool", "rows shipped", "reqs", "time"
    );
    println!(
        "{:<16} {:>14} {:>10} {t_on:>12.2?}",
        "enabled", on.rows, on.requests
    );
    println!(
        "{:<16} {:>14} {:>10} {t_off:>12.2?}",
        "disabled", off.rows, off.requests
    );
    println!(
        "→ the spool fetches the remote table once instead of {}x.",
        off.rows / on.rows.max(1)
    );
}

fn e9_phases() {
    header("E9  §4.1.1 — optimization phases: cost vs effort");
    let ex = example1(TpchScale::small(), false);
    {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let scale = TpchScale::small();
        dhqp_workload::tpch::create_orders(ex.local.storage(), &scale, &mut rng).unwrap();
        dhqp_workload::tpch::create_lineitem(ex.local.storage(), &scale, &mut rng).unwrap();
    }
    let queries = [
        (
            "point lookup",
            "SELECT c_name FROM remote0.tpch.dbo.customer WHERE c_custkey = 7".to_string(),
        ),
        ("3-way join", EXAMPLE1_SQL.to_string()),
        (
            "5-way join + agg",
            "SELECT n.n_name, COUNT(*) AS cnt FROM remote0.tpch.dbo.customer c, \
             remote0.tpch.dbo.supplier s, nation n, orders o, lineitem l \
             WHERE c.c_nationkey = n.n_nationkey AND n.n_nationkey = s.s_nationkey \
               AND o.o_custkey = c.c_custkey AND l.l_orderkey = o.o_orderkey \
               AND l.l_suppkey = s.s_suppkey GROUP BY n.n_name"
                .to_string(),
        ),
    ];
    println!(
        "{:<18} {:>14} {:>14} {:>14}   adaptive",
        "query", "tp cost", "quick cost", "full cost"
    );
    for (name, sql) in &queries {
        let mut cells = Vec::new();
        for phase in [
            OptimizationPhase::TransactionProcessing,
            OptimizationPhase::QuickPlan,
            OptimizationPhase::Full,
        ] {
            let mut config = ex.local.optimizer_config();
            config.forced_phase = Some(phase);
            ex.local.set_optimizer_config(config);
            cells.push(match ex.local.explain(sql) {
                Ok(p) => format!("{:.0}", p.est_cost),
                Err(_) => "-".to_string(),
            });
        }
        let mut config = ex.local.optimizer_config();
        config.forced_phase = None;
        ex.local.set_optimizer_config(config);
        let (adaptive, t) = timed(|| ex.local.explain(sql).unwrap());
        println!(
            "{name:<18} {:>14} {:>14} {:>14}   cost={:.0} phases={} early_exit={} ({t:.2?})",
            cells[0],
            cells[1],
            cells[2],
            adaptive.est_cost,
            adaptive.stats.phases.len(),
            adaptive.stats.early_exit
        );
    }
}

fn e10_access_paths() {
    header("E10 §4.1.2 — parameterized remote access vs bulk shipping");
    let ex = example1(TpchScale::small(), true);
    println!(
        "{:<14} {:>16} {:>10} {:>12} {:>16} {:>10} {:>12}",
        "outer nations", "param rows", "reqs", "time", "bulk rows", "reqs", "time"
    );
    for hi in [1i64, 5, 25] {
        let sql = format!(
            "SELECT COUNT(*) AS n FROM nation n, remote0.tpch.dbo.supplier s \
             WHERE n.n_nationkey = s.s_nationkey AND n.n_nationkey < {hi}"
        );
        warm(&ex.local, &sql);
        ex.link.reset();
        let (_, t_param) = timed(|| ex.local.query(&sql).unwrap());
        let param = ex.link.snapshot();
        let mut config = ex.local.optimizer_config();
        config.enable_remote_param = false;
        let on = ex.local.optimizer_config();
        ex.local.set_optimizer_config(config);
        warm(&ex.local, &sql);
        ex.link.reset();
        let (_, t_bulk) = timed(|| ex.local.query(&sql).unwrap());
        let bulk = ex.link.snapshot();
        ex.local.set_optimizer_config(on);
        println!(
            "{hi:<14} {:>16} {:>10} {t_param:>12.2?} {:>16} {:>10} {t_bulk:>12.2?}",
            param.rows, param.requests, bulk.rows, bulk.requests
        );
    }
}

fn e11_federation() {
    header("E11 §4.1.5 — federated transactions under 2PC");
    const APM: i64 = 100;
    for members in [1usize, 2, 4, 8] {
        let head = Engine::new("head");
        let mut sources: Vec<Arc<dyn DataSource>> = Vec::new();
        for i in 0..members {
            let m = Engine::new(format!("m{i}-engine"));
            create_account_partition(
                m.storage(),
                &format!("accounts_{i}"),
                i as i64 * APM,
                i as i64 * APM + APM - 1,
                1000,
            )
            .unwrap();
            let src: Arc<dyn DataSource> = Arc::new(NetworkedDataSource::new(
                Arc::new(EngineDataSource::new(m)),
                NetworkLink::new(format!("m{i}"), NetworkConfig::lan_timed()),
            ));
            head.add_linked_server(&format!("m{i}"), Arc::clone(&src))
                .unwrap();
            sources.push(src);
        }
        let transfer = |from: i64, to: i64| {
            let mf = (from / APM) as usize;
            let mt = (to / APM) as usize;
            let mut txn = head.dtc().begin();
            for m in [mf, mt] {
                let name = format!("m{m}");
                if !txn.participant_names().contains(&name) {
                    txn.enlist(name, sources[m].create_session().unwrap())
                        .unwrap();
                }
            }
            for (account, member, delta) in [(from, mf, -1i64), (to, mt, 1)] {
                let table = format!("accounts_{member}");
                let session = txn.session_mut(&format!("m{member}")).unwrap();
                let rows = session.open_rowset(&table).unwrap().collect_rows().unwrap();
                let row = rows
                    .iter()
                    .find(|r| r.get(0) == &Value::Int(account))
                    .unwrap();
                let Value::Int(balance) = row.get(1) else {
                    panic!()
                };
                session
                    .update_by_bookmarks(
                        &table,
                        &[row.bookmark.unwrap()],
                        &[Row::new(vec![
                            Value::Int(account),
                            Value::Int(balance + delta),
                        ])],
                    )
                    .unwrap();
            }
            txn.commit().unwrap();
        };
        let iters = 40i64;
        let (_, t_same) = timed(|| {
            for i in 0..iters {
                let base = (i % members as i64) * APM;
                transfer(base + (i % 50), base + 50 + (i % 50));
            }
        });
        let t_cross = if members >= 2 {
            let (_, t) = timed(|| {
                for i in 0..iters {
                    let m1 = i % members as i64;
                    let m2 = (i + 1) % members as i64;
                    transfer(m1 * APM + (i % 100), m2 * APM + (i % 100));
                }
            });
            format!("{:.0}/s", iters as f64 / t.as_secs_f64())
        } else {
            "-".into()
        };
        println!(
            "members={members:<3} same-site {:>6.0} txn/s   cross-site {t_cross:>8}",
            iters as f64 / t_same.as_secs_f64()
        );
    }
}

fn e12_parallel() {
    header("E12 §4.1.5 — parallel remote dispatch: exchange + prefetch vs serial union");
    let scale = TpchScale {
        nations: 10,
        customers: 300,
        suppliers: 50,
        orders: 2000,
        lineitems_per_order: 3,
    };
    let members = 4usize;
    let fed = remote_dpv_federation(scale, members, NetworkConfig::wan_timed());
    let sql = "SELECT l_orderkey, l_linenumber, l_quantity FROM lineitem_all";

    // Best of three per configuration: the per-row link sleeps dominate, so
    // the minimum is the stable wall-clock figure.
    let measure = |config: ParallelConfig| {
        fed.head.set_parallel_config(config);
        warm(&fed.head, sql);
        let mut best: Option<(usize, std::time::Duration)> = None;
        for _ in 0..3 {
            reset_links(&fed.links);
            let (r, t) = timed(|| fed.head.query(sql).unwrap());
            if best.is_none_or(|(_, b)| t < b) {
                best = Some((r.len(), t));
            }
        }
        let (rows, t) = best.expect("measured");
        (rows, t, total_traffic(&fed.links))
    };

    let (rows_s, t_serial, tr_serial) = measure(ParallelConfig::serial());
    let before = fed.head.metrics();
    let (rows_p, t_parallel, tr_parallel) = measure(ParallelConfig::parallel());
    assert_eq!(
        rows_s, rows_p,
        "parallel dispatch must return the same rows"
    );
    assert_eq!(
        (tr_serial.rows, tr_serial.bytes),
        (tr_parallel.rows, tr_parallel.bytes),
        "concurrency must not change what crosses the wire"
    );
    let speedup = t_serial.as_secs_f64() / t_parallel.as_secs_f64().max(1e-9);
    let m = fed.head.metrics();
    let exchanges = (m.parallel_exchanges - before.parallel_exchanges).max(1);
    let workers = (m.exchange_workers - before.exchange_workers) / exchanges;
    let prefetches = (m.remote_prefetches - before.remote_prefetches) / exchanges;

    println!(
        "{:<20} {:>10} {:>14} {:>12} {:>12}",
        "dispatch", "rows", "rows shipped", "bytes", "time"
    );
    println!(
        "{:<20} {rows_s:>10} {:>14} {:>12} {t_serial:>12.2?}",
        "serial union", tr_serial.rows, tr_serial.bytes
    );
    println!(
        "{:<20} {rows_p:>10} {:>14} {:>12} {t_parallel:>12.2?}",
        "parallel exchange", tr_parallel.rows, tr_parallel.bytes
    );
    println!(
        "→ exchange over {members} members is {speedup:.1}x faster; \
         {workers} workers, {prefetches} prefetched rowsets per query."
    );

    // Hand-formatted JSON: the offline serde shim is marker-only.
    let json = format!(
        "{{\n  \"experiment\": \"federation_parallel\",\n  \"query\": \"{sql}\",\n  \
         \"members\": {members},\n  \"branches\": 7,\n  \"rows\": {rows_s},\n  \
         \"serial_ms\": {:.3},\n  \"parallel_ms\": {:.3},\n  \"speedup\": {speedup:.2},\n  \
         \"exchange_workers\": {workers},\n  \"prefetched_rowsets\": {prefetches},\n  \
         \"serial_traffic\": {{ \"requests\": {}, \"rows\": {}, \"bytes\": {} }},\n  \
         \"parallel_traffic\": {{ \"requests\": {}, \"rows\": {}, \"bytes\": {} }}\n}}\n",
        t_serial.as_secs_f64() * 1e3,
        t_parallel.as_secs_f64() * 1e3,
        tr_serial.requests,
        tr_serial.rows,
        tr_serial.bytes,
        tr_parallel.requests,
        tr_parallel.rows,
        tr_parallel.bytes,
    );
    std::fs::write("BENCH_federation_parallel.json", json).expect("write BENCH json");
    println!("→ wrote BENCH_federation_parallel.json");
}

fn e13_plan_cache() {
    header("E13 §3 — parameterized plan cache: compile-path cost, cold vs cached");
    let scale = TpchScale {
        nations: 10,
        customers: 100,
        suppliers: 30,
        orders: 600,
        lineitems_per_order: 2,
    };
    let members = 4usize;
    // Untimed LAN links: no simulated network sleeps, so the measurement
    // contrasts parse+bind+optimize against plan-cache lookup rather than
    // wire time (execution cost is identical on both legs).
    let fed = remote_dpv_federation(scale, members, NetworkConfig::lan());
    // The date range stays literal (only numeric literals parameterize) and
    // statically prunes six of the seven partitions, so each execution is
    // one cheap remote probe while every cold compile still pays full view
    // expansion, constraint pruning and plan search.
    let template = "SELECT a.l_orderkey, a.l_quantity \
                    FROM lineitem_all a JOIN lineitem_all b \
                    ON a.l_orderkey = b.l_orderkey \
                    WHERE a.l_commitdate BETWEEN '1995-01-01' AND '1995-12-31' \
                    AND b.l_commitdate BETWEEN '1995-01-01' AND '1995-12-31' \
                    AND a.l_quantity = {}";
    let iters = 300i64;

    // Fingerprint-equal statements with distinct literals: cold compiles
    // every one, cached compiles the first and serves the rest.
    let run_batch = |label: &str| {
        let ((), t) = timed(|| {
            for i in 0..iters {
                fed.head
                    .query(&template.replace("{}", &(i % 50 + 1).to_string()))
                    .unwrap();
            }
        });
        println!(
            "{label:<28} {iters} queries in {t:>10.2?}  ({:>8.1} q/s)",
            iters as f64 / t.as_secs_f64()
        );
        t
    };

    fed.head.set_plan_cache_enabled(false);
    warm(&fed.head, "SELECT COUNT(*) AS n FROM lineitem_all"); // metadata
    let t_cold = run_batch("cache off (compile always)");

    fed.head.set_plan_cache_enabled(true);
    warm(&fed.head, &template.replace("{}", "1"));
    let before = fed.head.metrics();
    let t_warm = run_batch("cache on (fingerprinted)");
    let m = fed.head.metrics();
    let hits = m.plan_cache_hits - before.plan_cache_hits;

    let speedup = t_cold.as_secs_f64() / t_warm.as_secs_f64().max(1e-9);
    assert_eq!(hits, iters as u64, "every warm query must be a cache hit");
    println!(
        "→ plan cache serves {hits}/{iters} executions from one entry; \
         compile path is {speedup:.1}x faster."
    );

    // Hand-formatted JSON: the offline serde shim is marker-only.
    let json = format!(
        "{{\n  \"experiment\": \"plan_cache\",\n  \
         \"query_template\": \"{template}\",\n  \
         \"members\": {members},\n  \"iterations\": {iters},\n  \
         \"cache_off_ms\": {:.3},\n  \"cache_on_ms\": {:.3},\n  \
         \"speedup\": {speedup:.2},\n  \"plan_cache_hits\": {hits},\n  \
         \"plan_cache_entries\": {}\n}}\n",
        t_cold.as_secs_f64() * 1e3,
        t_warm.as_secs_f64() * 1e3,
        fed.head.plan_cache_len(),
    );
    std::fs::write("BENCH_plan_cache.json", json).expect("write BENCH json");
    println!("→ wrote BENCH_plan_cache.json");
}

fn e14_trace_overhead() {
    header("E14 — hierarchical tracing overhead on the E12 federation scan");
    let scale = TpchScale {
        nations: 10,
        customers: 300,
        suppliers: 50,
        orders: 2000,
        lineitems_per_order: 3,
    };
    let members = 4usize;
    let fed = remote_dpv_federation(scale, members, NetworkConfig::wan_timed());
    let sql = "SELECT l_orderkey, l_linenumber, l_quantity FROM lineitem_all";

    // Best of three per configuration, as in E12: WAN sleeps dominate, so
    // the minimum is the stable wall-clock figure.
    let measure = |trace: TraceConfig| {
        fed.head.set_trace_config(trace);
        warm(&fed.head, sql);
        let mut best: Option<(usize, std::time::Duration)> = None;
        for _ in 0..3 {
            reset_links(&fed.links);
            let (r, t) = timed(|| fed.head.query(sql).unwrap());
            if best.is_none_or(|(_, b)| t < b) {
                best = Some((r.len(), t));
            }
        }
        best.expect("measured")
    };

    let (rows_off, t_off) = measure(TraceConfig::disabled());
    let (rows_on, t_on) = measure(TraceConfig::enabled());
    assert_eq!(rows_off, rows_on, "tracing must not change results");
    let spans = fed
        .head
        .last_trace()
        .expect("traced run retains its span tree")
        .span_count();
    let overhead = t_on.as_secs_f64() / t_off.as_secs_f64().max(1e-9) - 1.0;

    println!("{:<16} {:>10} {:>12}", "tracing", "rows", "time");
    println!("{:<16} {rows_off:>10} {t_off:>12.2?}", "off");
    println!("{:<16} {rows_on:>10} {t_on:>12.2?}", "on");
    println!(
        "→ tracing adds {:.1}% wall time ({spans} spans per query).",
        overhead * 100.0
    );
    assert!(
        overhead < 0.05,
        "tracing overhead must stay under 5%: {:.1}%",
        overhead * 100.0
    );

    // Hand-formatted JSON: the offline serde shim is marker-only.
    let json = format!(
        "{{\n  \"experiment\": \"trace_overhead\",\n  \"query\": \"{sql}\",\n  \
         \"members\": {members},\n  \"rows\": {rows_off},\n  \
         \"trace_off_ms\": {:.3},\n  \"trace_on_ms\": {:.3},\n  \
         \"overhead_pct\": {:.2},\n  \"spans\": {spans}\n}}\n",
        t_off.as_secs_f64() * 1e3,
        t_on.as_secs_f64() * 1e3,
        overhead * 100.0,
    );
    std::fs::write("BENCH_trace_overhead.json", json).expect("write BENCH json");
    println!("→ wrote BENCH_trace_overhead.json");
}

fn e15_events_overhead() {
    header("E15 — wait accounting + event bus overhead on the E12 federation scan");
    let scale = TpchScale {
        nations: 10,
        customers: 300,
        suppliers: 50,
        orders: 2000,
        lineitems_per_order: 3,
    };
    let members = 4usize;
    let fed = remote_dpv_federation(scale, members, NetworkConfig::wan_timed());
    let sql = "SELECT l_orderkey, l_linenumber, l_quantity FROM lineitem_all";

    // Wait accounting is always on; the measured delta is the event bus
    // (per-statement scope hook, attr formatting, ring publication) on top
    // of it. Best of three per configuration, as in E12/E14: WAN sleeps
    // dominate, so the minimum is the stable wall-clock figure.
    let measure = |events: EventConfig| {
        fed.head.set_event_config(events);
        warm(&fed.head, sql);
        let mut best: Option<(usize, std::time::Duration)> = None;
        for _ in 0..3 {
            reset_links(&fed.links);
            let (r, t) = timed(|| fed.head.query(sql).unwrap());
            if best.is_none_or(|(_, b)| t < b) {
                best = Some((r.len(), t));
            }
        }
        best.expect("measured")
    };

    let (rows_off, t_off) = measure(EventConfig::disabled());
    let (rows_on, t_on) = measure(EventConfig::all());
    assert_eq!(rows_off, rows_on, "instrumentation must not change results");
    let events = fed.head.recent_events().len();
    assert!(events > 0, "armed runs publish events");
    let waits = fed.head.wait_stats();
    let wait_classes = waits.nonzero().len();
    assert!(
        waits.get(WaitClass::NetworkIo).count > 0,
        "the WAN scan must account NETWORK_IO waits"
    );
    let overhead = t_on.as_secs_f64() / t_off.as_secs_f64().max(1e-9) - 1.0;

    println!("{:<16} {:>10} {:>12}", "events", "rows", "time");
    println!("{:<16} {rows_off:>10} {t_off:>12.2?}", "off");
    println!("{:<16} {rows_on:>10} {t_on:>12.2?}", "on");
    println!(
        "→ events+waits add {:.1}% wall time ({events} events retained, \
         {wait_classes} wait classes nonzero).",
        overhead * 100.0
    );
    assert!(
        overhead < 0.05,
        "events+waits overhead must stay under 5%: {:.1}%",
        overhead * 100.0
    );

    // Hand-formatted JSON: the offline serde shim is marker-only.
    let json = format!(
        "{{\n  \"experiment\": \"events_overhead\",\n  \"query\": \"{sql}\",\n  \
         \"members\": {members},\n  \"rows\": {rows_off},\n  \
         \"events_off_ms\": {:.3},\n  \"events_on_ms\": {:.3},\n  \
         \"overhead_pct\": {:.2},\n  \"events_retained\": {events},\n  \
         \"wait_classes_nonzero\": {wait_classes}\n}}\n",
        t_off.as_secs_f64() * 1e3,
        t_on.as_secs_f64() * 1e3,
        overhead * 100.0,
    );
    std::fs::write("BENCH_events_overhead.json", json).expect("write BENCH json");
    println!("→ wrote BENCH_events_overhead.json");
}

fn e16_batch_federation() {
    header("E16 — batched row shipping: K-row round trips vs per-row pulls over WAN links");
    let scale = TpchScale {
        nations: 10,
        customers: 300,
        suppliers: 50,
        orders: 5000,
        lineitems_per_order: 3,
    };
    let members = 4usize;
    let fed = remote_dpv_federation(scale, members, NetworkConfig::wan_timed());
    let sql = "SELECT l_orderkey, l_linenumber, l_quantity FROM lineitem_all";

    // Best of three per configuration: per-row link sleeps dominate the row
    // mode, so the minimum is the stable wall-clock figure.
    let measure = |batch: BatchConfig, parallel: ParallelConfig| {
        fed.head.set_batch_config(batch);
        fed.head.set_parallel_config(parallel);
        warm(&fed.head, sql);
        let mut best: Option<(usize, std::time::Duration)> = None;
        for _ in 0..3 {
            reset_links(&fed.links);
            let (r, t) = timed(|| fed.head.query(sql).unwrap());
            if best.is_none_or(|(_, b)| t < b) {
                best = Some((r.len(), t));
            }
        }
        let (rows, t) = best.expect("measured");
        (rows, t, total_traffic(&fed.links))
    };

    let legs = [
        (
            "row serial",
            BatchConfig::row_at_a_time(),
            ParallelConfig::serial(),
        ),
        (
            "batch serial",
            BatchConfig::batched(1024),
            ParallelConfig::serial(),
        ),
        (
            "row parallel",
            BatchConfig::row_at_a_time(),
            ParallelConfig::parallel(),
        ),
        (
            "batch parallel",
            BatchConfig::batched(1024),
            ParallelConfig::parallel(),
        ),
    ];
    let mut measured = Vec::new();
    println!(
        "{:<16} {:>10} {:>14} {:>12} {:>12} {:>10}",
        "mode", "rows", "rows shipped", "bytes", "round trips", "time"
    );
    for (name, batch, parallel) in legs {
        let (rows, t, tr) = measure(batch, parallel);
        println!(
            "{name:<16} {rows:>10} {:>14} {:>12} {:>12} {t:>10.2?}",
            tr.rows, tr.bytes, tr.batches
        );
        measured.push((name, rows, t, tr));
    }
    // Batching must change round trips, never what crosses the wire.
    for w in measured.windows(2) {
        assert_eq!(w[0].1, w[1].1, "result cardinality diverged");
        assert_eq!(
            (w[0].3.rows, w[0].3.bytes),
            (w[1].3.rows, w[1].3.bytes),
            "batching changed per-link traffic totals"
        );
    }
    let serial_speedup = measured[0].2.as_secs_f64() / measured[1].2.as_secs_f64().max(1e-9);
    let parallel_speedup = measured[2].2.as_secs_f64() / measured[3].2.as_secs_f64().max(1e-9);
    let trips_row = measured[0].3.batches;
    let trips_batch = measured[1].3.batches;
    println!(
        "→ batching collapses {trips_row} round trips to {trips_batch}; \
         {serial_speedup:.1}x faster serial, {parallel_speedup:.1}x faster parallel."
    );
    assert!(
        serial_speedup >= 2.0,
        "batched shipping must be at least 2x on WAN-latency-dominated scans \
         (got {serial_speedup:.2}x)"
    );

    // Hand-formatted JSON: the offline serde shim is marker-only.
    let json = format!(
        "{{\n  \"experiment\": \"batch_federation\",\n  \"query\": \"{sql}\",\n  \
         \"members\": {members},\n  \"batch_size\": 1024,\n  \"rows\": {},\n  \
         \"row_serial_ms\": {:.3},\n  \"batch_serial_ms\": {:.3},\n  \
         \"row_parallel_ms\": {:.3},\n  \"batch_parallel_ms\": {:.3},\n  \
         \"serial_speedup\": {serial_speedup:.2},\n  \"parallel_speedup\": {parallel_speedup:.2},\n  \
         \"row_traffic\": {{ \"requests\": {}, \"rows\": {}, \"bytes\": {}, \"round_trips\": {} }},\n  \
         \"batch_traffic\": {{ \"requests\": {}, \"rows\": {}, \"bytes\": {}, \"round_trips\": {} }}\n}}\n",
        measured[0].1,
        measured[0].2.as_secs_f64() * 1e3,
        measured[1].2.as_secs_f64() * 1e3,
        measured[2].2.as_secs_f64() * 1e3,
        measured[3].2.as_secs_f64() * 1e3,
        measured[0].3.requests,
        measured[0].3.rows,
        measured[0].3.bytes,
        measured[0].3.batches,
        measured[1].3.requests,
        measured[1].3.rows,
        measured[1].3.bytes,
        measured[1].3.batches,
    );
    std::fs::write("BENCH_batch_federation.json", json).expect("write BENCH json");
    println!("→ wrote BENCH_batch_federation.json");
}

fn e17_degraded_federation() {
    header("E17 — degraded federation: breaker fail-fast and plan-around-failure vs retry burn");
    let scale = TpchScale {
        nations: 10,
        customers: 100,
        suppliers: 20,
        orders: 2000,
        lineitems_per_order: 3,
    };
    let sql = "SELECT l_orderkey, l_linenumber, l_quantity FROM lineitem_all";
    // A deliberately expensive retry budget: 4 attempts, 25→100 ms backoff
    // (~175 ms of sleeping per give-up) — the cost a breaker must amortize.
    let retry = RetryPolicy {
        max_attempts: 4,
        base_backoff: std::time::Duration::from_millis(25),
        max_backoff: std::time::Duration::from_millis(100),
        attempt_deadline: None,
        query_deadline: None,
    };
    let best_of = |f: &mut dyn FnMut() -> usize| {
        let mut best: Option<(usize, std::time::Duration)> = None;
        for _ in 0..3 {
            let (rows, t) = timed(&mut *f);
            if best.is_none_or(|(_, b)| t < b) {
                best = Some((rows, t));
            }
        }
        best.expect("measured")
    };

    // Reference: the same data spread over three healthy members — what a
    // federation that simply never had the dead member would cost.
    let base = remote_dpv_federation(scale, 3, NetworkConfig::lan_timed());
    base.head.set_retry_policy(retry.clone());
    warm(&base.head, sql);
    let (rows_total, t_base) = best_of(&mut || base.head.query(sql).unwrap().len());

    // Four members, member2 permanently dead. Leg 1: breakers disabled —
    // every query burns the full retry budget before failing (pre-PR-8).
    let dead = |i: usize| (i == 1).then(|| FaultConfig::dead(17));
    let burn = remote_dpv_federation_with_faults(scale, 4, NetworkConfig::lan_timed(), dead);
    burn.head.set_retry_policy(retry.clone());
    burn.head.set_breaker_config(BreakerConfig::disabled());
    burn.head.set_degraded_mode(DegradedMode::Fail);
    let _ = burn.head.query(sql); // warm metadata (and fail once)
    let (_, t_burn) = best_of(&mut || {
        burn.head.query(sql).expect_err("dead member must fail");
        0
    });

    // Leg 2: breaker armed (huge cooldown so no probe pollutes the
    // measurement) — after one trip, failures are wire-free rejections.
    let fed = remote_dpv_federation_with_faults(scale, 4, NetworkConfig::lan_timed(), dead);
    fed.head.set_retry_policy(retry);
    fed.head.set_breaker_config(BreakerConfig {
        cooldown: 1_000_000,
        ..BreakerConfig::standard()
    });
    fed.head.set_degraded_mode(DegradedMode::Fail);
    let _ = fed.head.query(sql); // trip the breaker (full budget, once)
    let (_, t_fast) = best_of(&mut || {
        fed.head.query(sql).expect_err("breaker must reject");
        0
    });

    // Leg 3: same tripped federation, prune policy — the query succeeds
    // from the three survivors instead of failing at all.
    fed.head.set_degraded_mode(DegradedMode::Prune);
    let (rows_pruned, t_prune) = best_of(&mut || fed.head.query(sql).unwrap().len());

    let speedup = t_burn.as_secs_f64() / t_fast.as_secs_f64().max(1e-9);
    println!("{:<28} {:>8} {:>12}", "leg", "rows", "time");
    println!(
        "{:<28} {rows_total:>8} {t_base:>12.2?}",
        "3-member baseline"
    );
    println!(
        "{:<28} {:>8} {t_burn:>12.2?}",
        "dead member, retry burn", "err"
    );
    println!(
        "{:<28} {:>8} {t_fast:>12.2?}",
        "dead member, fail-fast", "err"
    );
    println!(
        "{:<28} {rows_pruned:>8} {t_prune:>12.2?}",
        "dead member, prune"
    );
    println!(
        "→ breaker fail-fast is {speedup:.0}x faster than burning the retry budget; \
         prune answers {rows_pruned}/{rows_total} rows at {t_prune:.2?} vs the \
         {t_base:.2?} three-member baseline."
    );
    assert!(
        speedup >= 5.0,
        "fail-fast must beat the retry burn by at least 5x (got {speedup:.1}x)"
    );
    assert!(
        rows_pruned > 0 && rows_pruned < rows_total,
        "prune must answer from the survivors only ({rows_pruned}/{rows_total})"
    );
    assert_eq!(
        fed.head
            .link_health()
            .iter()
            .filter(|l| l.server == "member2")
            .count(),
        1
    );
    assert!(
        t_prune < t_burn,
        "a degraded answer must not cost more than a burned failure"
    );

    // Hand-formatted JSON: the offline serde shim is marker-only.
    let json = format!(
        "{{\n  \"experiment\": \"degraded_federation\",\n  \"query\": \"{sql}\",\n  \
         \"members\": 4,\n  \"dead_member\": \"member2\",\n  \
         \"baseline3_ms\": {:.3},\n  \"retry_burn_ms\": {:.3},\n  \
         \"fail_fast_ms\": {:.3},\n  \"prune_ms\": {:.3},\n  \
         \"fail_fast_speedup\": {speedup:.1},\n  \
         \"rows_total\": {rows_total},\n  \"rows_pruned_leg\": {rows_pruned}\n}}\n",
        t_base.as_secs_f64() * 1e3,
        t_burn.as_secs_f64() * 1e3,
        t_fast.as_secs_f64() * 1e3,
        t_prune.as_secs_f64() * 1e3,
    );
    std::fs::write("BENCH_degraded_federation.json", json).expect("write BENCH json");
    println!("→ wrote BENCH_degraded_federation.json");
}

fn e18_semijoin() {
    header("E18 — semi-join reduction: ship the build keys, fetch only matching rows");
    let (fact_rows, fact_ndv) = (2400i64, 200i64);
    let max_keys = Engine::new("probe-config")
        .optimizer_config()
        .semijoin_max_keys;
    println!(
        "fact: {fact_rows} rows over {fact_ndv} keys on member1; \
         DHQP_SEMIJOIN_MAX_KEYS={max_keys}"
    );
    println!(
        "{:<12} {:<16} {:>12} {:>12} {:>10} {:>10}",
        "build keys", "plan", "bytes on", "bytes off", "reduction", "time on"
    );

    // One leg: the fixture at `keys` build cardinality with the reduction
    // rule forced on or off, returning (result rows, per-link traffic, time).
    let leg = |keys: i64, enabled: bool| {
        let fx = semijoin_fixture(keys, fact_rows, fact_ndv, NetworkConfig::lan());
        let mut config = fx.head.optimizer_config();
        config.enable_semijoin = enabled;
        fx.head.set_optimizer_config(config);
        let plan = fx.head.explain(SEMIJOIN_SQL).unwrap().plan_text;
        warm(&fx.head, SEMIJOIN_SQL);
        fx.link.reset();
        let (r, t) = timed(|| fx.head.query(SEMIJOIN_SQL).unwrap());
        (r.len(), fx.link.snapshot(), t, plan)
    };

    // Sweep the build cardinality across the IN-list splice threshold: the
    // last point (200 keys = every probe key) must flip the plan choice.
    let mut sweep = Vec::new();
    for keys in [4i64, 16, 64, 200] {
        let (rows_on, on, t_on, plan) = leg(keys, true);
        let (rows_off, off, _t_off, _) = leg(keys, false);
        assert_eq!(rows_on, rows_off, "reduction changed the answer");
        let reduced = plan.contains("SemiJoinReduce");
        let factor = off.bytes as f64 / on.bytes.max(1) as f64;
        println!(
            "{keys:<12} {:<16} {:>12} {:>12} {factor:>9.1}x {t_on:>10.2?}",
            if reduced {
                "SemiJoinReduce"
            } else {
                "RemoteQuery"
            },
            on.bytes,
            off.bytes,
        );
        sweep.push((keys, reduced, on, off, factor));
    }

    // At the very smallest build side the *unreduced* optimizer already
    // ships the build rows to the member and joins remotely, so the two
    // legs tie; the reduction's headline win is the small-but-not-tiny
    // band where the baseline falls back to fetching the whole fact side.
    let small = sweep
        .iter()
        .filter(|s| s.1)
        .max_by(|a, b| a.4.total_cmp(&b.4))
        .expect("at least one reduced sweep point");
    assert!(
        small.4 >= 2.0,
        "a {}-key build side must cut link bytes at least 2x (got {:.2}x)",
        small.0,
        small.4
    );
    assert!(
        small.2.rows < small.3.rows,
        "the reduced fetch must return fewer rows ({} vs {})",
        small.2.rows,
        small.3.rows
    );
    let last = sweep.last().unwrap();
    assert!(
        last.0 > max_keys as i64 && !last.1,
        "past max_keys={max_keys} the optimizer must abandon the reduction \
         ({} keys chose reduced={})",
        last.0,
        last.1
    );
    println!(
        "→ {} build keys ship {:.1}x fewer bytes; at {} keys (> max_keys={max_keys}) \
         the plan flips back to the unreduced fetch.",
        small.0, small.4, last.0
    );

    // Hand-formatted JSON: the offline serde shim is marker-only.
    let mut points = String::new();
    for (i, (keys, reduced, on, off, factor)) in sweep.iter().enumerate() {
        if i > 0 {
            points.push_str(",\n");
        }
        points.push_str(&format!(
            "    {{ \"build_keys\": {keys}, \"reduced\": {reduced}, \
             \"bytes_on\": {}, \"bytes_off\": {}, \
             \"rows_on\": {}, \"rows_off\": {}, \"byte_reduction\": {factor:.2} }}",
            on.bytes, off.bytes, on.rows, off.rows
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"semijoin\",\n  \"query\": \"{SEMIJOIN_SQL}\",\n  \
         \"fact_rows\": {fact_rows},\n  \"fact_ndv\": {fact_ndv},\n  \
         \"max_keys\": {max_keys},\n  \"sweep\": [\n{points}\n  ]\n}}\n"
    );
    std::fs::write("BENCH_semijoin.json", json).expect("write BENCH json");
    println!("→ wrote BENCH_semijoin.json");
}

fn e19_query_store() {
    header("E19 — query store: observation overhead and cardinality feedback");

    // (a) Observation overhead on the E12 federation scan, same protocol
    // as E14/E15: the store + feedback loop attach a runtime-stats
    // collector to every execution, and that must stay under the 5% gate.
    let scale = TpchScale {
        nations: 10,
        customers: 300,
        suppliers: 50,
        orders: 2000,
        lineitems_per_order: 3,
    };
    let members = 4usize;
    let fed = remote_dpv_federation(scale, members, NetworkConfig::wan_timed());
    let sql = "SELECT l_orderkey, l_linenumber, l_quantity FROM lineitem_all";
    let measure = |armed: bool| {
        fed.head.set_query_store_enabled(armed);
        fed.head.set_card_feedback(armed);
        warm(&fed.head, sql);
        let mut best: Option<(usize, std::time::Duration)> = None;
        for _ in 0..3 {
            reset_links(&fed.links);
            let (r, t) = timed(|| fed.head.query(sql).unwrap());
            if best.is_none_or(|(_, b)| t < b) {
                best = Some((r.len(), t));
            }
        }
        best.expect("measured")
    };
    let (rows_off, t_off) = measure(false);
    let (rows_on, t_on) = measure(true);
    assert_eq!(rows_off, rows_on, "observation must not change results");
    let overhead = t_on.as_secs_f64() / t_off.as_secs_f64().max(1e-9) - 1.0;
    println!("{:<16} {:>10} {:>12}", "query store", "rows", "time");
    println!("{:<16} {rows_off:>10} {t_off:>12.2?}", "off");
    println!("{:<16} {rows_on:>10} {t_on:>12.2?}", "on+feedback");
    println!("→ observation adds {:.1}% wall time.", overhead * 100.0);
    assert!(
        overhead < 0.05,
        "query store overhead must stay under 5%: {:.1}%",
        overhead * 100.0
    );

    // (b) The feedback crossover: a remote fact cached at 12 rows grows
    // 210x behind the statistics TTL. One skewed execution books the
    // est-vs-actual ratio, feeds the observed cardinality back, and the
    // recompilation flips to the semi-join reduction.
    let head = Engine::new("e19-head");
    head.storage()
        .create_table(TableDef::new(
            "dim",
            Schema::new(vec![
                Column::not_null("id", DataType::Int),
                Column::new("tag", DataType::Str),
            ]),
        ))
        .unwrap();
    let dim_rows: Vec<Row> = (1..=24)
        .map(|id| Row::new(vec![Value::Int(id), Value::Str(format!("d{id}"))]))
        .collect();
    head.storage().insert_rows("dim", &dim_rows).unwrap();
    head.storage().analyze("dim", 8).unwrap();
    let member = Engine::new("e19-member1");
    member
        .storage()
        .create_table(TableDef::new(
            "fact",
            Schema::new(vec![
                Column::not_null("id", DataType::Int),
                Column::new("val", DataType::Str),
            ]),
        ))
        .unwrap();
    let fact_row = |id: i64, i: usize| {
        Row::new(vec![
            Value::Int(id),
            Value::Str(format!("payload-{i:04}-{}", "x".repeat(96))),
        ])
    };
    let seed: Vec<Row> = (0..12).map(|i| fact_row(i as i64 + 1, i)).collect();
    member.storage().insert_rows("fact", &seed).unwrap();
    let link = NetworkLink::new("member1", NetworkConfig::lan());
    head.add_linked_server(
        "member1",
        Arc::new(NetworkedDataSource::reliable(
            Arc::new(EngineDataSource::new(member.clone())),
            link.clone(),
        )),
    )
    .unwrap();
    head.set_query_store_enabled(true);
    head.set_card_feedback(true);
    let join = "SELECT d.id, f.val FROM dim d JOIN member1.db.dbo.fact f ON d.id = f.id";

    head.query(join).unwrap(); // caches cardinality 12
    let extra: Vec<Row> = (0..2508)
        .map(|i| fact_row(((12 + i) % 840) as i64 + 1, i + 12))
        .collect();
    member.storage().insert_rows("fact", &extra).unwrap();

    link.reset();
    head.query(join).unwrap(); // stale plan ships everything
    let stale = link.snapshot();
    link.reset();
    head.query(join).unwrap(); // fed-back recompile ships the reduction
    let corrected = link.snapshot();

    let queries = head.query_store_queries();
    let q = queries
        .iter()
        .find(|q| q.template.contains("fact"))
        .expect("join fingerprint");
    let skew = q.plans.iter().map(|p| p.max_skew()).fold(0.0f64, f64::max);
    let flipped = q
        .plans
        .iter()
        .any(|p| p.plan_text.contains("SemiJoinReduce"));
    let factor = stale.bytes as f64 / corrected.bytes.max(1) as f64;
    println!(
        "{:<20} {:>12} {:>10}",
        "execution", "link bytes", "link rows"
    );
    println!(
        "{:<20} {:>12} {:>10}",
        "stale plan", stale.bytes, stale.rows
    );
    println!(
        "{:<20} {:>12} {:>10}",
        "after feedback", corrected.bytes, corrected.rows
    );
    println!(
        "→ {skew:.0}x skew booked; feedback recompile ships {factor:.1}x fewer bytes \
         (plan flipped to SemiJoinReduce: {flipped})."
    );
    assert!(skew >= 10.0, "E19 needs a ≥10x skew, got {skew:.1}x");
    assert!(flipped, "feedback must flip the plan to the reduction");
    assert!(
        factor >= 2.0,
        "feedback must cut link bytes at least 2x, got {factor:.2}x"
    );
    assert_eq!(
        head.metrics().card_feedback_applied,
        1,
        "exactly one writeback"
    );

    // Hand-formatted JSON: the offline serde shim is marker-only.
    let json = format!(
        "{{\n  \"experiment\": \"query_store\",\n  \"scan_query\": \"{sql}\",\n  \
         \"members\": {members},\n  \"rows\": {rows_off},\n  \
         \"store_off_ms\": {:.3},\n  \"store_on_ms\": {:.3},\n  \
         \"overhead_pct\": {:.2},\n  \"feedback_query\": \"{join}\",\n  \
         \"skew\": {skew:.1},\n  \"bytes_stale\": {},\n  \
         \"bytes_corrected\": {},\n  \"byte_reduction\": {factor:.2},\n  \
         \"plan_flipped\": {flipped}\n}}\n",
        t_off.as_secs_f64() * 1e3,
        t_on.as_secs_f64() * 1e3,
        overhead * 100.0,
        stale.bytes,
        corrected.bytes,
    );
    std::fs::write("BENCH_query_store.json", json).expect("write BENCH json");
    println!("→ wrote BENCH_query_store.json");
}

fn main() {
    println!("dhqp experiment report — regenerates every paper table/figure reproduction");
    println!("(one execution per configuration; see `cargo bench` for statistical timing)");
    let filter = std::env::args().nth(1);
    let experiments: [(&str, fn()); 19] = [
        ("e1", e1_figure4),
        ("e2", e2_table1),
        ("e3", e3_table2),
        ("e4", e4_fulltext),
        ("e5", e5_email),
        ("e6", e6_dpv),
        ("e7", e7_stats),
        ("e8", e8_spool),
        ("e9", e9_phases),
        ("e10", e10_access_paths),
        ("e11", e11_federation),
        ("e12", e12_parallel),
        ("e13", e13_plan_cache),
        ("e14", e14_trace_overhead),
        ("e15", e15_events_overhead),
        ("e16", e16_batch_federation),
        ("e17", e17_degraded_federation),
        ("e18", e18_semijoin),
        ("e19", e19_query_store),
    ];
    for (name, run) in experiments {
        if filter.as_deref().is_none_or(|f| f == name) {
            run();
        }
    }
    println!("\ndone.");
}
