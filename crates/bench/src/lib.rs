//! Shared experiment fixtures for the benchmark suite and the `report`
//! binary.
//!
//! Every table and figure of the paper maps to one module here (see
//! DESIGN.md's per-experiment index); the Criterion benches in `benches/`
//! time the fixtures, and `src/bin/report.rs` prints the paper-shaped rows
//! recorded in EXPERIMENTS.md.

use dhqp::{Engine, EngineDataSource};
use dhqp_netsim::{FaultConfig, NetworkConfig, NetworkLink, NetworkedDataSource, TrafficSnapshot};
use dhqp_types::IntervalSet;
use dhqp_workload::tpch::{self, TpchScale};
use std::sync::Arc;

/// The paper's Example 1 layout: `customer`/`supplier` on one remote
/// server, `nation` local.
pub struct Example1 {
    pub local: Engine,
    pub link: NetworkLink,
}

/// Example 1's query text (four-part names, §2.1).
pub const EXAMPLE1_SQL: &str = "SELECT c.c_name, c.c_address, c.c_phone \
     FROM remote0.tpch10g.dbo.customer c, remote0.tpch10g.dbo.supplier s, nation n \
     WHERE c.c_nationkey = n.n_nationkey AND n.n_nationkey = s.s_nationkey";

/// The pass-through statement forcing Figure 4's plan (a).
pub const EXAMPLE1_PLAN_A_SQL: &str = "SELECT j.c_name, j.c_address, j.c_phone FROM \
     OPENQUERY(remote0, 'SELECT c.c_name, c.c_address, c.c_phone, c.c_nationkey \
      FROM customer c, supplier s WHERE c.c_nationkey = s.s_nationkey') j, nation n \
     WHERE j.c_nationkey = n.n_nationkey";

/// Build the Example 1 federation. `timed` turns on link latency/bandwidth
/// simulation so wall-clock measurements include network time.
pub fn example1(scale: TpchScale, timed: bool) -> Example1 {
    let remote = Engine::new("remote0-engine");
    {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        tpch::create_customer(remote.storage(), &scale, &mut rng).expect("setup");
        tpch::create_supplier(remote.storage(), &scale, &mut rng).expect("setup");
        remote.storage().analyze("customer", 24).expect("setup");
        remote.storage().analyze("supplier", 24).expect("setup");
    }
    let local = Engine::new("local");
    tpch::create_nation(local.storage(), &scale).expect("setup");
    local.analyze("nation", 8).expect("setup");
    let config = if timed {
        NetworkConfig::lan_timed()
    } else {
        NetworkConfig::lan()
    };
    let link = NetworkLink::new("link-remote0", config);
    local
        .add_linked_server(
            "remote0",
            Arc::new(NetworkedDataSource::new(
                Arc::new(EngineDataSource::new(remote)),
                link.clone(),
            )),
        )
        .expect("setup");
    Example1 { local, link }
}

/// A federation head with the seven-year `lineitem_all` DPV spread over
/// `member_count` engines (§4.1.5).
pub struct DpvFederation {
    pub head: Engine,
    pub members: Vec<Engine>,
    pub links: Vec<NetworkLink>,
}

pub fn dpv_federation(scale: TpchScale, member_engines: usize, timed: bool) -> DpvFederation {
    assert!(member_engines >= 1);
    let head = Engine::new("head");
    let members: Vec<Engine> = (0..member_engines)
        .map(|i| Engine::new(format!("member{}-engine", i + 1)))
        .collect();
    let mut engine_refs = vec![head.storage().as_ref()];
    engine_refs.extend(members.iter().map(|m| m.storage().as_ref()));
    let placed = tpch::create_lineitem_partitions(&engine_refs, &scale, 17).expect("setup");
    let config = if timed {
        NetworkConfig::lan_timed()
    } else {
        NetworkConfig::lan()
    };
    let mut links = Vec::new();
    for (i, member) in members.iter().enumerate() {
        let link = NetworkLink::new(format!("member{}", i + 1), config);
        head.add_linked_server(
            &format!("member{}", i + 1),
            Arc::new(NetworkedDataSource::new(
                Arc::new(EngineDataSource::new(member.clone())),
                link.clone(),
            )),
        )
        .expect("setup");
        links.push(link);
    }
    let view_members: Vec<(Option<String>, String, IntervalSet)> = placed
        .into_iter()
        .map(|(idx, table, domain)| {
            (
                if idx == 0 {
                    None
                } else {
                    Some(format!("member{idx}"))
                },
                table,
                domain,
            )
        })
        .collect();
    head.define_partitioned_view("lineitem_all", "l_commitdate", view_members)
        .expect("setup");
    DpvFederation {
        head,
        members,
        links,
    }
}

/// Like [`dpv_federation`] but every partition lives on a member engine —
/// the head owns no lineitem data, so a full view scan is pure remote
/// dispatch — and the link parameters are the caller's (the parallel
/// exchange experiments use WAN-class links so network time dominates).
pub fn remote_dpv_federation(
    scale: TpchScale,
    member_engines: usize,
    config: NetworkConfig,
) -> DpvFederation {
    remote_dpv_federation_with_faults(scale, member_engines, config, |_| None)
}

/// Like [`remote_dpv_federation`], but each member's link can be armed
/// with a seeded fault plan — the degraded-federation experiments kill
/// one member this way.
pub fn remote_dpv_federation_with_faults(
    scale: TpchScale,
    member_engines: usize,
    config: NetworkConfig,
    fault: impl Fn(usize) -> Option<FaultConfig>,
) -> DpvFederation {
    assert!(member_engines >= 1);
    let head = Engine::new("head");
    let members: Vec<Engine> = (0..member_engines)
        .map(|i| Engine::new(format!("member{}-engine", i + 1)))
        .collect();
    let engine_refs: Vec<&dhqp_storage::StorageEngine> =
        members.iter().map(|m| m.storage().as_ref()).collect();
    let placed = tpch::create_lineitem_partitions(&engine_refs, &scale, 17).expect("setup");
    let mut links = Vec::new();
    for (i, member) in members.iter().enumerate() {
        let link = NetworkLink::new(format!("member{}", i + 1), config);
        let inner: Arc<dyn dhqp_oledb::DataSource> =
            Arc::new(EngineDataSource::new(member.clone()));
        let wrapped = match fault(i) {
            Some(cfg) => NetworkedDataSource::with_faults(inner, link.clone(), cfg),
            None => NetworkedDataSource::new(inner, link.clone()),
        };
        head.add_linked_server(&format!("member{}", i + 1), Arc::new(wrapped))
            .expect("setup");
        links.push(link);
    }
    let view_members: Vec<(Option<String>, String, IntervalSet)> = placed
        .into_iter()
        .map(|(idx, table, domain)| (Some(format!("member{}", idx + 1)), table, domain))
        .collect();
    head.define_partitioned_view("lineitem_all", "l_commitdate", view_members)
        .expect("setup");
    DpvFederation {
        head,
        members,
        links,
    }
}

/// The semi-join reduction fixture (§4.1.5 byte minimization): a local
/// `dim` of `build_keys` distinct join keys in the head and a wide,
/// wholly-remote `fact` (`fact_rows` rows over `fact_ndv` distinct keys,
/// ~100-byte payloads) on `member1`. Both sides are ANALYZEd so the
/// optimizer's ndv estimates drive the reduce-vs-fetch decision.
pub struct SemiJoinFixture {
    pub head: Engine,
    pub link: NetworkLink,
}

/// The join every semi-join experiment ships.
pub const SEMIJOIN_SQL: &str =
    "SELECT d.id, f.val FROM dim d JOIN member1.db.dbo.fact f ON d.id = f.id";

pub fn semijoin_fixture(
    build_keys: i64,
    fact_rows: i64,
    fact_ndv: i64,
    config: NetworkConfig,
) -> SemiJoinFixture {
    use dhqp_storage::TableDef;
    use dhqp_types::{Column, DataType, Row, Schema, Value};
    let head = Engine::new("sj-head");
    head.create_table(TableDef::new(
        "dim",
        Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("tag", DataType::Str),
        ]),
    ))
    .expect("setup");
    let dim: Vec<Row> = (1..=build_keys)
        .map(|id| Row::new(vec![Value::Int(id), Value::Str(format!("d{id}"))]))
        .collect();
    head.storage().insert_rows("dim", &dim).expect("setup");
    head.storage().analyze("dim", 32).expect("setup");

    let member = Engine::new("sj-member1");
    member
        .create_table(TableDef::new(
            "fact",
            Schema::new(vec![
                Column::not_null("id", DataType::Int),
                Column::new("val", DataType::Str),
            ]),
        ))
        .expect("setup");
    let fact: Vec<Row> = (0..fact_rows)
        .map(|i| {
            Row::new(vec![
                Value::Int((i % fact_ndv) + 1),
                Value::Str(format!("payload-{i:05}-{}", "x".repeat(96))),
            ])
        })
        .collect();
    member.storage().insert_rows("fact", &fact).expect("setup");
    member.storage().analyze("fact", 32).expect("setup");

    let link = NetworkLink::new("member1", config);
    head.add_linked_server(
        "member1",
        Arc::new(NetworkedDataSource::new(
            Arc::new(EngineDataSource::new(member)),
            link.clone(),
        )),
    )
    .expect("setup");
    SemiJoinFixture { head, link }
}

/// Sum of traffic over several links.
pub fn total_traffic(links: &[NetworkLink]) -> TrafficSnapshot {
    links
        .iter()
        .map(|l| l.snapshot())
        .fold(TrafficSnapshot::default(), |a, b| a + b)
}

/// Reset a set of links.
pub fn reset_links(links: &[NetworkLink]) {
    for l in links {
        l.reset();
    }
}

/// Run a query once to warm metadata caches so measurements isolate the
/// per-query behaviour.
pub fn warm(engine: &Engine, sql: &str) {
    engine.query(sql).expect("warm-up query");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let ex1 = example1(TpchScale::tiny(), false);
        assert_eq!(ex1.local.query(EXAMPLE1_SQL).unwrap().schema.len(), 3);
        let fed = dpv_federation(TpchScale::tiny(), 2, false);
        assert!(!fed
            .head
            .query("SELECT COUNT(*) AS n FROM lineitem_all")
            .unwrap()
            .is_empty());
        assert_eq!(fed.links.len(), 2);
        reset_links(&fed.links);
        assert_eq!(total_traffic(&fed.links).bytes, 0);
    }
}
