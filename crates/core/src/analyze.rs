//! `EXPLAIN ANALYZE`: execute a plan with runtime statistics attached and
//! render the physical tree annotated with what actually happened —
//! actual vs estimated rows, rescans, per-operator wall time, and for
//! remote nodes the exact SQL shipped plus the requests/rows/bytes that
//! crossed the link.
//!
//! Node numbering follows the executor's pre-order ids (root = 0, each
//! child's id is its parent's id plus one plus the subtree sizes of its
//! earlier siblings), so runtime facts line up with the rendered tree even
//! for subtrees the nested-loop join re-opens per outer row.

use crate::result::QueryResult;
use crate::trace::QueryTrace;
use dhqp_executor::NodeRuntime;
use dhqp_oledb::WaitSnapshot;
use dhqp_optimizer::explain::ExplainPlan;
use dhqp_optimizer::{PhysNode, PhysicalOp};
use dhqp_types::{Column, DataType, Row, Schema, Value};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Everything `EXPLAIN ANALYZE` learned about one execution.
#[derive(Debug, Clone)]
pub struct AnalyzeReport {
    /// The query's own result (the rows the plain SELECT would return).
    pub result: QueryResult,
    /// The optimized physical plan that was executed.
    pub plan: PhysNode,
    /// Per-node runtime stats keyed by pre-order node id.
    pub runtime: HashMap<usize, NodeRuntime>,
    /// Optimizer-side telemetry for the same statement.
    pub explain: ExplainPlan,
    /// Plan-cache outcome: `Some(true)` served from cache, `Some(false)`
    /// compiled and inserted, `None` when the statement bypassed the cache.
    pub cache_hit: Option<bool>,
    /// Age of the oldest remote statistics bundle the plan was costed
    /// against (cache-path executions of remote-touching plans only).
    pub stats_age: Option<std::time::Duration>,
    /// The statement's span tree, when tracing was armed.
    pub trace: Option<Arc<QueryTrace>>,
    /// Per-query wait accounting: what this statement blocked on, by class.
    pub waits: Option<WaitSnapshot>,
    /// DPV members degraded mode pruned during this execution, sorted —
    /// rendered as the `-- [degraded: ...]` warning line.
    pub pruned: Vec<String>,
    /// DPV members runtime parameter pruning skipped at drive time (their
    /// startup predicate rejected the parameter values), sorted — rendered
    /// as the `-- [startup: ...]` line. Distinct from degraded pruning:
    /// these members were healthy, just provably irrelevant.
    pub startup_pruned: Vec<String>,
    /// Whether the compile consulted cardinality-feedback-corrected
    /// statistics — rendered as the `-- [feedback: applied]` line.
    pub feedback: bool,
}

/// Adaptive duration formatting: µs below 1 ms, ms below 1 s, else s.
pub(crate) fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

impl AnalyzeReport {
    /// Runtime stats for the plan node with the given pre-order id.
    pub fn node(&self, id: usize) -> Option<&NodeRuntime> {
        self.runtime.get(&id)
    }

    /// Every remote node's runtime trace, in pre-order.
    pub fn remote_nodes(&self) -> Vec<(usize, &NodeRuntime)> {
        let mut ids: Vec<usize> = self
            .runtime
            .iter()
            .filter(|(_, rt)| rt.remote.is_some())
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        ids.into_iter().map(|id| (id, &self.runtime[&id])).collect()
    }

    /// The full human-readable report: annotated plan tree followed by the
    /// optimizer's search telemetry.
    pub fn render(&self) -> String {
        let mut out = String::new();
        render_node(&self.plan, 0, &self.runtime, 0, &mut out);
        if !self.pruned.is_empty() {
            let _ = writeln!(
                out,
                "-- [degraded: pruned members={}]",
                self.pruned.join(", ")
            );
        }
        if !self.startup_pruned.is_empty() {
            let _ = writeln!(
                out,
                "-- [startup: skipped members={}]",
                self.startup_pruned.join(", ")
            );
        }
        if let Some(hit) = self.cache_hit {
            let _ = write!(out, "-- [plan cache: {}]", if hit { "hit" } else { "miss" });
            if let Some(age) = self.stats_age {
                let _ = write!(out, " statistics age: {age:.2?}");
            }
            out.push('\n');
        }
        if self.feedback {
            out.push_str("-- [feedback: applied]\n");
        }
        let stats = &self.explain.stats;
        let _ = writeln!(
            out,
            "-- est_rows={:.0} est_cost={:.0} memo: {} groups / {} exprs, {} rules fired",
            self.explain.est_rows,
            self.explain.est_cost,
            stats.groups,
            stats.exprs,
            stats.rules_fired
        );
        for (phase, cost, dur) in &stats.phases {
            let _ = writeln!(
                out,
                "-- phase {}: best cost {:.0} in {:.2?}",
                phase.name(),
                cost,
                dur
            );
        }
        if stats.early_exit {
            out.push_str("-- early exit: phase threshold met\n");
        }
        if let Some(waits) = &self.waits {
            let nonzero = waits.nonzero();
            if !nonzero.is_empty() {
                out.push_str("-- [waits:");
                for (class, totals) in nonzero {
                    let _ = write!(
                        out,
                        " {}={}x/{}",
                        class.name(),
                        totals.count,
                        fmt_duration(Duration::from_micros(totals.total_us))
                    );
                }
                out.push_str("]\n");
            }
        }
        if let Some(trace) = &self.trace {
            out.push_str("-- trace:\n");
            for line in trace.render().lines() {
                let _ = writeln!(out, "--   {line}");
            }
        }
        out
    }

    /// The report as a one-column rowset, the shape `execute("EXPLAIN
    /// ANALYZE ...")` returns.
    pub fn to_query_result(&self) -> QueryResult {
        text_result(&self.render())
    }
}

/// A one-column `plan` rowset with one row per text line.
pub(crate) fn text_result(text: &str) -> QueryResult {
    QueryResult {
        schema: Schema::new(vec![Column::not_null("plan", DataType::Str)]),
        rows: text
            .lines()
            .map(|l| Row::new(vec![Value::Str(l.to_string())]))
            .collect(),
        rows_affected: None,
    }
}

fn render_node(
    node: &PhysNode,
    id: usize,
    runtime: &HashMap<usize, NodeRuntime>,
    depth: usize,
    out: &mut String,
) {
    let pad = "  ".repeat(depth);
    let label = node.describe();
    match runtime.get(&id) {
        Some(rt) => {
            let rescans = rt.opens.saturating_sub(1);
            // Self time: this node's cursor time minus its direct
            // children's (the executor's cumulative timings nest).
            let mut children_time = Duration::ZERO;
            let mut child_id = id + 1;
            for c in &node.children {
                if let Some(crt) = runtime.get(&child_id) {
                    children_time += crt.next_time;
                }
                child_id += c.subtree_size();
            }
            let cum = fmt_duration(rt.next_time);
            let own = fmt_duration(rt.next_time.saturating_sub(children_time));
            if matches!(node.op, PhysicalOp::StartupFilter { .. }) {
                // Startup filters pass rows through; estimates would just
                // repeat the child's.
                let _ = writeln!(
                    out,
                    "{pad}{label}  actual_rows={} rescans={rescans} time={cum} self={own}",
                    rt.rows
                );
            } else {
                // Skew: how far off the estimate was, per execution that
                // opened the node (rescans average out).
                let avg_rows = rt.rows as f64 / rt.opens.max(1) as f64;
                let skew = crate::query_store::skew_ratio(node.est_rows, avg_rows);
                let _ = writeln!(
                    out,
                    "{pad}{label}  est_rows={:.0} actual_rows={} skew={skew:.1}x rescans={rescans} time={cum} self={own}",
                    node.est_rows, rt.rows
                );
            }
            if rt.retries > 0 {
                let _ = writeln!(out, "{pad}    [retries={}]", rt.retries);
            }
            if let Some(ex) = &rt.exchange {
                let _ = writeln!(
                    out,
                    "{pad}    [exchange: workers={} busy={:.2?} wall={:.2?} overlap={:.2?}]",
                    ex.workers,
                    ex.busy,
                    ex.wall,
                    ex.overlap()
                );
            }
            if let Some(sj) = &rt.semijoin {
                let _ = writeln!(
                    out,
                    "{pad}    [semijoin: keys={} bytes={}{}]",
                    sj.keys,
                    sj.filter_bytes,
                    if sj.fallback { " fallback" } else { "" }
                );
            }
            if let Some(remote) = &rt.remote {
                let _ = writeln!(
                    out,
                    "{pad}    [wire @{}: requests={} rows={} bytes={}]",
                    remote.server,
                    remote.traffic.requests,
                    remote.traffic.rows,
                    remote.traffic.bytes
                );
                if let Some(avg) = remote.traffic.rows_per_round_trip() {
                    let _ = writeln!(out, "{pad}    [link batch: avg={avg:.1}]");
                }
                if let Some(l) = &remote.link_latency {
                    let _ = writeln!(
                        out,
                        "{pad}    [link latency: p50={} p95={} p99={} max={}]",
                        fmt_duration(Duration::from_micros(l.p50_us)),
                        fmt_duration(Duration::from_micros(l.p95_us)),
                        fmt_duration(Duration::from_micros(l.p99_us)),
                        fmt_duration(Duration::from_micros(l.max_us)),
                    );
                }
                let _ = writeln!(out, "{pad}    [shipped: {}]", remote.sql);
            }
        }
        // A subtree behind a failed startup filter (or a spool replay)
        // never opens.
        None => {
            let _ = writeln!(
                out,
                "{pad}{label}  est_rows={:.0} (never executed)",
                node.est_rows
            );
        }
    }
    let mut child_id = id + 1;
    for c in &node.children {
        render_node(c, child_id, runtime, depth + 1, out);
        child_id += c.subtree_size();
    }
}
