//! The binder/algebrizer: name resolution and AST → logical algebra.
//!
//! "At the beginning of optimization, both local and distributed queries
//! are algebrized in the same way" (§4.1.3): every FROM item — local table,
//! four-part linked-server name, partitioned view, OPENROWSET source —
//! becomes the same logical `Get`/`UnionAll`/`Values` operators, tagged
//! with locality through [`TableMeta`].
//!
//! Subquery handling follows §4.1.4: EXISTS / IN subqueries are unrolled
//! into semi/anti-joins here (the simplification-time transform); the
//! decoder later refuses to remote the semi-join shape, which is exactly
//! the paper's "no direct SQL corollary" situation.

use crate::engine::Engine;
use dhqp_executor::ops::retry::{open_with_retries, ReopenFactory};
use dhqp_executor::RetryPolicy;
use dhqp_oledb::{DataSource, Rowset, TableInfo};
use dhqp_optimizer::logical::{JoinKind, LogicalExpr, LogicalOp, TableMeta};
use dhqp_optimizer::props::{ColumnRegistry, PhysicalProps, RequiredProps};
use dhqp_optimizer::scalar::{AggCall, AggFunc, ArithOp, CmpOp, ScalarExpr};
use dhqp_optimizer::{ColumnId, Locality};
use dhqp_sqlfront as ast;
use dhqp_types::{DataType, DhqpError, Result, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A bound query block: tree, visible outputs, root ordering requirement.
type BoundBlock = (LogicalExpr, Vec<(String, ColumnId)>, RequiredProps);

/// A fully bound SELECT, ready for the optimizer.
pub struct BoundSelect {
    pub tree: LogicalExpr,
    /// The execution-time column registry snapshot.
    pub registry: ColumnRegistry,
    /// Visible output columns `(name, id)`, in SELECT-list order (hidden
    /// ORDER BY helper columns are appended after these in the plan).
    pub output: Vec<(String, ColumnId)>,
    /// Root ordering requirement from ORDER BY.
    pub required: RequiredProps,
    /// Partitioned-view members the query touches: `(view name, member
    /// index)` — consumed by delayed schema validation at execution.
    pub view_members: Vec<(String, usize)>,
    /// Lowercased linked-server names whose metadata this bind consulted —
    /// the plan cache keys invalidation on their epochs.
    pub dep_servers: Vec<String>,
    /// When the oldest remote metadata/statistics bundle used here was
    /// fetched (`None` for purely local binds).
    pub stats_as_of: Option<std::time::Instant>,
    /// Whether any consulted statistics bundle was written by the
    /// cardinality feedback loop — surfaced as `[feedback: applied]`.
    pub used_feedback: bool,
}

/// One name visible in a FROM scope.
#[derive(Clone)]
struct BoundColumn {
    name: String,
    id: ColumnId,
    #[allow(dead_code)] // kept for diagnostics and future type checking
    data_type: DataType,
}

/// One FROM-clause binding: alias → columns (+ the base-table metadata when
/// the binding is a plain table, needed by full-text rewriting).
#[derive(Clone)]
struct Binding {
    alias: String,
    columns: Vec<BoundColumn>,
    table: Option<Arc<TableMeta>>,
}

/// Lexical scope: bindings of the current SELECT plus an optional outer
/// scope for correlated subqueries.
struct Scope<'a> {
    bindings: Vec<Binding>,
    outer: Option<&'a Scope<'a>>,
}

impl<'a> Scope<'a> {
    fn resolve(&self, parts: &[String]) -> Result<&BoundColumn> {
        match parts {
            [col] => {
                let mut found: Option<&BoundColumn> = None;
                for b in &self.bindings {
                    if let Some(c) = b.columns.iter().find(|c| c.name.eq_ignore_ascii_case(col)) {
                        if found.is_some() {
                            return Err(DhqpError::Bind(format!("ambiguous column '{col}'")));
                        }
                        found = Some(c);
                    }
                }
                if let Some(c) = found {
                    return Ok(c);
                }
                if let Some(outer) = self.outer {
                    return outer.resolve(parts);
                }
                Err(DhqpError::Bind(format!("unknown column '{col}'")))
            }
            [alias, col] => {
                for b in &self.bindings {
                    if b.alias.eq_ignore_ascii_case(alias) {
                        return b
                            .columns
                            .iter()
                            .find(|c| c.name.eq_ignore_ascii_case(col))
                            .ok_or_else(|| {
                                DhqpError::Bind(format!("no column '{col}' in '{alias}'"))
                            });
                    }
                }
                if let Some(outer) = self.outer {
                    return outer.resolve(parts);
                }
                Err(DhqpError::Bind(format!("unknown table alias '{alias}'")))
            }
            other => Err(DhqpError::Bind(format!(
                "column references use 1 or 2 parts, got {}",
                other.len()
            ))),
        }
    }

    /// The base-table binding owning a column id, if any.
    fn table_of(&self, id: ColumnId) -> Option<&Binding> {
        self.bindings
            .iter()
            .find(|b| b.columns.iter().any(|c| c.id == id))
            .or_else(|| self.outer.and_then(|o| o.table_of(id)))
    }
}

/// The binder. One instance per top-level statement.
pub struct Binder<'e> {
    engine: &'e Engine,
    registry: ColumnRegistry,
    next_table_id: u32,
    params: &'e HashMap<String, Value>,
    view_members: Vec<(String, usize)>,
    dep_servers: Vec<String>,
    stats_as_of: Option<std::time::Instant>,
    used_feedback: bool,
}

impl<'e> Binder<'e> {
    pub fn new(engine: &'e Engine, params: &'e HashMap<String, Value>) -> Self {
        Binder {
            engine,
            registry: ColumnRegistry::new(),
            next_table_id: 0,
            params,
            view_members: Vec::new(),
            dep_servers: Vec::new(),
            stats_as_of: None,
            used_feedback: false,
        }
    }

    /// Record that this bind consulted a remote server's metadata (and,
    /// when known, how old the consulted bundle is).
    fn note_remote_dep(&mut self, server: &str, fetched_at: Option<std::time::Instant>) {
        let key = server.to_lowercase();
        if !self.dep_servers.contains(&key) {
            self.dep_servers.push(key);
        }
        if let Some(at) = fetched_at {
            self.stats_as_of = Some(match self.stats_as_of {
                Some(prev) => prev.min(at),
                None => at,
            });
        }
    }

    /// Snapshot of the registry built so far (DML paths).
    pub fn registry_snapshot(&self) -> ColumnRegistry {
        self.registry.clone()
    }

    /// Bind expressions with no table scope (INSERT ... VALUES).
    pub fn bind_standalone_exprs(&mut self, exprs: &[ast::Expr]) -> Result<Vec<ScalarExpr>> {
        let scope = Scope {
            bindings: vec![],
            outer: None,
        };
        exprs.iter().map(|e| self.bind_expr(e, &scope)).collect()
    }

    /// Fetch one table's metadata for DML binding.
    pub fn bind_dml_table(&mut self, server: Option<&str>, table: &str) -> Result<Arc<TableMeta>> {
        self.fetch_table_meta(server, table, table)
    }

    /// Bind an expression against one table's columns (DML WHERE/SET).
    pub fn bind_expr_in_table(
        &mut self,
        e: &ast::Expr,
        meta: &Arc<TableMeta>,
    ) -> Result<ScalarExpr> {
        let columns = meta
            .schema
            .columns()
            .iter()
            .zip(&meta.column_ids)
            .map(|(c, &id)| BoundColumn {
                name: c.name.clone(),
                id,
                data_type: c.data_type,
            })
            .collect();
        let binding = Binding {
            alias: meta.alias.clone(),
            columns,
            table: Some(Arc::clone(meta)),
        };
        let scope = Scope {
            bindings: vec![binding],
            outer: None,
        };
        self.bind_expr(e, &scope)
    }

    /// Bind a full SELECT statement.
    pub fn bind_select(mut self, stmt: &ast::SelectStmt) -> Result<BoundSelect> {
        let (tree, output, required) = self.bind_select_inner(stmt, None)?;
        Ok(BoundSelect {
            tree,
            registry: self.registry,
            output,
            required,
            view_members: self.view_members,
            dep_servers: self.dep_servers,
            stats_as_of: self.stats_as_of,
            used_feedback: self.used_feedback,
        })
    }

    fn bind_select_inner(
        &mut self,
        stmt: &ast::SelectStmt,
        outer: Option<&Scope<'_>>,
    ) -> Result<BoundBlock> {
        if !stmt.union_branches.is_empty() {
            return self.bind_union(stmt, outer);
        }
        if stmt.from.is_empty() {
            return self.bind_table_less_select(stmt);
        }
        // FROM: bind each item, cross-joining multiple entries.
        let mut tree: Option<LogicalExpr> = None;
        let mut bindings: Vec<Binding> = Vec::new();
        for item in &stmt.from {
            let (item_tree, item_bindings) = self.bind_table_ref(item, outer)?;
            tree = Some(match tree {
                None => item_tree,
                Some(t) => LogicalExpr::join(JoinKind::Cross, t, item_tree, None),
            });
            bindings.extend(item_bindings);
        }
        let mut tree = tree.expect("non-empty FROM");
        let scope = Scope { bindings, outer };

        // WHERE: conjunct-level dispatch (subqueries → semi/anti joins,
        // CONTAINS → full-text semi-join, everything else → filter).
        if let Some(where_clause) = &stmt.where_clause {
            let mut filters = Vec::new();
            for conj in where_clause.clone().split_conjuncts() {
                tree = self.bind_where_conjunct(conj, tree, &scope, &mut filters)?;
            }
            if let Some(p) = ScalarExpr::and(filters) {
                tree = tree.filter(p);
            }
        }

        // Aggregation.
        let has_aggs = stmt.projections.iter().any(|p| match p {
            ast::SelectItem::Expr { expr, .. } => contains_aggregate(expr),
            _ => false,
        }) || stmt.having.as_ref().is_some_and(contains_aggregate);
        let mut agg_outputs: Vec<(ast::Expr, ColumnId)> = Vec::new();
        let mut group_cols: Vec<ColumnId> = Vec::new();
        if !stmt.group_by.is_empty() || has_aggs {
            let (new_tree, groups, aggs) =
                self.bind_aggregate(stmt, tree, &scope, &mut agg_outputs)?;
            tree = new_tree;
            group_cols = groups;
            let _ = aggs;
            if let Some(having) = &stmt.having {
                let pred = self.bind_agg_expr(having, &scope, &group_cols, &agg_outputs)?;
                tree = tree.filter(pred);
            }
        }

        // Projections.
        let mut outputs: Vec<(ColumnId, ScalarExpr)> = Vec::new();
        let mut visible: Vec<(String, ColumnId)> = Vec::new();
        for item in &stmt.projections {
            match item {
                ast::SelectItem::Wildcard => {
                    for b in &scope.bindings {
                        for c in &b.columns {
                            outputs.push((c.id, ScalarExpr::Column(c.id)));
                            visible.push((c.name.clone(), c.id));
                        }
                    }
                }
                ast::SelectItem::QualifiedWildcard(alias) => {
                    let b = scope
                        .bindings
                        .iter()
                        .find(|b| b.alias.eq_ignore_ascii_case(alias))
                        .ok_or_else(|| DhqpError::Bind(format!("unknown alias '{alias}'")))?;
                    for c in &b.columns {
                        outputs.push((c.id, ScalarExpr::Column(c.id)));
                        visible.push((c.name.clone(), c.id));
                    }
                }
                ast::SelectItem::Expr { expr, alias } => {
                    let bound = if group_cols.is_empty() && agg_outputs.is_empty() {
                        self.bind_expr(expr, &scope)?
                    } else {
                        self.bind_agg_expr(expr, &scope, &group_cols, &agg_outputs)?
                    };
                    let (id, name) = match (&bound, alias) {
                        (ScalarExpr::Column(id), None) => {
                            let name = self.registry.meta(*id).name.clone();
                            (*id, name)
                        }
                        (ScalarExpr::Column(id), Some(a)) => (*id, a.clone()),
                        (_, alias) => {
                            let name = alias
                                .clone()
                                .unwrap_or_else(|| format!("col{}", outputs.len()));
                            let ty = dhqp_optimizer::decoder::static_type(&bound, &self.registry)
                                .unwrap_or(DataType::Str);
                            let id = self.registry.allocate(name.clone(), "", ty, true);
                            (id, name)
                        }
                    };
                    outputs.push((id, bound));
                    visible.push((name, id));
                }
            }
        }
        if outputs.is_empty() {
            return Err(DhqpError::Bind("SELECT list is empty".into()));
        }

        // ORDER BY: output aliases or in-scope columns; non-column
        // expressions must be given an alias in the SELECT list first.
        let mut ordering: Vec<(ColumnId, bool)> = Vec::new();
        for item in &stmt.order_by {
            let id = match &item.expr {
                ast::Expr::Column(parts) if parts.len() == 1 => {
                    // Prefer an output alias; fall back to scope.
                    match visible
                        .iter()
                        .find(|(n, _)| n.eq_ignore_ascii_case(&parts[0]))
                    {
                        Some((_, id)) => *id,
                        None => scope.resolve(parts)?.id,
                    }
                }
                ast::Expr::Column(parts) => scope.resolve(parts)?.id,
                other => {
                    return Err(DhqpError::Unsupported(format!(
                        "ORDER BY supports column references only (alias the expression): {other:?}"
                    )))
                }
            };
            // Hidden passthrough if the order column is not projected.
            if !outputs.iter().any(|(c, _)| *c == id) {
                outputs.push((id, ScalarExpr::Column(id)));
            }
            ordering.push((id, item.ascending));
        }

        tree = tree.project(outputs);

        // DISTINCT = group by all visible outputs.
        if stmt.distinct {
            let cols: Vec<ColumnId> = visible.iter().map(|(_, id)| *id).collect();
            tree = tree.aggregate(cols, vec![]);
            if !ordering.is_empty() {
                // Ordering columns must survive the distinct; hidden order
                // columns cannot (they would change the grouping).
                for (id, _) in &ordering {
                    if !visible.iter().any(|(_, v)| v == id) {
                        return Err(DhqpError::Unsupported(
                            "ORDER BY column must appear in SELECT DISTINCT list".into(),
                        ));
                    }
                }
            }
        }

        if let Some(n) = stmt.top {
            tree = tree.limit(n);
        }
        Ok((tree, visible, PhysicalProps::ordered(ordering)))
    }

    /// `SELECT ... UNION [ALL] SELECT ...`: bind each branch, align by
    /// position, and union. ORDER BY/TOP on the statement apply to the
    /// combined result; plain UNION deduplicates via group-by-all.
    fn bind_union(
        &mut self,
        stmt: &ast::SelectStmt,
        outer: Option<&Scope<'_>>,
    ) -> Result<BoundBlock> {
        // Re-bind the first branch without its union/order/top decorations.
        let mut first = stmt.clone();
        first.union_branches = Vec::new();
        first.order_by = Vec::new();
        first.top = None;
        let (first_tree, first_out, _) = self.bind_select_inner(&first, outer)?;
        let mut all_distinct = false;
        let mut branches = vec![first_tree];
        for (branch, all) in &stmt.union_branches {
            let (tree, out, _) = self.bind_select_inner(branch, outer)?;
            if out.len() != first_out.len() {
                return Err(DhqpError::Bind(format!(
                    "UNION branches select {} vs {} columns",
                    first_out.len(),
                    out.len()
                )));
            }
            if !all {
                all_distinct = true;
            }
            branches.push(tree);
        }
        // The union's output columns take the first branch's names/types.
        let mut out_cols = Vec::with_capacity(first_out.len());
        let mut visible = Vec::with_capacity(first_out.len());
        for (name, id) in &first_out {
            let m = self.registry.meta(*id).clone();
            let out = self
                .registry
                .allocate(m.name.clone(), "", m.data_type, true);
            out_cols.push(out);
            visible.push((name.clone(), out));
        }
        let mut tree = LogicalExpr::new(
            LogicalOp::UnionAll {
                output: out_cols.clone(),
            },
            branches,
        );
        if all_distinct || stmt.distinct {
            tree = tree.aggregate(out_cols.clone(), vec![]);
        }
        // ORDER BY on union outputs (names resolve against the first
        // branch's aliases).
        let mut ordering = Vec::new();
        for item in &stmt.order_by {
            let ast::Expr::Column(parts) = &item.expr else {
                return Err(DhqpError::Unsupported(
                    "UNION ORDER BY supports output column names".into(),
                ));
            };
            let name = parts.last().expect("non-empty column parts");
            let (_, id) = visible
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case(name))
                .ok_or_else(|| DhqpError::Bind(format!("unknown UNION output column '{name}'")))?;
            ordering.push((*id, item.ascending));
        }
        if let Some(n) = stmt.top {
            tree = tree.limit(n);
        }
        Ok((tree, visible, PhysicalProps::ordered(ordering)))
    }

    /// SELECT without FROM: a single constant row.
    fn bind_table_less_select(&mut self, stmt: &ast::SelectStmt) -> Result<BoundBlock> {
        let scope = Scope {
            bindings: vec![],
            outer: None,
        };
        let mut columns = Vec::new();
        let mut exprs = Vec::new();
        let mut visible = Vec::new();
        for (i, item) in stmt.projections.iter().enumerate() {
            let ast::SelectItem::Expr { expr, alias } = item else {
                return Err(DhqpError::Bind("SELECT * requires a FROM clause".into()));
            };
            let bound = self.bind_expr(expr, &scope)?;
            let name = alias.clone().unwrap_or_else(|| format!("col{i}"));
            let ty = dhqp_optimizer::decoder::static_type(&bound, &self.registry)
                .unwrap_or(DataType::Str);
            let id = self.registry.allocate(name.clone(), "", ty, true);
            columns.push(id);
            exprs.push((id, bound));
            visible.push((name, id));
        }
        let _ = columns;
        // One empty row to project constants over.
        let one_row = LogicalExpr::new(
            LogicalOp::Values {
                columns: vec![],
                rows: vec![vec![]],
            },
            vec![],
        );
        let tree = one_row.project(exprs);
        Ok((tree, visible, PhysicalProps::none()))
    }

    // ------------------------------------------------------------------
    // FROM-clause binding
    // ------------------------------------------------------------------

    fn bind_table_ref(
        &mut self,
        item: &ast::TableRef,
        outer: Option<&Scope<'_>>,
    ) -> Result<(LogicalExpr, Vec<Binding>)> {
        match item {
            ast::TableRef::Named { name, alias } => self.bind_named_table(name, alias.as_deref()),
            ast::TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                let (ltree, lbind) = self.bind_table_ref(left, outer)?;
                let (rtree, rbind) = self.bind_table_ref(right, outer)?;
                let mut bindings = lbind;
                bindings.extend(rbind);
                let join_kind = match kind {
                    ast::JoinKind::Inner => JoinKind::Inner,
                    ast::JoinKind::Cross => JoinKind::Cross,
                    ast::JoinKind::LeftOuter => JoinKind::LeftOuter,
                    // A RIGHT OUTER JOIN B ≡ B LEFT OUTER JOIN A.
                    ast::JoinKind::RightOuter => JoinKind::LeftOuter,
                };
                let (ltree, rtree) = if matches!(kind, ast::JoinKind::RightOuter) {
                    (rtree, ltree)
                } else {
                    (ltree, rtree)
                };
                let predicate = match on {
                    Some(e) => {
                        let scope = Scope {
                            bindings: bindings.clone(),
                            outer,
                        };
                        Some(self.bind_expr(e, &scope)?)
                    }
                    None => None,
                };
                Ok((
                    LogicalExpr::join(join_kind, ltree, rtree, predicate),
                    bindings,
                ))
            }
            ast::TableRef::Derived { query, alias } => {
                let (tree, output, _required) = self.bind_select_inner(query, None)?;
                let columns = output
                    .iter()
                    .map(|(name, id)| BoundColumn {
                        name: name.clone(),
                        id: *id,
                        data_type: self.registry.meta(*id).data_type,
                    })
                    .collect();
                Ok((
                    tree,
                    vec![Binding {
                        alias: alias.clone(),
                        columns,
                        table: None,
                    }],
                ))
            }
            ast::TableRef::OpenRowset {
                provider,
                datasource,
                query,
                alias,
            } => {
                let source = self.engine.open_ad_hoc(provider, datasource)?;
                let alias = alias
                    .clone()
                    .ok_or_else(|| DhqpError::Bind("OPENROWSET requires an alias".into()))?;
                self.materialize_pass_through(&source, query, &alias)
            }
            ast::TableRef::OpenQuery {
                server,
                query,
                alias,
            } => {
                let source = self.engine.linked_server(server)?;
                let alias = alias.clone().unwrap_or_else(|| server.clone());
                self.materialize_pass_through(&source, query, &alias)
            }
        }
    }

    /// Execute a pass-through command (or plain rowset open) on an
    /// autonomous source and bind the result as constant rows.
    ///
    /// Pass-through results are *values to the optimizer*: the provider's
    /// language is opaque (§3.3 "DHQP supports only pass-through queries
    /// against this provider"), so nothing can be pushed into it anyway.
    fn materialize_pass_through(
        &mut self,
        source: &Arc<dyn DataSource>,
        query: &str,
        alias: &str,
    ) -> Result<(LogicalExpr, Vec<Binding>)> {
        let has_command = source.capabilities().has_command();
        // Pass-through text we can prove is a read (or a plain table open)
        // may be re-sent on transient link faults; anything else runs once.
        let idempotent = !has_command
            || query
                .trim_start()
                .get(..6)
                .is_some_and(|head| head.eq_ignore_ascii_case("select"));
        let policy = if idempotent {
            self.engine.retry_policy()
        } else {
            RetryPolicy::no_retry()
        };
        let factory: ReopenFactory = {
            let source = Arc::clone(source);
            let query = query.to_string();
            Box::new(move || {
                let mut session = source.create_session()?;
                if has_command {
                    let mut cmd = session.create_command()?;
                    cmd.set_text(&query)?;
                    cmd.execute()?.into_rowset()
                } else {
                    // Simple provider: the "query" is a table name.
                    session.open_rowset(query.trim())
                }
            })
        };
        let mut rowset = open_with_retries(factory, &policy, &self.engine.exec_counters(), None)?;
        let schema = rowset.schema().clone();
        let mut rows = Vec::new();
        while let Some(r) = rowset.next()? {
            rows.push(r.values);
        }
        let mut columns = Vec::new();
        let mut bound_cols = Vec::new();
        for c in schema.columns() {
            let id = self
                .registry
                .allocate(c.name.clone(), alias, c.data_type, c.nullable);
            columns.push(id);
            bound_cols.push(BoundColumn {
                name: c.name.clone(),
                id,
                data_type: c.data_type,
            });
        }
        let tree = LogicalExpr::new(LogicalOp::Values { columns, rows }, vec![]);
        Ok((
            tree,
            vec![Binding {
                alias: alias.to_string(),
                columns: bound_cols,
                table: None,
            }],
        ))
    }

    fn bind_named_table(
        &mut self,
        name: &ast::ObjectName,
        alias: Option<&str>,
    ) -> Result<(LogicalExpr, Vec<Binding>)> {
        let table_name = name.object().to_string();
        let mut server = name.server().map(str::to_string);
        // A two-part `sys.<view>` name addresses the built-in DMV provider:
        // SQL Server's `sys` schema, served here as a linked server.
        if server.is_none() && name.0.len() == 2 && name.0[0].eq_ignore_ascii_case("sys") {
            server = Some(crate::dmv::SYS_SERVER.to_string());
        }
        // A one-part name may be a partitioned view.
        if server.is_none() && name.0.len() == 1 {
            if let Some(view) = self.engine.partitioned_view(&table_name) {
                return self.bind_partitioned_view(&view, alias);
            }
        }
        let alias = alias
            .map(str::to_string)
            .unwrap_or_else(|| table_name.clone());
        let meta = self.fetch_table_meta(server.as_deref(), &table_name, &alias)?;
        let columns = meta
            .schema
            .columns()
            .iter()
            .zip(&meta.column_ids)
            .map(|(c, &id)| BoundColumn {
                name: c.name.clone(),
                id,
                data_type: c.data_type,
            })
            .collect();
        let binding = Binding {
            alias,
            columns,
            table: Some(Arc::clone(&meta)),
        };
        Ok((LogicalExpr::get(meta), vec![binding]))
    }

    /// Snapshot a table's metadata into a [`TableMeta`] with fresh column
    /// ids.
    fn fetch_table_meta(
        &mut self,
        server: Option<&str>,
        table: &str,
        alias: &str,
    ) -> Result<Arc<TableMeta>> {
        let fetched = self.engine.table_metadata(server, table)?;
        if let Some(s) = server {
            self.note_remote_dep(s, Some(fetched.fetched_at));
            self.used_feedback |= fetched.feedback;
        }
        let column_ids = fetched
            .info
            .columns
            .iter()
            .map(|c| {
                self.registry
                    .allocate(c.name.clone(), alias, c.data_type, c.nullable)
            })
            .collect();
        let id = self.next_table_id;
        self.next_table_id += 1;
        Ok(Arc::new(TableMeta {
            id,
            source: match server {
                None => Locality::Local,
                Some(s) => Locality::remote(s),
            },
            table: table.to_string(),
            alias: alias.to_string(),
            schema: fetched.info.schema(),
            column_ids,
            cardinality: fetched.info.cardinality,
            indexes: fetched.info.indexes.clone(),
            stats: fetched.stats.clone(),
            caps: fetched.caps.clone(),
            checks: fetched.checks.clone(),
        }))
    }

    /// Expand a partitioned view into `UnionAll` over member `Get`s, each
    /// carrying its CHECK domain for the constraint framework (§4.1.5).
    fn bind_partitioned_view(
        &mut self,
        view: &dhqp_federation::PartitionedView,
        alias: Option<&str>,
    ) -> Result<(LogicalExpr, Vec<Binding>)> {
        let alias = alias
            .map(str::to_string)
            .unwrap_or_else(|| view.name.clone());
        let mut children = Vec::with_capacity(view.members.len());
        for (i, member) in view.members.iter().enumerate() {
            self.view_members.push((view.name.clone(), i));
            if let Some(srv) = &member.server {
                // Member binds use the definition-time snapshot, but the
                // plan still becomes stale if the member's server changes.
                self.note_remote_dep(srv, None);
            }
            let member_alias = format!("{}__p{}", alias, i);
            // Delayed schema validation (§4.1.5): compile against the
            // definition-time snapshot WITHOUT contacting the member; the
            // live check happens at execution, only for members the plan
            // actually touches.
            let info = &member.schema_snapshot;
            let column_ids = info
                .columns
                .iter()
                .map(|c| {
                    self.registry
                        .allocate(c.name.clone(), &member_alias, c.data_type, c.nullable)
                })
                .collect();
            let id = self.next_table_id;
            self.next_table_id += 1;
            let meta = TableMeta {
                id,
                source: match &member.server {
                    None => Locality::Local,
                    Some(srv) => Locality::remote(srv),
                },
                table: member.table.clone(),
                alias: member_alias,
                schema: info.schema(),
                column_ids,
                cardinality: info.cardinality,
                indexes: info.indexes.clone(),
                stats: None,
                caps: self.engine.server_capabilities(member.server.as_deref())?,
                // The member's CHECK range on the partitioning column.
                checks: vec![(view.partition_column, member.check.clone())],
            };
            children.push(LogicalExpr::get(Arc::new(meta)));
        }
        // The view's output columns.
        let first = &view.members[0].schema_snapshot;
        let mut out_cols = Vec::new();
        let mut bound_cols = Vec::new();
        for c in &first.columns {
            let id = self
                .registry
                .allocate(c.name.clone(), &alias, c.data_type, c.nullable);
            out_cols.push(id);
            bound_cols.push(BoundColumn {
                name: c.name.clone(),
                id,
                data_type: c.data_type,
            });
        }
        let tree = LogicalExpr::new(LogicalOp::UnionAll { output: out_cols }, children);
        Ok((
            tree,
            vec![Binding {
                alias,
                columns: bound_cols,
                table: None,
            }],
        ))
    }

    // ------------------------------------------------------------------
    // WHERE-conjunct dispatch
    // ------------------------------------------------------------------

    fn bind_where_conjunct(
        &mut self,
        conj: ast::Expr,
        tree: LogicalExpr,
        scope: &Scope<'_>,
        filters: &mut Vec<ScalarExpr>,
    ) -> Result<LogicalExpr> {
        match conj {
            ast::Expr::Exists { subquery, negated } => {
                let kind = if negated {
                    JoinKind::Anti
                } else {
                    JoinKind::Semi
                };
                self.bind_subquery_join(tree, &subquery, kind, None, scope)
            }
            ast::Expr::InSubquery {
                expr,
                subquery,
                negated,
            } => {
                let probe = self.bind_expr(&expr, scope)?;
                let kind = if negated {
                    JoinKind::Anti
                } else {
                    JoinKind::Semi
                };
                self.bind_subquery_join(tree, &subquery, kind, Some(probe), scope)
            }
            ast::Expr::Function {
                ref name, ref args, ..
            } if name == "CONTAINS" => {
                let pred = self.bind_contains(args, scope)?;
                Ok(self.attach_fulltext_join(tree, pred)?)
            }
            other => {
                filters.push(self.bind_expr(&other, scope)?);
                Ok(tree)
            }
        }
    }

    /// EXISTS / IN subquery → semi or anti join (§4.1.4 unrolling).
    fn bind_subquery_join(
        &mut self,
        outer_tree: LogicalExpr,
        subquery: &ast::SelectStmt,
        kind: JoinKind,
        probe: Option<ScalarExpr>,
        scope: &Scope<'_>,
    ) -> Result<LogicalExpr> {
        let (sub_tree, sub_output, _) = self.bind_select_inner(subquery, Some(scope))?;
        // Split the subquery's own filters that reference outer columns into
        // join predicates (decorrelation). "Inner" means defined anywhere
        // inside the subquery tree.
        let sub_cols = all_defined_columns(&sub_tree);
        let (inner_tree, mut join_preds) = decorrelate(sub_tree, &sub_cols);
        if let Some(probe) = probe {
            let target = sub_output
                .first()
                .map(|(_, id)| *id)
                .ok_or_else(|| DhqpError::Bind("IN subquery selects no columns".into()))?;
            join_preds.push(ScalarExpr::eq(probe, ScalarExpr::Column(target)));
        }
        let predicate = ScalarExpr::and(join_preds);
        if predicate.is_none() && kind == JoinKind::Anti {
            // NOT EXISTS with no correlation: anti-join against everything.
            return Ok(LogicalExpr::join(kind, outer_tree, inner_tree, None));
        }
        Ok(LogicalExpr::join(kind, outer_tree, inner_tree, predicate))
    }

    /// `CONTAINS(column, 'query')` → the full-text predicate of §2.3.
    fn bind_contains(&mut self, args: &[ast::Expr], scope: &Scope<'_>) -> Result<FtPredicate> {
        let [col_expr, ast::Expr::Literal(Value::Str(query))] = args else {
            return Err(DhqpError::Bind(
                "CONTAINS takes a column and a string literal".into(),
            ));
        };
        let ast::Expr::Column(parts) = col_expr else {
            return Err(DhqpError::Bind(
                "CONTAINS requires a plain column reference".into(),
            ));
        };
        let bound = scope.resolve(parts)?.clone();
        let binding = scope
            .table_of(bound.id)
            .ok_or_else(|| DhqpError::Bind("CONTAINS column must come from a base table".into()))?;
        let meta = binding.table.clone().ok_or_else(|| {
            DhqpError::Bind("CONTAINS requires a full-text indexed base table".into())
        })?;
        let (catalog, key_column) = self
            .engine
            .fulltext_binding(&meta.table, &bound.name)
            .ok_or_else(|| {
                DhqpError::Bind(format!(
                    "no full-text index on {}.{}",
                    meta.table, bound.name
                ))
            })?;
        let key_pos = meta.schema.index_of(&key_column).ok_or_else(|| {
            DhqpError::Bind(format!("full-text key column '{key_column}' missing"))
        })?;
        Ok(FtPredicate {
            key_col: meta.column_id(key_pos),
            catalog,
            query: query.clone(),
        })
    }

    /// Join the (key, rank) full-text rowset against the base table — the
    /// relational-engine side of Figure 2.
    fn attach_fulltext_join(
        &mut self,
        tree: LogicalExpr,
        pred: FtPredicate,
    ) -> Result<LogicalExpr> {
        let hits = self.engine.fulltext_query(&pred.catalog, &pred.query)?;
        let key_id = self.registry.allocate("ftkey", "", DataType::Int, false);
        let rank_id = self.registry.allocate("rank", "", DataType::Int, false);
        let rows: Vec<Vec<Value>> = hits
            .into_iter()
            .map(|(k, rank)| vec![Value::Int(k as i64), Value::Int(rank)])
            .collect();
        let values = LogicalExpr::new(
            LogicalOp::Values {
                columns: vec![key_id, rank_id],
                rows,
            },
            vec![],
        );
        let join_pred =
            ScalarExpr::eq(ScalarExpr::Column(pred.key_col), ScalarExpr::Column(key_id));
        Ok(LogicalExpr::join(
            JoinKind::Semi,
            tree,
            values,
            Some(join_pred),
        ))
    }

    // ------------------------------------------------------------------
    // aggregation
    // ------------------------------------------------------------------

    fn bind_aggregate(
        &mut self,
        stmt: &ast::SelectStmt,
        mut tree: LogicalExpr,
        scope: &Scope<'_>,
        agg_outputs: &mut Vec<(ast::Expr, ColumnId)>,
    ) -> Result<(LogicalExpr, Vec<ColumnId>, Vec<AggCall>)> {
        // Group-by expressions: plain columns used directly, computed
        // expressions pre-projected.
        let mut pre_project: Vec<(ColumnId, ScalarExpr)> = tree
            .output_columns()
            .into_iter()
            .map(|c| (c, ScalarExpr::Column(c)))
            .collect();
        let mut need_pre_project = false;
        let mut group_cols = Vec::new();
        for g in &stmt.group_by {
            let bound = self.bind_expr(g, scope)?;
            match bound {
                ScalarExpr::Column(id) => group_cols.push(id),
                computed => {
                    let ty = dhqp_optimizer::decoder::static_type(&computed, &self.registry)
                        .unwrap_or(DataType::Str);
                    let id =
                        self.registry
                            .allocate(format!("gexpr{}", group_cols.len()), "", ty, true);
                    pre_project.push((id, computed));
                    group_cols.push(id);
                    need_pre_project = true;
                }
            }
        }
        if need_pre_project {
            tree = tree.project(pre_project);
        }
        // Aggregate calls: collect from projections and HAVING.
        let mut calls: Vec<AggCall> = Vec::new();
        let collect = |binder: &mut Binder<'_>,
                       e: &ast::Expr,
                       calls: &mut Vec<AggCall>,
                       agg_outputs: &mut Vec<(ast::Expr, ColumnId)>|
         -> Result<()> {
            for agg_ast in find_aggregates(e) {
                if agg_outputs.iter().any(|(seen, _)| seen == &agg_ast) {
                    continue;
                }
                let (func, arg, distinct) = match &agg_ast {
                    ast::Expr::CountStar => (AggFunc::CountStar, None, false),
                    ast::Expr::Function {
                        name,
                        args,
                        distinct,
                    } => {
                        let func = match name.as_str() {
                            "COUNT" => AggFunc::Count,
                            "SUM" => AggFunc::Sum,
                            "MIN" => AggFunc::Min,
                            "MAX" => AggFunc::Max,
                            "AVG" => AggFunc::Avg,
                            other => {
                                return Err(DhqpError::Bind(format!("unknown aggregate '{other}'")))
                            }
                        };
                        let arg = args
                            .first()
                            .ok_or_else(|| DhqpError::Bind(format!("{name} requires an argument")))
                            .and_then(|a| binder.bind_expr(a, scope))?;
                        (func, Some(arg), *distinct)
                    }
                    other => return Err(DhqpError::Bind(format!("not an aggregate: {other:?}"))),
                };
                let ty = match func {
                    AggFunc::CountStar | AggFunc::Count => DataType::Int,
                    AggFunc::Avg => DataType::Float,
                    _ => arg
                        .as_ref()
                        .and_then(|a| dhqp_optimizer::decoder::static_type(a, &binder.registry))
                        .unwrap_or(DataType::Float),
                };
                let out = binder
                    .registry
                    .allocate(format!("agg{}", calls.len()), "", ty, true);
                calls.push(AggCall {
                    func,
                    arg,
                    distinct,
                    output: out,
                });
                agg_outputs.push((agg_ast, out));
            }
            Ok(())
        };
        for item in &stmt.projections {
            if let ast::SelectItem::Expr { expr, .. } = item {
                collect(self, expr, &mut calls, agg_outputs)?;
            }
        }
        if let Some(h) = &stmt.having {
            collect(self, h, &mut calls, agg_outputs)?;
        }
        tree = tree.aggregate(group_cols.clone(), calls.clone());
        Ok((tree, group_cols, calls))
    }

    /// Bind an expression in post-aggregate scope: aggregate sub-expressions
    /// resolve to their output columns; plain columns must be group columns.
    fn bind_agg_expr(
        &mut self,
        e: &ast::Expr,
        scope: &Scope<'_>,
        group_cols: &[ColumnId],
        agg_outputs: &[(ast::Expr, ColumnId)],
    ) -> Result<ScalarExpr> {
        if let Some((_, out)) = agg_outputs.iter().find(|(seen, _)| seen == e) {
            return Ok(ScalarExpr::Column(*out));
        }
        match e {
            ast::Expr::Column(_) => {
                let bound = self.bind_expr(e, scope)?;
                if let ScalarExpr::Column(id) = &bound {
                    if !group_cols.contains(id) {
                        return Err(DhqpError::Bind(format!(
                            "column {} must appear in GROUP BY or an aggregate",
                            self.registry.qualified_name(*id)
                        )));
                    }
                }
                Ok(bound)
            }
            ast::Expr::Binary { op, left, right } => {
                let l = self.bind_agg_expr(left, scope, group_cols, agg_outputs)?;
                let r = self.bind_agg_expr(right, scope, group_cols, agg_outputs)?;
                self.combine_binary(*op, l, r)
            }
            ast::Expr::Unary {
                op: ast::UnaryOp::Not,
                operand,
            } => Ok(ScalarExpr::Not(Box::new(self.bind_agg_expr(
                operand,
                scope,
                group_cols,
                agg_outputs,
            )?))),
            other => self.bind_expr(other, scope),
        }
    }

    // ------------------------------------------------------------------
    // scalar expression binding
    // ------------------------------------------------------------------

    fn bind_expr(&mut self, e: &ast::Expr, scope: &Scope<'_>) -> Result<ScalarExpr> {
        match e {
            ast::Expr::Literal(v) => Ok(ScalarExpr::Literal(v.clone())),
            ast::Expr::Column(parts) => Ok(ScalarExpr::Column(scope.resolve(parts)?.id)),
            ast::Expr::Param(p) => Ok(ScalarExpr::Param(p.clone())),
            ast::Expr::Unary { op, operand } => {
                let inner = self.bind_expr(operand, scope)?;
                Ok(match op {
                    ast::UnaryOp::Not => ScalarExpr::Not(Box::new(inner)),
                    ast::UnaryOp::Neg => ScalarExpr::Arith {
                        op: ArithOp::Sub,
                        left: Box::new(ScalarExpr::literal(Value::Int(0))),
                        right: Box::new(inner),
                    },
                })
            }
            ast::Expr::Binary { op, left, right } => {
                let l = self.bind_expr(left, scope)?;
                let r = self.bind_expr(right, scope)?;
                self.combine_binary(*op, l, r)
            }
            ast::Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = self.bind_expr(expr, scope)?;
                let lo = self.bind_expr(low, scope)?;
                let hi = self.bind_expr(high, scope)?;
                let (v2, lo) = self.coerce_pair(v.clone(), lo);
                let (v3, hi) = self.coerce_pair(v2, hi);
                let range = ScalarExpr::And(vec![
                    ScalarExpr::cmp(CmpOp::Ge, v3.clone(), lo),
                    ScalarExpr::cmp(CmpOp::Le, v3, hi),
                ]);
                Ok(if *negated {
                    ScalarExpr::Not(Box::new(range))
                } else {
                    range
                })
            }
            ast::Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = self.bind_expr(expr, scope)?;
                let ast::Expr::Literal(Value::Str(p)) = pattern.as_ref() else {
                    return Err(DhqpError::Unsupported(
                        "LIKE patterns must be string literals".into(),
                    ));
                };
                Ok(ScalarExpr::Like {
                    expr: Box::new(v),
                    pattern: p.clone(),
                    negated: *negated,
                })
            }
            ast::Expr::IsNull { expr, negated } => Ok(ScalarExpr::IsNull {
                expr: Box::new(self.bind_expr(expr, scope)?),
                negated: *negated,
            }),
            ast::Expr::InList {
                expr,
                list,
                negated,
            } => {
                let v = self.bind_expr(expr, scope)?;
                let vtype = dhqp_optimizer::decoder::static_type(&v, &self.registry);
                let values = list
                    .iter()
                    .map(|item| match self.bind_expr(item, scope)? {
                        ScalarExpr::Literal(val) => Ok(coerce_literal(val, vtype)),
                        _ => Err(DhqpError::Unsupported(
                            "IN lists must contain literals".into(),
                        )),
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(ScalarExpr::InList {
                    expr: Box::new(v),
                    list: values,
                    negated: *negated,
                })
            }
            ast::Expr::ScalarSubquery(sub) => {
                // Uncorrelated scalar subqueries evaluate eagerly at bind
                // time (documented substitution; correlated ones are
                // unsupported).
                let v = self.engine.evaluate_scalar_subquery(sub, self.params)?;
                Ok(ScalarExpr::Literal(v))
            }
            ast::Expr::Exists { .. } | ast::Expr::InSubquery { .. } => Err(DhqpError::Unsupported(
                "EXISTS/IN subqueries are supported as top-level WHERE conjuncts".into(),
            )),
            ast::Expr::CountStar => Err(DhqpError::Bind(
                "COUNT(*) is only valid with GROUP BY context".into(),
            )),
            ast::Expr::Function { name, args, .. } => {
                if matches!(name.as_str(), "COUNT" | "SUM" | "MIN" | "MAX" | "AVG") {
                    return Err(DhqpError::Bind(format!(
                        "aggregate {name} not allowed here"
                    )));
                }
                if name == "CONTAINS" {
                    return Err(DhqpError::Unsupported(
                        "CONTAINS is supported as a top-level WHERE conjunct".into(),
                    ));
                }
                let bound = args
                    .iter()
                    .map(|a| self.bind_expr(a, scope))
                    .collect::<Result<Vec<_>>>()?;
                Ok(ScalarExpr::Func {
                    name: name.clone(),
                    args: bound,
                })
            }
            ast::Expr::Cast { expr, type_name } => {
                let to = match type_name.to_ascii_uppercase().as_str() {
                    "INT" | "BIGINT" | "INTEGER" => DataType::Int,
                    "FLOAT" | "REAL" | "DOUBLE" => DataType::Float,
                    "VARCHAR" | "TEXT" | "CHAR" => DataType::Str,
                    "DATE" | "DATETIME" => DataType::Date,
                    "BIT" | "BOOL" | "BOOLEAN" => DataType::Bool,
                    other => {
                        return Err(DhqpError::Bind(format!("unknown type '{other}' in CAST")))
                    }
                };
                Ok(ScalarExpr::Cast {
                    expr: Box::new(self.bind_expr(expr, scope)?),
                    to,
                })
            }
        }
    }

    fn combine_binary(
        &mut self,
        op: ast::BinaryOp,
        l: ScalarExpr,
        r: ScalarExpr,
    ) -> Result<ScalarExpr> {
        use ast::BinaryOp as B;
        Ok(match op {
            B::And => ScalarExpr::and(vec![l, r]).expect("two operands"),
            B::Or => ScalarExpr::Or(vec![l, r]),
            B::Add | B::Sub | B::Mul | B::Div | B::Mod => {
                let aop = match op {
                    B::Add => ArithOp::Add,
                    B::Sub => ArithOp::Sub,
                    B::Mul => ArithOp::Mul,
                    B::Div => ArithOp::Div,
                    _ => ArithOp::Mod,
                };
                ScalarExpr::Arith {
                    op: aop,
                    left: Box::new(l),
                    right: Box::new(r),
                }
            }
            B::Eq | B::Neq | B::Lt | B::Le | B::Gt | B::Ge => {
                let cop = match op {
                    B::Eq => CmpOp::Eq,
                    B::Neq => CmpOp::Neq,
                    B::Lt => CmpOp::Lt,
                    B::Le => CmpOp::Le,
                    B::Gt => CmpOp::Gt,
                    _ => CmpOp::Ge,
                };
                let (l, r) = self.coerce_pair(l, r);
                ScalarExpr::cmp(cop, l, r)
            }
        })
    }

    /// Contextual literal coercion: a string literal compared with a DATE
    /// column becomes a date literal (T-SQL behaviour the paper's examples
    /// rely on: `L_COMMITDATE >= '1992-1-1'`).
    fn coerce_pair(&self, l: ScalarExpr, r: ScalarExpr) -> (ScalarExpr, ScalarExpr) {
        let lt = dhqp_optimizer::decoder::static_type(&l, &self.registry);
        let rt = dhqp_optimizer::decoder::static_type(&r, &self.registry);
        let coerce = |e: ScalarExpr, target: Option<DataType>| match (&e, target) {
            (ScalarExpr::Literal(v), Some(t)) if v.data_type() != Some(t) => match v.cast(t) {
                Ok(cast) => ScalarExpr::Literal(cast),
                Err(_) => e,
            },
            _ => e,
        };
        match (lt, rt) {
            (Some(DataType::Date), Some(DataType::Str)) => {
                let r = coerce(r, Some(DataType::Date));
                (l, r)
            }
            (Some(DataType::Str), Some(DataType::Date)) => {
                let l = coerce(l, Some(DataType::Date));
                (l, r)
            }
            _ => (l, r),
        }
    }
}

/// The parsed shape of a CONTAINS predicate before join attachment.
struct FtPredicate {
    key_col: ColumnId,
    catalog: String,
    query: String,
}

/// Metadata bundle fetched by the engine for one table.
pub struct FetchedTable {
    pub info: TableInfo,
    pub stats: Option<dhqp_oledb::TableStatistics>,
    pub caps: dhqp_oledb::ProviderCapabilities,
    pub checks: Vec<(usize, dhqp_types::IntervalSet)>,
    /// When this bundle was fetched — drives the statistics-cache TTL and
    /// the statistics age `EXPLAIN ANALYZE` reports for cached plans.
    pub fetched_at: std::time::Instant,
    /// True when the bundle was written by the cardinality feedback loop
    /// (observed rows, not provider-advertised statistics).
    pub feedback: bool,
}

/// Does the AST expression contain an aggregate call?
fn contains_aggregate(e: &ast::Expr) -> bool {
    !find_aggregates(e).is_empty()
}

/// Aggregate sub-expressions, outermost first.
fn find_aggregates(e: &ast::Expr) -> Vec<ast::Expr> {
    let mut out = Vec::new();
    collect_aggregates(e, &mut out);
    out
}

fn collect_aggregates(e: &ast::Expr, out: &mut Vec<ast::Expr>) {
    match e {
        ast::Expr::CountStar => out.push(e.clone()),
        ast::Expr::Function { name, .. }
            if matches!(name.as_str(), "COUNT" | "SUM" | "MIN" | "MAX" | "AVG") =>
        {
            out.push(e.clone())
        }
        ast::Expr::Binary { left, right, .. } => {
            collect_aggregates(left, out);
            collect_aggregates(right, out);
        }
        ast::Expr::Unary { operand, .. } => collect_aggregates(operand, out),
        ast::Expr::Between {
            expr, low, high, ..
        } => {
            collect_aggregates(expr, out);
            collect_aggregates(low, out);
            collect_aggregates(high, out);
        }
        ast::Expr::IsNull { expr, .. } | ast::Expr::Like { expr, .. } => {
            collect_aggregates(expr, out)
        }
        ast::Expr::InList { expr, list, .. } => {
            collect_aggregates(expr, out);
            for i in list {
                collect_aggregates(i, out);
            }
        }
        ast::Expr::Function { args, .. } => {
            for a in args {
                collect_aggregates(a, out);
            }
        }
        ast::Expr::Cast { expr, .. } => collect_aggregates(expr, out),
        _ => {}
    }
}

/// Pull filters referencing columns outside `inner_cols` (correlation) out
/// of a bound subquery tree, returning the cleaned tree and the extracted
/// predicates.
fn decorrelate(
    tree: LogicalExpr,
    inner_cols: &std::collections::BTreeSet<ColumnId>,
) -> (LogicalExpr, Vec<ScalarExpr>) {
    match tree.op.clone() {
        LogicalOp::Filter { predicate } => {
            let child = tree.children.into_iter().next().expect("filter child");
            let (child, mut extracted) = decorrelate(child, inner_cols);
            let mut keep = Vec::new();
            for conj in predicate.conjuncts() {
                let refs_outer = conj.columns().iter().any(|c| !inner_cols.contains(c));
                if refs_outer {
                    extracted.push(conj);
                } else {
                    keep.push(conj);
                }
            }
            let tree = match ScalarExpr::and(keep) {
                Some(p) => child.filter(p),
                None => child,
            };
            (tree, extracted)
        }
        // Projections/limits above correlated filters are preserved; only
        // filters directly on the spine are examined (sufficient for the
        // WHERE-clause subqueries the dialect accepts).
        LogicalOp::Project { outputs } => {
            let child = tree.children.into_iter().next().expect("project child");
            let (child, extracted) = decorrelate(child, inner_cols);
            (child.project(outputs), extracted)
        }
        _ => (tree, Vec::new()),
    }
}

/// Every column id defined by any operator inside a tree.
fn all_defined_columns(tree: &LogicalExpr) -> std::collections::BTreeSet<ColumnId> {
    let mut out = std::collections::BTreeSet::new();
    fn walk(t: &LogicalExpr, out: &mut std::collections::BTreeSet<ColumnId>) {
        match &t.op {
            LogicalOp::Get { columns, .. }
            | LogicalOp::EmptyGet { columns }
            | LogicalOp::Values { columns, .. } => out.extend(columns.iter().copied()),
            LogicalOp::Project { outputs } => out.extend(outputs.iter().map(|(c, _)| *c)),
            LogicalOp::Aggregate { group_by, aggs } => {
                out.extend(group_by.iter().copied());
                out.extend(aggs.iter().map(|a| a.output));
            }
            LogicalOp::UnionAll { output } => out.extend(output.iter().copied()),
            _ => {}
        }
        for c in &t.children {
            walk(c, out);
        }
    }
    walk(tree, &mut out);
    out
}

fn coerce_literal(v: Value, target: Option<DataType>) -> Value {
    match target {
        Some(t) if v.data_type() != Some(t) => v.cast(t).unwrap_or(v),
        _ => v,
    }
}
