//! DML execution: INSERT / UPDATE / DELETE against local tables, remote
//! tables and (distributed) partitioned views, with 2PC when a statement
//! touches more than one server (paper §2: "SQL Server uses the Microsoft
//! Distributed Transaction Coordinator to ensure atomicity of transactions
//! across data sources").

use crate::binder::Binder;
use crate::engine::Engine;
use crate::result::QueryResult;
use dhqp_dtc::DistributedTransaction;
use dhqp_executor::eval::{eval_expr, eval_predicate, positions_of, RowEnv};
use dhqp_executor::ops::retry::with_retries;
use dhqp_federation::PartitionedView;
use dhqp_oledb::{DataSource, RowsetExt, Session};
use dhqp_optimizer::logical::TableMeta;
use dhqp_optimizer::props::ColumnRegistry;
use dhqp_optimizer::ScalarExpr;
use dhqp_sqlfront as ast;
use dhqp_types::{DhqpError, Result, Row, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// What a DML statement targets.
enum Target {
    View(PartitionedView),
    /// `(server, table)`; server None = local.
    Table(Option<String>, String),
}

fn resolve_target(engine: &Engine, name: &ast::ObjectName) -> Result<Target> {
    if name.0.len() == 1 {
        if let Some(view) = engine.partitioned_view(name.object()) {
            return Ok(Target::View(view));
        }
    }
    Ok(Target::Table(
        name.server().map(str::to_string),
        name.object().to_string(),
    ))
}

/// Key identifying one participant server in a multi-site statement.
fn server_key(server: &Option<String>) -> String {
    server.as_deref().unwrap_or("(local)").to_lowercase()
}

fn source_for(engine: &Engine, server: &Option<String>) -> Result<Arc<dyn DataSource>> {
    match server {
        None => Ok(engine.local_data_source() as Arc<dyn DataSource>),
        Some(s) => engine.linked_server(s),
    }
}

/// Hands out per-server sessions to DML work. Two implementations: plain
/// autocommit sessions, or sessions enlisted in one distributed
/// transaction.
trait SessionProvider {
    fn session(&mut self, server: &Option<String>) -> Result<&mut Box<dyn Session>>;
}

/// Autocommit sessions (single-participant statements).
struct AutoCommitSessions<'e> {
    engine: &'e Engine,
    sessions: HashMap<String, Box<dyn Session>>,
}

impl SessionProvider for AutoCommitSessions<'_> {
    fn session(&mut self, server: &Option<String>) -> Result<&mut Box<dyn Session>> {
        let key = server_key(server);
        if !self.sessions.contains_key(&key) {
            let session = source_for(self.engine, server)?.create_session()?;
            self.sessions.insert(key.clone(), session);
        }
        Ok(self.sessions.get_mut(&key).expect("inserted above"))
    }
}

/// Sessions enlisted in a distributed transaction (multi-site statements).
struct TxnSessions<'e, 't> {
    engine: &'e Engine,
    txn: &'t mut DistributedTransaction,
}

impl SessionProvider for TxnSessions<'_, '_> {
    fn session(&mut self, server: &Option<String>) -> Result<&mut Box<dyn Session>> {
        let key = server_key(server);
        if !self.txn.participant_names().contains(&key) {
            let session = source_for(self.engine, server)?.create_session()?;
            self.txn.enlist(key.clone(), session)?;
        }
        self.txn.session_mut(&key)
    }
}

/// Run `work` with per-server sessions; if `participants` spans several
/// servers the whole statement commits atomically via 2PC.
fn run_write_set(
    engine: &Engine,
    participants: &[Option<String>],
    work: impl FnOnce(&mut dyn SessionProvider) -> Result<u64>,
) -> Result<u64> {
    let mut keys: Vec<String> = participants.iter().map(server_key).collect();
    keys.sort();
    keys.dedup();
    if keys.len() <= 1 {
        let mut sessions = AutoCommitSessions {
            engine,
            sessions: HashMap::new(),
        };
        return work(&mut sessions);
    }
    let mut txn = engine.dtc().begin();
    let n = {
        let mut sessions = TxnSessions {
            engine,
            txn: &mut txn,
        };
        work(&mut sessions)?
    };
    txn.commit()?;
    Ok(n)
}

// ---------------------------------------------------------------------------
// INSERT
// ---------------------------------------------------------------------------

pub fn run_insert(
    engine: &Engine,
    stmt: &ast::InsertStmt,
    params: &HashMap<String, Value>,
) -> Result<QueryResult> {
    let target = resolve_target(engine, &stmt.table)?;
    let source_rows: Vec<Vec<Value>> = match &stmt.source {
        ast::InsertSource::Values(rows) => {
            let mut binder = Binder::new(engine, params);
            let mut bound_rows = Vec::with_capacity(rows.len());
            for row in rows {
                bound_rows.push(binder.bind_standalone_exprs(row)?);
            }
            let registry = Arc::new(binder.registry_snapshot());
            let ctx = engine.exec_context(params.clone(), registry);
            bound_rows
                .into_iter()
                .map(|exprs| dhqp_executor::ops::remote::eval_standalone(&exprs, &ctx))
                .collect::<Result<Vec<_>>>()?
        }
        ast::InsertSource::Select(select) => {
            let result = engine.query_select_internal(select, params)?;
            result.rows.into_iter().map(|r| r.values).collect()
        }
    };
    let n = match target {
        Target::Table(server, table) => {
            insert_into_table(engine, &server, &table, &stmt.columns, source_rows)?
        }
        Target::View(view) => insert_into_view(engine, &view, &stmt.columns, source_rows)?,
    };
    Ok(QueryResult::rows_affected(n))
}

/// Arrange a source row into full table-column order, applying the column
/// list and coercing to declared types.
fn arrange_row(
    columns: &[String],
    table_columns: &[dhqp_oledb::ColumnInfo],
    values: Vec<Value>,
) -> Result<Row> {
    let expected = if columns.is_empty() {
        table_columns.len()
    } else {
        columns.len()
    };
    if values.len() != expected {
        return Err(DhqpError::Execute(format!(
            "INSERT supplies {} values for {} columns",
            values.len(),
            expected
        )));
    }
    let mut out = vec![Value::Null; table_columns.len()];
    if columns.is_empty() {
        for (i, v) in values.into_iter().enumerate() {
            out[i] = v;
        }
    } else {
        for (name, v) in columns.iter().zip(values) {
            let pos = table_columns
                .iter()
                .position(|c| c.name.eq_ignore_ascii_case(name))
                .ok_or_else(|| DhqpError::Bind(format!("unknown INSERT column '{name}'")))?;
            out[pos] = v;
        }
    }
    // Coerce to declared types (string dates → DATE etc.).
    for (v, c) in out.iter_mut().zip(table_columns) {
        if !v.is_null() && v.data_type() != Some(c.data_type) {
            if let Ok(cast) = v.cast(c.data_type) {
                *v = cast;
            }
        }
    }
    Ok(Row::new(out))
}

fn insert_into_table(
    engine: &Engine,
    server: &Option<String>,
    table: &str,
    columns: &[String],
    source_rows: Vec<Vec<Value>>,
) -> Result<u64> {
    let info = engine.fresh_table_info(server.as_deref(), table)?;
    let rows = source_rows
        .into_iter()
        .map(|vals| arrange_row(columns, &info.columns, vals))
        .collect::<Result<Vec<_>>>()?;
    let n = run_write_set(engine, std::slice::from_ref(server), |sessions| {
        sessions.session(server)?.insert(table, &rows)
    })?;
    if server.is_none() {
        engine.refresh_fulltext_index(table)?;
    }
    Ok(n)
}

fn insert_into_view(
    engine: &Engine,
    view: &PartitionedView,
    columns: &[String],
    source_rows: Vec<Vec<Value>>,
) -> Result<u64> {
    let info = &view.members[0].schema_snapshot;
    // Route every row first so constraint violations abort before any
    // write happens.
    let mut routed: HashMap<usize, Vec<Row>> = HashMap::new();
    for vals in source_rows {
        let row = arrange_row(columns, &info.columns, vals)?;
        let member = view.route(row.get(view.partition_column))?;
        routed.entry(member).or_default().push(row);
    }
    let participants: Vec<Option<String>> = routed
        .keys()
        .map(|&m| view.members[m].server.clone())
        .collect();
    run_write_set(engine, &participants, |sessions| {
        let mut n = 0;
        for (member, rows) in &routed {
            let m = &view.members[*member];
            n += sessions.session(&m.server)?.insert(&m.table, rows)?;
        }
        Ok(n)
    })
}

// ---------------------------------------------------------------------------
// DELETE
// ---------------------------------------------------------------------------

pub fn run_delete(
    engine: &Engine,
    stmt: &ast::DeleteStmt,
    params: &HashMap<String, Value>,
) -> Result<QueryResult> {
    let target = resolve_target(engine, &stmt.table)?;
    let n = match target {
        Target::Table(server, table) => {
            let n = run_write_set(engine, std::slice::from_ref(&server), |sessions| {
                delete_matching(
                    engine,
                    sessions,
                    &server,
                    &table,
                    stmt.where_clause.as_ref(),
                    params,
                )
            })?;
            if server.is_none() {
                engine.refresh_fulltext_index(&table)?;
            }
            n
        }
        Target::View(view) => {
            let members = prune_members(engine, &view, stmt.where_clause.as_ref(), params)?;
            let participants: Vec<Option<String>> = members
                .iter()
                .map(|&m| view.members[m].server.clone())
                .collect();
            run_write_set(engine, &participants, |sessions| {
                let mut n = 0;
                for &m in &members {
                    let member = &view.members[m];
                    n += delete_matching(
                        engine,
                        sessions,
                        &member.server,
                        &member.table,
                        stmt.where_clause.as_ref(),
                        params,
                    )?;
                }
                Ok(n)
            })?
        }
    };
    Ok(QueryResult::rows_affected(n))
}

/// Bind a DML WHERE clause against one table's schema.
fn bind_dml_predicate(
    engine: &Engine,
    server: &Option<String>,
    table: &str,
    where_clause: Option<&ast::Expr>,
    params: &HashMap<String, Value>,
) -> Result<(Arc<TableMeta>, Option<ScalarExpr>, Arc<ColumnRegistry>)> {
    let mut binder = Binder::new(engine, params);
    let meta = binder.bind_dml_table(server.as_deref(), table)?;
    let predicate = match where_clause {
        Some(e) => Some(binder.bind_expr_in_table(e, &meta)?),
        None => None,
    };
    Ok((meta, predicate, Arc::new(binder.registry_snapshot())))
}

/// Members a DML WHERE clause can touch (static pruning, §4.1.5).
fn prune_members(
    engine: &Engine,
    view: &PartitionedView,
    where_clause: Option<&ast::Expr>,
    params: &HashMap<String, Value>,
) -> Result<Vec<usize>> {
    let Some(where_clause) = where_clause else {
        return Ok((0..view.members.len()).collect());
    };
    let member = &view.members[0];
    let mut binder = Binder::new(engine, params);
    let meta = binder.bind_dml_table(member.server.as_deref(), &member.table)?;
    let predicate = binder.bind_expr_in_table(where_clause, &meta)?;
    let part_col = meta.column_id(view.partition_column);
    let domain = predicate.domain_for(part_col);
    Ok(view.members_for_domain(&domain))
}

/// Scan + filter a table through a session, returning matching rows.
fn matching_rows(
    engine: &Engine,
    sessions: &mut dyn SessionProvider,
    server: &Option<String>,
    table: &str,
    where_clause: Option<&ast::Expr>,
    params: &HashMap<String, Value>,
) -> Result<Vec<Row>> {
    let (meta, predicate, registry) =
        bind_dml_predicate(engine, server, table, where_clause, params)?;
    let session = sessions.session(server)?;
    // The row-location scan is a read: a transient fault here is absorbed
    // by re-reading, while the bookmark write that follows never retries.
    let rows = with_retries(&engine.retry_policy(), &engine.exec_counters(), || {
        let mut rowset = session.open_rowset(table)?;
        rowset.collect_rows()
    })?;
    let Some(predicate) = predicate else {
        return Ok(rows);
    };
    let positions = positions_of(&meta.column_ids);
    let ctx = engine.exec_context(params.clone(), registry);
    let mut out = Vec::new();
    for row in rows {
        let env = RowEnv {
            positions: &positions,
            row: &row,
            ctx: &ctx,
        };
        if eval_predicate(&predicate, &env)? {
            out.push(row);
        }
    }
    Ok(out)
}

fn delete_matching(
    engine: &Engine,
    sessions: &mut dyn SessionProvider,
    server: &Option<String>,
    table: &str,
    where_clause: Option<&ast::Expr>,
    params: &HashMap<String, Value>,
) -> Result<u64> {
    let rows = matching_rows(engine, sessions, server, table, where_clause, params)?;
    let bookmarks: Vec<u64> = rows
        .iter()
        .map(|r| {
            r.bookmark
                .ok_or_else(|| DhqpError::Execute("row without bookmark".into()))
        })
        .collect::<Result<Vec<_>>>()?;
    if bookmarks.is_empty() {
        return Ok(0);
    }
    sessions
        .session(server)?
        .delete_by_bookmarks(table, &bookmarks)
}

// ---------------------------------------------------------------------------
// UPDATE
// ---------------------------------------------------------------------------

pub fn run_update(
    engine: &Engine,
    stmt: &ast::UpdateStmt,
    params: &HashMap<String, Value>,
) -> Result<QueryResult> {
    let target = resolve_target(engine, &stmt.table)?;
    let n = match target {
        Target::Table(server, table) => {
            let n = run_write_set(engine, std::slice::from_ref(&server), |sessions| {
                update_table(engine, sessions, &server, &table, stmt, params, None)
            })?;
            if server.is_none() {
                engine.refresh_fulltext_index(&table)?;
            }
            n
        }
        Target::View(view) => {
            let members = prune_members(engine, &view, stmt.where_clause.as_ref(), params)?;
            // Partition-key updates may move rows to any member, so every
            // member becomes a potential participant.
            let updates_partition_key = stmt
                .assignments
                .iter()
                .any(|(c, _)| view.columns[view.partition_column].eq_ignore_ascii_case(c));
            let participants: Vec<Option<String>> = if updates_partition_key {
                view.members.iter().map(|m| m.server.clone()).collect()
            } else {
                members
                    .iter()
                    .map(|&m| view.members[m].server.clone())
                    .collect()
            };
            run_write_set(engine, &participants, |sessions| {
                let mut n = 0;
                for &m in &members {
                    let member = &view.members[m];
                    n += update_table(
                        engine,
                        sessions,
                        &member.server,
                        &member.table,
                        stmt,
                        params,
                        Some((&view, m)),
                    )?;
                }
                Ok(n)
            })?
        }
    };
    Ok(QueryResult::rows_affected(n))
}

/// Update one table (possibly a view member, enabling row moves when the
/// partitioning key changes).
fn update_table(
    engine: &Engine,
    sessions: &mut dyn SessionProvider,
    server: &Option<String>,
    table: &str,
    stmt: &ast::UpdateStmt,
    params: &HashMap<String, Value>,
    view_member: Option<(&PartitionedView, usize)>,
) -> Result<u64> {
    let mut binder = Binder::new(engine, params);
    let meta = binder.bind_dml_table(server.as_deref(), table)?;
    let assignments: Vec<(usize, ScalarExpr)> = stmt
        .assignments
        .iter()
        .map(|(col, e)| {
            let pos = meta
                .schema
                .index_of(col)
                .ok_or_else(|| DhqpError::Bind(format!("unknown UPDATE column '{col}'")))?;
            Ok((pos, binder.bind_expr_in_table(e, &meta)?))
        })
        .collect::<Result<Vec<_>>>()?;
    let registry = Arc::new(binder.registry_snapshot());
    let rows = matching_rows(
        engine,
        sessions,
        server,
        table,
        stmt.where_clause.as_ref(),
        params,
    )?;
    let positions = positions_of(&meta.column_ids);
    let ctx = engine.exec_context(params.clone(), registry);
    let mut in_place: (Vec<u64>, Vec<Row>) = (Vec::new(), Vec::new());
    let mut moves: Vec<(u64, usize, Row)> = Vec::new();
    for row in rows {
        let bookmark = row
            .bookmark
            .ok_or_else(|| DhqpError::Execute("row without bookmark".into()))?;
        let mut new_row = row.clone();
        let env = RowEnv {
            positions: &positions,
            row: &row,
            ctx: &ctx,
        };
        for (pos, e) in &assignments {
            let mut v = eval_expr(e, &env)?;
            let declared = meta.schema.column(*pos).data_type;
            if !v.is_null() && v.data_type() != Some(declared) {
                if let Ok(cast) = v.cast(declared) {
                    v = cast;
                }
            }
            new_row.values[*pos] = v;
        }
        new_row.bookmark = None;
        if let Some((view, my_member)) = view_member {
            let dest = view.route(new_row.get(view.partition_column))?;
            if dest != my_member {
                moves.push((bookmark, dest, new_row));
                continue;
            }
        }
        in_place.0.push(bookmark);
        in_place.1.push(new_row);
    }
    let mut n = 0;
    if !in_place.0.is_empty() {
        n += sessions
            .session(server)?
            .update_by_bookmarks(table, &in_place.0, &in_place.1)?;
    }
    for (bookmark, dest, new_row) in moves {
        let (view, _) = view_member.expect("moves only exist for views");
        sessions
            .session(server)?
            .delete_by_bookmarks(table, &[bookmark])?;
        let dest_member = &view.members[dest];
        sessions
            .session(&dest_member.server)?
            .insert(&dest_member.table, &[new_row])?;
        n += 1;
    }
    Ok(n)
}
