//! The built-in `sys` provider: dynamic management views served through
//! the ordinary OLE DB-style provider model.
//!
//! SQL Server exposes its own internals as `sys.dm_exec_*` rowsets; this
//! module does the same by registering a *simple provider* (§3.3 — only
//! `open_rowset`, no query support) under the linked-server name `sys` in
//! every engine. Observability data therefore enters plans as normal `Get`
//! operators: the optimizer plans a RemoteScan, the executor opens a
//! rowset, and filtering/joining/ordering over DMV rows is handled by the
//! DHQP exactly as for any other provider — the paper's abstraction,
//! dogfooded.
//!
//! Views:
//! * `sys.dm_exec_requests` — the recent-query ring, one row per finished
//!   statement (including its error, if any).
//! * `sys.dm_exec_query_stats` — per-fingerprint execution aggregates from
//!   the parameterized plan cache.
//! * `sys.dm_link_stats` — per-linked-server wire traffic and modeled
//!   round-trip latency percentiles.
//! * `sys.dm_link_health` — per-linked-server circuit-breaker state from
//!   the health registry (§15): breaker state, failure streak, trip and
//!   probe counts, and the last error that fed the breaker.
//! * `sys.dm_os_counters` — the engine's [`crate::MetricsSnapshot`] plus
//!   end-to-end query-latency percentiles, as `(name, value)` rows.
//! * `sys.dm_os_wait_stats` — cumulative per-class wait accounting (one
//!   row per [`dhqp_oledb::WaitClass`], zeros included).
//! * `sys.dm_xe_recent_events` — the event bus's retained ring, oldest
//!   first (empty unless events are enabled).
//! * `sys.query_store_query` — one row per tracked fingerprint (§17):
//!   identity, template and execution totals.
//! * `sys.query_store_plan` — one row per distinct physical plan of a
//!   fingerprint: shape hash, compile-time estimates and epochs, the
//!   regression flag and the rendered plan text.
//! * `sys.query_store_runtime_stats` — per-plan aggregated runtime: wall
//!   time, result rows, link traffic, dominant wait, and the worst
//!   estimate-vs-actual skew with the operator that produced it.
//! * `sys.dm_os_knobs` — every effective `DHQP_*` knob with its value and
//!   provenance (`env` / `builder` / `default`).
//!
//! Rows materialize at rowset-open time from live engine state; the
//! provider holds only a weak reference to the engine, since the engine's
//! own registry owns the provider.

use crate::engine::Inner;
use dhqp_oledb::{
    ColumnInfo, DataSource, MemRowset, ProviderCapabilities, Rowset, Session, TableInfo, WaitClass,
};
use dhqp_types::{DataType, DhqpError, Result, Row, Value};
use std::sync::{Arc, Weak};

/// The linked-server name every engine registers its DMV provider under.
pub const SYS_SERVER: &str = "sys";

const DM_EXEC_REQUESTS: &str = "dm_exec_requests";
const DM_EXEC_QUERY_STATS: &str = "dm_exec_query_stats";
const DM_LINK_STATS: &str = "dm_link_stats";
const DM_LINK_HEALTH: &str = "dm_link_health";
const DM_OS_COUNTERS: &str = "dm_os_counters";
const DM_OS_WAIT_STATS: &str = "dm_os_wait_stats";
const DM_XE_RECENT_EVENTS: &str = "dm_xe_recent_events";
const QUERY_STORE_QUERY: &str = "query_store_query";
const QUERY_STORE_PLAN: &str = "query_store_plan";
const QUERY_STORE_RUNTIME_STATS: &str = "query_store_runtime_stats";
const DM_OS_KNOBS: &str = "dm_os_knobs";

/// The `sys` data source. Holds a weak engine reference: the engine's
/// linked-server registry owns this provider, so a strong one would leak
/// the engine in a cycle.
pub struct SysDataSource {
    inner: Weak<Inner>,
}

impl SysDataSource {
    pub(crate) fn new(inner: Weak<Inner>) -> Self {
        SysDataSource { inner }
    }

    fn engine(&self) -> Result<Arc<Inner>> {
        self.inner
            .upgrade()
            .ok_or_else(|| DhqpError::Provider("sys provider outlived its engine".into()))
    }
}

fn requests_info() -> TableInfo {
    TableInfo::new(
        DM_EXEC_REQUESTS,
        vec![
            ColumnInfo::not_null("sql", DataType::Str),
            ColumnInfo::not_null("kind", DataType::Str),
            ColumnInfo::not_null("rows", DataType::Int),
            ColumnInfo::not_null("elapsed_ms", DataType::Float),
            ColumnInfo::not_null("ok", DataType::Bool),
            ColumnInfo::new("error", DataType::Str),
            // NULL when the statement never blocked.
            ColumnInfo::new("dominant_wait", DataType::Str),
            // DPV members degraded mode skipped during this statement.
            ColumnInfo::not_null("pruned_members", DataType::Int),
            // Plan-cache fingerprint template; NULL for statements that
            // didn't auto-parameterize.
            ColumnInfo::new("fingerprint", DataType::Str),
            // Condensed `[semijoin: ...]`/`[degraded: ...]`/`[startup: ...]`
            // markers; NULL when nothing noteworthy happened.
            ColumnInfo::new("annotations", DataType::Str),
        ],
    )
}

fn query_stats_info() -> TableInfo {
    TableInfo::new(
        DM_EXEC_QUERY_STATS,
        vec![
            ColumnInfo::not_null("template", DataType::Str),
            ColumnInfo::not_null("execution_count", DataType::Int),
            ColumnInfo::not_null("total_rows", DataType::Int),
            ColumnInfo::not_null("total_elapsed_ms", DataType::Float),
            ColumnInfo::not_null("avg_elapsed_ms", DataType::Float),
        ],
    )
}

fn link_stats_info() -> TableInfo {
    TableInfo::new(
        DM_LINK_STATS,
        vec![
            ColumnInfo::not_null("name", DataType::Str),
            ColumnInfo::not_null("requests", DataType::Int),
            ColumnInfo::not_null("rows", DataType::Int),
            ColumnInfo::not_null("bytes", DataType::Int),
            // Mean rows shipped per round trip; NULL before any traffic.
            ColumnInfo::new("rows_per_round_trip", DataType::Float),
            // NULL for unmetered sources (no simulated link in between).
            ColumnInfo::new("p50_ms", DataType::Float),
            ColumnInfo::new("p95_ms", DataType::Float),
            ColumnInfo::new("p99_ms", DataType::Float),
            ColumnInfo::new("max_ms", DataType::Float),
        ],
    )
}

fn link_health_info() -> TableInfo {
    TableInfo::new(
        DM_LINK_HEALTH,
        vec![
            ColumnInfo::not_null("server", DataType::Str),
            ColumnInfo::not_null("state", DataType::Str),
            ColumnInfo::not_null("consecutive_failures", DataType::Int),
            ColumnInfo::not_null("opens", DataType::Int),
            ColumnInfo::not_null("probes", DataType::Int),
            // Logical-clock tick of the last state transition; 0 = never.
            ColumnInfo::not_null("last_transition", DataType::Int),
            // NULL until the link's first recorded failure.
            ColumnInfo::new("last_error", DataType::Str),
        ],
    )
}

fn os_counters_info() -> TableInfo {
    TableInfo::new(
        DM_OS_COUNTERS,
        vec![
            ColumnInfo::not_null("name", DataType::Str),
            ColumnInfo::not_null("value", DataType::Int),
        ],
    )
}

fn wait_stats_info() -> TableInfo {
    TableInfo::new(
        DM_OS_WAIT_STATS,
        vec![
            ColumnInfo::not_null("wait_type", DataType::Str),
            ColumnInfo::not_null("waiting_tasks_count", DataType::Int),
            ColumnInfo::not_null("wait_time_ms", DataType::Float),
            ColumnInfo::not_null("max_wait_time_ms", DataType::Float),
        ],
    )
}

fn xe_recent_events_info() -> TableInfo {
    TableInfo::new(
        DM_XE_RECENT_EVENTS,
        vec![
            ColumnInfo::not_null("seq", DataType::Int),
            ColumnInfo::not_null("timestamp_ms", DataType::Float),
            ColumnInfo::not_null("kind", DataType::Str),
            ColumnInfo::not_null("detail", DataType::Str),
        ],
    )
}

fn query_store_query_info() -> TableInfo {
    TableInfo::new(
        QUERY_STORE_QUERY,
        vec![
            // FNV-1a hashes rendered as fixed-width hex: joinable across
            // the three views without i64 overflow concerns.
            ColumnInfo::not_null("query_id", DataType::Str),
            ColumnInfo::not_null("template", DataType::Str),
            ColumnInfo::not_null("plan_count", DataType::Int),
            ColumnInfo::not_null("execution_count", DataType::Int),
            ColumnInfo::new("last_plan_hash", DataType::Str),
        ],
    )
}

fn query_store_plan_info() -> TableInfo {
    TableInfo::new(
        QUERY_STORE_PLAN,
        vec![
            ColumnInfo::not_null("query_id", DataType::Str),
            ColumnInfo::not_null("plan_id", DataType::Int),
            ColumnInfo::not_null("plan_hash", DataType::Str),
            ColumnInfo::not_null("est_rows", DataType::Float),
            ColumnInfo::not_null("est_cost", DataType::Float),
            ColumnInfo::not_null("compile_schema_epoch", DataType::Int),
            ColumnInfo::not_null("compile_config_epoch", DataType::Int),
            // The plan arrived measurably slower than the fingerprint's
            // previous plan (see query_store::REGRESSION_FACTOR).
            ColumnInfo::not_null("regressed", DataType::Bool),
            ColumnInfo::not_null("plan_text", DataType::Str),
        ],
    )
}

fn query_store_runtime_stats_info() -> TableInfo {
    TableInfo::new(
        QUERY_STORE_RUNTIME_STATS,
        vec![
            ColumnInfo::not_null("query_id", DataType::Str),
            ColumnInfo::not_null("plan_id", DataType::Int),
            ColumnInfo::not_null("execution_count", DataType::Int),
            ColumnInfo::not_null("total_rows", DataType::Int),
            ColumnInfo::not_null("total_elapsed_ms", DataType::Float),
            ColumnInfo::not_null("avg_elapsed_ms", DataType::Float),
            ColumnInfo::not_null("total_link_bytes", DataType::Int),
            ColumnInfo::not_null("total_link_requests", DataType::Int),
            // NULL when no execution of this plan ever blocked.
            ColumnInfo::new("dominant_wait", DataType::Str),
            // Worst per-operator estimate-vs-actual ratio (≥ 1.0; 0.0
            // when no operator was ever opened) and where it happened.
            ColumnInfo::not_null("max_skew", DataType::Float),
            ColumnInfo::new("max_skew_operator", DataType::Str),
        ],
    )
}

fn os_knobs_info() -> TableInfo {
    TableInfo::new(
        DM_OS_KNOBS,
        vec![
            ColumnInfo::not_null("name", DataType::Str),
            ColumnInfo::not_null("value", DataType::Str),
            // env | builder | default.
            ColumnInfo::not_null("source", DataType::Str),
        ],
    )
}

fn ms(us: u64) -> Value {
    Value::Float(us as f64 / 1000.0)
}

fn hex64(v: u64) -> Value {
    Value::Str(format!("{v:016x}"))
}

impl DataSource for SysDataSource {
    fn name(&self) -> &str {
        SYS_SERVER
    }

    fn capabilities(&self) -> ProviderCapabilities {
        // A simple provider: SqlSupport::None, no indexes, no statistics.
        // The DHQP layers everything — DMV filtering and joins run locally.
        ProviderCapabilities::simple(SYS_SERVER)
    }

    fn tables(&self) -> Result<Vec<TableInfo>> {
        let engine = self.engine()?;
        Ok(vec![
            requests_info().with_cardinality(engine.dmv_recent().len() as u64),
            query_stats_info().with_cardinality(engine.dmv_plan_entries().len() as u64),
            link_stats_info().with_cardinality(engine.dmv_links().len() as u64),
            link_health_info().with_cardinality(engine.dmv_link_health().len() as u64),
            os_counters_info().with_cardinality(engine.dmv_metrics().counters().len() as u64 + 5),
            wait_stats_info().with_cardinality(WaitClass::ALL.len() as u64),
            xe_recent_events_info().with_cardinality(engine.dmv_recent_events().len() as u64),
            query_store_query_info().with_cardinality(engine.dmv_query_store().len() as u64),
            query_store_plan_info().with_cardinality(
                engine
                    .dmv_query_store()
                    .iter()
                    .map(|q| q.plans.len() as u64)
                    .sum(),
            ),
            query_store_runtime_stats_info().with_cardinality(
                engine
                    .dmv_query_store()
                    .iter()
                    .map(|q| q.plans.len() as u64)
                    .sum(),
            ),
            os_knobs_info().with_cardinality(engine.dmv_knobs().len() as u64),
        ])
    }

    fn create_session(&self) -> Result<Box<dyn Session>> {
        Ok(Box::new(SysSession {
            inner: self.inner.clone(),
        }))
    }
}

struct SysSession {
    inner: Weak<Inner>,
}

impl Session for SysSession {
    /// Materialize the requested view from live engine state. The one
    /// mandatory provider method — everything else stays at the
    /// unsupported defaults, exercising the simple-provider path.
    fn open_rowset(&mut self, table: &str) -> Result<Box<dyn Rowset>> {
        let engine = self
            .inner
            .upgrade()
            .ok_or_else(|| DhqpError::Provider("sys provider outlived its engine".into()))?;
        let (info, rows) = match table.to_lowercase().as_str() {
            DM_EXEC_REQUESTS => (requests_info(), requests_rows(&engine)),
            DM_EXEC_QUERY_STATS => (query_stats_info(), query_stats_rows(&engine)),
            DM_LINK_STATS => (link_stats_info(), link_stats_rows(&engine)),
            DM_LINK_HEALTH => (link_health_info(), link_health_rows(&engine)),
            DM_OS_COUNTERS => (os_counters_info(), os_counters_rows(&engine)),
            DM_OS_WAIT_STATS => (wait_stats_info(), wait_stats_rows(&engine)),
            DM_XE_RECENT_EVENTS => (xe_recent_events_info(), xe_recent_events_rows(&engine)),
            QUERY_STORE_QUERY => (query_store_query_info(), query_store_query_rows(&engine)),
            QUERY_STORE_PLAN => (query_store_plan_info(), query_store_plan_rows(&engine)),
            QUERY_STORE_RUNTIME_STATS => (
                query_store_runtime_stats_info(),
                query_store_runtime_stats_rows(&engine),
            ),
            DM_OS_KNOBS => (os_knobs_info(), os_knobs_rows(&engine)),
            other => {
                return Err(DhqpError::Catalog(format!(
                    "table '{other}' not found in source '{SYS_SERVER}'"
                )))
            }
        };
        Ok(Box::new(MemRowset::new(info.schema(), rows)))
    }
}

fn requests_rows(engine: &Inner) -> Vec<Row> {
    engine
        .dmv_recent()
        .into_iter()
        .map(|q| {
            Row::new(vec![
                Value::Str(q.sql),
                Value::Str(q.kind.name().to_string()),
                Value::Int(q.rows as i64),
                Value::Float(q.elapsed.as_secs_f64() * 1000.0),
                Value::Bool(q.ok),
                q.error.map(Value::Str).unwrap_or(Value::Null),
                q.dominant_wait
                    .map(|w| Value::Str(w.to_string()))
                    .unwrap_or(Value::Null),
                Value::Int(q.pruned_members as i64),
                q.fingerprint.map(Value::Str).unwrap_or(Value::Null),
                q.annotations.map(Value::Str).unwrap_or(Value::Null),
            ])
        })
        .collect()
}

fn query_store_query_rows(engine: &Inner) -> Vec<Row> {
    engine
        .dmv_query_store()
        .into_iter()
        .map(|q| {
            let executions = q.executions();
            Row::new(vec![
                hex64(q.query_id),
                Value::Str(q.template),
                Value::Int(q.plans.len() as i64),
                Value::Int(executions as i64),
                q.last_plan_hash.map(hex64).unwrap_or(Value::Null),
            ])
        })
        .collect()
}

fn query_store_plan_rows(engine: &Inner) -> Vec<Row> {
    let mut rows = Vec::new();
    for q in engine.dmv_query_store() {
        for p in &q.plans {
            rows.push(Row::new(vec![
                hex64(q.query_id),
                Value::Int(p.plan_id as i64),
                hex64(p.plan_hash),
                Value::Float(p.est_rows),
                Value::Float(p.est_cost),
                Value::Int(p.compile_schema_epoch as i64),
                Value::Int(p.compile_config_epoch as i64),
                Value::Bool(p.regressed),
                Value::Str(p.plan_text.clone()),
            ]));
        }
    }
    rows
}

fn query_store_runtime_stats_rows(engine: &Inner) -> Vec<Row> {
    let mut rows = Vec::new();
    for q in engine.dmv_query_store() {
        for p in &q.plans {
            let max_skew = p.max_skew();
            let max_skew_operator = p
                .operators
                .iter()
                .filter(|o| o.skew() > 0.0)
                .max_by(|a, b| a.skew().total_cmp(&b.skew()))
                .map(|o| Value::Str(o.operator.clone()))
                .unwrap_or(Value::Null);
            rows.push(Row::new(vec![
                hex64(q.query_id),
                Value::Int(p.plan_id as i64),
                Value::Int(p.executions as i64),
                Value::Int(p.total_rows as i64),
                Value::Float(p.total_elapsed_us as f64 / 1000.0),
                Value::Float(p.avg_elapsed_us() as f64 / 1000.0),
                Value::Int(p.total_link_bytes as i64),
                Value::Int(p.total_link_requests as i64),
                p.dominant_wait()
                    .map(|w| Value::Str(w.to_string()))
                    .unwrap_or(Value::Null),
                Value::Float(max_skew),
                max_skew_operator,
            ]));
        }
    }
    rows
}

fn os_knobs_rows(engine: &Inner) -> Vec<Row> {
    engine
        .dmv_knobs()
        .into_iter()
        .map(|(name, value, source)| {
            Row::new(vec![
                Value::Str(name),
                Value::Str(value),
                Value::Str(source.to_string()),
            ])
        })
        .collect()
}

fn query_stats_rows(engine: &Inner) -> Vec<Row> {
    use std::sync::atomic::Ordering;
    engine
        .dmv_plan_entries()
        .into_iter()
        .map(|(template, entry)| {
            let count = entry.execution_count.load(Ordering::Relaxed);
            let total_us = entry.total_elapsed_us.load(Ordering::Relaxed);
            let total_ms = total_us as f64 / 1000.0;
            let avg_ms = if count == 0 {
                0.0
            } else {
                total_ms / count as f64
            };
            Row::new(vec![
                Value::Str(template),
                Value::Int(count as i64),
                Value::Int(entry.total_rows.load(Ordering::Relaxed) as i64),
                Value::Float(total_ms),
                Value::Float(avg_ms),
            ])
        })
        .collect()
}

fn link_stats_rows(engine: &Inner) -> Vec<Row> {
    engine
        .dmv_links()
        .into_iter()
        .map(|(name, traffic, latency)| {
            let t = traffic.unwrap_or_default();
            let (p50, p95, p99, max) = match latency {
                Some(l) => (ms(l.p50_us), ms(l.p95_us), ms(l.p99_us), ms(l.max_us)),
                None => (Value::Null, Value::Null, Value::Null, Value::Null),
            };
            let per_trip = match t.rows_per_round_trip() {
                Some(v) => Value::Float(v),
                None => Value::Null,
            };
            Row::new(vec![
                Value::Str(name),
                Value::Int(t.requests as i64),
                Value::Int(t.rows as i64),
                Value::Int(t.bytes as i64),
                per_trip,
                p50,
                p95,
                p99,
                max,
            ])
        })
        .collect()
}

fn link_health_rows(engine: &Inner) -> Vec<Row> {
    engine
        .dmv_link_health()
        .into_iter()
        .map(|l| {
            Row::new(vec![
                Value::Str(l.server),
                Value::Str(l.state.name().to_string()),
                Value::Int(l.consecutive_failures as i64),
                Value::Int(l.opens as i64),
                Value::Int(l.probes as i64),
                Value::Int(l.last_transition as i64),
                l.last_error.map(Value::Str).unwrap_or(Value::Null),
            ])
        })
        .collect()
}

fn wait_stats_rows(engine: &Inner) -> Vec<Row> {
    let snapshot = engine.dmv_wait_stats();
    WaitClass::ALL
        .iter()
        .map(|&class| {
            let t = snapshot.get(class);
            Row::new(vec![
                Value::Str(class.name().to_string()),
                Value::Int(t.count as i64),
                ms(t.total_us),
                ms(t.max_us),
            ])
        })
        .collect()
}

fn xe_recent_events_rows(engine: &Inner) -> Vec<Row> {
    engine
        .dmv_recent_events()
        .into_iter()
        .map(|e| {
            Row::new(vec![
                Value::Int(e.seq as i64),
                ms(e.timestamp_us),
                Value::Str(e.kind.name().to_string()),
                Value::Str(e.detail()),
            ])
        })
        .collect()
}

fn os_counters_rows(engine: &Inner) -> Vec<Row> {
    let mut rows: Vec<Row> = engine
        .dmv_metrics()
        .counters()
        .into_iter()
        .map(|(name, value)| Row::new(vec![Value::Str(name.to_string()), Value::Int(value as i64)]))
        .collect();
    // End-to-end statement latency percentiles, in microseconds (integer
    // counters, so they share the (name, value) shape).
    let latency = engine.dmv_query_latency();
    for (name, value) in [
        ("query_latency_count", latency.count),
        ("query_latency_p50_us", latency.percentile(50.0)),
        ("query_latency_p95_us", latency.percentile(95.0)),
        ("query_latency_p99_us", latency.percentile(99.0)),
        ("query_latency_max_us", latency.max),
    ] {
        rows.push(Row::new(vec![
            Value::Str(name.to_string()),
            Value::Int(value as i64),
        ]));
    }
    rows
}
