//! The engine: catalog, query pipeline and public API.

use crate::analyze::{text_result, AnalyzeReport};
use crate::binder::{Binder, BoundSelect, FetchedTable};
use crate::dml;
use crate::dmv::{SysDataSource, SYS_SERVER};
use crate::events::{Event, EventBus, EventConfig, EventSink};
use crate::metrics::{
    EngineMetrics, MetricsSnapshot, QuerySummary, StatementKind, StatementTags,
    RECENT_QUERY_CAPACITY,
};
use crate::plan_cache::{self, CacheDeps, CachedSelect, PlanCache, PlanCacheConfig};
use crate::query_store::{self, ExecutionObservation, QueryStats, QueryStore, QueryStoreConfig};
use crate::result::QueryResult;
use crate::trace::{QueryTrace, TraceBuilder, TraceConfig};
use dhqp_dtc::TransactionCoordinator;
use dhqp_executor::{
    BatchConfig, BreakerConfig, DegradedMode, ExecContext, HealthRegistry, LinkHealthSnapshot,
    NodeRuntime, ParallelConfig, PruneLog, RetryPolicy, RuntimeStatsCollector, SourceCatalog,
};
use dhqp_federation::{LinkedServerRegistry, MemberTable, PartitionedView};
use dhqp_fulltext::SearchService;
use dhqp_oledb::{
    emit_event, has_hook, install_scope, record_wait, timed_wait, ActivityScope, DataSource,
    EventHook, RowsetExt, ScopeGuard, TableStatistics, WaitClass, WaitSnapshot, WaitStats,
};
use dhqp_optimizer::explain::ExplainPlan;
use dhqp_optimizer::{Optimizer, OptimizerConfig, PhysNode, PhysicalOp};
use dhqp_sqlfront::{fingerprint, parse_statement, Fingerprint, SelectStmt, Statement};
use dhqp_storage::{LocalDataSource, StorageEngine, TableDef};
use dhqp_types::{DhqpError, IntervalSet, Result, Row, Schema, Value};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The distributed/heterogeneous query processor. Cheap to clone; clones
/// share all state.
#[derive(Clone)]
pub struct Engine {
    inner: Arc<Inner>,
}

pub(crate) struct Inner {
    name: String,
    storage: Arc<StorageEngine>,
    local_source: Arc<LocalDataSource>,
    registry: RwLock<LinkedServerRegistry>,
    views: RwLock<HashMap<String, PartitionedView>>,
    fulltext: Arc<SearchService>,
    /// `(table, column)` → `(catalog, key column)` full-text bindings.
    ft_bindings: RwLock<HashMap<(String, String), (String, String)>>,
    /// Remote metadata cache: `(server, table)` → fetched bundle. Local
    /// tables are never cached (they are cheap and always fresh).
    meta_cache: RwLock<HashMap<(String, String), Arc<FetchedTable>>>,
    /// Parameterized plan cache: template text → cached compile.
    plan_cache: Mutex<PlanCache>,
    /// Per-linked-server invalidation epochs (lowercased names). Bumped on
    /// re-registration; cached plans depending on an older epoch are stale.
    server_epochs: RwLock<HashMap<String, u64>>,
    /// Bumped on local DDL, `ANALYZE`, DPV (re)definition and
    /// `clear_metadata_cache` — invalidates every cached plan.
    schema_epoch: AtomicU64,
    /// Bumped on optimizer/parallel configuration changes.
    config_epoch: AtomicU64,
    /// Max age of a cached remote metadata/statistics bundle before the
    /// bind path refetches it.
    stats_ttl: RwLock<Duration>,
    config: RwLock<OptimizerConfig>,
    parallel: RwLock<ParallelConfig>,
    retry: RwLock<RetryPolicy>,
    batch: RwLock<BatchConfig>,
    dtc: Arc<TransactionCoordinator>,
    metrics: EngineMetrics,
    /// Hierarchical span tracing switch (`DHQP_TRACE` /
    /// [`Engine::set_trace_config`]).
    trace: RwLock<TraceConfig>,
    /// The most recent finished trace, when tracing was armed.
    last_trace: Mutex<Option<Arc<QueryTrace>>>,
    /// The structured event bus (`DHQP_EVENTS` /
    /// [`Engine::set_event_config`]). Reconfiguring replaces the bus — the
    /// ring starts fresh, like restarting an XEvents session.
    events: RwLock<Arc<EventBus>>,
    /// Member health: one circuit breaker per linked server
    /// (`DHQP_BREAKER_*`), fed by retry give-ups and consulted before
    /// every remote open. Shared with every execution context.
    health: Arc<HealthRegistry>,
    /// What a query does when a DPV member is quarantined
    /// (`DHQP_DEGRADED`). Deliberately outside the config epoch: pruning
    /// is a drive-time decision, cached plans stay valid either way.
    degraded: RwLock<DegradedMode>,
    /// Runtime parameter-driven DPV pruning (`DHQP_RUNTIME_PRUNE`): skip
    /// union/exchange members whose startup predicate rejects the bound
    /// parameter values, without opening a connection. Like `degraded`,
    /// a drive-time decision outside the config epoch — the same cached
    /// plan prunes eagerly or lazily depending on the knob at execution.
    runtime_prune: RwLock<bool>,
    /// Query Store master switch (`DHQP_QUERY_STORE`). When on, every
    /// successful SELECT records its plan + runtime stats into
    /// `query_store` (and forces a runtime-stats collector).
    query_store_on: RwLock<bool>,
    /// Per-fingerprint plan/runtime history (`sys.query_store_*`).
    query_store: Mutex<QueryStore>,
    /// Cardinality feedback loop (`DHQP_CARD_FEEDBACK`): write observed
    /// remote cardinalities back into `meta_cache` after execution.
    card_feedback: RwLock<bool>,
}

// DMV accessors: read-only state snapshots the `sys` provider
// (crate::dmv) materializes into rowsets at open time.
impl Inner {
    pub(crate) fn dmv_recent(&self) -> Vec<QuerySummary> {
        self.metrics.recent_queries()
    }

    pub(crate) fn dmv_plan_entries(&self) -> Vec<(String, Arc<CachedSelect>)> {
        self.plan_cache.lock().entries()
    }

    /// Per-linked-server `(name, traffic, latency)` — the `sys` provider
    /// itself is excluded (it has no wire).
    pub(crate) fn dmv_links(
        &self,
    ) -> Vec<(
        String,
        Option<dhqp_oledb::TrafficSnapshot>,
        Option<dhqp_oledb::LatencySummary>,
    )> {
        let registry = self.registry.read();
        registry
            .server_names()
            .into_iter()
            .filter(|name| name != SYS_SERVER)
            .filter_map(|name| {
                let source = registry.linked_server(&name).ok()?;
                Some((name, source.traffic(), source.latency()))
            })
            .collect()
    }

    pub(crate) fn dmv_metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot(self.dtc.telemetry())
    }

    pub(crate) fn dmv_query_latency(&self) -> dhqp_oledb::HistogramSnapshot {
        self.metrics.query_latency()
    }

    pub(crate) fn dmv_wait_stats(&self) -> WaitSnapshot {
        self.metrics.wait_snapshot()
    }

    pub(crate) fn dmv_recent_events(&self) -> Vec<Event> {
        self.events.read().recent()
    }

    /// Per-link breaker snapshots — the `sys.dm_link_health` rows. The
    /// built-in `sys` provider is excluded (it has no wire to break).
    pub(crate) fn dmv_link_health(&self) -> Vec<LinkHealthSnapshot> {
        self.health
            .snapshot()
            .into_iter()
            .filter(|l| l.server != SYS_SERVER)
            .collect()
    }

    /// The query store's per-fingerprint history — the data behind the
    /// three `sys.query_store_*` views.
    pub(crate) fn dmv_query_store(&self) -> Vec<QueryStats> {
        self.query_store.lock().snapshot()
    }

    /// Every effective `DHQP_*` knob as `(name, value, source)` — the
    /// `sys.dm_os_knobs` rows. `source` says where the effective value came
    /// from: `env` when the environment variable is set and the current
    /// value still matches what it resolves to, `builder` when a runtime
    /// setter or builder override diverged from the default, `default`
    /// otherwise.
    pub(crate) fn dmv_knobs(&self) -> Vec<(String, String, &'static str)> {
        fn source(name: &str, current: &str, env_effective: &str, default: &str) -> &'static str {
            if std::env::var(name).is_ok() && current == env_effective {
                "env"
            } else if current != default {
                "builder"
            } else {
                "default"
            }
        }
        fn opt_ms(d: Option<Duration>) -> String {
            d.map(|d| d.as_millis().to_string())
                .unwrap_or_else(|| "off".to_string())
        }
        fn events_value(c: &EventConfig) -> String {
            if c.enabled {
                format!("mask=0x{:04x}", c.mask)
            } else {
                "off".to_string()
            }
        }
        let mut rows: Vec<(String, String, &'static str)> = Vec::new();
        let mut knob = |name: &str, current: String, env_effective: String, default: String| {
            let src = source(name, &current, &env_effective, &default);
            rows.push((name.to_string(), current, src));
        };

        let parallel = self.parallel.read().clone();
        let parallel_env = ParallelConfig::from_env();
        knob(
            "DHQP_PARALLEL",
            parallel.enabled.to_string(),
            parallel_env.enabled.to_string(),
            false.to_string(),
        );

        let batch = self.batch.read().clone();
        let batch_env = BatchConfig::from_env();
        knob(
            "DHQP_BATCH",
            batch.enabled.to_string(),
            batch_env.enabled.to_string(),
            true.to_string(),
        );
        knob(
            "DHQP_BATCH_SIZE",
            batch.batch_size.to_string(),
            batch_env.batch_size.to_string(),
            dhqp_executor::DEFAULT_BATCH_SIZE.to_string(),
        );

        let retry = self.retry.read().clone();
        let retry_env = RetryPolicy::from_env();
        let retry_def = RetryPolicy::standard();
        knob(
            "DHQP_RETRY_ATTEMPTS",
            retry.max_attempts.to_string(),
            retry_env.max_attempts.to_string(),
            retry_def.max_attempts.to_string(),
        );
        knob(
            "DHQP_RETRY_BACKOFF_MS",
            retry.base_backoff.as_millis().to_string(),
            retry_env.base_backoff.as_millis().to_string(),
            retry_def.base_backoff.as_millis().to_string(),
        );
        knob(
            "DHQP_RETRY_MAX_BACKOFF_MS",
            retry.max_backoff.as_millis().to_string(),
            retry_env.max_backoff.as_millis().to_string(),
            retry_def.max_backoff.as_millis().to_string(),
        );
        knob(
            "DHQP_RETRY_DEADLINE_MS",
            opt_ms(retry.query_deadline),
            opt_ms(retry_env.query_deadline),
            opt_ms(retry_def.query_deadline),
        );

        let breaker = self.health.config();
        let breaker_env = BreakerConfig::from_env();
        let breaker_def = BreakerConfig::standard();
        knob(
            "DHQP_BREAKER",
            breaker.enabled.to_string(),
            breaker_env.enabled.to_string(),
            breaker_def.enabled.to_string(),
        );
        knob(
            "DHQP_BREAKER_THRESHOLD",
            breaker.failure_threshold.to_string(),
            breaker_env.failure_threshold.to_string(),
            breaker_def.failure_threshold.to_string(),
        );
        knob(
            "DHQP_BREAKER_COOLDOWN",
            breaker.cooldown.to_string(),
            breaker_env.cooldown.to_string(),
            breaker_def.cooldown.to_string(),
        );
        knob(
            "DHQP_BREAKER_WINDOW",
            breaker.rate_window.to_string(),
            breaker_env.rate_window.to_string(),
            breaker_def.rate_window.to_string(),
        );
        knob(
            "DHQP_BREAKER_ERROR_RATE",
            format!("{:.2}", breaker.error_rate),
            format!("{:.2}", breaker_env.error_rate),
            format!("{:.2}", breaker_def.error_rate),
        );

        let degraded = *self.degraded.read();
        let degraded_name = |d: DegradedMode| if d.is_prune() { "prune" } else { "fail" };
        knob(
            "DHQP_DEGRADED",
            degraded_name(degraded).to_string(),
            degraded_name(DegradedMode::from_env()).to_string(),
            degraded_name(DegradedMode::Fail).to_string(),
        );
        knob(
            "DHQP_RUNTIME_PRUNE",
            self.runtime_prune.read().to_string(),
            dhqp_executor::runtime_prune_from_env().to_string(),
            true.to_string(),
        );

        let (pc_enabled, pc_capacity) = {
            let pc = self.plan_cache.lock();
            (pc.enabled(), pc.capacity())
        };
        let pc_env = PlanCacheConfig::from_env();
        let pc_def = PlanCacheConfig::default();
        knob(
            "DHQP_PLAN_CACHE",
            pc_enabled.to_string(),
            pc_env.enabled.to_string(),
            pc_def.enabled.to_string(),
        );
        knob(
            "DHQP_PLAN_CACHE_SIZE",
            pc_capacity.to_string(),
            pc_env.capacity.to_string(),
            pc_def.capacity.to_string(),
        );

        knob(
            "DHQP_STATS_TTL_MS",
            self.stats_ttl.read().as_millis().to_string(),
            stats_ttl_from_env().as_millis().to_string(),
            Duration::from_secs(60).as_millis().to_string(),
        );
        knob(
            "DHQP_RECENT_QUERIES",
            self.metrics.recent_capacity().to_string(),
            recent_queries_from_env().to_string(),
            RECENT_QUERY_CAPACITY.to_string(),
        );
        knob(
            "DHQP_SLOW_QUERY_MS",
            opt_ms(self.metrics.slow_threshold()),
            opt_ms(slow_query_from_env()),
            opt_ms(None),
        );

        knob(
            "DHQP_TRACE",
            self.trace.read().enabled.to_string(),
            TraceConfig::from_env().enabled.to_string(),
            false.to_string(),
        );
        knob(
            "DHQP_EVENTS",
            events_value(&self.events.read().config()),
            events_value(&EventConfig::from_env()),
            events_value(&EventConfig::disabled()),
        );

        // OptimizerConfig::default() itself consults the environment, so
        // its values double as the env-effective ones; the hardcoded
        // fallbacks (semi-join on, 64 keys) are the true defaults.
        let config = self.config.read().clone();
        let opt_env = OptimizerConfig::default();
        knob(
            "DHQP_SEMIJOIN",
            config.enable_semijoin.to_string(),
            opt_env.enable_semijoin.to_string(),
            true.to_string(),
        );
        knob(
            "DHQP_SEMIJOIN_MAX_KEYS",
            config.semijoin_max_keys.to_string(),
            opt_env.semijoin_max_keys.to_string(),
            64.to_string(),
        );

        let qs_env = QueryStoreConfig::from_env();
        let qs_def = QueryStoreConfig::default();
        knob(
            "DHQP_QUERY_STORE",
            self.query_store_on.read().to_string(),
            qs_env.enabled.to_string(),
            qs_def.enabled.to_string(),
        );
        knob(
            "DHQP_QUERY_STORE_SIZE",
            self.query_store.lock().capacity().to_string(),
            qs_env.capacity.to_string(),
            qs_def.capacity.to_string(),
        );
        knob(
            "DHQP_CARD_FEEDBACK",
            self.card_feedback.read().to_string(),
            card_feedback_from_env().to_string(),
            false.to_string(),
        );

        // Test-harness knob: consumed by the network simulator's fault
        // injector, not engine state — reported straight from the
        // environment for a complete picture.
        let fault = std::env::var("DHQP_FAULT_SEED").ok();
        let fault_src = if fault.is_some() { "env" } else { "default" };
        rows.push((
            "DHQP_FAULT_SEED".to_string(),
            fault.unwrap_or_else(|| "unset".to_string()),
            fault_src,
        ));
        rows
    }
}

/// Builder for engines with non-default configuration.
pub struct EngineBuilder {
    name: String,
    config: OptimizerConfig,
    parallel: ParallelConfig,
    retry: RetryPolicy,
    batch: BatchConfig,
    plan_cache: PlanCacheConfig,
    stats_ttl: Duration,
    recent_queries: usize,
    slow_query: Option<Duration>,
    trace: TraceConfig,
    events: EventConfig,
    breaker: BreakerConfig,
    degraded: DegradedMode,
    runtime_prune: bool,
    query_store: QueryStoreConfig,
    card_feedback: bool,
}

/// Cardinality feedback on when `DHQP_CARD_FEEDBACK` is set (default off).
fn card_feedback_from_env() -> bool {
    std::env::var("DHQP_CARD_FEEDBACK")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// Default remote-statistics TTL, overridable via `DHQP_STATS_TTL_MS`.
fn stats_ttl_from_env() -> Duration {
    std::env::var("DHQP_STATS_TTL_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_secs(60))
}

/// Recent-query ring capacity, overridable via `DHQP_RECENT_QUERIES`.
fn recent_queries_from_env() -> usize {
    std::env::var("DHQP_RECENT_QUERIES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(RECENT_QUERY_CAPACITY)
}

/// Slow-query threshold: `DHQP_SLOW_QUERY_MS` arms the slow-query log.
fn slow_query_from_env() -> Option<Duration> {
    std::env::var("DHQP_SLOW_QUERY_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
}

impl EngineBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        EngineBuilder {
            name: name.into(),
            config: OptimizerConfig::default(),
            parallel: ParallelConfig::from_env(),
            retry: RetryPolicy::from_env(),
            batch: BatchConfig::from_env(),
            plan_cache: PlanCacheConfig::from_env(),
            stats_ttl: stats_ttl_from_env(),
            recent_queries: recent_queries_from_env(),
            slow_query: slow_query_from_env(),
            trace: TraceConfig::from_env(),
            events: EventConfig::from_env(),
            breaker: BreakerConfig::from_env(),
            degraded: DegradedMode::from_env(),
            runtime_prune: dhqp_executor::runtime_prune_from_env(),
            query_store: QueryStoreConfig::from_env(),
            card_feedback: card_feedback_from_env(),
        }
    }

    pub fn optimizer_config(mut self, config: OptimizerConfig) -> Self {
        self.config = config;
        self
    }

    /// Parallel remote execution knobs (exchange workers, prefetch). Also
    /// switches the optimizer's parallel-union rule to match.
    pub fn parallel_config(mut self, parallel: ParallelConfig) -> Self {
        self.config.enable_parallel_union = parallel.enabled;
        self.parallel = parallel;
        self
    }

    /// Retry/backoff policy for remote opens and mid-stream rewinds.
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Batched row shipping: chunked pulls across operators and links
    /// (`DHQP_BATCH` / `DHQP_BATCH_SIZE`).
    pub fn batch_config(mut self, batch: BatchConfig) -> Self {
        self.batch = batch;
        self
    }

    /// Parameterized plan-cache knobs (enabled + capacity).
    pub fn plan_cache_config(mut self, plan_cache: PlanCacheConfig) -> Self {
        self.plan_cache = plan_cache;
        self
    }

    /// Max age of cached remote metadata/statistics before a refetch.
    pub fn stats_ttl(mut self, ttl: Duration) -> Self {
        self.stats_ttl = ttl;
        self
    }

    /// How many finished-statement summaries the recent-query ring
    /// (`sys.dm_exec_requests`) retains.
    pub fn recent_query_capacity(mut self, capacity: usize) -> Self {
        self.recent_queries = capacity;
        self
    }

    /// Arm the slow-query log: statements at or above `threshold` are
    /// retained in a separate ring ([`Engine::slow_queries`]).
    pub fn slow_query_threshold(mut self, threshold: Option<Duration>) -> Self {
        self.slow_query = threshold;
        self
    }

    /// Hierarchical span tracing (overrides `DHQP_TRACE`).
    pub fn trace_config(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Structured event capture (overrides `DHQP_EVENTS`).
    pub fn event_config(mut self, events: EventConfig) -> Self {
        self.events = events;
        self
    }

    /// Per-link circuit-breaker tuning (overrides `DHQP_BREAKER_*`).
    pub fn breaker_config(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Quarantined-member policy: fail the statement or prune the member
    /// (overrides `DHQP_DEGRADED`).
    pub fn degraded_mode(mut self, degraded: DegradedMode) -> Self {
        self.degraded = degraded;
        self
    }

    /// Runtime parameter-driven DPV pruning (overrides
    /// `DHQP_RUNTIME_PRUNE`): evaluate startup predicates at drive time
    /// and skip non-qualifying members without a connection.
    pub fn runtime_prune(mut self, on: bool) -> Self {
        self.runtime_prune = on;
        self
    }

    /// Query Store knobs (overrides `DHQP_QUERY_STORE` /
    /// `DHQP_QUERY_STORE_SIZE`).
    pub fn query_store_config(mut self, query_store: QueryStoreConfig) -> Self {
        self.query_store = query_store;
        self
    }

    /// Cardinality feedback loop (overrides `DHQP_CARD_FEEDBACK`).
    pub fn card_feedback(mut self, on: bool) -> Self {
        self.card_feedback = on;
        self
    }

    pub fn build(self) -> Engine {
        let storage = Arc::new(StorageEngine::new(self.name.clone()));
        let local_source = Arc::new(LocalDataSource::new(Arc::clone(&storage)));
        let engine = Engine {
            inner: Arc::new(Inner {
                name: self.name,
                storage,
                local_source,
                registry: RwLock::new(LinkedServerRegistry::new()),
                views: RwLock::new(HashMap::new()),
                fulltext: Arc::new(SearchService::new()),
                ft_bindings: RwLock::new(HashMap::new()),
                meta_cache: RwLock::new(HashMap::new()),
                plan_cache: Mutex::new(PlanCache::new(self.plan_cache)),
                server_epochs: RwLock::new(HashMap::new()),
                schema_epoch: AtomicU64::new(0),
                config_epoch: AtomicU64::new(0),
                stats_ttl: RwLock::new(self.stats_ttl),
                config: RwLock::new(self.config),
                parallel: RwLock::new(self.parallel),
                retry: RwLock::new(self.retry),
                batch: RwLock::new(self.batch),
                dtc: TransactionCoordinator::new(),
                metrics: EngineMetrics::new(self.recent_queries, self.slow_query),
                trace: RwLock::new(self.trace),
                last_trace: Mutex::new(None),
                events: RwLock::new(Arc::new(EventBus::new(self.events))),
                health: Arc::new(HealthRegistry::new(self.breaker)),
                degraded: RwLock::new(self.degraded),
                runtime_prune: RwLock::new(self.runtime_prune),
                query_store_on: RwLock::new(self.query_store.enabled),
                query_store: Mutex::new(QueryStore::new(self.query_store.capacity)),
                card_feedback: RwLock::new(self.card_feedback),
            }),
        };
        // Every engine self-registers its DMVs as the built-in `sys`
        // linked server — observability rowsets flow through the same
        // provider machinery as any remote source. Registered directly on
        // the registry: no epochs exist yet to invalidate.
        let sys = Arc::new(SysDataSource::new(Arc::downgrade(&engine.inner)));
        engine
            .inner
            .registry
            .write()
            .add_linked_server(SYS_SERVER, sys)
            .expect("registering the built-in sys provider cannot fail");
        engine
    }
}

/// Adapter giving the executor access to this engine's sources.
struct EngineCatalog {
    inner: Arc<Inner>,
}

impl SourceCatalog for EngineCatalog {
    fn local(&self) -> Arc<dyn DataSource> {
        Arc::clone(&self.inner.local_source) as Arc<dyn DataSource>
    }

    fn linked(&self, server: &str) -> Result<Arc<dyn DataSource>> {
        self.inner.registry.read().linked_server(server)
    }
}

impl Engine {
    /// A new engine with default configuration.
    pub fn new(name: impl Into<String>) -> Engine {
        EngineBuilder::new(name).build()
    }

    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The engine's local storage.
    pub fn storage(&self) -> &Arc<StorageEngine> {
        &self.inner.storage
    }

    /// The local storage engine's OLE DB-style face (used when this engine
    /// is itself a remote source).
    pub fn local_data_source(&self) -> Arc<LocalDataSource> {
        Arc::clone(&self.inner.local_source)
    }

    /// The engine's distributed transaction coordinator.
    pub fn dtc(&self) -> &Arc<TransactionCoordinator> {
        &self.inner.dtc
    }

    /// The engine's full-text search service.
    pub fn fulltext_service(&self) -> &Arc<SearchService> {
        &self.inner.fulltext
    }

    // ---- catalog management ------------------------------------------------

    pub fn create_table(&self, def: TableDef) -> Result<()> {
        self.inner.storage.create_table(def)?;
        self.bump_schema_epoch();
        Ok(())
    }

    /// Insert rows into a local table directly (maintains full-text
    /// indexes).
    pub fn insert(&self, table: &str, rows: &[Row]) -> Result<u64> {
        let n = self.inner.storage.insert_rows(table, rows)?;
        self.refresh_fulltext_index(table)?;
        Ok(n)
    }

    /// Build statistics for a local table (§3.2.4). Invalidates cached
    /// plans — they were costed against the old statistics.
    pub fn analyze(&self, table: &str, buckets: usize) -> Result<()> {
        self.inner.storage.analyze(table, buckets)?;
        self.bump_schema_epoch();
        Ok(())
    }

    /// Define a linked server (paper §2.1). Re-registering a name drops
    /// any metadata cached for the old source — the new server may expose
    /// different schemas under the same table names — and bumps the
    /// server's epoch so every plan compiled against the old source is
    /// evicted too, statistics included. A replaced server's plan must
    /// never be reused.
    pub fn add_linked_server(&self, name: &str, source: Arc<dyn DataSource>) -> Result<()> {
        self.inner
            .registry
            .write()
            .add_linked_server(name, source)?;
        let key = name.to_lowercase();
        // A freshly (re)defined link starts visible in sys.dm_link_health;
        // a pre-existing breaker keeps its state (re-pointing a name at a
        // new source does not vouch for the link being healthy).
        self.inner.health.ensure(&key);
        self.inner
            .meta_cache
            .write()
            .retain(|(server, _), _| server != &key);
        *self
            .inner
            .server_epochs
            .write()
            .entry(key.clone())
            .or_insert(0) += 1;
        let evicted = self.inner.plan_cache.lock().purge_server(&key);
        self.inner.metrics.record_plan_cache_evictions(evicted);
        Ok(())
    }

    pub fn linked_server(&self, name: &str) -> Result<Arc<dyn DataSource>> {
        self.inner.registry.read().linked_server(name)
    }

    /// Register an `OPENROWSET` provider factory.
    pub fn register_openrowset_provider(
        &self,
        name: &str,
        factory: dhqp_federation::linked::AdHocFactory,
    ) {
        self.inner.registry.write().register_provider(name, factory);
    }

    pub fn open_ad_hoc(&self, provider: &str, datasource: &str) -> Result<Arc<dyn DataSource>> {
        self.inner.registry.read().open_ad_hoc(provider, datasource)
    }

    /// Define a (distributed) partitioned view: each member is
    /// `(server-or-None, table, partition-column domain)` (§4.1.5).
    pub fn define_partitioned_view(
        &self,
        name: &str,
        partition_column: &str,
        members: Vec<(Option<String>, String, IntervalSet)>,
    ) -> Result<()> {
        let mut built = Vec::with_capacity(members.len());
        for (server, table, check) in members {
            let fetched = self.table_metadata(server.as_deref(), &table)?;
            if let Some(s) = &server {
                // Member links show up in sys.dm_link_health (Closed)
                // before any traffic touches them.
                self.inner.health.ensure(s);
            }
            built.push(MemberTable {
                server,
                table,
                check,
                schema_snapshot: fetched.info.clone(),
            });
        }
        let view = PartitionedView::define(name, partition_column, built)?;
        self.inner.views.write().insert(name.to_lowercase(), view);
        // (Re)defining a view changes what its name binds to.
        self.bump_schema_epoch();
        Ok(())
    }

    pub fn partitioned_view(&self, name: &str) -> Option<PartitionedView> {
        self.inner.views.read().get(&name.to_lowercase()).cloned()
    }

    /// Create a full-text index over a local table's text column, keyed by
    /// an integer key column (§2.3: indexes live *outside* the database
    /// engine, in the search service).
    pub fn create_fulltext_index(
        &self,
        table: &str,
        key_column: &str,
        text_column: &str,
        catalog: &str,
    ) -> Result<()> {
        if !self.inner.fulltext.has_catalog(catalog) {
            self.inner.fulltext.create_catalog(catalog)?;
        }
        self.inner.ft_bindings.write().insert(
            (table.to_lowercase(), text_column.to_lowercase()),
            (catalog.to_string(), key_column.to_string()),
        );
        self.refresh_fulltext_index(table)
    }

    /// Rebuild the full-text index entries for a table (index maintenance;
    /// invoked automatically after engine-mediated DML).
    pub fn refresh_fulltext_index(&self, table: &str) -> Result<()> {
        let bindings: Vec<((String, String), (String, String))> = self
            .inner
            .ft_bindings
            .read()
            .iter()
            .filter(|((t, _), _)| t.eq_ignore_ascii_case(table))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        for ((table, text_col), (catalog, key_col)) in bindings {
            let rows = self.inner.storage.with_table(&table, |t| {
                let key_pos = t.schema.index_of(&key_col);
                let text_pos = t.schema.index_of(&text_col);
                (key_pos, text_pos, t.scan_rows())
            })?;
            let (Some(key_pos), Some(text_pos), rows) = rows else {
                return Err(DhqpError::Catalog(format!(
                    "full-text binding on {table} references missing columns"
                )));
            };
            // Re-key the whole catalog for this table.
            let mut keys = Vec::new();
            for row in &rows {
                let Value::Int(k) = row.get(key_pos) else {
                    return Err(DhqpError::Type(
                        "full-text key column must be BIGINT".into(),
                    ));
                };
                let text = match row.get(text_pos) {
                    Value::Str(s) => s.clone(),
                    Value::Null => String::new(),
                    other => other.to_string(),
                };
                self.inner.fulltext.index_row(&catalog, *k as u64, &text)?;
                keys.push(*k as u64);
            }
        }
        Ok(())
    }

    pub(crate) fn fulltext_binding(&self, table: &str, column: &str) -> Option<(String, String)> {
        self.inner
            .ft_bindings
            .read()
            .get(&(table.to_lowercase(), column.to_lowercase()))
            .cloned()
    }

    pub(crate) fn fulltext_query(&self, catalog: &str, query: &str) -> Result<Vec<(u64, i64)>> {
        self.inner.metrics.record_fulltext_search();
        self.inner.fulltext.query_keys(catalog, query)
    }

    // ---- metadata ----------------------------------------------------------

    /// Fetch a table's metadata bundle, caching remote entries.
    pub(crate) fn table_metadata(
        &self,
        server: Option<&str>,
        table: &str,
    ) -> Result<Arc<FetchedTable>> {
        match server {
            None => {
                let info = self.inner.local_source.table(table)?;
                let stats = self.inner.storage.statistics(table);
                let checks = self.inner.storage.with_table(table, |t| {
                    t.checks
                        .iter()
                        .filter_map(|c| t.schema.index_of(&c.column).map(|p| (p, c.domain.clone())))
                        .collect::<Vec<_>>()
                })?;
                Ok(Arc::new(FetchedTable {
                    info,
                    stats,
                    caps: self.inner.local_source.capabilities(),
                    checks,
                    fetched_at: Instant::now(),
                    feedback: false,
                }))
            }
            Some(server) => {
                let key = (server.to_lowercase(), table.to_lowercase());
                let ttl = *self.inner.stats_ttl.read();
                if let Some(hit) = self.inner.meta_cache.read().get(&key) {
                    // A bundle past its TTL is treated as a miss: the
                    // optimizer must not cost against arbitrarily old
                    // remote statistics.
                    if hit.fetched_at.elapsed() <= ttl {
                        self.inner.metrics.record_meta_cache_hit();
                        if hit.stats.is_some() {
                            self.inner.metrics.record_stats_cache_hit();
                        }
                        return Ok(Arc::clone(hit));
                    }
                }
                self.inner.metrics.record_meta_cache_miss();
                let source = self.linked_server(server)?;
                // The whole remote fetch — schema plus per-column
                // histograms — is one STATS_FETCH wait: the compile is
                // blocked on the wire for its full duration.
                let (info, caps, stats) = timed_wait(WaitClass::StatsFetch, || -> Result<_> {
                    let info = source.table(table)?;
                    let caps = source.capabilities();
                    let stats = if caps.statistics_support {
                        let mut session = source.create_session()?;
                        let mut stats = TableStatistics {
                            row_count: info.cardinality,
                            ..Default::default()
                        };
                        for c in &info.columns {
                            if let Some(h) = session.histogram(table, &c.name)? {
                                stats.set_histogram(&c.name, h);
                            }
                        }
                        Some(stats)
                    } else {
                        None
                    };
                    Ok((info, caps, stats))
                })?;
                if stats.is_some() {
                    self.inner.metrics.record_stats_cache_miss();
                }
                let fetched = Arc::new(FetchedTable {
                    info,
                    stats,
                    caps,
                    checks: Vec::new(),
                    fetched_at: Instant::now(),
                    feedback: false,
                });
                self.inner
                    .meta_cache
                    .write()
                    .insert(key, Arc::clone(&fetched));
                Ok(fetched)
            }
        }
    }

    /// Capabilities of a server without fetching any table metadata.
    pub(crate) fn server_capabilities(
        &self,
        server: Option<&str>,
    ) -> Result<dhqp_oledb::ProviderCapabilities> {
        match server {
            None => Ok(self.inner.local_source.capabilities()),
            Some(s) => Ok(self.linked_server(s)?.capabilities()),
        }
    }

    /// Current (uncached) table info — used by delayed schema validation.
    pub(crate) fn fresh_table_info(
        &self,
        server: Option<&str>,
        table: &str,
    ) -> Result<dhqp_oledb::TableInfo> {
        match server {
            None => self.inner.local_source.table(table),
            Some(s) => self.linked_server(s)?.table(table),
        }
    }

    /// Drop cached remote metadata (after remote DDL/bulk changes). Also
    /// invalidates every cached plan — they may embed the stale schemas.
    pub fn clear_metadata_cache(&self) {
        self.inner.meta_cache.write().clear();
        self.bump_schema_epoch();
    }

    // ---- configuration -----------------------------------------------------

    pub fn optimizer_config(&self) -> OptimizerConfig {
        self.inner.config.read().clone()
    }

    pub fn set_optimizer_config(&self, config: OptimizerConfig) {
        *self.inner.config.write() = config;
        self.inner.config_epoch.fetch_add(1, Ordering::Relaxed);
    }

    pub fn parallel_config(&self) -> ParallelConfig {
        self.inner.parallel.read().clone()
    }

    /// Set the parallel remote-execution knobs. Keeps the optimizer's
    /// parallel-union rule in sync with the master switch, so plans and
    /// runtime agree on whether exchanges are wanted.
    pub fn set_parallel_config(&self, parallel: ParallelConfig) {
        self.inner.config.write().enable_parallel_union = parallel.enabled;
        *self.inner.parallel.write() = parallel;
        // Plans compiled under the old parallel-union setting are stale.
        self.inner.config_epoch.fetch_add(1, Ordering::Relaxed);
    }

    pub fn retry_policy(&self) -> RetryPolicy {
        self.inner.retry.read().clone()
    }

    /// Set the retry/backoff policy applied to remote opens and mid-stream
    /// rewinds on transient transport faults. Does *not* invalidate cached
    /// plans: retry is applied per execution, not baked into the plan.
    pub fn set_retry_policy(&self, retry: RetryPolicy) {
        *self.inner.retry.write() = retry;
    }

    pub fn batch_config(&self) -> BatchConfig {
        self.inner.batch.read().clone()
    }

    /// Set the batched-shipping knobs (on/off + rows per round trip). Like
    /// retry, batching is applied per execution and never changes plan
    /// shape, so cached plans stay valid.
    pub fn set_batch_config(&self, batch: BatchConfig) {
        *self.inner.batch.write() = batch;
    }

    pub fn degraded_mode(&self) -> DegradedMode {
        *self.inner.degraded.read()
    }

    pub fn runtime_prune_enabled(&self) -> bool {
        *self.inner.runtime_prune.read()
    }

    /// Toggle runtime parameter-driven DPV pruning. A drive-time decision
    /// like retry and degraded mode: cached plans keep their lazy startup
    /// filters and stay valid — the knob only decides whether members are
    /// skipped eagerly (no connection) or yield empty rowsets lazily.
    pub fn set_runtime_prune(&self, on: bool) {
        *self.inner.runtime_prune.write() = on;
    }

    /// Set the quarantined-member policy. Like retry and batching, this is
    /// a drive-time decision: the plan cache is deliberately untouched —
    /// the same cached plan prunes or fails depending on the mode at
    /// execution.
    pub fn set_degraded_mode(&self, degraded: DegradedMode) {
        *self.inner.degraded.write() = degraded;
    }

    pub fn breaker_config(&self) -> BreakerConfig {
        self.inner.health.config()
    }

    /// Replace the circuit-breaker tuning knobs. Existing breaker states
    /// survive (retuning thresholds must not heal a quarantined link);
    /// cached plans are unaffected.
    pub fn set_breaker_config(&self, breaker: BreakerConfig) {
        self.inner.health.set_config(breaker);
    }

    /// Per-link breaker snapshots, sorted by server — the
    /// `sys.dm_link_health` data. The built-in `sys` provider is excluded.
    pub fn link_health(&self) -> Vec<LinkHealthSnapshot> {
        self.inner.dmv_link_health()
    }

    // ---- plan & statistics caching -----------------------------------------

    /// Switch the parameterized plan cache on or off. Turning it off also
    /// drops every cached plan.
    pub fn set_plan_cache_enabled(&self, enabled: bool) {
        let mut cache = self.inner.plan_cache.lock();
        cache.set_enabled(enabled);
        if !enabled {
            let evicted = cache.clear();
            self.inner.metrics.record_plan_cache_evictions(evicted);
        }
    }

    pub fn plan_cache_enabled(&self) -> bool {
        self.inner.plan_cache.lock().enabled()
    }

    /// Bound the plan cache's entry count (LRU-evicting down if needed).
    pub fn set_plan_cache_capacity(&self, capacity: usize) {
        let evicted = self.inner.plan_cache.lock().set_capacity(capacity);
        self.inner.metrics.record_plan_cache_evictions(evicted);
    }

    /// Number of plans currently cached.
    pub fn plan_cache_len(&self) -> usize {
        self.inner.plan_cache.lock().len()
    }

    /// Max age of cached remote metadata/statistics before the bind path
    /// refetches over the wire.
    pub fn stats_ttl(&self) -> Duration {
        *self.inner.stats_ttl.read()
    }

    pub fn set_stats_ttl(&self, ttl: Duration) {
        *self.inner.stats_ttl.write() = ttl;
    }

    fn bump_schema_epoch(&self) {
        self.inner.schema_epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Epoch snapshot for a plan compiled right now against `servers`.
    fn current_deps(&self, servers: Vec<String>) -> CacheDeps {
        let epochs = self.inner.server_epochs.read();
        CacheDeps {
            servers: servers
                .into_iter()
                .map(|s| {
                    let e = epochs.get(&s).copied().unwrap_or(0);
                    (s, e)
                })
                .collect(),
            schema_epoch: self.inner.schema_epoch.load(Ordering::Relaxed),
            config_epoch: self.inner.config_epoch.load(Ordering::Relaxed),
        }
    }

    fn deps_current(&self, deps: &CacheDeps) -> bool {
        if deps.schema_epoch != self.inner.schema_epoch.load(Ordering::Relaxed)
            || deps.config_epoch != self.inner.config_epoch.load(Ordering::Relaxed)
        {
            return false;
        }
        let epochs = self.inner.server_epochs.read();
        deps.servers
            .iter()
            .all(|(s, e)| epochs.get(s).copied().unwrap_or(0) == *e)
    }

    /// Look up a cached plan, validating its epochs. A stale entry is
    /// evicted and reported as a miss. A valid hit also credits one
    /// metadata-cache hit per remote dependency: the bind-time metadata
    /// consultation was avoided entirely.
    fn plan_cache_lookup(&self, key: &str) -> Option<Arc<CachedSelect>> {
        let entry = self.inner.plan_cache.lock().get(key)?;
        if self.deps_current(&entry.deps) {
            self.inner.metrics.record_plan_cache_hit();
            if has_hook() {
                emit_event("plan_cache_hit", &[("template", key.to_string())]);
            }
            for _ in &entry.deps.servers {
                self.inner.metrics.record_meta_cache_hit();
            }
            Some(entry)
        } else {
            if self.inner.plan_cache.lock().remove(key) {
                self.inner.metrics.record_plan_cache_evictions(1);
            }
            None
        }
    }

    // ---- query pipeline ----------------------------------------------------

    /// Install this statement's activity scope: waits recorded anywhere on
    /// this thread (and on worker threads spawned under it) fan out to the
    /// engine-cumulative sink and a fresh per-query sink, and events reach
    /// the bus when it is armed. Emits `query_start`. The guard restores
    /// the previous scope on drop, so nested statements (a DMV query issued
    /// while serving another statement) account correctly.
    fn begin_statement(&self, sql: &str) -> (ScopeGuard, Arc<WaitStats>) {
        let query_waits = Arc::new(WaitStats::default());
        let bus = Arc::clone(&self.inner.events.read());
        let hook = bus
            .enabled()
            .then(|| Arc::clone(&bus) as Arc<dyn EventHook>);
        let guard = install_scope(ActivityScope::new(
            vec![self.inner.metrics.waits(), Arc::clone(&query_waits)],
            hook,
        ));
        if has_hook() {
            emit_event("query_start", &[("sql", sql.to_string())]);
        }
        (guard, query_waits)
    }

    /// Fingerprint + annotation summary carried into the recent/slow query
    /// rings and the `slow_query` event: the same `[semijoin: ...]` /
    /// `[degraded: ...]` / `[startup: ...]` markers EXPLAIN ANALYZE renders,
    /// condensed to one line so a slow statement can be triaged from
    /// `sys.dm_exec_requests` without re-running it.
    fn statement_tags(
        fingerprint: Option<&str>,
        collector: Option<&Arc<RuntimeStatsCollector>>,
        pruned: &PruneLog,
    ) -> StatementTags {
        let mut parts: Vec<String> = Vec::new();
        if let Some(collector) = collector {
            let mut keys = 0u64;
            let mut bytes = 0u64;
            let mut fallback = false;
            for rt in collector.snapshot().values() {
                if let Some(sj) = &rt.semijoin {
                    keys += sj.keys;
                    bytes += sj.filter_bytes;
                    fallback |= sj.fallback;
                }
            }
            if keys > 0 || fallback {
                parts.push(format!(
                    "[semijoin: keys={keys} bytes={bytes}{}]",
                    if fallback { " fallback" } else { "" }
                ));
            }
        }
        if !pruned.is_empty() {
            parts.push(format!("[degraded: {}]", pruned.members().join(",")));
        }
        if !pruned.startup_is_empty() {
            parts.push(format!("[startup: {}]", pruned.startup_members().join(",")));
        }
        StatementTags {
            fingerprint: fingerprint.map(|s| s.to_string()),
            annotations: (!parts.is_empty()).then(|| parts.join(" ")),
        }
    }

    /// Count one finished statement: snapshot the per-query waits for
    /// dominant-wait attribution, push the summary, and emit `query_end`
    /// (plus `slow_query` past the armed threshold).
    #[allow(clippy::too_many_arguments)]
    fn end_statement(
        &self,
        kind: StatementKind,
        sql: &str,
        elapsed: Duration,
        rows: u64,
        error: Option<String>,
        query_waits: &WaitStats,
        pruned: &PruneLog,
        tags: StatementTags,
    ) {
        let waits = query_waits.snapshot();
        let error_text = error.clone();
        let tags_for_event = tags.clone();
        let was_slow = self.inner.metrics.finish_statement(
            kind,
            sql,
            elapsed,
            rows,
            error,
            Some(&waits),
            pruned.count(),
            tags,
        );
        if has_hook() {
            let elapsed_ms = format!("{:.3}", elapsed.as_secs_f64() * 1000.0);
            let mut attrs = vec![
                ("kind", kind.name().to_string()),
                ("rows", rows.to_string()),
                ("elapsed_ms", elapsed_ms.clone()),
            ];
            if let Some(class) = waits.dominant() {
                attrs.push(("dominant_wait", class.name().to_string()));
            }
            if !pruned.is_empty() {
                attrs.push(("pruned_members", pruned.members().join(",")));
            }
            if !pruned.startup_is_empty() {
                attrs.push((
                    "startup_skipped_members",
                    pruned.startup_members().join(","),
                ));
            }
            if let Some(e) = error_text {
                attrs.push(("error", e));
            }
            emit_event("query_end", &attrs);
            if was_slow {
                let mut slow_attrs = vec![
                    ("sql", sql.to_string()),
                    ("elapsed_ms", elapsed_ms),
                    (
                        "dominant_wait",
                        waits
                            .dominant()
                            .map(|c| c.name())
                            .unwrap_or("NONE")
                            .to_string(),
                    ),
                ];
                if let Some(fp) = tags_for_event.fingerprint {
                    slow_attrs.push(("fingerprint", fp));
                }
                if let Some(ann) = tags_for_event.annotations {
                    slow_attrs.push(("annotations", ann));
                }
                emit_event("slow_query", &slow_attrs);
            }
        }
    }

    /// Whether plain executions should attach a runtime-stats collector
    /// even without EXPLAIN ANALYZE or tracing: the query store and the
    /// cardinality feedback loop consume per-operator actuals, and an
    /// armed slow-query log wants annotation summaries.
    fn observe_runtime(&self) -> bool {
        *self.inner.query_store_on.read()
            || *self.inner.card_feedback.read()
            || self.inner.metrics.slow_log_armed()
    }

    /// Post-execution observability for one successful SELECT: record the
    /// execution into the query store (emitting `plan_change` — and
    /// bumping `plan_regressions` — when the fingerprint switched plans),
    /// then run the cardinality feedback loop.
    fn observe_execution(
        &self,
        template: &str,
        plan: &PhysNode,
        runtime: &HashMap<usize, NodeRuntime>,
        elapsed: Duration,
        rows: u64,
        query_waits: &WaitStats,
    ) {
        if *self.inner.query_store_on.read() {
            let (link_bytes, link_requests) = query_store::link_traffic(runtime);
            let obs = ExecutionObservation {
                template: template.to_string(),
                plan_hash: query_store::plan_hash(plan),
                plan_text: plan.display_indent(),
                est_rows: plan.est_rows,
                est_cost: plan.est_cost,
                schema_epoch: self.inner.schema_epoch.load(Ordering::Relaxed),
                config_epoch: self.inner.config_epoch.load(Ordering::Relaxed),
                elapsed_us: elapsed.as_micros() as u64,
                rows,
                link_bytes,
                link_requests,
                dominant_wait: query_waits.snapshot().dominant().map(|c| c.name()),
                operators: query_store::operator_observations(plan, runtime),
            };
            if let Some(notice) = self.inner.query_store.lock().record(obs) {
                if notice.regressed {
                    self.inner.metrics.record_plan_regression();
                }
                if has_hook() {
                    emit_event(
                        "plan_change",
                        &[
                            ("template", notice.template.clone()),
                            ("query_id", format!("{:016x}", notice.query_id)),
                            ("old_plan_hash", format!("{:016x}", notice.old_plan_hash)),
                            ("new_plan_hash", format!("{:016x}", notice.new_plan_hash)),
                            ("old_avg_us", notice.old_avg_us.to_string()),
                            ("new_avg_us", notice.new_avg_us.to_string()),
                            ("regressed", notice.regressed.to_string()),
                        ],
                    );
                }
            }
        }
        if *self.inner.card_feedback.read() {
            self.apply_card_feedback(plan, runtime);
        }
    }

    /// The cardinality feedback loop: overwrite the cached statistics
    /// bundle of any remote table whose whole, unfiltered fetch observed at
    /// least twice the cardinality the optimizer costed with, then purge
    /// the plans compiled against the stale bundle so the next compilation
    /// costs with truth. Feedback only ever *raises* cardinalities — a
    /// partially drained cursor undercounts, so shrinking on observation
    /// would be unsound. Corrected bundles drop their histograms (they
    /// described the stale snapshot) and carry the `feedback` flag EXPLAIN
    /// ANALYZE renders as `-- [feedback: applied]`.
    fn apply_card_feedback(&self, plan: &PhysNode, runtime: &HashMap<usize, NodeRuntime>) {
        let mut touched_servers: Vec<String> = Vec::new();
        for (server, table, observed) in feedback_candidates(plan, runtime) {
            let key = (server.to_lowercase(), table.to_lowercase());
            let cached = self.inner.meta_cache.read().get(&key).cloned();
            let Some(cached) = cached else { continue };
            let known = cached
                .info
                .cardinality
                .or_else(|| cached.stats.as_ref().and_then(|s| s.row_count))
                .unwrap_or(0);
            if observed < known.max(1).saturating_mul(2) {
                continue;
            }
            let mut info = cached.info.clone();
            info.cardinality = Some(observed);
            let corrected = Arc::new(FetchedTable {
                info,
                stats: Some(TableStatistics {
                    row_count: Some(observed),
                    ..TableStatistics::default()
                }),
                caps: cached.caps.clone(),
                checks: cached.checks.clone(),
                fetched_at: Instant::now(),
                feedback: true,
            });
            self.inner.meta_cache.write().insert(key.clone(), corrected);
            self.inner.metrics.record_card_feedback();
            if !touched_servers.contains(&key.0) {
                touched_servers.push(key.0);
            }
        }
        // Plans costed against the stale bundles must not be reused.
        for server in touched_servers {
            let evicted = self.inner.plan_cache.lock().purge_server(&server);
            self.inner.metrics.record_plan_cache_evictions(evicted);
        }
    }

    /// Run any statement without parameters.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        self.execute_with_params(sql, HashMap::new())
    }

    /// Run any statement with `@name` parameter values.
    pub fn execute_with_params(
        &self,
        sql: &str,
        params: HashMap<String, Value>,
    ) -> Result<QueryResult> {
        let (_activity, query_waits) = self.begin_statement(sql);
        let tracing = self.inner.trace.read().enabled;
        // One prune log per statement: members degraded mode skips land
        // here and surface in EXPLAIN ANALYZE / sys.dm_exec_requests.
        let pruned = Arc::new(PruneLog::default());
        // Plan-cache fast path: a SELECT (bare or under EXPLAIN ANALYZE)
        // is auto-parameterized and served from — or compiled into — the
        // cache. Statements the fast path declines fall through unchanged.
        if self.plan_cache_enabled() {
            if let Some(fp) = fingerprint(sql) {
                // Plain EXPLAIN never executes; keep it on the classic path.
                if fp.explain != Some(false) {
                    let analyze = fp.explain == Some(true);
                    let tracer = tracing.then(|| TraceBuilder::new(sql));
                    // Per-operator spans need runtime stats, so tracing
                    // instruments the plan even outside EXPLAIN ANALYZE —
                    // as do the query store, the cardinality feedback loop
                    // and the slow-query ring's annotation summary.
                    let collector = (analyze || tracing || self.observe_runtime())
                        .then(|| Arc::new(RuntimeStatsCollector::new()));
                    let start = Instant::now();
                    if let Some(outcome) = self.run_fingerprinted(
                        &fp,
                        &params,
                        collector.clone(),
                        tracer.as_ref(),
                        &pruned,
                    ) {
                        let wait_snapshot = query_waits.snapshot();
                        let trace = tracer.map(|t| {
                            t.set_waits(wait_snapshot);
                            Arc::new(t.finish())
                        });
                        let kind = if analyze {
                            StatementKind::ExplainAnalyze
                        } else {
                            StatementKind::Select
                        };
                        if let (Ok((result, entry, _)), Some(collector)) = (&outcome, &collector) {
                            self.observe_execution(
                                &fp.template,
                                &entry.plan,
                                &collector.snapshot(),
                                start.elapsed(),
                                result.rows.len() as u64,
                                query_waits.as_ref(),
                            );
                        }
                        let result =
                            outcome.map(|(result, entry, hit)| match (analyze, &collector) {
                                (true, Some(collector)) => {
                                    let mut report =
                                        self.cached_report(result, &entry, hit, collector, &pruned);
                                    report.waits = Some(wait_snapshot);
                                    report.trace = trace.clone();
                                    report.to_query_result()
                                }
                                _ => result,
                            });
                        let rows = match &result {
                            Ok(r) => r.rows_affected.unwrap_or(r.rows.len() as u64),
                            Err(_) => 0,
                        };
                        self.end_statement(
                            kind,
                            sql,
                            start.elapsed(),
                            rows,
                            result.as_ref().err().map(|e| e.to_string()),
                            &query_waits,
                            &pruned,
                            Self::statement_tags(Some(&fp.template), collector.as_ref(), &pruned),
                        );
                        if let Some(trace) = trace {
                            *self.inner.last_trace.lock() = Some(trace);
                        }
                        return result;
                    }
                }
            }
        }
        let mut tracer = tracing.then(|| TraceBuilder::new(sql));
        let began = Instant::now();
        let parsed = match parse_statement(sql) {
            Ok(stmt) => stmt,
            Err(e) => {
                self.inner.metrics.record_parse_error();
                return Err(e);
            }
        };
        record_wait(WaitClass::PlanCompile, began.elapsed());
        if let Some(tr) = &tracer {
            tr.stage("parse", began);
        }
        let kind = match &parsed {
            Statement::Select(_) => StatementKind::Select,
            Statement::Insert(_) => StatementKind::Insert,
            Statement::Update(_) => StatementKind::Update,
            Statement::Delete(_) => StatementKind::Delete,
            Statement::Explain { analyze: false, .. } => StatementKind::Explain,
            Statement::Explain { analyze: true, .. } => StatementKind::ExplainAnalyze,
        };
        let start = Instant::now();
        // Collector of the executed SELECT (when one was attached), kept
        // for the statement tags below.
        let mut exec_collector: Option<Arc<RuntimeStatsCollector>> = None;
        let result = match parsed {
            Statement::Select(stmt) => {
                let collector = (tracer.is_some() || self.observe_runtime())
                    .then(|| Arc::new(RuntimeStatsCollector::new()));
                exec_collector = collector.clone();
                match self.run_select_pipeline(
                    &stmt,
                    params,
                    collector.clone(),
                    tracer.as_ref(),
                    &pruned,
                ) {
                    Ok((result, plan, _, _)) => {
                        if let Some(c) = &collector {
                            self.observe_execution(
                                sql,
                                &plan,
                                &c.snapshot(),
                                start.elapsed(),
                                result.rows.len() as u64,
                                query_waits.as_ref(),
                            );
                        }
                        Ok(result)
                    }
                    Err(e) => Err(e),
                }
            }
            Statement::Insert(stmt) => dml::run_insert(self, &stmt, &params),
            Statement::Update(stmt) => dml::run_update(self, &stmt, &params),
            Statement::Delete(stmt) => dml::run_delete(self, &stmt, &params),
            Statement::Explain {
                analyze: false,
                stmt,
            } => self
                .explain_select(&stmt, &params)
                .map(|plan| text_result(&plan.render())),
            Statement::Explain {
                analyze: true,
                stmt,
            } => match self.analyze_select(&stmt, params, tracer.as_ref(), &pruned) {
                Ok(mut report) => {
                    report.waits = Some(query_waits.snapshot());
                    // The trace renders inside the report, so finish it
                    // before the report turns into text.
                    if let Some(tr) = tracer.take() {
                        tr.set_waits(query_waits.snapshot());
                        let trace = Arc::new(tr.finish());
                        *self.inner.last_trace.lock() = Some(Arc::clone(&trace));
                        report.trace = Some(trace);
                    }
                    Ok(report.to_query_result())
                }
                Err(e) => Err(e),
            },
        };
        let rows = match &result {
            Ok(r) => r.rows_affected.unwrap_or(r.rows.len() as u64),
            Err(_) => 0,
        };
        self.end_statement(
            kind,
            sql,
            start.elapsed(),
            rows,
            result.as_ref().err().map(|e| e.to_string()),
            &query_waits,
            &pruned,
            Self::statement_tags(None, exec_collector.as_ref(), &pruned),
        );
        if let Some(tr) = tracer {
            tr.set_waits(query_waits.snapshot());
            *self.inner.last_trace.lock() = Some(Arc::new(tr.finish()));
        }
        result
    }

    /// Run a SELECT (alias of [`Engine::execute`] that asserts a rowset).
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        self.execute(sql)
    }

    pub fn query_with_params(
        &self,
        sql: &str,
        params: HashMap<String, Value>,
    ) -> Result<QueryResult> {
        self.execute_with_params(sql, params)
    }

    /// Optimize without executing: the plan and search telemetry.
    pub fn explain(&self, sql: &str) -> Result<ExplainPlan> {
        self.explain_with_params(sql, HashMap::new())
    }

    pub fn explain_with_params(
        &self,
        sql: &str,
        params: HashMap<String, Value>,
    ) -> Result<ExplainPlan> {
        let stmt = match parse_statement(sql)? {
            Statement::Select(stmt) => stmt,
            // Tolerate an explicit EXPLAIN wrapper.
            Statement::Explain { stmt, .. } => *stmt,
            _ => {
                return Err(DhqpError::Unsupported(
                    "EXPLAIN supports SELECT statements".into(),
                ))
            }
        };
        self.explain_select(&stmt, &params)
    }

    fn explain_select(
        &self,
        stmt: &SelectStmt,
        params: &HashMap<String, Value>,
    ) -> Result<ExplainPlan> {
        let bound = Binder::new(self, params).bind_select(stmt)?;
        let optimizer = Optimizer::new(self.optimizer_config());
        let mut registry = bound.registry;
        let (plan, stats) = optimizer.optimize(bound.tree, &mut registry, bound.required)?;
        Ok(ExplainPlan::new(&plan, stats))
    }

    /// Execute a SELECT with per-operator runtime statistics attached and
    /// return the full `EXPLAIN ANALYZE` report. Accepts a bare SELECT or
    /// an `EXPLAIN [ANALYZE]` wrapper.
    pub fn execute_analyze(&self, sql: &str) -> Result<AnalyzeReport> {
        self.execute_analyze_with_params(sql, HashMap::new())
    }

    pub fn execute_analyze_with_params(
        &self,
        sql: &str,
        params: HashMap<String, Value>,
    ) -> Result<AnalyzeReport> {
        let (_activity, query_waits) = self.begin_statement(sql);
        let tracing = self.inner.trace.read().enabled;
        let pruned = Arc::new(PruneLog::default());
        if self.plan_cache_enabled() {
            if let Some(fp) = fingerprint(sql) {
                let tracer = tracing.then(|| TraceBuilder::new(sql));
                let collector = Arc::new(RuntimeStatsCollector::new());
                let start = Instant::now();
                if let Some(outcome) = self.run_fingerprinted(
                    &fp,
                    &params,
                    Some(Arc::clone(&collector)),
                    tracer.as_ref(),
                    &pruned,
                ) {
                    if let Ok((result, entry, _)) = &outcome {
                        self.observe_execution(
                            &fp.template,
                            &entry.plan,
                            &collector.snapshot(),
                            start.elapsed(),
                            result.rows.len() as u64,
                            query_waits.as_ref(),
                        );
                    }
                    let wait_snapshot = query_waits.snapshot();
                    let trace = tracer.map(|t| {
                        t.set_waits(wait_snapshot);
                        Arc::new(t.finish())
                    });
                    if let Some(trace) = &trace {
                        *self.inner.last_trace.lock() = Some(Arc::clone(trace));
                    }
                    return outcome.map(|(result, entry, hit)| {
                        let mut report =
                            self.cached_report(result, &entry, hit, &collector, &pruned);
                        report.waits = Some(wait_snapshot);
                        report.trace = trace.clone();
                        report
                    });
                }
            }
        }
        let tracer = tracing.then(|| TraceBuilder::new(sql));
        let began = Instant::now();
        let stmt = match parse_statement(sql)? {
            Statement::Select(stmt) => stmt,
            Statement::Explain { stmt, .. } => *stmt,
            _ => {
                return Err(DhqpError::Unsupported(
                    "EXPLAIN ANALYZE supports SELECT statements".into(),
                ))
            }
        };
        record_wait(WaitClass::PlanCompile, began.elapsed());
        if let Some(tr) = &tracer {
            tr.stage("parse", began);
        }
        let start = Instant::now();
        let report = self.analyze_select(&stmt, params, tracer.as_ref(), &pruned);
        if let Ok(r) = &report {
            self.observe_execution(
                sql,
                &r.plan,
                &r.runtime,
                start.elapsed(),
                r.result.rows.len() as u64,
                query_waits.as_ref(),
            );
        }
        let wait_snapshot = query_waits.snapshot();
        let trace = tracer.map(|t| {
            t.set_waits(wait_snapshot);
            Arc::new(t.finish())
        });
        if let Some(trace) = &trace {
            *self.inner.last_trace.lock() = Some(Arc::clone(trace));
        }
        report.map(|mut r| {
            r.waits = Some(wait_snapshot);
            r.trace = trace;
            r
        })
    }

    fn analyze_select(
        &self,
        stmt: &SelectStmt,
        params: HashMap<String, Value>,
        tracer: Option<&TraceBuilder>,
        pruned: &Arc<PruneLog>,
    ) -> Result<AnalyzeReport> {
        let collector = Arc::new(RuntimeStatsCollector::new());
        let (result, plan, stats, used_feedback) =
            self.run_select_pipeline(stmt, params, Some(Arc::clone(&collector)), tracer, pruned)?;
        let explain = ExplainPlan::new(&plan, stats);
        Ok(AnalyzeReport {
            result,
            runtime: collector.snapshot(),
            plan,
            explain,
            cache_hit: None,
            stats_age: None,
            trace: None,
            waits: None,
            pruned: pruned.members(),
            startup_pruned: pruned.startup_members(),
            feedback: used_feedback,
        })
    }

    /// An [`AnalyzeReport`] for an execution served through the plan cache.
    fn cached_report(
        &self,
        result: QueryResult,
        entry: &CachedSelect,
        hit: bool,
        collector: &Arc<RuntimeStatsCollector>,
        pruned: &Arc<PruneLog>,
    ) -> AnalyzeReport {
        AnalyzeReport {
            result,
            runtime: collector.snapshot(),
            plan: entry.plan.clone(),
            explain: ExplainPlan::new(&entry.plan, entry.opt_stats.clone()),
            cache_hit: Some(hit),
            stats_age: entry.stats_age(),
            trace: None,
            waits: None,
            pruned: pruned.members(),
            startup_pruned: pruned.startup_members(),
            feedback: entry.used_feedback,
        }
    }

    /// The plan-cache fast path for one fingerprinted SELECT. `None` means
    /// "not eligible" — the caller falls through to the uncached pipeline,
    /// which re-parses the original text and reproduces any error exactly.
    fn run_fingerprinted(
        &self,
        fp: &Fingerprint,
        user_params: &HashMap<String, Value>,
        stats: Option<Arc<RuntimeStatsCollector>>,
        tracer: Option<&TraceBuilder>,
        pruned: &Arc<PruneLog>,
    ) -> Option<Result<(QueryResult, Arc<CachedSelect>, bool)>> {
        // User parameters in the reserved namespace would collide with the
        // extracted literals.
        if user_params
            .keys()
            .any(|k| k.starts_with(dhqp_sqlfront::AUTO_PARAM_PREFIX))
        {
            return None;
        }
        let mut params = user_params.clone();
        for (name, value) in &fp.params {
            params.insert(name.clone(), value.clone());
        }
        if let Some(entry) = self.plan_cache_lookup(&fp.template) {
            if let Some(tr) = tracer {
                tr.stage_with(
                    "plan-cache",
                    Instant::now(),
                    vec![("hit".to_string(), "true".to_string())],
                );
            }
            let began = Instant::now();
            let res = self.execute_plan(
                &entry.plan,
                &entry.registry,
                &entry.output,
                &entry.view_members,
                params,
                stats.clone(),
                pruned,
            );
            if let Ok(r) = &res {
                entry.note_execution(began.elapsed(), r.rows.len() as u64);
            }
            if let Some(tr) = tracer {
                match &stats {
                    Some(c) => tr.stage_execute(began, &entry.plan, &c.snapshot()),
                    None => tr.stage("execute", began),
                }
            }
            return Some(res.map(|r| (r, entry, true)));
        }
        // Miss: compile the template once, cache it if the statement's
        // compile is pure, then execute. Any template-side parse, bind or
        // optimize failure declines instead of erroring.
        let began = Instant::now();
        let stmt = match parse_statement(&fp.template) {
            Ok(Statement::Select(stmt)) => stmt,
            _ => return None,
        };
        if !plan_cache::is_cacheable(&stmt) {
            return None;
        }
        record_wait(WaitClass::PlanCompile, began.elapsed());
        if let Some(tr) = tracer {
            tr.stage("parse", began);
        }
        let began = Instant::now();
        let bound = Binder::new(self, &params).bind_select(&stmt).ok()?;
        record_wait(WaitClass::PlanCompile, began.elapsed());
        if let Some(tr) = tracer {
            tr.stage("bind", began);
        }
        let BoundSelect {
            tree,
            mut registry,
            output,
            required,
            view_members,
            dep_servers,
            stats_as_of,
            used_feedback,
        } = bound;
        let optimizer = Optimizer::new(self.optimizer_config());
        let deps = self.current_deps(dep_servers);
        let began = Instant::now();
        let (plan, opt_stats) = optimizer.optimize(tree, &mut registry, required).ok()?;
        record_wait(WaitClass::PlanCompile, began.elapsed());
        if let Some(tr) = tracer {
            tr.stage_optimize(began, &opt_stats);
        }
        let entry = Arc::new(CachedSelect {
            plan,
            registry: Arc::new(registry),
            output,
            view_members,
            opt_stats,
            deps,
            stats_as_of,
            used_feedback,
            execution_count: AtomicU64::new(0),
            total_elapsed_us: AtomicU64::new(0),
            total_rows: AtomicU64::new(0),
        });
        self.inner.metrics.record_plan_cache_miss();
        if has_hook() {
            emit_event("plan_cache_miss", &[("template", fp.template.clone())]);
        }
        let evicted = self
            .inner
            .plan_cache
            .lock()
            .insert(fp.template.clone(), Arc::clone(&entry));
        self.inner.metrics.record_plan_cache_evictions(evicted);
        let began = Instant::now();
        let res = self.execute_plan(
            &entry.plan,
            &entry.registry,
            &entry.output,
            &entry.view_members,
            params,
            stats.clone(),
            pruned,
        );
        if let Ok(r) = &res {
            entry.note_execution(began.elapsed(), r.rows.len() as u64);
        }
        if let Some(tr) = tracer {
            match &stats {
                Some(c) => tr.stage_execute(began, &entry.plan, &c.snapshot()),
                None => tr.stage("execute", began),
            }
        }
        Some(res.map(|r| (r, entry, false)))
    }

    fn run_select(&self, stmt: &SelectStmt, params: HashMap<String, Value>) -> Result<QueryResult> {
        // Internal path (DML subqueries, scalar subqueries): prunes are
        // tracked for the engine counters but not attributed to a summary.
        let pruned = Arc::new(PruneLog::default());
        self.run_select_pipeline(stmt, params, None, None, &pruned)
            .map(|(result, _, _, _)| result)
    }

    /// Bind, optimize and execute one SELECT. When `stats` is given, every
    /// operator is instrumented and flushes into the collector. When
    /// `tracer` is given, each stage records a span (and the execute span
    /// gets per-operator children if `stats` is also present).
    fn run_select_pipeline(
        &self,
        stmt: &SelectStmt,
        params: HashMap<String, Value>,
        stats: Option<Arc<RuntimeStatsCollector>>,
        tracer: Option<&TraceBuilder>,
        pruned: &Arc<PruneLog>,
    ) -> Result<(
        QueryResult,
        PhysNode,
        dhqp_optimizer::search::OptimizerStats,
        bool,
    )> {
        let began = Instant::now();
        let bound = Binder::new(self, &params).bind_select(stmt)?;
        record_wait(WaitClass::PlanCompile, began.elapsed());
        if let Some(tr) = tracer {
            tr.stage("bind", began);
        }
        let optimizer = Optimizer::new(self.optimizer_config());
        let BoundSelect {
            tree,
            mut registry,
            output,
            required,
            view_members,
            used_feedback,
            ..
        } = bound;
        let began = Instant::now();
        let (plan, opt_stats) = optimizer.optimize(tree, &mut registry, required)?;
        record_wait(WaitClass::PlanCompile, began.elapsed());
        if let Some(tr) = tracer {
            tr.stage_optimize(began, &opt_stats);
        }
        let registry = Arc::new(registry);
        let began = Instant::now();
        let result = self.execute_plan(
            &plan,
            &registry,
            &output,
            &view_members,
            params,
            stats.clone(),
            pruned,
        )?;
        if let Some(tr) = tracer {
            match &stats {
                Some(c) => tr.stage_execute(began, &plan, &c.snapshot()),
                None => tr.stage("execute", began),
            }
        }
        Ok((result, plan, opt_stats, used_feedback))
    }

    /// Execute one already-optimized plan — the shared tail of the cached
    /// and uncached pipelines. Delayed schema validation runs here on every
    /// execution, so even a cached plan re-checks the partitioned-view
    /// members it touches.
    #[allow(clippy::too_many_arguments)]
    fn execute_plan(
        &self,
        plan: &PhysNode,
        registry: &Arc<dhqp_optimizer::props::ColumnRegistry>,
        output: &[(String, dhqp_optimizer::ColumnId)],
        view_members: &[(String, usize)],
        params: HashMap<String, Value>,
        stats: Option<Arc<RuntimeStatsCollector>>,
        pruned: &Arc<PruneLog>,
    ) -> Result<QueryResult> {
        let catalog = Arc::new(EngineCatalog {
            inner: Arc::clone(&self.inner),
        });
        let batch = self.batch_config();
        let mut ctx = ExecContext::new(catalog, params, Arc::clone(registry))
            .with_counters(self.inner.metrics.exec_counters())
            .with_parallel(self.parallel_config())
            .with_retry(self.retry_policy())
            .with_batch(batch.clone())
            .with_health(Arc::clone(&self.inner.health))
            .with_degraded(*self.inner.degraded.read())
            .with_runtime_prune(*self.inner.runtime_prune.read())
            .with_pruned(Arc::clone(pruned));
        if let Some(collector) = stats {
            ctx = ctx.with_stats(collector);
        }
        self.validate_view_schemas(plan, view_members, &ctx)?;
        let mut rowset = dhqp_executor::open(plan, &ctx)?;
        // The root drain is a drive point: with batching on, the engine
        // pulls DHQP_BATCH_SIZE-row chunks through the whole pipeline.
        let all_rows = if batch.enabled {
            rowset.collect_rows_batched(batch.batch_size)?
        } else {
            rowset.collect_rows()?
        };
        // Trim to the visible SELECT-list columns, in order.
        let positions: Vec<usize> = output
            .iter()
            .map(|(name, id)| {
                plan.output.iter().position(|c| c == id).ok_or_else(|| {
                    DhqpError::Execute(format!("output column '{name}' missing from plan"))
                })
            })
            .collect::<Result<Vec<_>>>()?;
        let schema = Schema::new(
            output
                .iter()
                .map(|(name, id)| {
                    let m = registry.meta(*id);
                    dhqp_types::Column {
                        name: name.clone(),
                        data_type: m.data_type,
                        nullable: m.nullable,
                    }
                })
                .collect(),
        );
        let rows = all_rows
            .into_iter()
            .map(|r| Row::new(positions.iter().map(|&p| r.values[p].clone()).collect()))
            .collect();
        // Drop the operator tree now so instrumented operators flush their
        // runtime stats before the caller snapshots the collector.
        drop(rowset);
        Ok(QueryResult {
            schema,
            rows,
            rows_affected: None,
        })
    }

    /// Delayed schema validation (§4.1.5): at execution time, re-check
    /// against live metadata exactly those partitioned-view members the
    /// plan will actually touch — compile never contacts members, pruned
    /// members are never contacted at all, and members behind a failing
    /// startup filter are skipped along with their subtree.
    fn validate_view_schemas(
        &self,
        plan: &dhqp_optimizer::PhysNode,
        view_members: &[(String, usize)],
        ctx: &ExecContext,
    ) -> Result<()> {
        use dhqp_executor::eval::{eval_predicate, RowEnv};
        use dhqp_optimizer::PhysicalOp;
        if view_members.is_empty() {
            return Ok(());
        }
        // (server-lowercase-or-empty, table-lowercase) → (view, member idx)
        let mut map: HashMap<(String, String), (String, usize)> = HashMap::new();
        for (view_name, idx) in view_members {
            if let Some(view) = self.partitioned_view(view_name) {
                let m = &view.members[*idx];
                map.insert(
                    (
                        m.server.clone().unwrap_or_default().to_lowercase(),
                        m.table.to_lowercase(),
                    ),
                    (view_name.clone(), *idx),
                );
            }
        }
        fn collect(
            node: &dhqp_optimizer::PhysNode,
            ctx: &ExecContext,
            map: &HashMap<(String, String), (String, usize)>,
            out: &mut Vec<(String, usize)>,
        ) -> Result<()> {
            match &node.op {
                PhysicalOp::StartupFilter { predicate } => {
                    let positions = HashMap::new();
                    let row = Row::new(vec![]);
                    let env = RowEnv {
                        positions: &positions,
                        row: &row,
                        ctx,
                    };
                    if !eval_predicate(predicate, &env)? {
                        return Ok(()); // pruned at runtime: subtree never opens
                    }
                }
                PhysicalOp::TableScan { meta }
                | PhysicalOp::IndexRange { meta, .. }
                | PhysicalOp::RemoteScan { meta }
                | PhysicalOp::RemoteRange { meta, .. }
                | PhysicalOp::RemoteFetch { meta } => {
                    let key = (
                        meta.source.server_name().unwrap_or_default().to_lowercase(),
                        meta.table.to_lowercase(),
                    );
                    if let Some(hit) = map.get(&key) {
                        if !out.contains(hit) {
                            out.push(hit.clone());
                        }
                    }
                }
                PhysicalOp::RemoteQuery { server, sql, .. }
                | PhysicalOp::SemiJoinReduce { server, sql, .. } => {
                    let sql_lower = sql.to_lowercase();
                    for ((srv, table), hit) in map {
                        if srv == &server.to_lowercase()
                            && sql_lower.contains(&format!("[{table}]"))
                            && !out.contains(hit)
                        {
                            out.push(hit.clone());
                        }
                    }
                }
                _ => {}
            }
            for c in &node.children {
                collect(c, ctx, map, out)?;
            }
            Ok(())
        }
        let mut touched = Vec::new();
        collect(plan, ctx, &map, &mut touched)?;
        for (view_name, idx) in touched {
            let Some(view) = self.partitioned_view(&view_name) else {
                continue;
            };
            let member = &view.members[idx];
            let current = self.fresh_table_info(member.server.as_deref(), &member.table)?;
            view.validate_member(idx, &current)?;
        }
        Ok(())
    }

    /// Run a SELECT statement AST (DML INSERT ... SELECT path).
    pub(crate) fn query_select_internal(
        &self,
        stmt: &SelectStmt,
        params: &HashMap<String, Value>,
    ) -> Result<QueryResult> {
        self.run_select(stmt, params.clone())
    }

    /// Evaluate an uncorrelated scalar subquery eagerly at bind time.
    pub(crate) fn evaluate_scalar_subquery(
        &self,
        stmt: &SelectStmt,
        params: &HashMap<String, Value>,
    ) -> Result<Value> {
        let result = self.run_select(stmt, params.clone())?;
        if result.schema.len() != 1 {
            return Err(DhqpError::Bind(
                "scalar subquery must select exactly one column".into(),
            ));
        }
        match result.rows.len() {
            0 => Ok(Value::Null),
            1 => Ok(result.rows[0].get(0).clone()),
            n => Err(DhqpError::Execute(format!(
                "scalar subquery returned {n} rows"
            ))),
        }
    }

    /// The executor counters shared with every execution context (used by
    /// bind-time pass-through reads so their retries are counted too).
    pub(crate) fn exec_counters(&self) -> Arc<dhqp_executor::ExecCounters> {
        self.inner.metrics.exec_counters()
    }

    /// Build an execution context for internal evaluation (DML paths).
    pub(crate) fn exec_context(
        &self,
        params: HashMap<String, Value>,
        registry: Arc<dhqp_optimizer::props::ColumnRegistry>,
    ) -> ExecContext {
        let catalog = Arc::new(EngineCatalog {
            inner: Arc::clone(&self.inner),
        });
        ExecContext::new(catalog, params, registry)
            .with_counters(self.inner.metrics.exec_counters())
            .with_parallel(self.parallel_config())
            .with_retry(self.retry_policy())
            .with_batch(self.batch_config())
            .with_health(Arc::clone(&self.inner.health))
            // DML never prunes: writing around a quarantined member would
            // silently lose rows, so internal contexts always fail.
            .with_degraded(DegradedMode::Fail)
            .with_runtime_prune(*self.inner.runtime_prune.read())
    }

    // ---- observability -----------------------------------------------------

    /// Point-in-time copy of every engine counter: statements by kind,
    /// metadata-cache hits/misses, spool-cache activity, remote round
    /// trips, DTC commit/abort outcomes and full-text searches.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot(self.inner.dtc.telemetry())
    }

    /// The most recent statement summaries, oldest first. Ring capacity
    /// defaults to [`crate::metrics::RECENT_QUERY_CAPACITY`] and is set by
    /// [`EngineBuilder::recent_query_capacity`] / `DHQP_RECENT_QUERIES`.
    pub fn recent_queries(&self) -> Vec<QuerySummary> {
        self.inner.metrics.recent_queries()
    }

    /// Statements at or above the armed slow-query threshold
    /// ([`EngineBuilder::slow_query_threshold`] / `DHQP_SLOW_QUERY_MS`),
    /// oldest first. Empty when no threshold is armed.
    pub fn slow_queries(&self) -> Vec<QuerySummary> {
        self.inner.metrics.slow_queries()
    }

    /// Current hierarchical-tracing configuration.
    pub fn trace_config(&self) -> TraceConfig {
        *self.inner.trace.read()
    }

    /// Arm or disarm hierarchical span tracing. Overrides `DHQP_TRACE`.
    pub fn set_trace_config(&self, config: TraceConfig) {
        *self.inner.trace.write() = config;
    }

    /// The span tree of the most recent statement run with tracing armed,
    /// or `None` if no statement has been traced.
    pub fn last_trace(&self) -> Option<Arc<QueryTrace>> {
        self.inner.last_trace.lock().clone()
    }

    /// Cumulative per-class wait accounting since engine start (or the
    /// last clear) — the `sys.dm_os_wait_stats` data.
    pub fn wait_stats(&self) -> WaitSnapshot {
        self.inner.metrics.wait_snapshot()
    }

    /// Zero the wait accounting —
    /// `DBCC SQLPERF('sys.dm_os_wait_stats', CLEAR)`.
    pub fn clear_wait_stats(&self) {
        self.inner.metrics.clear_waits();
    }

    /// Zero every engine counter, query ring, latency histogram and wait
    /// class, plus the health registry's resettable counters (breaker
    /// opens, probes). Breaker *state* survives — a metrics reset must not
    /// quietly re-admit a quarantined member. The DTC's outcome log and
    /// counters are durable state and are not touched; reset them by
    /// creating a new engine.
    pub fn reset_metrics(&self) {
        self.inner.metrics.reset();
        self.inner.health.reset_counters();
    }

    /// Current event-bus configuration.
    pub fn event_config(&self) -> EventConfig {
        self.inner.events.read().config()
    }

    /// Reconfigure event capture. Replaces the bus: the ring starts empty,
    /// like restarting an XEvents session. Overrides `DHQP_EVENTS`.
    pub fn set_event_config(&self, config: EventConfig) {
        *self.inner.events.write() = Arc::new(EventBus::new(config));
    }

    /// The retained events, oldest first — the `sys.dm_xe_recent_events`
    /// data. Empty when the bus is disabled.
    pub fn recent_events(&self) -> Vec<Event> {
        self.inner.events.read().recent()
    }

    /// Attach a sink observing every subsequently accepted event (dropped
    /// when the bus is replaced via [`Engine::set_event_config`]).
    pub fn add_event_sink(&self, sink: Box<dyn EventSink>) {
        self.inner.events.read().add_sink(sink);
    }

    // ---- query store & cardinality feedback --------------------------------

    pub fn query_store_enabled(&self) -> bool {
        *self.inner.query_store_on.read()
    }

    /// Switch the query store on or off. Turning it off drops the history
    /// (like `ALTER DATABASE ... SET QUERY_STORE = OFF` purging on reset).
    pub fn set_query_store_enabled(&self, enabled: bool) {
        *self.inner.query_store_on.write() = enabled;
        if !enabled {
            self.inner.query_store.lock().clear();
        }
    }

    /// Bound the number of fingerprints tracked (LRU-evicting down).
    pub fn set_query_store_capacity(&self, capacity: usize) {
        self.inner.query_store.lock().set_capacity(capacity);
    }

    /// Fingerprints currently tracked.
    pub fn query_store_len(&self) -> usize {
        self.inner.query_store.lock().len()
    }

    /// Point-in-time copy of the store: per-fingerprint plan + runtime
    /// history, the data behind the three `sys.query_store_*` DMVs.
    pub fn query_store_queries(&self) -> Vec<crate::query_store::QueryStats> {
        self.inner.query_store.lock().snapshot()
    }

    pub fn clear_query_store(&self) {
        self.inner.query_store.lock().clear();
    }

    pub fn card_feedback_enabled(&self) -> bool {
        *self.inner.card_feedback.read()
    }

    /// Toggle the cardinality feedback loop. A compile-side decision like
    /// statistics freshness, not a plan property: no epoch bump — the
    /// loop's own writebacks purge exactly the affected plans.
    pub fn set_card_feedback(&self, on: bool) {
        *self.inner.card_feedback.write() = on;
    }
}

/// Full-table remote observations eligible for cardinality feedback:
/// `(server, table, observed rows per open)`. Only whole, unfiltered
/// fetches qualify — a `WHERE`/`JOIN`/`GROUP BY`/`TOP`-shaped statement or
/// a semi-join-reduced probe observes a subset of the table, and a
/// correlated (parameterized) statement observes one binding's slice —
/// so observed rows are a true lower bound on the table's cardinality.
fn feedback_candidates(
    plan: &PhysNode,
    runtime: &HashMap<usize, NodeRuntime>,
) -> Vec<(String, String, u64)> {
    /// The bare table of `SELECT <cols> FROM <table>` — `None` for any
    /// statement shape whose row count is not the table's.
    fn bare_table(sql: &str) -> Option<String> {
        let upper = sql.to_ascii_uppercase();
        const REDUCERS: [&str; 7] = [
            " WHERE ",
            " JOIN ",
            " GROUP BY ",
            " ORDER BY ",
            " TOP ",
            " DISTINCT ",
            " LIMIT ",
        ];
        if REDUCERS.iter().any(|m| upper.contains(m)) {
            return None;
        }
        let from = upper.find(" FROM ")?;
        let table = sql[from + " FROM ".len()..].trim();
        if table.is_empty() || table.starts_with('(') || table.contains(' ') {
            return None;
        }
        Some(
            table
                .trim_matches(|c| c == '[' || c == ']' || c == '"')
                .to_string(),
        )
    }
    fn walk(
        node: &PhysNode,
        id: usize,
        runtime: &HashMap<usize, NodeRuntime>,
        out: &mut Vec<(String, String, u64)>,
    ) {
        let target = match &node.op {
            PhysicalOp::RemoteScan { meta } => meta
                .source
                .server_name()
                .map(|s| (s.to_string(), meta.table.clone())),
            PhysicalOp::RemoteQuery {
                server,
                sql,
                params,
                ..
            } if params.is_empty() => bare_table(sql).map(|t| (server.to_string(), t)),
            _ => None,
        };
        if let (Some((server, table)), Some(rt)) = (target, runtime.get(&id)) {
            if let Some(avg) = rt.rows.checked_div(rt.opens) {
                out.push((server, table, avg));
            }
        }
        let mut child_id = id + 1;
        for child in &node.children {
            walk(child, child_id, runtime, out);
            child_id += child.subtree_size();
        }
    }
    let mut out = Vec::new();
    walk(plan, 0, runtime, &mut out);
    out
}
