//! XEvents-style structured event bus: a bounded ring of typed events.
//!
//! SQL Server's Extended Events expose engine internals as a stream of
//! typed, filterable events; this module is that surface for the DHQP.
//! The engine publishes lifecycle events (query start/end, plan-cache
//! hit/miss, slow query), and the layers below it — the network simulator,
//! the retry rowset, the exchange, the transaction coordinator — raise
//! events through the thread-local [`dhqp_oledb::EventHook`] the engine
//! installs per statement, which this bus implements.
//!
//! Events land in a bounded lock-free-claim ring (an atomic sequence
//! counter claims a slot; each slot is an independent mutex, so concurrent
//! publishers never contend on one lock) and are served back as
//! `sys.dm_xe_recent_events`. Pluggable [`EventSink`]s observe every
//! accepted event as it is published — [`JsonlSink`] streams them as JSON
//! lines.
//!
//! The bus is configured per engine via [`EventConfig`]: disabled entirely
//! (the default — publishing is a single load then return), all kinds
//! (`DHQP_EVENTS=1`), or a comma-separated subset of kind names
//! (`DHQP_EVENTS=retry,fault`).

use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of event kinds (mask-indexed filtering).
pub const EVENT_KINDS: usize = 14;

/// The typed event taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A statement entered the engine.
    QueryStart,
    /// A statement finished (successfully or not).
    QueryEnd,
    /// A remote attempt was re-issued after a transient fault.
    RetryAttempt,
    /// The network simulator injected a fault.
    FaultInjected,
    /// A fingerprinted SELECT was served from the plan cache.
    PlanCacheHit,
    /// A fingerprinted SELECT was compiled and inserted.
    PlanCacheMiss,
    /// An exchange spawned its worker threads.
    ExchangeSpawn,
    /// An exchange joined its workers and reported their spans.
    ExchangeDrain,
    /// A 2PC state transition (preparing/committing/committed/...).
    TwoPhaseCommit,
    /// A statement crossed the armed slow-query threshold.
    SlowQuery,
    /// A metered link shipped one batch (one round trip) of rows.
    BatchFlush,
    /// A link's circuit breaker tripped open (member quarantined).
    BreakerOpen,
    /// A link's circuit breaker closed again (member re-admitted).
    BreakerClose,
    /// A fingerprint's latest execution used a different plan than its
    /// query-store history (regressions flagged in the attrs).
    PlanChange,
}

impl EventKind {
    /// Every kind, in declaration order (the mask index order).
    pub const ALL: [EventKind; EVENT_KINDS] = [
        EventKind::QueryStart,
        EventKind::QueryEnd,
        EventKind::RetryAttempt,
        EventKind::FaultInjected,
        EventKind::PlanCacheHit,
        EventKind::PlanCacheMiss,
        EventKind::ExchangeSpawn,
        EventKind::ExchangeDrain,
        EventKind::TwoPhaseCommit,
        EventKind::SlowQuery,
        EventKind::BatchFlush,
        EventKind::BreakerOpen,
        EventKind::BreakerClose,
        EventKind::PlanChange,
    ];

    /// The wire/display name, shared with the low-layer emitters.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::QueryStart => "query_start",
            EventKind::QueryEnd => "query_end",
            EventKind::RetryAttempt => "retry",
            EventKind::FaultInjected => "fault",
            EventKind::PlanCacheHit => "plan_cache_hit",
            EventKind::PlanCacheMiss => "plan_cache_miss",
            EventKind::ExchangeSpawn => "exchange_spawn",
            EventKind::ExchangeDrain => "exchange_drain",
            EventKind::TwoPhaseCommit => "2pc",
            EventKind::SlowQuery => "slow_query",
            EventKind::BatchFlush => "batch_flush",
            EventKind::BreakerOpen => "breaker_open",
            EventKind::BreakerClose => "breaker_close",
            EventKind::PlanChange => "plan_change",
        }
    }

    /// Parse a kind name (as emitted below the engine or listed in
    /// `DHQP_EVENTS`).
    pub fn from_name(name: &str) -> Option<EventKind> {
        EventKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    fn index(self) -> usize {
        EventKind::ALL
            .iter()
            .position(|k| *k == self)
            .expect("every kind is in ALL")
    }
}

/// One published event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic publication sequence number (bus-wide).
    pub seq: u64,
    /// Microseconds since the bus was created.
    pub timestamp_us: u64,
    pub kind: EventKind,
    /// Free-form `(key, value)` payload.
    pub attrs: Vec<(String, String)>,
}

impl Event {
    /// The payload flattened as `k=v k=v` — the DMV's `detail` column.
    pub fn detail(&self) -> String {
        let mut out = String::new();
        for (i, (k, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            let _ = write!(out, "{k}={v}");
        }
        out
    }

    /// One hand-rolled JSON object (the offline serde shim is marker-only).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"seq\":{},\"timestamp_us\":{},\"kind\":\"{}\",\"attrs\":{{",
            self.seq,
            self.timestamp_us,
            self.kind.name()
        );
        for (i, (k, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
        }
        out.push_str("}}");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Default ring capacity ([`EventConfig::capacity`]).
pub const EVENT_RING_CAPACITY: usize = 256;

/// Per-engine event-bus configuration: the master switch, a per-kind
/// filter mask and the ring capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventConfig {
    pub enabled: bool,
    /// Bit `i` set ⇒ `EventKind::ALL[i]` is captured.
    pub mask: u16,
    /// Ring slots; the newest `capacity` events are retained.
    pub capacity: usize,
}

impl Default for EventConfig {
    fn default() -> Self {
        EventConfig::disabled()
    }
}

impl EventConfig {
    /// Bus off: publishing returns immediately, nothing is retained.
    pub fn disabled() -> Self {
        EventConfig {
            enabled: false,
            mask: 0,
            capacity: EVENT_RING_CAPACITY,
        }
    }

    /// Capture every kind.
    pub fn all() -> Self {
        EventConfig {
            enabled: true,
            mask: u16::MAX,
            capacity: EVENT_RING_CAPACITY,
        }
    }

    /// Capture only the listed kinds.
    pub fn only(kinds: &[EventKind]) -> Self {
        let mut mask = 0u16;
        for k in kinds {
            mask |= 1 << k.index();
        }
        EventConfig {
            enabled: mask != 0,
            mask,
            capacity: EVENT_RING_CAPACITY,
        }
    }

    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// `DHQP_EVENTS`: unset, empty or `0` disables; `1` or `all` captures
    /// everything; otherwise a comma-separated list of kind names (unknown
    /// names are ignored; a list with no known names disables).
    pub fn from_env() -> Self {
        match std::env::var("DHQP_EVENTS") {
            Err(_) => EventConfig::disabled(),
            Ok(v) if v.is_empty() || v == "0" => EventConfig::disabled(),
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("all") => EventConfig::all(),
            Ok(v) => {
                let kinds: Vec<EventKind> = v
                    .split(',')
                    .filter_map(|name| EventKind::from_name(name.trim()))
                    .collect();
                EventConfig::only(&kinds)
            }
        }
    }

    /// Whether `kind` passes the filter.
    pub fn wants(&self, kind: EventKind) -> bool {
        self.enabled && self.mask & (1 << kind.index()) != 0
    }
}

/// Receiver observing every accepted event at publication time.
pub trait EventSink: Send + Sync {
    fn consume(&self, event: &Event);
}

/// Streams each event as one JSON line into a writer (a file, a captured
/// buffer in tests, ...).
pub struct JsonlSink<W: std::io::Write + Send> {
    writer: Mutex<W>,
}

impl<W: std::io::Write + Send> JsonlSink<W> {
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: Mutex::new(writer),
        }
    }
}

impl<W: std::io::Write + Send> EventSink for JsonlSink<W> {
    fn consume(&self, event: &Event) {
        let mut w = self.writer.lock();
        let _ = writeln!(std::io::Write::by_ref(&mut *w), "{}", event.to_json());
    }
}

/// The bounded event ring. An atomic sequence counter claims a slot per
/// publication (`seq % capacity`); each slot is its own mutex, so
/// concurrent publishers from exchange workers contend only when they wrap
/// onto the same slot.
pub struct EventBus {
    config: EventConfig,
    epoch: Instant,
    seq: AtomicU64,
    slots: Vec<Mutex<Option<Event>>>,
    sinks: Mutex<Vec<Box<dyn EventSink>>>,
}

impl EventBus {
    pub fn new(config: EventConfig) -> Self {
        let capacity = config.capacity.max(1);
        EventBus {
            config,
            epoch: Instant::now(),
            seq: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            sinks: Mutex::new(Vec::new()),
        }
    }

    pub fn config(&self) -> EventConfig {
        self.config
    }

    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// Attach a sink observing every subsequently accepted event.
    pub fn add_sink(&self, sink: Box<dyn EventSink>) {
        self.sinks.lock().push(sink);
    }

    /// Publish one event (dropped unless the filter wants its kind).
    pub fn publish(&self, kind: EventKind, attrs: Vec<(String, String)>) {
        if !self.config.wants(kind) {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let event = Event {
            seq,
            timestamp_us: self.epoch.elapsed().as_micros() as u64,
            kind,
            attrs,
        };
        for sink in self.sinks.lock().iter() {
            sink.consume(&event);
        }
        *self.slots[(seq % self.slots.len() as u64) as usize].lock() = Some(event);
    }

    /// The retained events, oldest first (at most `capacity` of them).
    pub fn recent(&self) -> Vec<Event> {
        let mut events: Vec<Event> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().clone())
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Total events accepted since creation (including overwritten ones).
    pub fn published(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }
}

/// The bridge from the low layers: string-keyed events raised through the
/// thread-local scope are translated into typed events. Unknown kinds are
/// dropped (an older emitter against a newer taxonomy must not panic).
impl dhqp_oledb::EventHook for EventBus {
    fn emit(&self, kind: &'static str, attrs: &[(&'static str, String)]) {
        if let Some(kind) = EventKind::from_name(kind) {
            self.publish(
                kind,
                attrs
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ev(bus: &EventBus, kind: EventKind, n: u64) {
        bus.publish(kind, vec![("n".to_string(), n.to_string())]);
    }

    #[test]
    fn ring_retains_the_newest_events_in_order() {
        let bus = EventBus::new(EventConfig::all().with_capacity(4));
        for i in 0..10 {
            ev(&bus, EventKind::RetryAttempt, i);
        }
        let recent = bus.recent();
        assert_eq!(recent.len(), 4);
        let seqs: Vec<u64> = recent.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(recent[0].detail(), "n=6");
        assert_eq!(bus.published(), 10);
    }

    #[test]
    fn filter_mask_drops_unwanted_kinds() {
        let bus = EventBus::new(EventConfig::only(&[EventKind::FaultInjected]));
        ev(&bus, EventKind::QueryStart, 0);
        ev(&bus, EventKind::FaultInjected, 1);
        ev(&bus, EventKind::SlowQuery, 2);
        let recent = bus.recent();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].kind, EventKind::FaultInjected);
        // Disabled bus drops everything.
        let off = EventBus::new(EventConfig::disabled());
        ev(&off, EventKind::FaultInjected, 3);
        assert!(off.recent().is_empty());
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(EventKind::from_name("nope"), None);
    }

    #[test]
    fn env_parsing_covers_all_shapes() {
        // from_env reads the live environment, so exercise the parser via
        // the constructors it dispatches to instead of mutating env vars
        // (tests run concurrently).
        assert!(!EventConfig::disabled().wants(EventKind::QueryStart));
        assert!(EventConfig::all().wants(EventKind::TwoPhaseCommit));
        let subset = EventConfig::only(&[EventKind::RetryAttempt, EventKind::FaultInjected]);
        assert!(subset.wants(EventKind::RetryAttempt));
        assert!(!subset.wants(EventKind::QueryEnd));
        assert!(!EventConfig::only(&[]).enabled);
    }

    #[test]
    fn jsonl_sink_streams_valid_lines() {
        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Buf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Buf::default();
        let bus = EventBus::new(EventConfig::all());
        bus.add_sink(Box::new(JsonlSink::new(buf.clone())));
        bus.publish(
            EventKind::FaultInjected,
            vec![("detail".to_string(), "drop \"mid\" stream".to_string())],
        );
        bus.publish(EventKind::QueryEnd, vec![]);
        let text = String::from_utf8(buf.0.lock().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"seq\":0,"));
        assert!(lines[0].contains("\"kind\":\"fault\""));
        assert!(lines[0].contains("drop \\\"mid\\\" stream"));
        assert!(lines[1].contains("\"kind\":\"query_end\""));
    }

    #[test]
    fn hook_translates_string_kinds() {
        use dhqp_oledb::EventHook as _;
        let bus = EventBus::new(EventConfig::all());
        bus.emit("retry", &[("attempt", "2".to_string())]);
        bus.emit("unknown_kind", &[]); // dropped, not a panic
        let recent = bus.recent();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].kind, EventKind::RetryAttempt);
        assert_eq!(recent[0].detail(), "attempt=2");
    }

    #[test]
    fn concurrent_publishers_never_lose_sequences() {
        let bus = Arc::new(EventBus::new(EventConfig::all().with_capacity(64)));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let bus = Arc::clone(&bus);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        ev(&bus, EventKind::ExchangeSpawn, i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(bus.published(), 400);
        let recent = bus.recent();
        assert_eq!(recent.len(), 64);
        // Strictly increasing sequence numbers — no slot double-counting.
        assert!(recent.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}
