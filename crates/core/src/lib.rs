//! `dhqp` — a distributed/heterogeneous query processor in Rust.
//!
//! This crate is the top of the stack described in the paper's Figure 1: a
//! relational engine whose optimizer and executor treat every data source —
//! the local storage engine, remote engines, full-text catalogs, mail
//! files, spreadsheets, CSV files — through one OLE DB-style provider
//! abstraction.
//!
//! ```
//! use dhqp::Engine;
//! use dhqp_types::Value;
//!
//! let engine = Engine::new("local");
//! engine.execute("CREATE-less API: tables are defined programmatically").ok();
//! # let _ = engine;
//! ```
//!
//! See `examples/quickstart.rs` for the end-to-end tour: linked servers,
//! four-part names, `OPENROWSET`, full-text `CONTAINS`, partitioned views
//! and distributed transactions.

pub mod analyze;
pub mod binder;
pub(crate) mod dml;
pub mod dmv;
pub mod engine;
pub mod events;
pub mod metrics;
pub mod plan_cache;
pub mod query_store;
pub mod remote;
pub mod result;
pub mod trace;

pub use analyze::AnalyzeReport;
pub use dmv::SYS_SERVER;
pub use engine::{Engine, EngineBuilder};
pub use events::{Event, EventBus, EventConfig, EventKind, EventSink, JsonlSink};
pub use metrics::{MetricsSnapshot, QuerySummary, StatementKind};
pub use plan_cache::PlanCacheConfig;
pub use query_store::QueryStoreConfig;
pub use remote::EngineDataSource;
pub use result::QueryResult;
pub use trace::{QueryTrace, TraceConfig, TraceSpan};

pub use dhqp_dtc::{DtcStats, RecoveryReport};
pub use dhqp_executor::{
    BatchConfig, BreakerConfig, BreakerState, DegradedMode, HealthRegistry, LinkHealthSnapshot,
    ParallelConfig, RetryPolicy,
};
pub use dhqp_netsim::FaultConfig;
pub use dhqp_oledb::{WaitClass, WaitSnapshot, WaitStats, WaitTotals};
pub use dhqp_optimizer::{OptimizationPhase, OptimizerConfig};
