//! Engine-wide observability: lock-free counters plus a bounded ring of
//! recent query summaries.
//!
//! Counter updates on the query path are single relaxed atomic increments;
//! the only lock is around the recent-query ring, taken once per statement
//! (never per row). [`MetricsSnapshot`] is a plain-value copy safe to hold
//! across further engine activity.

use dhqp_dtc::DtcStats;
use dhqp_executor::ExecCounters;
use dhqp_oledb::{HistogramSnapshot, LogHistogram, WaitSnapshot, WaitStats};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default capacity of the recent-query ring; override per engine with
/// [`crate::EngineBuilder::recent_query_capacity`] or `DHQP_RECENT_QUERIES`.
pub const RECENT_QUERY_CAPACITY: usize = 32;

/// How many summaries the slow-query ring retains (the ring only fills
/// when a threshold is armed, so a fixed bound suffices).
pub const SLOW_QUERY_CAPACITY: usize = 32;

/// Statement classification for the per-kind query counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatementKind {
    Select,
    Insert,
    Update,
    Delete,
    /// `EXPLAIN` (plan only).
    Explain,
    /// `EXPLAIN ANALYZE` (plan plus execution).
    ExplainAnalyze,
}

impl StatementKind {
    /// Display name, as surfaced in `sys.dm_exec_requests`.
    pub fn name(&self) -> &'static str {
        match self {
            StatementKind::Select => "SELECT",
            StatementKind::Insert => "INSERT",
            StatementKind::Update => "UPDATE",
            StatementKind::Delete => "DELETE",
            StatementKind::Explain => "EXPLAIN",
            StatementKind::ExplainAnalyze => "EXPLAIN ANALYZE",
        }
    }
}

/// One finished statement, as kept in the recent-query ring.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySummary {
    /// The statement text as submitted.
    pub sql: String,
    pub kind: StatementKind,
    /// Rows returned (queries) or affected (DML); 0 on error.
    pub rows: u64,
    /// End-to-end wall time including parse, bind, optimize and execute.
    pub elapsed: Duration,
    /// Whether the statement succeeded.
    pub ok: bool,
    /// The failure message when `ok` is false, so a zero-row error is
    /// distinguishable from a legitimately empty result.
    pub error: Option<String>,
    /// The wait class that dominated this statement's waited time, if the
    /// statement waited at all — a slow query's one-word diagnosis.
    pub dominant_wait: Option<&'static str>,
    /// DPV members degraded mode pruned while serving this statement
    /// (0 unless `DHQP_DEGRADED=prune` skipped a quarantined member).
    pub pruned_members: u64,
    /// Plan-cache fingerprint template, when the statement parameterized —
    /// the join key against plan-cache and query-store rows.
    pub fingerprint: Option<String>,
    /// Compressed runtime annotations (`[semijoin: …]`, `[degraded: …]`,
    /// `[startup: …]`), so a slow-query entry explains itself without the
    /// full EXPLAIN ANALYZE re-run.
    pub annotations: Option<String>,
}

/// Statement identity + annotation extras for the query rings, bundled so
/// [`EngineMetrics::finish_statement`] stays callable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatementTags {
    pub fingerprint: Option<String>,
    pub annotations: Option<String>,
}

/// Point-in-time copy of every engine counter. DTC commit/abort counts are
/// read from the transaction coordinator at snapshot time; spool and remote
/// counts come from the executor counters the engine shares with every
/// execution context.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub selects: u64,
    pub inserts: u64,
    pub updates: u64,
    pub deletes: u64,
    pub explains: u64,
    pub explain_analyzes: u64,
    /// Statements that failed (including parse errors).
    pub statement_errors: u64,
    pub meta_cache_hits: u64,
    pub meta_cache_misses: u64,
    /// Parameterized plan-cache activity. A hit skips parse, bind and
    /// optimize entirely; hits also credit one `meta_cache_hits` per remote
    /// server the cached plan depends on (metadata consultation avoided
    /// altogether).
    pub plan_cache_hits: u64,
    pub plan_cache_misses: u64,
    /// Plans dropped by LRU pressure or epoch invalidation.
    pub plan_cache_evictions: u64,
    /// Remote statistics bundles served from (or fetched into) the TTL'd
    /// metadata cache at bind time.
    pub stats_cache_hits: u64,
    pub stats_cache_misses: u64,
    pub fulltext_searches: u64,
    pub spool_hits: u64,
    pub spool_builds: u64,
    pub remote_roundtrips: u64,
    /// Exchange operators that ran with parallel branch dispatch.
    pub parallel_exchanges: u64,
    /// Worker threads those exchanges spawned, summed.
    pub exchange_workers: u64,
    /// Remote rowsets that ran behind a prefetching decorator.
    pub remote_prefetches: u64,
    /// Remote attempts re-issued after a transient transport fault.
    pub remote_retries: u64,
    /// Transient transport faults observed on the remote path (whether or
    /// not a retry ultimately succeeded).
    pub remote_transient_errors: u64,
    /// Remote attempts abandoned because a per-attempt or per-query
    /// deadline expired.
    pub remote_deadline_hits: u64,
    /// Remote opens rejected without touching the wire because the link's
    /// circuit breaker was open.
    pub breaker_fast_fails: u64,
    /// DPV members skipped by degraded-mode pruning, summed over
    /// statements.
    pub members_pruned: u64,
    /// DPV members skipped at drive time because their startup predicate
    /// rejected the runtime parameter values (`DHQP_RUNTIME_PRUNE`).
    pub startup_members_skipped: u64,
    /// Remote fetches reduced by a shipped semi-join `IN`-list filter.
    pub semijoin_reductions: u64,
    /// Semi-join reductions abandoned at runtime (key count past the
    /// splice ceiling, or the reduced open exhausted its retry budget).
    pub semijoin_fallbacks: u64,
    /// Extra request bytes spent shipping semi-join filters, summed — the
    /// price paid for the result-byte savings.
    pub semijoin_filter_bytes: u64,
    /// Query-store plan changes whose new plan averaged slower than the
    /// fingerprint's previous plan.
    pub plan_regressions: u64,
    /// Observed remote cardinalities written back into the statistics
    /// cache by the feedback loop (`DHQP_CARD_FEEDBACK`).
    pub card_feedback_applied: u64,
    pub dtc_commits: u64,
    pub dtc_aborts: u64,
    /// Distributed transactions currently in doubt (decision logged,
    /// delivery pending at some participant).
    pub dtc_in_doubt: u64,
    /// In-doubt transactions resolved by `recover()`.
    pub dtc_recovered: u64,
}

impl MetricsSnapshot {
    /// Total statements counted, across every kind.
    pub fn statements(&self) -> u64 {
        self.selects
            + self.inserts
            + self.updates
            + self.deletes
            + self.explains
            + self.explain_analyzes
    }

    /// Every counter as a `(name, value)` row — the shape
    /// `sys.dm_os_counters` serves, kept here so the DMV cannot drift from
    /// the snapshot struct.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("selects", self.selects),
            ("inserts", self.inserts),
            ("updates", self.updates),
            ("deletes", self.deletes),
            ("explains", self.explains),
            ("explain_analyzes", self.explain_analyzes),
            ("statement_errors", self.statement_errors),
            ("meta_cache_hits", self.meta_cache_hits),
            ("meta_cache_misses", self.meta_cache_misses),
            ("plan_cache_hits", self.plan_cache_hits),
            ("plan_cache_misses", self.plan_cache_misses),
            ("plan_cache_evictions", self.plan_cache_evictions),
            ("stats_cache_hits", self.stats_cache_hits),
            ("stats_cache_misses", self.stats_cache_misses),
            ("fulltext_searches", self.fulltext_searches),
            ("spool_hits", self.spool_hits),
            ("spool_builds", self.spool_builds),
            ("remote_roundtrips", self.remote_roundtrips),
            ("parallel_exchanges", self.parallel_exchanges),
            ("exchange_workers", self.exchange_workers),
            ("remote_prefetches", self.remote_prefetches),
            ("remote_retries", self.remote_retries),
            ("remote_transient_errors", self.remote_transient_errors),
            ("remote_deadline_hits", self.remote_deadline_hits),
            ("breaker_fast_fails", self.breaker_fast_fails),
            ("members_pruned", self.members_pruned),
            ("startup_members_skipped", self.startup_members_skipped),
            ("semijoin_reductions", self.semijoin_reductions),
            ("semijoin_fallbacks", self.semijoin_fallbacks),
            ("semijoin_filter_bytes", self.semijoin_filter_bytes),
            ("plan_regressions", self.plan_regressions),
            ("card_feedback_applied", self.card_feedback_applied),
            ("dtc_commits", self.dtc_commits),
            ("dtc_aborts", self.dtc_aborts),
            ("dtc_in_doubt", self.dtc_in_doubt),
            ("dtc_recovered", self.dtc_recovered),
        ]
    }
}

/// The engine's live counters (one per [`crate::Engine`], shared by all
/// clones).
#[derive(Debug)]
pub(crate) struct EngineMetrics {
    selects: AtomicU64,
    inserts: AtomicU64,
    updates: AtomicU64,
    deletes: AtomicU64,
    explains: AtomicU64,
    explain_analyzes: AtomicU64,
    statement_errors: AtomicU64,
    meta_cache_hits: AtomicU64,
    meta_cache_misses: AtomicU64,
    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
    plan_cache_evictions: AtomicU64,
    stats_cache_hits: AtomicU64,
    stats_cache_misses: AtomicU64,
    fulltext_searches: AtomicU64,
    plan_regressions: AtomicU64,
    card_feedback_applied: AtomicU64,
    exec: Arc<ExecCounters>,
    recent_capacity: usize,
    recent: Mutex<VecDeque<QuerySummary>>,
    /// Statements slower than the armed threshold (`None` disarms the log
    /// entirely, the default).
    slow_threshold: Option<Duration>,
    slow: Mutex<VecDeque<QuerySummary>>,
    /// End-to-end statement latency in microseconds, every statement kind.
    query_latency: LogHistogram,
    /// Engine-cumulative wait accounting — `sys.dm_os_wait_stats`. Shared
    /// as a sink with the activity scope the engine installs per statement.
    waits: Arc<WaitStats>,
}

impl Default for EngineMetrics {
    fn default() -> Self {
        EngineMetrics::new(RECENT_QUERY_CAPACITY, None)
    }
}

impl EngineMetrics {
    pub fn new(recent_capacity: usize, slow_threshold: Option<Duration>) -> Self {
        EngineMetrics {
            selects: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            explains: AtomicU64::new(0),
            explain_analyzes: AtomicU64::new(0),
            statement_errors: AtomicU64::new(0),
            meta_cache_hits: AtomicU64::new(0),
            meta_cache_misses: AtomicU64::new(0),
            plan_cache_hits: AtomicU64::new(0),
            plan_cache_misses: AtomicU64::new(0),
            plan_cache_evictions: AtomicU64::new(0),
            stats_cache_hits: AtomicU64::new(0),
            stats_cache_misses: AtomicU64::new(0),
            fulltext_searches: AtomicU64::new(0),
            plan_regressions: AtomicU64::new(0),
            card_feedback_applied: AtomicU64::new(0),
            exec: Arc::new(ExecCounters::default()),
            recent_capacity: recent_capacity.max(1),
            recent: Mutex::new(VecDeque::new()),
            slow_threshold,
            slow: Mutex::new(VecDeque::new()),
            query_latency: LogHistogram::default(),
            waits: Arc::new(WaitStats::default()),
        }
    }

    /// The engine-cumulative wait sink (installed into every statement's
    /// activity scope alongside the per-query sink).
    pub fn waits(&self) -> Arc<WaitStats> {
        Arc::clone(&self.waits)
    }

    /// Whether the slow-query log is armed (statements want annotations).
    pub fn slow_log_armed(&self) -> bool {
        self.slow_threshold.is_some()
    }

    pub fn slow_threshold(&self) -> Option<Duration> {
        self.slow_threshold
    }

    pub fn recent_capacity(&self) -> usize {
        self.recent_capacity
    }

    /// Point-in-time copy of the cumulative wait stats.
    pub fn wait_snapshot(&self) -> WaitSnapshot {
        self.waits.snapshot()
    }

    /// Zero the wait accounting only —
    /// `DBCC SQLPERF('sys.dm_os_wait_stats', CLEAR)`.
    pub fn clear_waits(&self) {
        self.waits.clear();
    }

    /// Zero every counter, ring and histogram — the full
    /// `DBCC SQLPERF(..., CLEAR)` analog. The DTC's own counters live on
    /// the coordinator and are not touched.
    pub fn reset(&self) {
        for counter in [
            &self.selects,
            &self.inserts,
            &self.updates,
            &self.deletes,
            &self.explains,
            &self.explain_analyzes,
            &self.statement_errors,
            &self.meta_cache_hits,
            &self.meta_cache_misses,
            &self.plan_cache_hits,
            &self.plan_cache_misses,
            &self.plan_cache_evictions,
            &self.stats_cache_hits,
            &self.stats_cache_misses,
            &self.fulltext_searches,
            &self.plan_regressions,
            &self.card_feedback_applied,
        ] {
            counter.store(0, Ordering::Relaxed);
        }
        self.exec.reset();
        self.recent.lock().clear();
        self.slow.lock().clear();
        self.query_latency.clear();
        self.waits.clear();
    }

    /// The executor counters this engine shares with its execution
    /// contexts, so spool/remote activity survives each execution.
    pub fn exec_counters(&self) -> Arc<ExecCounters> {
        Arc::clone(&self.exec)
    }

    pub fn record_parse_error(&self) {
        self.statement_errors.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_meta_cache_hit(&self) {
        self.meta_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_meta_cache_miss(&self) {
        self.meta_cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_plan_cache_hit(&self) {
        self.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_plan_cache_miss(&self) {
        self.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_plan_cache_evictions(&self, n: usize) {
        if n > 0 {
            self.plan_cache_evictions
                .fetch_add(n as u64, Ordering::Relaxed);
        }
    }

    pub fn record_stats_cache_hit(&self) {
        self.stats_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_stats_cache_miss(&self) {
        self.stats_cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_fulltext_search(&self) {
        self.fulltext_searches.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_plan_regression(&self) {
        self.plan_regressions.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_card_feedback(&self) {
        self.card_feedback_applied.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one finished statement and push its summary onto the ring.
    /// `error` is the failure message (`None` means success); `waits` is
    /// the statement's per-query wait snapshot, whose dominant class is
    /// kept on the summary for attribution. Returns whether the statement
    /// crossed the armed slow-query threshold.
    #[allow(clippy::too_many_arguments)]
    pub fn finish_statement(
        &self,
        kind: StatementKind,
        sql: &str,
        elapsed: Duration,
        rows: u64,
        error: Option<String>,
        waits: Option<&WaitSnapshot>,
        pruned_members: u64,
        tags: StatementTags,
    ) -> bool {
        let counter = match kind {
            StatementKind::Select => &self.selects,
            StatementKind::Insert => &self.inserts,
            StatementKind::Update => &self.updates,
            StatementKind::Delete => &self.deletes,
            StatementKind::Explain => &self.explains,
            StatementKind::ExplainAnalyze => &self.explain_analyzes,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        if error.is_some() {
            self.statement_errors.fetch_add(1, Ordering::Relaxed);
        }
        self.query_latency.record(elapsed.as_micros() as u64);
        let summary = QuerySummary {
            sql: sql.to_string(),
            kind,
            rows,
            elapsed,
            ok: error.is_none(),
            error,
            dominant_wait: waits.and_then(|w| w.dominant()).map(|c| c.name()),
            pruned_members,
            fingerprint: tags.fingerprint,
            annotations: tags.annotations,
        };
        let was_slow = self
            .slow_threshold
            .map(|threshold| elapsed >= threshold)
            .unwrap_or(false);
        if was_slow {
            let mut slow = self.slow.lock();
            if slow.len() == SLOW_QUERY_CAPACITY {
                slow.pop_front();
            }
            slow.push_back(summary.clone());
        }
        let mut recent = self.recent.lock();
        if recent.len() >= self.recent_capacity {
            recent.pop_front();
        }
        recent.push_back(summary);
        was_slow
    }

    /// Most-recent-last copy of the query ring.
    pub fn recent_queries(&self) -> Vec<QuerySummary> {
        self.recent.lock().iter().cloned().collect()
    }

    /// Most-recent-last copy of the slow-query ring (empty unless a
    /// threshold is armed).
    pub fn slow_queries(&self) -> Vec<QuerySummary> {
        self.slow.lock().iter().cloned().collect()
    }

    /// End-to-end statement latency distribution (microseconds).
    pub fn query_latency(&self) -> HistogramSnapshot {
        self.query_latency.snapshot()
    }

    pub fn snapshot(&self, dtc: DtcStats) -> MetricsSnapshot {
        let exec = self.exec.snapshot();
        MetricsSnapshot {
            selects: self.selects.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            explains: self.explains.load(Ordering::Relaxed),
            explain_analyzes: self.explain_analyzes.load(Ordering::Relaxed),
            statement_errors: self.statement_errors.load(Ordering::Relaxed),
            meta_cache_hits: self.meta_cache_hits.load(Ordering::Relaxed),
            meta_cache_misses: self.meta_cache_misses.load(Ordering::Relaxed),
            plan_cache_hits: self.plan_cache_hits.load(Ordering::Relaxed),
            plan_cache_misses: self.plan_cache_misses.load(Ordering::Relaxed),
            plan_cache_evictions: self.plan_cache_evictions.load(Ordering::Relaxed),
            stats_cache_hits: self.stats_cache_hits.load(Ordering::Relaxed),
            stats_cache_misses: self.stats_cache_misses.load(Ordering::Relaxed),
            fulltext_searches: self.fulltext_searches.load(Ordering::Relaxed),
            plan_regressions: self.plan_regressions.load(Ordering::Relaxed),
            card_feedback_applied: self.card_feedback_applied.load(Ordering::Relaxed),
            spool_hits: exec.spool_hits,
            spool_builds: exec.spool_builds,
            remote_roundtrips: exec.remote_roundtrips,
            parallel_exchanges: exec.parallel_exchanges,
            exchange_workers: exec.exchange_workers,
            remote_prefetches: exec.remote_prefetches,
            remote_retries: exec.remote_retries,
            remote_transient_errors: exec.remote_transient_errors,
            remote_deadline_hits: exec.remote_deadline_hits,
            breaker_fast_fails: exec.breaker_fast_fails,
            members_pruned: exec.members_pruned,
            startup_members_skipped: exec.startup_members_skipped,
            semijoin_reductions: exec.semijoin_reductions,
            semijoin_fallbacks: exec.semijoin_fallbacks,
            semijoin_filter_bytes: exec.semijoin_filter_bytes,
            dtc_commits: dtc.commits,
            dtc_aborts: dtc.aborts,
            dtc_in_doubt: dtc.in_doubt,
            dtc_recovered: dtc.recovered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_ordered() {
        let m = EngineMetrics::default();
        for i in 0..(RECENT_QUERY_CAPACITY + 5) {
            m.finish_statement(
                StatementKind::Select,
                &format!("SELECT {i}"),
                Duration::from_millis(1),
                i as u64,
                None,
                None,
                0,
                StatementTags::default(),
            );
        }
        let recent = m.recent_queries();
        assert_eq!(recent.len(), RECENT_QUERY_CAPACITY);
        assert_eq!(recent.first().unwrap().sql, "SELECT 5");
        assert_eq!(recent.last().unwrap().sql, "SELECT 36");
        assert_eq!(
            m.snapshot(DtcStats::default()).selects,
            (RECENT_QUERY_CAPACITY + 5) as u64
        );
    }

    #[test]
    fn ring_capacity_is_configurable() {
        let m = EngineMetrics::new(3, None);
        for i in 0..5 {
            m.finish_statement(
                StatementKind::Select,
                &format!("SELECT {i}"),
                Duration::ZERO,
                0,
                None,
                None,
                0,
                StatementTags::default(),
            );
        }
        let recent = m.recent_queries();
        assert_eq!(recent.len(), 3);
        assert_eq!(recent.first().unwrap().sql, "SELECT 2");
    }

    #[test]
    fn errors_carry_their_message() {
        let m = EngineMetrics::default();
        m.finish_statement(
            StatementKind::Select,
            "SELECT * FROM missing",
            Duration::ZERO,
            0,
            Some("table 'missing' not found".into()),
            None,
            0,
            StatementTags::default(),
        );
        let q = &m.recent_queries()[0];
        assert!(!q.ok);
        assert_eq!(q.error.as_deref(), Some("table 'missing' not found"));
        assert_eq!(m.snapshot(DtcStats::default()).statement_errors, 1);
    }

    #[test]
    fn slow_query_log_gates_on_threshold() {
        let m = EngineMetrics::new(RECENT_QUERY_CAPACITY, Some(Duration::from_millis(10)));
        m.finish_statement(
            StatementKind::Select,
            "fast",
            Duration::from_millis(1),
            0,
            None,
            None,
            0,
            StatementTags::default(),
        );
        m.finish_statement(
            StatementKind::Select,
            "slow",
            Duration::from_millis(25),
            0,
            None,
            None,
            0,
            StatementTags::default(),
        );
        let slow = m.slow_queries();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].sql, "slow");
        // Disarmed engines never log, regardless of elapsed time.
        let off = EngineMetrics::default();
        off.finish_statement(
            StatementKind::Select,
            "slow",
            Duration::from_secs(5),
            0,
            None,
            None,
            0,
            StatementTags::default(),
        );
        assert!(off.slow_queries().is_empty());
    }

    #[test]
    fn query_latency_histogram_records_every_statement() {
        let m = EngineMetrics::default();
        m.finish_statement(
            StatementKind::Select,
            "q",
            Duration::from_micros(700),
            1,
            None,
            None,
            0,
            StatementTags::default(),
        );
        let h = m.query_latency();
        assert_eq!(h.count, 1);
        assert_eq!(h.max, 700);
    }

    #[test]
    fn dominant_wait_lands_on_the_summary() {
        use dhqp_oledb::WaitClass;
        let m = EngineMetrics::new(RECENT_QUERY_CAPACITY, Some(Duration::from_millis(1)));
        let waits = WaitStats::default();
        waits.record(WaitClass::NetworkIo, Duration::from_millis(5));
        waits.record(WaitClass::RetryBackoff, Duration::from_millis(50));
        let snap = waits.snapshot();
        let was_slow = m.finish_statement(
            StatementKind::Select,
            "SELECT 1",
            Duration::from_millis(40),
            1,
            None,
            Some(&snap),
            0,
            StatementTags::default(),
        );
        assert!(was_slow);
        let q = &m.slow_queries()[0];
        assert_eq!(q.dominant_wait, Some("RETRY_BACKOFF"));
        // A statement that never waited carries no attribution.
        assert!(!m.finish_statement(
            StatementKind::Select,
            "SELECT 2",
            Duration::ZERO,
            1,
            None,
            Some(&WaitStats::default().snapshot()),
            0,
            StatementTags::default(),
        ));
        assert_eq!(m.recent_queries().last().unwrap().dominant_wait, None);
    }

    #[test]
    fn reset_zeroes_counters_rings_and_waits() {
        use dhqp_oledb::WaitClass;
        let m = EngineMetrics::new(RECENT_QUERY_CAPACITY, Some(Duration::ZERO));
        m.record_meta_cache_hit();
        m.record_plan_cache_miss();
        m.exec_counters().add_remote_roundtrip();
        m.waits().record(WaitClass::Spool, Duration::from_millis(3));
        m.finish_statement(
            StatementKind::Select,
            "SELECT 1",
            Duration::from_millis(2),
            1,
            None,
            None,
            0,
            StatementTags::default(),
        );
        m.reset();
        let s = m.snapshot(DtcStats::default());
        assert_eq!(s, MetricsSnapshot::default());
        assert!(m.recent_queries().is_empty());
        assert!(m.slow_queries().is_empty());
        assert_eq!(m.query_latency().count, 0);
        assert!(m.wait_snapshot().is_empty());
    }

    #[test]
    fn snapshot_merges_exec_and_dtc_counters() {
        let m = EngineMetrics::default();
        m.exec_counters().add_remote_roundtrip();
        m.record_meta_cache_miss();
        m.record_meta_cache_hit();
        m.record_fulltext_search();
        m.finish_statement(
            StatementKind::Delete,
            "DELETE FROM t",
            Duration::ZERO,
            3,
            Some("boom".into()),
            None,
            0,
            StatementTags::default(),
        );
        m.exec_counters().add_remote_retry();
        m.exec_counters().add_remote_transient_error();
        m.exec_counters().add_remote_deadline_hit();
        let s = m.snapshot(DtcStats {
            commits: 7,
            aborts: 2,
            in_doubt: 1,
            recovered: 4,
        });
        assert_eq!(s.remote_roundtrips, 1);
        assert_eq!(s.remote_retries, 1);
        assert_eq!(s.remote_transient_errors, 1);
        assert_eq!(s.remote_deadline_hits, 1);
        assert_eq!(s.dtc_in_doubt, 1);
        assert_eq!(s.dtc_recovered, 4);
        assert_eq!(s.meta_cache_hits, 1);
        assert_eq!(s.meta_cache_misses, 1);
        assert_eq!(s.fulltext_searches, 1);
        assert_eq!(s.deletes, 1);
        assert_eq!(s.statement_errors, 1);
        assert_eq!(s.dtc_commits, 7);
        assert_eq!(s.dtc_aborts, 2);
        assert_eq!(s.statements(), 1);
    }
}
