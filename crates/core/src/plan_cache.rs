//! The parameterized plan cache.
//!
//! SQL Server amortizes its Cascades compiles through a plan cache keyed by
//! the auto-parameterized statement text; this module is that cache for the
//! reproduction. An entry stores the optimized physical plan together with
//! everything `Engine::execute` needs to run it again, plus the *epochs* it
//! was compiled against — per-linked-server counters and global schema /
//! optimizer-config counters. A lookup validates the epochs and treats any
//! mismatch as a miss (lazy invalidation), so re-registered servers, remote
//! DDL (`clear_metadata_cache`), local DDL and config changes can never
//! resurrect a stale plan.
//!
//! Cacheability is deliberately conservative: statements whose *bind*
//! consults live data — scalar subqueries and `OPENROWSET`/`OPENQUERY`
//! pass-through (materialized eagerly at bind time) and full-text
//! `CONTAINS` (hit lists frozen at bind time) — are never cached, because
//! their plans embed query *results*, not just shapes.

use dhqp_optimizer::search::OptimizerStats;
use dhqp_optimizer::{ColumnId, ColumnRegistry, PhysNode};
use dhqp_sqlfront::{Expr, SelectItem, SelectStmt, TableRef};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Epoch snapshot a plan was compiled against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CacheDeps {
    /// `(lowercased linked-server name, its epoch at compile time)` for
    /// every remote source the plan's bind consulted.
    pub servers: Vec<(String, u64)>,
    /// Global local-DDL/statistics epoch.
    pub schema_epoch: u64,
    /// Optimizer/parallel configuration epoch.
    pub config_epoch: u64,
}

/// One cached compile: the plan plus everything needed to re-execute it.
pub(crate) struct CachedSelect {
    pub plan: PhysNode,
    pub registry: Arc<ColumnRegistry>,
    /// Visible SELECT-list columns, in order.
    pub output: Vec<(String, ColumnId)>,
    /// Partitioned-view members the plan may touch (for delayed schema
    /// validation on every execution, cached or not).
    pub view_members: Vec<(String, usize)>,
    pub opt_stats: OptimizerStats,
    pub deps: CacheDeps,
    /// When the oldest remote metadata/statistics bundle consulted at
    /// compile time was fetched (`None` for purely local plans).
    pub stats_as_of: Option<Instant>,
    /// Whether the compile consulted feedback-corrected statistics
    /// (`[feedback: applied]` in EXPLAIN output).
    pub used_feedback: bool,
    /// Per-fingerprint execution aggregates (the `sys.dm_exec_query_stats`
    /// substrate): bumped on every run of this plan, cache hit or the
    /// compiling miss alike.
    pub execution_count: AtomicU64,
    pub total_elapsed_us: AtomicU64,
    pub total_rows: AtomicU64,
}

impl CachedSelect {
    /// Age of the statistics the plan was costed with.
    pub fn stats_age(&self) -> Option<Duration> {
        self.stats_as_of.map(|t| t.elapsed())
    }

    /// Fold one execution into the aggregates.
    pub fn note_execution(&self, elapsed: Duration, rows: u64) {
        self.execution_count.fetch_add(1, Ordering::Relaxed);
        self.total_elapsed_us
            .fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
        self.total_rows.fetch_add(rows, Ordering::Relaxed);
    }
}

/// Plan-cache knobs, env-overridable like the other engine switches:
/// `DHQP_PLAN_CACHE=0` disables, `DHQP_PLAN_CACHE_SIZE` bounds the entry
/// count (default 128).
#[derive(Debug, Clone)]
pub struct PlanCacheConfig {
    pub enabled: bool,
    pub capacity: usize,
}

impl Default for PlanCacheConfig {
    fn default() -> Self {
        PlanCacheConfig {
            enabled: true,
            capacity: 128,
        }
    }
}

impl PlanCacheConfig {
    pub fn from_env() -> Self {
        let mut config = PlanCacheConfig::default();
        if let Ok(v) = std::env::var("DHQP_PLAN_CACHE") {
            config.enabled = v != "0";
        }
        if let Some(n) = std::env::var("DHQP_PLAN_CACHE_SIZE")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            config.capacity = n;
        }
        config
    }
}

/// Bounded LRU map from template text to cached compile.
pub(crate) struct PlanCache {
    config: PlanCacheConfig,
    tick: u64,
    entries: HashMap<String, (u64, Arc<CachedSelect>)>,
}

impl PlanCache {
    pub fn new(config: PlanCacheConfig) -> Self {
        PlanCache {
            config,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    pub fn set_enabled(&mut self, enabled: bool) {
        self.config.enabled = enabled;
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn capacity(&self) -> usize {
        self.config.capacity
    }

    /// Shrink (or grow) the bound; returns how many entries were evicted.
    pub fn set_capacity(&mut self, capacity: usize) -> usize {
        self.config.capacity = capacity.max(1);
        let mut evicted = 0;
        while self.entries.len() > self.config.capacity {
            self.evict_lru();
            evicted += 1;
        }
        evicted
    }

    pub fn get(&mut self, key: &str) -> Option<Arc<CachedSelect>> {
        self.tick += 1;
        let tick = self.tick;
        let (last_used, entry) = self.entries.get_mut(key)?;
        *last_used = tick;
        Some(Arc::clone(entry))
    }

    /// Insert one compile; returns how many entries were evicted to fit.
    pub fn insert(&mut self, key: String, entry: Arc<CachedSelect>) -> usize {
        self.tick += 1;
        self.entries.insert(key, (self.tick, entry));
        let mut evicted = 0;
        while self.entries.len() > self.config.capacity {
            self.evict_lru();
            evicted += 1;
        }
        evicted
    }

    pub fn remove(&mut self, key: &str) -> bool {
        self.entries.remove(key).is_some()
    }

    /// Every `(template, entry)` pair, in no particular order (the
    /// `sys.dm_exec_query_stats` scan; does not touch LRU recency).
    pub fn entries(&self) -> Vec<(String, Arc<CachedSelect>)> {
        self.entries
            .iter()
            .map(|(k, (_, e))| (k.clone(), Arc::clone(e)))
            .collect()
    }

    /// Drop every plan that depends on `server` (lowercased); returns the
    /// eviction count.
    pub fn purge_server(&mut self, server: &str) -> usize {
        let before = self.entries.len();
        self.entries
            .retain(|_, (_, e)| !e.deps.servers.iter().any(|(s, _)| s == server));
        before - self.entries.len()
    }

    pub fn clear(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        n
    }

    fn evict_lru(&mut self) {
        if let Some(key) = self
            .entries
            .iter()
            .min_by_key(|(_, (used, _))| *used)
            .map(|(k, _)| k.clone())
        {
            self.entries.remove(&key);
        }
    }
}

/// Whether a statement's compile is pure (a function of catalog metadata
/// only) and therefore safe to reuse. Statements that run queries *during
/// bind* embed results in the plan and must recompile every time.
pub(crate) fn is_cacheable(stmt: &SelectStmt) -> bool {
    select_cacheable(stmt)
}

fn select_cacheable(stmt: &SelectStmt) -> bool {
    stmt.projections.iter().all(|item| match item {
        SelectItem::Expr { expr, .. } => expr_cacheable(expr),
        SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => true,
    }) && stmt.from.iter().all(table_cacheable)
        && stmt.where_clause.as_ref().is_none_or(expr_cacheable)
        && stmt.group_by.iter().all(expr_cacheable)
        && stmt.having.as_ref().is_none_or(expr_cacheable)
        && stmt.order_by.iter().all(|o| expr_cacheable(&o.expr))
        && stmt
            .union_branches
            .iter()
            .all(|(branch, _)| select_cacheable(branch))
}

fn table_cacheable(t: &TableRef) -> bool {
    match t {
        TableRef::Named { .. } => true,
        TableRef::Join {
            left, right, on, ..
        } => {
            table_cacheable(left)
                && table_cacheable(right)
                && on.as_ref().is_none_or(expr_cacheable)
        }
        TableRef::Derived { query, .. } => select_cacheable(query),
        // Pass-through rowsets are materialized at bind time.
        TableRef::OpenRowset { .. } | TableRef::OpenQuery { .. } => false,
    }
}

fn expr_cacheable(e: &Expr) -> bool {
    match e {
        Expr::Literal(_) | Expr::Column(_) | Expr::Param(_) | Expr::CountStar => true,
        Expr::Unary { operand, .. } => expr_cacheable(operand),
        Expr::Binary { left, right, .. } => expr_cacheable(left) && expr_cacheable(right),
        Expr::InList { expr, list, .. } => expr_cacheable(expr) && list.iter().all(expr_cacheable),
        Expr::InSubquery { expr, subquery, .. } => {
            expr_cacheable(expr) && select_cacheable(subquery)
        }
        Expr::Between {
            expr, low, high, ..
        } => expr_cacheable(expr) && expr_cacheable(low) && expr_cacheable(high),
        Expr::Like { expr, pattern, .. } => expr_cacheable(expr) && expr_cacheable(pattern),
        Expr::IsNull { expr, .. } => expr_cacheable(expr),
        Expr::Exists { subquery, .. } => select_cacheable(subquery),
        // Evaluated eagerly at bind time: the result would be frozen into
        // the cached plan.
        Expr::ScalarSubquery(_) => false,
        // CONTAINS materializes full-text hits at bind time.
        Expr::Function { name, args, .. } => {
            !name.eq_ignore_ascii_case("CONTAINS") && args.iter().all(expr_cacheable)
        }
        Expr::Cast { expr, .. } => expr_cacheable(expr),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhqp_sqlfront::{parse_statement, Statement};

    fn select(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn cacheability_rules() {
        assert!(is_cacheable(&select("SELECT a FROM t WHERE k = @p")));
        assert!(is_cacheable(&select(
            "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.k = t.k)"
        )));
        assert!(!is_cacheable(&select(
            "SELECT a FROM t WHERE k = (SELECT MAX(k) FROM u)"
        )));
        assert!(!is_cacheable(&select(
            "SELECT a FROM t WHERE CONTAINS(body, 'x')"
        )));
        assert!(!is_cacheable(&select(
            "SELECT a FROM OPENQUERY(srv, 'select 1') AS q"
        )));
        assert!(!is_cacheable(&select(
            "SELECT x FROM (SELECT a AS x FROM OPENROWSET('p','d','q') AS r) AS d"
        )));
        assert!(is_cacheable(&select(
            "SELECT a FROM t UNION ALL SELECT a FROM u"
        )));
    }

    #[test]
    fn lru_eviction_and_purge() {
        fn entry(servers: &[&str]) -> Arc<CachedSelect> {
            Arc::new(CachedSelect {
                plan: PhysNode::new(
                    dhqp_optimizer::PhysicalOp::Values {
                        columns: vec![],
                        rows: vec![],
                    },
                    vec![],
                    vec![],
                ),
                registry: Arc::new(ColumnRegistry::default()),
                output: vec![],
                view_members: vec![],
                opt_stats: OptimizerStats::default(),
                deps: CacheDeps {
                    servers: servers.iter().map(|s| (s.to_string(), 0)).collect(),
                    schema_epoch: 0,
                    config_epoch: 0,
                },
                stats_as_of: None,
                used_feedback: false,
                execution_count: AtomicU64::new(0),
                total_elapsed_us: AtomicU64::new(0),
                total_rows: AtomicU64::new(0),
            })
        }
        let mut cache = PlanCache::new(PlanCacheConfig {
            enabled: true,
            capacity: 2,
        });
        assert_eq!(cache.insert("a".into(), entry(&[])), 0);
        assert_eq!(cache.insert("b".into(), entry(&["srv1"])), 0);
        assert!(cache.get("a").is_some()); // "b" is now least-recently used
        assert_eq!(cache.insert("c".into(), entry(&["srv2"])), 1);
        assert!(cache.get("b").is_none(), "LRU entry evicted");
        assert_eq!(cache.purge_server("srv2"), 1);
        assert!(cache.get("c").is_none());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.clear(), 1);
    }
}
