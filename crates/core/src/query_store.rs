//! Query Store: per-fingerprint plan and runtime history.
//!
//! SQL Server's Query Store persists, for every query fingerprint, each
//! distinct physical plan the optimizer produced and aggregated runtime
//! statistics per plan — the raw material for plan-regression detection
//! and history-driven costing. The paper's distributed optimizer (§4.1)
//! costs remote operators from cached statistics that can be arbitrarily
//! stale; this module closes the loop by remembering what each plan
//! *estimated* versus what it *observed*, per operator, so skewed
//! estimates become visible (`sys.query_store_runtime_stats`) and the
//! engine can feed observed remote cardinalities back into the statistics
//! cache (`DHQP_CARD_FEEDBACK`).
//!
//! The store is bounded (LRU over fingerprints, capped plans per
//! fingerprint) and epoch-aware: each plan records the schema/config
//! epochs it was compiled under, so a plan change caused by an explicit
//! reconfiguration is distinguishable from one caused by drifting
//! statistics.

use dhqp_executor::NodeRuntime;
use dhqp_optimizer::PhysNode;
use dhqp_sqlfront::{fnv1a_64, Fnv1a};
use std::collections::HashMap;

/// Default fingerprint capacity when `DHQP_QUERY_STORE_SIZE` is unset.
pub const DEFAULT_QUERY_STORE_CAPACITY: usize = 128;

/// Distinct plans remembered per fingerprint; the oldest plan is evicted
/// when a fingerprint accumulates more (plan-shape churn is the signal,
/// unbounded history is not).
pub const MAX_PLANS_PER_QUERY: usize = 8;

/// A new plan counts as regressed when its average wall time exceeds the
/// previous plan's average by this factor.
pub const REGRESSION_FACTOR: f64 = 1.5;

/// Query-store knobs (`DHQP_QUERY_STORE`, `DHQP_QUERY_STORE_SIZE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryStoreConfig {
    /// Master switch. Off by default: the store costs one runtime-stats
    /// collector per query when enabled.
    pub enabled: bool,
    /// Maximum fingerprints tracked; least-recently-executed evicted.
    pub capacity: usize,
}

impl Default for QueryStoreConfig {
    fn default() -> Self {
        QueryStoreConfig {
            enabled: false,
            capacity: DEFAULT_QUERY_STORE_CAPACITY,
        }
    }
}

impl QueryStoreConfig {
    /// Store off unless `DHQP_QUERY_STORE` is set to something other than
    /// `0`; capacity from `DHQP_QUERY_STORE_SIZE` (clamped to ≥ 1).
    pub fn from_env() -> Self {
        let enabled = std::env::var("DHQP_QUERY_STORE")
            .map(|v| v != "0")
            .unwrap_or(false);
        let capacity = std::env::var("DHQP_QUERY_STORE_SIZE")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|n| n.max(1))
            .unwrap_or(DEFAULT_QUERY_STORE_CAPACITY);
        QueryStoreConfig { enabled, capacity }
    }
}

/// Stable identity of a physical plan shape: FNV-1a over the pre-order
/// operator descriptions. `PhysNode::describe` renders operator + access
/// path + shipped SQL but no cardinality estimates, so the hash survives
/// statistics drift and changes only when the *shape* changes.
pub fn plan_hash(plan: &PhysNode) -> u64 {
    fn walk(node: &PhysNode, h: &mut Fnv1a, depth: usize) {
        // Depth is part of the identity: a chain and a flat list of the
        // same operators must hash differently.
        h.write(&[depth.min(255) as u8]);
        h.write_line(&node.describe());
        for child in &node.children {
            walk(child, h, depth + 1);
        }
    }
    let mut h = Fnv1a::new();
    walk(plan, &mut h, 0);
    h.finish()
}

/// Stable identity of a query fingerprint template.
pub fn query_id(template: &str) -> u64 {
    fnv1a_64(template)
}

/// One operator's estimated-vs-actual record inside a plan.
#[derive(Debug, Clone)]
pub struct OperatorStats {
    /// Pre-order node id (matches EXPLAIN ANALYZE and the trace).
    pub node_id: usize,
    /// `PhysNode::describe()` label.
    pub operator: String,
    /// Optimizer's cardinality estimate for this operator.
    pub est_rows: f64,
    /// Rows produced, summed over executions and rescans.
    pub total_rows: u64,
    /// Opens summed over executions (rescans included).
    pub total_opens: u64,
    /// Executions in which this operator was opened at least once.
    pub executions: u64,
}

impl OperatorStats {
    /// Average rows per execution that actually opened the operator.
    pub fn avg_rows(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.total_rows as f64 / self.executions as f64
        }
    }

    /// Symmetric estimate-vs-actual ratio (≥ 1.0 when observed): how many
    /// times the estimate was off, in either direction. `0.0` means the
    /// operator was never opened — no observation, no skew claim.
    pub fn skew(&self) -> f64 {
        if self.total_opens == 0 {
            return 0.0;
        }
        skew_ratio(self.est_rows, self.avg_rows())
    }
}

/// Symmetric ratio between an estimate and an observation, both clamped
/// to ≥ 1 so empty results don't divide by zero.
pub fn skew_ratio(est: f64, actual: f64) -> f64 {
    let est = est.max(1.0);
    let actual = actual.max(1.0);
    if actual >= est {
        actual / est
    } else {
        est / actual
    }
}

/// Aggregated history of one distinct plan for one fingerprint.
#[derive(Debug, Clone)]
pub struct PlanStats {
    /// 1-based ordinal within the fingerprint (order of first sighting).
    pub plan_id: u64,
    /// Shape hash from [`plan_hash`].
    pub plan_hash: u64,
    /// Rendered plan tree as of first sighting.
    pub plan_text: String,
    /// Root cardinality estimate at compile time.
    pub est_rows: f64,
    /// Root cost estimate at compile time.
    pub est_cost: f64,
    /// Schema epoch the plan was first recorded under.
    pub compile_schema_epoch: u64,
    /// Config epoch the plan was first recorded under.
    pub compile_config_epoch: u64,
    /// Executions recorded against this plan.
    pub executions: u64,
    /// Result rows, summed.
    pub total_rows: u64,
    /// Wall time, summed.
    pub total_elapsed_us: u64,
    /// Link bytes shipped (all remote operators), summed.
    pub total_link_bytes: u64,
    /// Remote requests issued, summed.
    pub total_link_requests: u64,
    /// Executions per dominant wait class name.
    pub wait_tally: HashMap<&'static str, u64>,
    /// Set when this plan arrived slower than the fingerprint's previous
    /// plan (see [`REGRESSION_FACTOR`]).
    pub regressed: bool,
    /// Per-operator estimated-vs-actual records.
    pub operators: Vec<OperatorStats>,
    /// LRU tick of the last execution (store-internal ordering).
    pub last_active: u64,
}

impl PlanStats {
    pub fn avg_elapsed_us(&self) -> u64 {
        self.total_elapsed_us
            .checked_div(self.executions)
            .unwrap_or(0)
    }

    /// Wait class that dominated the most executions, if any.
    pub fn dominant_wait(&self) -> Option<&'static str> {
        self.wait_tally
            .iter()
            .max_by_key(|(name, n)| (**n, *name))
            .map(|(name, _)| *name)
    }

    /// Worst per-operator skew observed in this plan.
    pub fn max_skew(&self) -> f64 {
        self.operators.iter().map(|o| o.skew()).fold(0.0, f64::max)
    }
}

/// History for one fingerprint template.
#[derive(Debug, Clone)]
pub struct QueryStats {
    /// [`query_id`] of the template.
    pub query_id: u64,
    /// Fingerprint template (raw SQL when the statement didn't
    /// parameterize).
    pub template: String,
    /// Distinct plans, oldest first; bounded by [`MAX_PLANS_PER_QUERY`].
    pub plans: Vec<PlanStats>,
    /// Plan hash of the most recent execution.
    pub last_plan_hash: Option<u64>,
    /// LRU tick of the last execution.
    pub last_active: u64,
    /// Next plan ordinal to hand out.
    next_plan_id: u64,
}

impl QueryStats {
    /// Total executions across all plans.
    pub fn executions(&self) -> u64 {
        self.plans.iter().map(|p| p.executions).sum()
    }
}

/// One operator observation extracted from a finished execution.
#[derive(Debug, Clone)]
pub struct OperatorObservation {
    pub node_id: usize,
    pub operator: String,
    pub est_rows: f64,
    pub rows: u64,
    pub opens: u64,
}

/// Everything the engine hands the store after one successful execution.
#[derive(Debug, Clone)]
pub struct ExecutionObservation {
    pub template: String,
    pub plan_hash: u64,
    pub plan_text: String,
    pub est_rows: f64,
    pub est_cost: f64,
    pub schema_epoch: u64,
    pub config_epoch: u64,
    pub elapsed_us: u64,
    pub rows: u64,
    pub link_bytes: u64,
    pub link_requests: u64,
    pub dominant_wait: Option<&'static str>,
    pub operators: Vec<OperatorObservation>,
}

/// Outcome of recording an execution whose plan differs from the
/// fingerprint's previous plan — the engine turns this into a
/// `plan_change` event and, when `regressed`, a `plan_regressions` bump.
#[derive(Debug, Clone)]
pub struct PlanChangeNotice {
    pub query_id: u64,
    pub template: String,
    pub old_plan_hash: u64,
    pub new_plan_hash: u64,
    /// Average wall time of the previous plan (0 when it was evicted).
    pub old_avg_us: u64,
    /// Average wall time of the new plan including this execution.
    pub new_avg_us: u64,
    pub regressed: bool,
}

/// Walk a physical plan in pre-order (the same node-id scheme the runtime
/// stats collector and EXPLAIN ANALYZE use) and pair each operator with
/// its runtime record.
pub fn operator_observations(
    plan: &PhysNode,
    runtime: &HashMap<usize, NodeRuntime>,
) -> Vec<OperatorObservation> {
    fn walk(
        node: &PhysNode,
        id: usize,
        runtime: &HashMap<usize, NodeRuntime>,
        out: &mut Vec<OperatorObservation>,
    ) {
        let rt = runtime.get(&id);
        out.push(OperatorObservation {
            node_id: id,
            operator: node.describe(),
            est_rows: node.est_rows,
            rows: rt.map(|r| r.rows).unwrap_or(0),
            opens: rt.map(|r| r.opens).unwrap_or(0),
        });
        let mut child_id = id + 1;
        for child in &node.children {
            walk(child, child_id, runtime, out);
            child_id += child.subtree_size();
        }
    }
    let mut out = Vec::with_capacity(plan.subtree_size());
    walk(plan, 0, runtime, &mut out);
    out
}

/// Total wire traffic attributed to remote operators in one execution.
pub fn link_traffic(runtime: &HashMap<usize, NodeRuntime>) -> (u64, u64) {
    let mut bytes = 0;
    let mut requests = 0;
    for node in runtime.values() {
        if let Some(remote) = &node.remote {
            bytes += remote.traffic.bytes;
            requests += remote.traffic.requests;
        }
    }
    (bytes, requests)
}

/// The store proper: bounded LRU over fingerprints.
#[derive(Debug)]
pub struct QueryStore {
    capacity: usize,
    tick: u64,
    entries: HashMap<u64, QueryStats>,
}

impl QueryStore {
    pub fn new(capacity: usize) -> Self {
        QueryStore {
            capacity: capacity.max(1),
            tick: 0,
            entries: HashMap::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn clear(&mut self) {
        self.entries.clear();
    }

    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.entries.len() > self.capacity {
            self.evict_lru();
        }
    }

    fn evict_lru(&mut self) {
        if let Some(&victim) = self
            .entries
            .iter()
            .min_by_key(|(id, q)| (q.last_active, **id))
            .map(|(id, _)| id)
        {
            self.entries.remove(&victim);
        }
    }

    /// Record one successful execution. Returns a notice when the
    /// fingerprint switched plans.
    pub fn record(&mut self, obs: ExecutionObservation) -> Option<PlanChangeNotice> {
        self.tick += 1;
        let tick = self.tick;
        let qid = query_id(&obs.template);
        if !self.entries.contains_key(&qid) {
            while self.entries.len() >= self.capacity {
                self.evict_lru();
            }
            self.entries.insert(
                qid,
                QueryStats {
                    query_id: qid,
                    template: obs.template.clone(),
                    plans: Vec::new(),
                    last_plan_hash: None,
                    last_active: tick,
                    next_plan_id: 1,
                },
            );
        }
        let entry = self.entries.get_mut(&qid).expect("just inserted");
        entry.last_active = tick;
        let previous_hash = entry.last_plan_hash;
        let old_avg_us = previous_hash
            .filter(|h| *h != obs.plan_hash)
            .and_then(|h| entry.plans.iter().find(|p| p.plan_hash == h))
            .map(|p| p.avg_elapsed_us());

        if !entry.plans.iter().any(|p| p.plan_hash == obs.plan_hash) {
            while entry.plans.len() >= MAX_PLANS_PER_QUERY {
                if let Some(pos) = entry
                    .plans
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, p)| p.last_active)
                    .map(|(i, _)| i)
                {
                    entry.plans.remove(pos);
                }
            }
            let plan_id = entry.next_plan_id;
            entry.next_plan_id += 1;
            entry.plans.push(PlanStats {
                plan_id,
                plan_hash: obs.plan_hash,
                plan_text: obs.plan_text.clone(),
                est_rows: obs.est_rows,
                est_cost: obs.est_cost,
                compile_schema_epoch: obs.schema_epoch,
                compile_config_epoch: obs.config_epoch,
                executions: 0,
                total_rows: 0,
                total_elapsed_us: 0,
                total_link_bytes: 0,
                total_link_requests: 0,
                wait_tally: HashMap::new(),
                regressed: false,
                operators: Vec::new(),
                last_active: tick,
            });
        }
        let plan = entry
            .plans
            .iter_mut()
            .find(|p| p.plan_hash == obs.plan_hash)
            .expect("just inserted");
        plan.last_active = tick;
        plan.executions += 1;
        plan.total_rows += obs.rows;
        plan.total_elapsed_us += obs.elapsed_us;
        plan.total_link_bytes += obs.link_bytes;
        plan.total_link_requests += obs.link_requests;
        if let Some(wait) = obs.dominant_wait {
            *plan.wait_tally.entry(wait).or_insert(0) += 1;
        }
        for op in &obs.operators {
            match plan.operators.iter_mut().find(|o| o.node_id == op.node_id) {
                Some(agg) => {
                    agg.total_rows += op.rows;
                    agg.total_opens += op.opens;
                    if op.opens > 0 {
                        agg.executions += 1;
                    }
                }
                None => plan.operators.push(OperatorStats {
                    node_id: op.node_id,
                    operator: op.operator.clone(),
                    est_rows: op.est_rows,
                    total_rows: op.rows,
                    total_opens: op.opens,
                    executions: u64::from(op.opens > 0),
                }),
            }
        }

        let notice = match previous_hash {
            Some(old) if old != obs.plan_hash => {
                let new_avg_us = plan.avg_elapsed_us();
                let old_avg = old_avg_us.unwrap_or(0);
                let regressed =
                    old_avg > 0 && new_avg_us as f64 > old_avg as f64 * REGRESSION_FACTOR;
                if regressed {
                    plan.regressed = true;
                }
                Some(PlanChangeNotice {
                    query_id: qid,
                    template: entry.template.clone(),
                    old_plan_hash: old,
                    new_plan_hash: obs.plan_hash,
                    old_avg_us: old_avg,
                    new_avg_us,
                    regressed,
                })
            }
            _ => None,
        };
        entry.last_plan_hash = Some(obs.plan_hash);
        notice
    }

    /// Snapshot for DMVs and tests, most-recently-executed first.
    pub fn snapshot(&self) -> Vec<QueryStats> {
        let mut all: Vec<QueryStats> = self.entries.values().cloned().collect();
        all.sort_by_key(|q| std::cmp::Reverse(q.last_active));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(template: &str, hash: u64, elapsed_us: u64) -> ExecutionObservation {
        ExecutionObservation {
            template: template.to_string(),
            plan_hash: hash,
            plan_text: format!("plan-{hash}"),
            est_rows: 10.0,
            est_cost: 100.0,
            schema_epoch: 1,
            config_epoch: 1,
            elapsed_us,
            rows: 5,
            link_bytes: 64,
            link_requests: 1,
            dominant_wait: Some("remote_io"),
            operators: vec![OperatorObservation {
                node_id: 0,
                operator: "HashJoin".into(),
                est_rows: 10.0,
                rows: 200,
                opens: 1,
            }],
        }
    }

    #[test]
    fn aggregates_per_plan() {
        let mut store = QueryStore::new(8);
        assert!(store.record(obs("q1", 7, 1_000)).is_none());
        assert!(store.record(obs("q1", 7, 3_000)).is_none());
        let snap = store.snapshot();
        assert_eq!(snap.len(), 1);
        let plan = &snap[0].plans[0];
        assert_eq!(plan.executions, 2);
        assert_eq!(plan.avg_elapsed_us(), 2_000);
        assert_eq!(plan.total_link_bytes, 128);
        assert_eq!(plan.dominant_wait(), Some("remote_io"));
        // est 10 vs avg actual 200 → 20x skew.
        assert!((plan.operators[0].skew() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn plan_change_and_regression() {
        let mut store = QueryStore::new(8);
        store.record(obs("q1", 7, 1_000));
        // Faster new plan: change notice, no regression.
        let notice = store.record(obs("q1", 8, 500)).expect("plan changed");
        assert_eq!(notice.old_plan_hash, 7);
        assert!(!notice.regressed);
        // Much slower third plan: regression flagged on the plan row.
        let notice = store.record(obs("q1", 9, 50_000)).expect("plan changed");
        assert!(notice.regressed);
        let snap = store.snapshot();
        let q = &snap[0];
        assert_eq!(q.plans.len(), 3);
        assert!(q.plans.iter().find(|p| p.plan_hash == 9).unwrap().regressed);
        assert!(!q.plans.iter().find(|p| p.plan_hash == 8).unwrap().regressed);
    }

    #[test]
    fn lru_eviction_is_bounded() {
        let mut store = QueryStore::new(2);
        store.record(obs("q1", 1, 10));
        store.record(obs("q2", 1, 10));
        store.record(obs("q1", 1, 10)); // refresh q1
        store.record(obs("q3", 1, 10)); // evicts q2
        let names: Vec<String> = store
            .snapshot()
            .iter()
            .map(|q| q.template.clone())
            .collect();
        assert_eq!(names, vec!["q3".to_string(), "q1".to_string()]);
    }

    #[test]
    fn skew_handles_empty_results() {
        assert_eq!(skew_ratio(0.0, 0.0), 1.0);
        assert!((skew_ratio(100.0, 1.0) - 100.0).abs() < 1e-9);
        assert!((skew_ratio(1.0, 100.0) - 100.0).abs() < 1e-9);
    }
}
