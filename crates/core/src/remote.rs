//! The "remote SQL Server" provider: a whole engine behind the OLE DB-style
//! traits.
//!
//! This realizes the paper's Figure 1 layering literally: "OLE DB is the
//! interface used by SQL Server to access its local storage engine, thus
//! the code patterns to access data from local and external sources are
//! almost identical." A pushed-down statement (the *build remote query*
//! rule's output) is re-parsed, re-optimized and executed by the remote
//! engine's own DHQP — remote sources are autonomous.
//!
//! Wrap an `EngineDataSource` in `dhqp_netsim::NetworkedDataSource` to put
//! it at the end of a simulated link.

use crate::engine::Engine;
use dhqp_oledb::{
    Command, CommandResult, DataSource, Histogram, KeyRange, MemRowset, ProviderCapabilities,
    Rowset, Session, TableInfo, TxnId,
};
use dhqp_types::{Result, Row};

/// An engine exposed as an OLE DB-style data source (SQL-92 level, index,
/// statistics and transaction support).
pub struct EngineDataSource {
    engine: Engine,
}

impl EngineDataSource {
    pub fn new(engine: Engine) -> Self {
        EngineDataSource { engine }
    }

    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

impl DataSource for EngineDataSource {
    fn name(&self) -> &str {
        self.engine.name()
    }

    fn capabilities(&self) -> ProviderCapabilities {
        ProviderCapabilities::sql_server("SQLOLEDB")
    }

    fn tables(&self) -> Result<Vec<TableInfo>> {
        self.engine.local_data_source().tables()
    }

    fn create_session(&self) -> Result<Box<dyn Session>> {
        Ok(Box::new(EngineSession {
            engine: self.engine.clone(),
            storage_session: self.engine.local_data_source().create_session()?,
        }))
    }
}

/// A session against a remote engine: base-table access goes straight to
/// its storage engine; commands go through its full query processor.
struct EngineSession {
    engine: Engine,
    storage_session: Box<dyn Session>,
}

impl Session for EngineSession {
    fn open_rowset(&mut self, table: &str) -> Result<Box<dyn Rowset>> {
        self.storage_session.open_rowset(table)
    }

    fn create_command(&mut self) -> Result<Box<dyn Command>> {
        Ok(Box::new(EngineCommand {
            engine: self.engine.clone(),
            text: None,
        }))
    }

    fn open_index(
        &mut self,
        table: &str,
        index: &str,
        range: &KeyRange,
    ) -> Result<Box<dyn Rowset>> {
        self.storage_session.open_index(table, index, range)
    }

    fn fetch_by_bookmarks(&mut self, table: &str, bookmarks: &[u64]) -> Result<Vec<Row>> {
        self.storage_session.fetch_by_bookmarks(table, bookmarks)
    }

    fn histogram(&mut self, table: &str, column: &str) -> Result<Option<Histogram>> {
        self.storage_session.histogram(table, column)
    }

    fn join_transaction(&mut self, txn: TxnId) -> Result<()> {
        self.storage_session.join_transaction(txn)
    }

    fn prepare(&mut self, txn: TxnId) -> Result<()> {
        self.storage_session.prepare(txn)
    }

    fn commit(&mut self, txn: TxnId) -> Result<()> {
        self.storage_session.commit(txn)
    }

    fn abort(&mut self, txn: TxnId) -> Result<()> {
        self.storage_session.abort(txn)
    }

    fn insert(&mut self, table: &str, rows: &[Row]) -> Result<u64> {
        self.storage_session.insert(table, rows)
    }

    fn delete_by_bookmarks(&mut self, table: &str, bookmarks: &[u64]) -> Result<u64> {
        self.storage_session.delete_by_bookmarks(table, bookmarks)
    }

    fn update_by_bookmarks(
        &mut self,
        table: &str,
        bookmarks: &[u64],
        updates: &[Row],
    ) -> Result<u64> {
        self.storage_session
            .update_by_bookmarks(table, bookmarks, updates)
    }
}

struct EngineCommand {
    engine: Engine,
    text: Option<String>,
}

impl Command for EngineCommand {
    fn set_text(&mut self, text: &str) -> Result<()> {
        self.text = Some(text.to_string());
        Ok(())
    }

    fn execute(&mut self) -> Result<CommandResult> {
        let text = self
            .text
            .as_deref()
            .ok_or_else(|| dhqp_types::DhqpError::Provider("command has no text".into()))?;
        let read_only =
            text.trim_start().len() >= 6 && text.trim_start()[..6].eq_ignore_ascii_case("select");
        let result = match self.engine.execute(text) {
            Ok(result) => result,
            // A pushed-down statement that *writes* may have partially
            // applied before the failure; re-sending it is not idempotent.
            // Strip the retryable classification so no upstream retry
            // layer blindly re-issues it.
            Err(e) if !read_only && e.is_retryable() => {
                return Err(dhqp_types::DhqpError::Provider(format!(
                    "remote statement is not idempotent, refusing retry: {e}"
                )));
            }
            Err(e) => return Err(e),
        };
        if let Some(n) = result.rows_affected {
            return Ok(CommandResult::RowCount(n));
        }
        Ok(CommandResult::Rowset(Box::new(MemRowset::new(
            result.schema,
            result.rows,
        ))))
    }
}
