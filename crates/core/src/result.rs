//! Query results.

use dhqp_types::{Row, Schema, Value};

/// The materialized result of one statement.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Schema of the visible output columns.
    pub schema: Schema,
    /// Result rows (empty for DML).
    pub rows: Vec<Row>,
    /// Rows affected, for DML statements.
    pub rows_affected: Option<u64>,
}

impl QueryResult {
    pub fn rows_affected(n: u64) -> Self {
        QueryResult {
            schema: Schema::empty(),
            rows: Vec::new(),
            rows_affected: Some(n),
        }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Value at `(row, column)`.
    pub fn value(&self, row: usize, col: usize) -> &Value {
        self.rows[row].get(col)
    }

    /// Column index by (case-insensitive) name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.schema.index_of(name)
    }

    /// Single scalar result (one row, one column).
    pub fn scalar(&self) -> Option<&Value> {
        if self.rows.len() == 1 && !self.schema.is_empty() {
            Some(self.rows[0].get(0))
        } else {
            None
        }
    }

    /// Render as an aligned text table (examples and the bench report).
    pub fn to_table(&self) -> String {
        let headers: Vec<String> = self
            .schema
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.values.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for row in &rendered {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhqp_types::{Column, DataType};

    #[test]
    fn accessors() {
        let r = QueryResult {
            schema: Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Str),
            ]),
            rows: vec![Row::new(vec![Value::Int(1), Value::Str("x".into())])],
            rows_affected: None,
        };
        assert_eq!(r.len(), 1);
        assert_eq!(r.column("B"), Some(1));
        assert_eq!(r.value(0, 0), &Value::Int(1));
        assert!(r.scalar().is_some());
        let t = r.to_table();
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | x |"));
    }

    #[test]
    fn dml_result() {
        let r = QueryResult::rows_affected(5);
        assert_eq!(r.rows_affected, Some(5));
        assert!(r.is_empty());
        assert!(r.scalar().is_none());
    }
}
