//! Hierarchical query tracing: parse → bind → optimize → execute as a tree
//! of spans with wall times.
//!
//! Tracing is off by default and costs nothing when off — the engine only
//! constructs a [`TraceBuilder`] when armed (via `DHQP_TRACE` or
//! [`crate::Engine::set_trace_config`]), so the untraced path allocates no
//! spans at all. When armed, each compilation stage records one span, the
//! optimize span carries per-rule application counts from the memo search,
//! and the execute span gets one child per plan operator (reusing the
//! executor's pre-order node ids) annotated with rows, opens, cumulative
//! and self time. The finished [`QueryTrace`] is retained on the engine
//! ([`crate::Engine::last_trace`]) and exportable as JSON.

use dhqp_executor::NodeRuntime;
use dhqp_oledb::{WaitClass, WaitSnapshot};
use dhqp_optimizer::search::OptimizerStats;
use dhqp_optimizer::PhysNode;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Tracing switch. Resolved once per engine from `DHQP_TRACE` and
/// overridable at runtime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceConfig {
    pub enabled: bool,
}

impl TraceConfig {
    pub fn enabled() -> Self {
        TraceConfig { enabled: true }
    }

    pub fn disabled() -> Self {
        TraceConfig { enabled: false }
    }

    /// `DHQP_TRACE` set to anything but empty or `0` arms tracing.
    pub fn from_env() -> Self {
        let enabled = std::env::var("DHQP_TRACE")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        TraceConfig { enabled }
    }
}

/// One timed region of a statement's lifetime.
#[derive(Debug, Clone)]
pub struct TraceSpan {
    pub name: String,
    /// Offset from the root span's start.
    pub start: Duration,
    pub elapsed: Duration,
    /// Free-form `(key, value)` annotations (rule counts, row counts, ...).
    pub attrs: Vec<(String, String)>,
    pub children: Vec<TraceSpan>,
}

impl TraceSpan {
    /// This span plus all descendants.
    pub fn span_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(TraceSpan::span_count)
            .sum::<usize>()
    }

    /// Depth-first search by span name.
    pub fn find(&self, name: &str) -> Option<&TraceSpan> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Attribute value by key.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        let _ = write!(out, "{pad}{} {:.2?}", self.name, self.elapsed);
        for (k, v) in &self.attrs {
            let _ = write!(out, " {k}={v}");
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }

    fn json_into(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"start_us\":{},\"elapsed_us\":{},\"attrs\":{{",
            json_escape(&self.name),
            self.start.as_micros(),
            self.elapsed.as_micros()
        );
        for (i, (k, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
        }
        out.push_str("},\"children\":[");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            c.json_into(out);
        }
        out.push_str("]}");
    }
}

/// The finished trace of one statement.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    /// Statement text as submitted.
    pub sql: String,
    /// Root span (`query`) covering the whole statement; compilation and
    /// execution stages are its children.
    pub root: TraceSpan,
}

impl QueryTrace {
    pub fn span_count(&self) -> usize {
        self.root.span_count()
    }

    pub fn find(&self, name: &str) -> Option<&TraceSpan> {
        self.root.find(name)
    }

    /// Indented text rendering, one line per span.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.root.render_into(0, &mut out);
        out
    }

    /// The whole tree as one JSON document (hand-rolled: the offline serde
    /// shim is marker-only).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"sql\":\"{}\",\"root\":", json_escape(&self.sql));
        self.root.json_into(&mut out);
        out.push('}');
        out
    }

    /// The trace as a Chrome/Perfetto `trace_event` JSON document: one
    /// complete (`"ph":"X"`) event per span, timestamps and durations in
    /// microseconds. Spans named `worker-N` open their own thread track
    /// (`tid` N+1, inherited by their children — the wait slices), so the
    /// exchange's worker timelines render as parallel lanes under the
    /// query's main track (`tid` 0). Load the output in `ui.perfetto.dev`
    /// or `chrome://tracing`.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        chrome_events(&self.root, 0, &mut first, &mut out);
        out.push_str("]}");
        out
    }
}

/// Emit `span` and its subtree as trace_event objects onto `out`.
fn chrome_events(span: &TraceSpan, tid: u64, first: &mut bool, out: &mut String) {
    let tid = worker_tid(&span.name).unwrap_or(tid);
    if !*first {
        out.push(',');
    }
    *first = false;
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{tid},\"args\":{{",
        json_escape(&span.name),
        span.start.as_micros(),
        span.elapsed.as_micros()
    );
    for (i, (k, v)) in span.attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
    }
    out.push_str("}}");
    for c in &span.children {
        chrome_events(c, tid, first, out);
    }
}

/// `worker-N` → track id N+1; anything else stays on its parent's track.
fn worker_tid(name: &str) -> Option<u64> {
    let n: u64 = name.strip_prefix("worker-")?.parse().ok()?;
    Some(n + 1)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Accumulates spans for one statement while it runs. Constructed only
/// when tracing is armed; the engine threads `Option<&TraceBuilder>`
/// through its pipeline, so the disabled path never allocates.
pub(crate) struct TraceBuilder {
    start: Instant,
    sql: String,
    phases: Mutex<Vec<TraceSpan>>,
    waits: Mutex<Option<WaitSnapshot>>,
}

impl TraceBuilder {
    pub fn new(sql: &str) -> Self {
        TraceBuilder {
            start: Instant::now(),
            sql: sql.to_string(),
            phases: Mutex::new(Vec::new()),
            waits: Mutex::new(None),
        }
    }

    /// Attach the statement's per-query wait accounting; rendered as
    /// `wait.CLASS` attributes on the root span.
    pub fn set_waits(&self, snapshot: WaitSnapshot) {
        *self.waits.lock() = Some(snapshot);
    }

    /// Record one completed top-level stage that began at `began`.
    pub fn stage(&self, name: &str, began: Instant) {
        self.stage_with(name, began, Vec::new());
    }

    /// Record one completed stage with annotations.
    pub fn stage_with(&self, name: &str, began: Instant, attrs: Vec<(String, String)>) {
        let span = TraceSpan {
            name: name.to_string(),
            start: began.duration_since(self.start),
            elapsed: began.elapsed(),
            attrs,
            children: Vec::new(),
        };
        self.phases.lock().push(span);
    }

    /// Record the optimize stage, annotated with the memo search's per-rule
    /// application counts and sizes.
    pub fn stage_optimize(&self, began: Instant, stats: &OptimizerStats) {
        let mut attrs = vec![
            ("groups".to_string(), stats.groups.to_string()),
            ("exprs".to_string(), stats.exprs.to_string()),
            ("rules_fired".to_string(), stats.rules_fired.to_string()),
        ];
        for (rule, n) in &stats.rule_counts {
            attrs.push((format!("rule.{rule}"), n.to_string()));
        }
        self.stage_with("optimize", began, attrs);
    }

    /// Record the execute stage with one child span per plan operator,
    /// mapped through the executor's pre-order node ids.
    pub fn stage_execute(
        &self,
        began: Instant,
        plan: &PhysNode,
        runtime: &HashMap<usize, NodeRuntime>,
    ) {
        let offset = began.duration_since(self.start);
        let mut span = TraceSpan {
            name: "execute".to_string(),
            start: offset,
            elapsed: began.elapsed(),
            attrs: Vec::new(),
            children: Vec::new(),
        };
        span.children.push(operator_span(plan, 0, runtime, offset));
        self.phases.lock().push(span);
    }

    /// Assemble the final trace; the root span covers new() to now.
    pub fn finish(self) -> QueryTrace {
        let mut attrs = Vec::new();
        if let Some(waits) = self.waits.into_inner() {
            for (class, totals) in waits.nonzero() {
                attrs.push((
                    format!("wait.{}", class.name()),
                    format!("{}x/{}us", totals.count, totals.total_us),
                ));
            }
        }
        let root = TraceSpan {
            name: "query".to_string(),
            start: Duration::ZERO,
            elapsed: self.start.elapsed(),
            attrs,
            children: self.phases.into_inner(),
        };
        QueryTrace {
            sql: self.sql,
            root,
        }
    }
}

/// Per-operator span: cumulative cursor time as the span length, self time
/// (cumulative minus direct children's) as an attribute, pre-order node id
/// as in EXPLAIN ANALYZE.
fn operator_span(
    node: &PhysNode,
    id: usize,
    runtime: &HashMap<usize, NodeRuntime>,
    base: Duration,
) -> TraceSpan {
    let rt = runtime.get(&id);
    let cumulative = rt.map(|r| r.next_time).unwrap_or_default();
    let mut children = Vec::with_capacity(node.children.len());
    let mut child_id = id + 1;
    let mut children_time = Duration::ZERO;
    for c in &node.children {
        if let Some(crt) = runtime.get(&child_id) {
            children_time += crt.next_time;
        }
        children.push(operator_span(c, child_id, runtime, base));
        child_id += c.subtree_size();
    }
    let mut attrs = vec![("node".to_string(), id.to_string())];
    match rt {
        Some(rt) => {
            attrs.push(("rows".to_string(), rt.rows.to_string()));
            attrs.push(("opens".to_string(), rt.opens.to_string()));
            attrs.push((
                "self_us".to_string(),
                cumulative
                    .saturating_sub(children_time)
                    .as_micros()
                    .to_string(),
            ));
            if let Some(exchange) = &rt.exchange {
                attrs.push(("workers".to_string(), exchange.workers.to_string()));
                for (i, ws) in exchange.worker_spans.iter().enumerate() {
                    children.push(worker_span(i, ws, base));
                }
            }
        }
        None => attrs.push(("never_executed".to_string(), "true".to_string())),
    }
    TraceSpan {
        name: node.describe(),
        start: base,
        elapsed: cumulative,
        attrs,
        children,
    }
}

/// One exchange worker's lifetime as a `worker-N` span (its own Perfetto
/// track), with a nested wait slice for time blocked on the full output
/// channel. Worker offsets are relative to the exchange's open, which the
/// trace approximates with the execute stage's start (`base`).
fn worker_span(i: usize, ws: &dhqp_executor::WorkerSpan, base: Duration) -> TraceSpan {
    let start = base + Duration::from_micros(ws.start_us);
    let mut children = Vec::new();
    if ws.send_wait_us > 0 {
        children.push(TraceSpan {
            name: format!("wait:{}", WaitClass::ExchangeQueueFull.name()),
            start,
            elapsed: Duration::from_micros(ws.send_wait_us),
            attrs: Vec::new(),
            children: Vec::new(),
        });
    }
    TraceSpan {
        name: format!("worker-{i}"),
        start,
        elapsed: Duration::from_micros(ws.elapsed_us),
        attrs: vec![
            ("rows".to_string(), ws.rows.to_string()),
            ("send_wait_us".to_string(), ws.send_wait_us.to_string()),
        ],
        children,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_a_tree() {
        let b = TraceBuilder::new("SELECT 1");
        let t0 = Instant::now();
        b.stage("parse", t0);
        b.stage("bind", Instant::now());
        let trace = b.finish();
        assert_eq!(trace.span_count(), 3); // query + parse + bind
        assert!(trace.find("parse").is_some());
        assert!(trace.find("optimize").is_none());
        assert!(trace.render().contains("query"));
    }

    #[test]
    fn json_is_escaped_and_shaped() {
        let b = TraceBuilder::new("SELECT '\"quoted\"\nline'");
        b.stage("parse", Instant::now());
        let json = b.finish().to_json();
        assert!(json.starts_with("{\"sql\":\"SELECT '\\\"quoted\\\"\\nline'\""));
        assert!(json.contains("\"name\":\"query\""));
        assert!(json.contains("\"name\":\"parse\""));
        assert!(json.contains("\"children\":["));
        assert!(!json.contains('\n'));
    }

    #[test]
    fn waits_land_as_root_attrs() {
        use dhqp_oledb::WaitStats;
        let stats = WaitStats::default();
        stats.record(WaitClass::NetworkIo, Duration::from_micros(1500));
        stats.record(WaitClass::NetworkIo, Duration::from_micros(500));
        let b = TraceBuilder::new("q");
        b.set_waits(stats.snapshot());
        let trace = b.finish();
        assert_eq!(trace.root.attr("wait.NETWORK_IO"), Some("2x/2000us"));
        assert_eq!(trace.root.attr("wait.SPOOL"), None);
    }

    #[test]
    fn chrome_json_assigns_worker_tracks() {
        let worker = TraceSpan {
            name: "worker-1".to_string(),
            start: Duration::from_micros(10),
            elapsed: Duration::from_micros(90),
            attrs: vec![("rows".to_string(), "7".to_string())],
            children: vec![TraceSpan {
                name: "wait:EXCHANGE_QUEUE_FULL".to_string(),
                start: Duration::from_micros(10),
                elapsed: Duration::from_micros(5),
                attrs: Vec::new(),
                children: Vec::new(),
            }],
        };
        let trace = QueryTrace {
            sql: "q".to_string(),
            root: TraceSpan {
                name: "query".to_string(),
                start: Duration::ZERO,
                elapsed: Duration::from_micros(100),
                attrs: Vec::new(),
                children: vec![worker],
            },
        };
        let json = trace.to_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        // Root rides tid 0; the worker and its wait slice ride tid 2.
        assert!(json
            .contains("\"name\":\"query\",\"ph\":\"X\",\"ts\":0,\"dur\":100,\"pid\":1,\"tid\":0"));
        assert!(json.contains(
            "\"name\":\"worker-1\",\"ph\":\"X\",\"ts\":10,\"dur\":90,\"pid\":1,\"tid\":2"
        ));
        assert!(json.contains("\"name\":\"wait:EXCHANGE_QUEUE_FULL\",\"ph\":\"X\",\"ts\":10,\"dur\":5,\"pid\":1,\"tid\":2"));
    }

    #[test]
    fn optimize_stage_carries_rule_counts() {
        let stats = OptimizerStats {
            groups: 4,
            exprs: 9,
            rules_fired: 3,
            rule_counts: vec![
                ("JoinCommute".to_string(), 2),
                ("PushFilter".to_string(), 1),
            ],
            phases: vec![],
            early_exit: false,
        };
        let b = TraceBuilder::new("q");
        b.stage_optimize(Instant::now(), &stats);
        let trace = b.finish();
        let opt = trace.find("optimize").unwrap();
        assert_eq!(opt.attr("rule.JoinCommute"), Some("2"));
        assert_eq!(opt.attr("rules_fired"), Some("3"));
    }
}
