//! The distributed transaction coordinator — the Microsoft DTC analog.
//!
//! "SQL Server uses the Microsoft Distributed Transaction Coordinator to
//! ensure atomicity of transactions across data sources" (paper §2).
//! Sessions enlist via the OLE DB-style `join_transaction`; the coordinator
//! drives classic presumed-abort two-phase commit:
//!
//! 1. **Prepare**: every participant must durably promise to commit.
//!    Any refusal aborts everyone.
//! 2. **Commit/Abort**: the decision is logged, then delivered to all
//!    participants.
//!
//! Failure injection in the storage engine (`set_fail_prepare`,
//! `set_fail_commit`) lets tests and benches exercise the abort path and
//! the in-doubt/recovery path.
//!
//! A participant that fails *after* the decision was logged leaves the
//! transaction **in doubt**: the coordinator keeps the participant's session
//! in an in-doubt store, and [`TransactionCoordinator::recover`] replays the
//! persisted outcome (presumed abort when no `Committed` record exists)
//! until every participant has acknowledged the decision.

use dhqp_oledb::{emit_event, has_hook, record_wait, Session, TxnId, WaitClass};
use dhqp_types::{DhqpError, Result};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Raise a `2pc` state-transition event when the current thread's activity
/// scope carries an event hook.
fn txn_event(txn: TxnId, state: &str, detail: &str) {
    if has_hook() {
        emit_event(
            "2pc",
            &[
                ("txn", txn.to_string()),
                ("state", state.to_string()),
                ("detail", detail.to_string()),
            ],
        );
    }
}

/// Final decision for a transaction, as recorded in the outcome log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    Committed,
    Aborted,
}

/// One outcome-log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    pub txn: TxnId,
    pub outcome: Outcome,
    pub participants: Vec<String>,
}

/// Coordinator counters, including in-doubt/recovery telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DtcStats {
    /// Transactions whose outcome was logged `Committed`.
    pub commits: u64,
    /// Transactions whose outcome was logged `Aborted`.
    pub aborts: u64,
    /// Transactions currently in doubt (decision logged, delivery pending).
    pub in_doubt: u64,
    /// In-doubt transactions fully resolved by [`TransactionCoordinator::recover`].
    pub recovered: u64,
}

/// What one [`TransactionCoordinator::recover`] pass accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// In-doubt transactions whose every participant acknowledged the
    /// logged outcome during this pass.
    pub resolved: u64,
    /// In-doubt transactions with at least one participant still failing.
    pub still_in_doubt: u64,
}

/// An in-doubt transaction: the decision is durable in the log, but at
/// least one participant has not acknowledged it. The coordinator keeps the
/// unacknowledged sessions so recovery can re-deliver the outcome.
struct InDoubt {
    txn: TxnId,
    participants: Vec<(String, Box<dyn Session>)>,
}

/// The coordinator: allocates transaction ids and keeps the outcome log.
#[derive(Default)]
pub struct TransactionCoordinator {
    next_txn: AtomicU64,
    log: Mutex<Vec<LogRecord>>,
    in_doubt: Mutex<Vec<InDoubt>>,
    commits: AtomicU64,
    aborts: AtomicU64,
    recovered: AtomicU64,
}

impl TransactionCoordinator {
    pub fn new() -> Arc<Self> {
        Arc::new(TransactionCoordinator::default())
    }

    /// Begin a distributed transaction.
    pub fn begin(self: &Arc<Self>) -> DistributedTransaction {
        let id = self.next_txn.fetch_add(1, Ordering::Relaxed) + 1;
        DistributedTransaction {
            coordinator: Arc::clone(self),
            id,
            participants: Vec::new(),
            finished: false,
        }
    }

    /// Committed/aborted counters (bench telemetry).
    pub fn stats(&self) -> (u64, u64) {
        (
            self.commits.load(Ordering::Relaxed),
            self.aborts.load(Ordering::Relaxed),
        )
    }

    /// Full coordinator telemetry, including the in-doubt/recovery counters.
    pub fn telemetry(&self) -> DtcStats {
        DtcStats {
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            in_doubt: self.in_doubt.lock().len() as u64,
            recovered: self.recovered.load(Ordering::Relaxed),
        }
    }

    /// Transaction ids currently in doubt, oldest first.
    pub fn in_doubt_txns(&self) -> Vec<TxnId> {
        self.in_doubt.lock().iter().map(|d| d.txn).collect()
    }

    /// The outcome log, oldest first.
    pub fn log(&self) -> Vec<LogRecord> {
        self.log.lock().clone()
    }

    /// Resolve in-doubt transactions from the persisted outcome log.
    ///
    /// For each in-doubt transaction the logged decision is re-delivered to
    /// every unacknowledged participant: `Committed` re-sends the commit;
    /// anything else — including a missing record — presumes abort, the
    /// classic presumed-abort recovery rule. Participants that fail again
    /// stay in the in-doubt store for a later pass.
    pub fn recover(&self) -> RecoveryReport {
        let pending = std::mem::take(&mut *self.in_doubt.lock());
        let mut report = RecoveryReport::default();
        let mut still = Vec::new();
        for entry in pending {
            let outcome = self
                .log
                .lock()
                .iter()
                .rev()
                .find(|r| r.txn == entry.txn)
                .map(|r| r.outcome);
            let mut failed = Vec::new();
            for (name, mut session) in entry.participants {
                let delivery = match outcome {
                    Some(Outcome::Committed) => session.commit(entry.txn),
                    // Presumed abort: no commit record means roll back.
                    _ => session.abort(entry.txn),
                };
                if delivery.is_err() {
                    failed.push((name, session));
                }
            }
            if failed.is_empty() {
                report.resolved += 1;
                self.recovered.fetch_add(1, Ordering::Relaxed);
            } else {
                report.still_in_doubt += 1;
                still.push(InDoubt {
                    txn: entry.txn,
                    participants: failed,
                });
            }
        }
        self.in_doubt.lock().extend(still);
        report
    }

    fn mark_in_doubt(&self, txn: TxnId, participants: Vec<(String, Box<dyn Session>)>) {
        self.in_doubt.lock().push(InDoubt { txn, participants });
    }

    fn record(&self, txn: TxnId, outcome: Outcome, participants: Vec<String>) {
        match outcome {
            Outcome::Committed => self.commits.fetch_add(1, Ordering::Relaxed),
            Outcome::Aborted => self.aborts.fetch_add(1, Ordering::Relaxed),
        };
        self.log.lock().push(LogRecord {
            txn,
            outcome,
            participants,
        });
    }
}

/// An in-flight distributed transaction owning its enlisted sessions.
pub struct DistributedTransaction {
    coordinator: Arc<TransactionCoordinator>,
    id: TxnId,
    participants: Vec<(String, Box<dyn Session>)>,
    finished: bool,
}

impl DistributedTransaction {
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Enlist a session (calls the provider's `join_transaction`, the
    /// `ITransactionJoin` analog). The transaction owns the session until
    /// completion.
    pub fn enlist(&mut self, name: impl Into<String>, mut session: Box<dyn Session>) -> Result<()> {
        if self.finished {
            return Err(DhqpError::Transaction(
                "transaction already completed".into(),
            ));
        }
        session.join_transaction(self.id)?;
        self.participants.push((name.into(), session));
        Ok(())
    }

    /// Mutable access to an enlisted session for running work under the
    /// transaction.
    pub fn session_mut(&mut self, name: &str) -> Result<&mut Box<dyn Session>> {
        self.participants
            .iter_mut()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
            .ok_or_else(|| DhqpError::Transaction(format!("no participant '{name}' enlisted")))
    }

    pub fn participant_names(&self) -> Vec<String> {
        self.participants.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Two-phase commit. On any prepare failure every participant is
    /// aborted and the prepare error is returned.
    pub fn commit(mut self) -> Result<()> {
        if self.finished {
            return Err(DhqpError::Transaction(
                "transaction already completed".into(),
            ));
        }
        let names = self.participant_names();
        // Phase one: unanimous prepare. The whole vote-collection loop is
        // one DTC_PREPARE wait — the coordinator is blocked on participants
        // for its full duration.
        txn_event(self.id, "preparing", &names.join(","));
        let phase_one = Instant::now();
        let mut refusal: Option<(String, DhqpError)> = None;
        for (name, session) in self.participants.iter_mut() {
            if let Err(e) = session.prepare(self.id) {
                refusal = Some((name.clone(), e));
                break;
            }
        }
        record_wait(WaitClass::DtcPrepare, phase_one.elapsed());
        if let Some((name, e)) = refusal {
            // Presumed abort: tell everyone, then report the cause.
            for (_, s) in self.participants.iter_mut() {
                let _ = s.abort(self.id);
            }
            self.finished = true;
            self.coordinator.record(self.id, Outcome::Aborted, names);
            txn_event(self.id, "aborted", &format!("'{name}' refused prepare"));
            return Err(DhqpError::Transaction(format!(
                "participant '{name}' refused prepare: {e}"
            )));
        }
        // Decision is durable before phase two.
        self.coordinator.record(self.id, Outcome::Committed, names);
        self.finished = true;
        txn_event(self.id, "committing", "decision logged");
        // Phase two: deliver commit to *every* participant even when some
        // fail — a prepared participant that missed the decision must still
        // receive it eventually. Failures leave the transaction in doubt.
        let phase_two = Instant::now();
        let mut failed = Vec::new();
        let mut causes = Vec::new();
        for (name, mut session) in std::mem::take(&mut self.participants) {
            match session.commit(self.id) {
                Ok(()) => {}
                Err(e) => {
                    causes.push(format!("'{name}': {e}"));
                    failed.push((name, session));
                }
            }
        }
        record_wait(WaitClass::DtcCommit, phase_two.elapsed());
        if failed.is_empty() {
            txn_event(self.id, "committed", "all participants acknowledged");
            return Ok(());
        }
        txn_event(self.id, "in_doubt", &causes.join(", "));
        self.coordinator.mark_in_doubt(self.id, failed);
        Err(DhqpError::Transaction(format!(
            "transaction {} is in doubt: log has Committed but commit delivery failed for {} \
             (run recover() to resolve)",
            self.id,
            causes.join(", ")
        )))
    }

    /// Abort everywhere. Participants that fail to acknowledge the abort go
    /// to the in-doubt store; recovery presumes abort and re-delivers.
    pub fn abort(mut self) -> Result<()> {
        if self.finished {
            return Ok(());
        }
        let names = self.participant_names();
        self.finished = true;
        self.coordinator.record(self.id, Outcome::Aborted, names);
        let mut failed = Vec::new();
        for (name, mut session) in std::mem::take(&mut self.participants) {
            if session.abort(self.id).is_err() {
                failed.push((name, session));
            }
        }
        if !failed.is_empty() {
            self.coordinator.mark_in_doubt(self.id, failed);
        }
        Ok(())
    }
}

impl Drop for DistributedTransaction {
    fn drop(&mut self) {
        // Presumed abort: a dropped in-flight transaction rolls back.
        if !self.finished {
            let names = self.participant_names();
            self.coordinator.record(self.id, Outcome::Aborted, names);
            let mut failed = Vec::new();
            for (name, mut session) in std::mem::take(&mut self.participants) {
                if session.abort(self.id).is_err() {
                    failed.push((name, session));
                }
            }
            if !failed.is_empty() {
                self.coordinator.mark_in_doubt(self.id, failed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhqp_oledb::DataSource;
    use dhqp_storage::{LocalDataSource, StorageEngine, TableDef};
    use dhqp_types::{Column, DataType, Row, Schema, Value};

    fn engine(name: &str) -> Arc<StorageEngine> {
        let e = Arc::new(StorageEngine::new(name));
        e.create_table(TableDef::new(
            "t",
            Schema::new(vec![Column::not_null("x", DataType::Int)]),
        ))
        .unwrap();
        e
    }

    fn session_for(e: &Arc<StorageEngine>) -> Box<dyn Session> {
        LocalDataSource::new(Arc::clone(e))
            .create_session()
            .unwrap()
    }

    fn row(v: i64) -> Row {
        Row::new(vec![Value::Int(v)])
    }

    #[test]
    fn two_phase_commit_across_two_engines() {
        let (e1, e2) = (engine("s1"), engine("s2"));
        let dtc = TransactionCoordinator::new();
        let mut txn = dtc.begin();
        txn.enlist("s1", session_for(&e1)).unwrap();
        txn.enlist("s2", session_for(&e2)).unwrap();
        txn.session_mut("s1")
            .unwrap()
            .insert("t", &[row(1)])
            .unwrap();
        txn.session_mut("s2")
            .unwrap()
            .insert("t", &[row(2)])
            .unwrap();
        // Invisible before commit.
        assert_eq!(e1.with_table("t", |t| t.row_count()).unwrap(), 0);
        txn.commit().unwrap();
        assert_eq!(e1.with_table("t", |t| t.row_count()).unwrap(), 1);
        assert_eq!(e2.with_table("t", |t| t.row_count()).unwrap(), 1);
        assert_eq!(dtc.stats(), (1, 0));
        assert_eq!(dtc.log()[0].outcome, Outcome::Committed);
        assert_eq!(dtc.log()[0].participants, vec!["s1", "s2"]);
    }

    #[test]
    fn prepare_failure_aborts_everyone() {
        let (e1, e2) = (engine("s1"), engine("s2"));
        e2.set_fail_prepare(true);
        let dtc = TransactionCoordinator::new();
        let mut txn = dtc.begin();
        txn.enlist("s1", session_for(&e1)).unwrap();
        txn.enlist("s2", session_for(&e2)).unwrap();
        txn.session_mut("s1")
            .unwrap()
            .insert("t", &[row(1)])
            .unwrap();
        txn.session_mut("s2")
            .unwrap()
            .insert("t", &[row(2)])
            .unwrap();
        let err = txn.commit().unwrap_err();
        assert!(err.to_string().contains("refused prepare"), "{err}");
        // Atomicity: neither side applied.
        assert_eq!(e1.with_table("t", |t| t.row_count()).unwrap(), 0);
        assert_eq!(e2.with_table("t", |t| t.row_count()).unwrap(), 0);
        assert_eq!(dtc.stats(), (0, 1));
        // No dangling participant state.
        assert!(!e1.has_txn(dtc.log()[0].txn));
        assert!(!e2.has_txn(dtc.log()[0].txn));
    }

    #[test]
    fn explicit_abort_discards_work() {
        let e1 = engine("s1");
        let dtc = TransactionCoordinator::new();
        let mut txn = dtc.begin();
        txn.enlist("s1", session_for(&e1)).unwrap();
        txn.session_mut("s1")
            .unwrap()
            .insert("t", &[row(1)])
            .unwrap();
        txn.abort().unwrap();
        assert_eq!(e1.with_table("t", |t| t.row_count()).unwrap(), 0);
        assert_eq!(dtc.stats(), (0, 1));
    }

    #[test]
    fn dropped_transaction_presumes_abort() {
        let e1 = engine("s1");
        let dtc = TransactionCoordinator::new();
        {
            let mut txn = dtc.begin();
            txn.enlist("s1", session_for(&e1)).unwrap();
            txn.session_mut("s1")
                .unwrap()
                .insert("t", &[row(1)])
                .unwrap();
            // dropped without commit
        }
        assert_eq!(e1.with_table("t", |t| t.row_count()).unwrap(), 0);
        assert_eq!(dtc.stats(), (0, 1));
    }

    #[test]
    fn commit_phase_failure_leaves_transaction_in_doubt() {
        let (e1, e2) = (engine("s1"), engine("s2"));
        e2.set_fail_commit(true);
        let dtc = TransactionCoordinator::new();
        let mut txn = dtc.begin();
        txn.enlist("s1", session_for(&e1)).unwrap();
        txn.enlist("s2", session_for(&e2)).unwrap();
        txn.session_mut("s1")
            .unwrap()
            .insert("t", &[row(1)])
            .unwrap();
        txn.session_mut("s2")
            .unwrap()
            .insert("t", &[row(2)])
            .unwrap();
        let id = txn.id();
        let err = txn.commit().unwrap_err();
        assert!(err.to_string().contains("in doubt"), "{err}");
        // The decision is durable: the log says Committed and the healthy
        // participant applied its writes.
        assert_eq!(dtc.log()[0].outcome, Outcome::Committed);
        assert_eq!(e1.with_table("t", |t| t.row_count()).unwrap(), 1);
        // The failed participant still buffers its state for recovery.
        assert!(e2.has_txn(id));
        assert_eq!(dtc.in_doubt_txns(), vec![id]);
        assert_eq!(dtc.telemetry().in_doubt, 1);
    }

    #[test]
    fn recover_redelivers_commit_from_the_log() {
        let (e1, e2) = (engine("s1"), engine("s2"));
        e2.set_fail_commit(true);
        let dtc = TransactionCoordinator::new();
        let mut txn = dtc.begin();
        txn.enlist("s1", session_for(&e1)).unwrap();
        txn.enlist("s2", session_for(&e2)).unwrap();
        txn.session_mut("s2")
            .unwrap()
            .insert("t", &[row(2)])
            .unwrap();
        txn.commit().unwrap_err();

        // While the participant is still down, recovery makes no progress.
        let stuck = dtc.recover();
        assert_eq!(
            stuck,
            RecoveryReport {
                resolved: 0,
                still_in_doubt: 1
            }
        );

        // Participant heals; recovery replays the Committed outcome.
        e2.set_fail_commit(false);
        let healed = dtc.recover();
        assert_eq!(
            healed,
            RecoveryReport {
                resolved: 1,
                still_in_doubt: 0
            }
        );
        assert_eq!(e2.with_table("t", |t| t.row_count()).unwrap(), 1);
        assert!(dtc.in_doubt_txns().is_empty());
        let stats = dtc.telemetry();
        assert_eq!((stats.in_doubt, stats.recovered), (0, 1));
        // The commit/abort counters are unchanged by recovery.
        assert_eq!(dtc.stats(), (1, 0));
    }

    #[test]
    fn recover_presumes_abort_without_a_commit_record() {
        // Forge an in-doubt entry with no log record at all (a coordinator
        // that crashed before logging): presumed abort must roll it back.
        let e1 = engine("s1");
        let dtc = TransactionCoordinator::new();
        let mut session = session_for(&e1);
        session.join_transaction(99).unwrap();
        session.insert("t", &[row(1)]).unwrap();
        assert!(e1.has_txn(99));
        dtc.mark_in_doubt(99, vec![("s1".into(), session)]);
        let report = dtc.recover();
        assert_eq!(
            report,
            RecoveryReport {
                resolved: 1,
                still_in_doubt: 0
            }
        );
        assert!(!e1.has_txn(99));
        assert_eq!(e1.with_table("t", |t| t.row_count()).unwrap(), 0);
    }

    #[test]
    fn commit_reports_dtc_waits_and_2pc_events() {
        use dhqp_oledb::{install_scope, ActivityScope, EventHook, WaitStats};

        struct Capture(Mutex<Vec<(String, String)>>);
        impl EventHook for Capture {
            fn emit(&self, kind: &'static str, attrs: &[(&'static str, String)]) {
                let state = attrs
                    .iter()
                    .find(|(k, _)| *k == "state")
                    .map(|(_, v)| v.clone())
                    .unwrap_or_default();
                self.0.lock().push((kind.to_string(), state));
            }
        }

        let waits = Arc::new(WaitStats::default());
        let hook = Arc::new(Capture(Mutex::new(Vec::new())));
        let _g = install_scope(ActivityScope::new(
            vec![Arc::clone(&waits)],
            Some(hook.clone()),
        ));

        let (e1, e2) = (engine("s1"), engine("s2"));
        let dtc = TransactionCoordinator::new();
        let mut txn = dtc.begin();
        txn.enlist("s1", session_for(&e1)).unwrap();
        txn.enlist("s2", session_for(&e2)).unwrap();
        txn.session_mut("s1")
            .unwrap()
            .insert("t", &[row(1)])
            .unwrap();
        txn.commit().unwrap();

        // Both phases were accounted: one prepare wait, one commit wait.
        let snap = waits.snapshot();
        assert_eq!(snap.get(WaitClass::DtcPrepare).count, 1);
        assert_eq!(snap.get(WaitClass::DtcCommit).count, 1);
        // The 2PC state machine narrated its transitions in order.
        let states: Vec<String> = hook
            .0
            .lock()
            .iter()
            .map(|(kind, state)| {
                assert_eq!(kind, "2pc");
                state.clone()
            })
            .collect();
        assert_eq!(states, vec!["preparing", "committing", "committed"]);
    }

    #[test]
    fn transaction_ids_are_unique() {
        let dtc = TransactionCoordinator::new();
        let a = dtc.begin();
        let b = dtc.begin();
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn unknown_participant_lookup_fails() {
        let dtc = TransactionCoordinator::new();
        let mut txn = dtc.begin();
        assert!(txn.session_mut("ghost").is_err());
        txn.abort().unwrap();
    }
}
