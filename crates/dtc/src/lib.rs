//! The distributed transaction coordinator — the Microsoft DTC analog.
//!
//! "SQL Server uses the Microsoft Distributed Transaction Coordinator to
//! ensure atomicity of transactions across data sources" (paper §2).
//! Sessions enlist via the OLE DB-style `join_transaction`; the coordinator
//! drives classic presumed-abort two-phase commit:
//!
//! 1. **Prepare**: every participant must durably promise to commit.
//!    Any refusal aborts everyone.
//! 2. **Commit/Abort**: the decision is logged, then delivered to all
//!    participants.
//!
//! Failure injection in the storage engine (`set_fail_prepare`) lets tests
//! and benches exercise the abort path.

use dhqp_oledb::{Session, TxnId};
use dhqp_types::{DhqpError, Result};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Final decision for a transaction, as recorded in the outcome log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    Committed,
    Aborted,
}

/// One outcome-log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    pub txn: TxnId,
    pub outcome: Outcome,
    pub participants: Vec<String>,
}

/// The coordinator: allocates transaction ids and keeps the outcome log.
#[derive(Default)]
pub struct TransactionCoordinator {
    next_txn: AtomicU64,
    log: Mutex<Vec<LogRecord>>,
    commits: AtomicU64,
    aborts: AtomicU64,
}

impl TransactionCoordinator {
    pub fn new() -> Arc<Self> {
        Arc::new(TransactionCoordinator::default())
    }

    /// Begin a distributed transaction.
    pub fn begin(self: &Arc<Self>) -> DistributedTransaction {
        let id = self.next_txn.fetch_add(1, Ordering::Relaxed) + 1;
        DistributedTransaction {
            coordinator: Arc::clone(self),
            id,
            participants: Vec::new(),
            finished: false,
        }
    }

    /// Committed/aborted counters (bench telemetry).
    pub fn stats(&self) -> (u64, u64) {
        (
            self.commits.load(Ordering::Relaxed),
            self.aborts.load(Ordering::Relaxed),
        )
    }

    /// The outcome log, oldest first.
    pub fn log(&self) -> Vec<LogRecord> {
        self.log.lock().clone()
    }

    fn record(&self, txn: TxnId, outcome: Outcome, participants: Vec<String>) {
        match outcome {
            Outcome::Committed => self.commits.fetch_add(1, Ordering::Relaxed),
            Outcome::Aborted => self.aborts.fetch_add(1, Ordering::Relaxed),
        };
        self.log.lock().push(LogRecord {
            txn,
            outcome,
            participants,
        });
    }
}

/// An in-flight distributed transaction owning its enlisted sessions.
pub struct DistributedTransaction {
    coordinator: Arc<TransactionCoordinator>,
    id: TxnId,
    participants: Vec<(String, Box<dyn Session>)>,
    finished: bool,
}

impl DistributedTransaction {
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Enlist a session (calls the provider's `join_transaction`, the
    /// `ITransactionJoin` analog). The transaction owns the session until
    /// completion.
    pub fn enlist(&mut self, name: impl Into<String>, mut session: Box<dyn Session>) -> Result<()> {
        if self.finished {
            return Err(DhqpError::Transaction(
                "transaction already completed".into(),
            ));
        }
        session.join_transaction(self.id)?;
        self.participants.push((name.into(), session));
        Ok(())
    }

    /// Mutable access to an enlisted session for running work under the
    /// transaction.
    pub fn session_mut(&mut self, name: &str) -> Result<&mut Box<dyn Session>> {
        self.participants
            .iter_mut()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
            .ok_or_else(|| DhqpError::Transaction(format!("no participant '{name}' enlisted")))
    }

    pub fn participant_names(&self) -> Vec<String> {
        self.participants.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Two-phase commit. On any prepare failure every participant is
    /// aborted and the prepare error is returned.
    pub fn commit(mut self) -> Result<()> {
        if self.finished {
            return Err(DhqpError::Transaction(
                "transaction already completed".into(),
            ));
        }
        let names = self.participant_names();
        // Phase one: unanimous prepare.
        let mut refusal: Option<(String, DhqpError)> = None;
        for (name, session) in self.participants.iter_mut() {
            if let Err(e) = session.prepare(self.id) {
                refusal = Some((name.clone(), e));
                break;
            }
        }
        if let Some((name, e)) = refusal {
            // Presumed abort: tell everyone, then report the cause.
            for (_, s) in self.participants.iter_mut() {
                let _ = s.abort(self.id);
            }
            self.finished = true;
            self.coordinator.record(self.id, Outcome::Aborted, names);
            return Err(DhqpError::Transaction(format!(
                "participant '{name}' refused prepare: {e}"
            )));
        }
        // Decision is durable before phase two.
        self.coordinator.record(self.id, Outcome::Committed, names);
        self.finished = true;
        // Phase two: deliver commit. Prepared participants guaranteed
        // success; an error here is an engine invariant violation.
        for (name, session) in self.participants.iter_mut() {
            session.commit(self.id).map_err(|e| {
                DhqpError::Transaction(format!(
                    "prepared participant '{name}' failed to commit (log has Committed): {e}"
                ))
            })?;
        }
        Ok(())
    }

    /// Abort everywhere.
    pub fn abort(mut self) -> Result<()> {
        if self.finished {
            return Ok(());
        }
        let names = self.participant_names();
        for (_, session) in self.participants.iter_mut() {
            let _ = session.abort(self.id);
        }
        self.finished = true;
        self.coordinator.record(self.id, Outcome::Aborted, names);
        Ok(())
    }
}

impl Drop for DistributedTransaction {
    fn drop(&mut self) {
        // Presumed abort: a dropped in-flight transaction rolls back.
        if !self.finished {
            let names = self.participant_names();
            for (_, session) in self.participants.iter_mut() {
                let _ = session.abort(self.id);
            }
            self.coordinator.record(self.id, Outcome::Aborted, names);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhqp_oledb::DataSource;
    use dhqp_storage::{LocalDataSource, StorageEngine, TableDef};
    use dhqp_types::{Column, DataType, Row, Schema, Value};

    fn engine(name: &str) -> Arc<StorageEngine> {
        let e = Arc::new(StorageEngine::new(name));
        e.create_table(TableDef::new(
            "t",
            Schema::new(vec![Column::not_null("x", DataType::Int)]),
        ))
        .unwrap();
        e
    }

    fn session_for(e: &Arc<StorageEngine>) -> Box<dyn Session> {
        LocalDataSource::new(Arc::clone(e))
            .create_session()
            .unwrap()
    }

    fn row(v: i64) -> Row {
        Row::new(vec![Value::Int(v)])
    }

    #[test]
    fn two_phase_commit_across_two_engines() {
        let (e1, e2) = (engine("s1"), engine("s2"));
        let dtc = TransactionCoordinator::new();
        let mut txn = dtc.begin();
        txn.enlist("s1", session_for(&e1)).unwrap();
        txn.enlist("s2", session_for(&e2)).unwrap();
        txn.session_mut("s1")
            .unwrap()
            .insert("t", &[row(1)])
            .unwrap();
        txn.session_mut("s2")
            .unwrap()
            .insert("t", &[row(2)])
            .unwrap();
        // Invisible before commit.
        assert_eq!(e1.with_table("t", |t| t.row_count()).unwrap(), 0);
        txn.commit().unwrap();
        assert_eq!(e1.with_table("t", |t| t.row_count()).unwrap(), 1);
        assert_eq!(e2.with_table("t", |t| t.row_count()).unwrap(), 1);
        assert_eq!(dtc.stats(), (1, 0));
        assert_eq!(dtc.log()[0].outcome, Outcome::Committed);
        assert_eq!(dtc.log()[0].participants, vec!["s1", "s2"]);
    }

    #[test]
    fn prepare_failure_aborts_everyone() {
        let (e1, e2) = (engine("s1"), engine("s2"));
        e2.set_fail_prepare(true);
        let dtc = TransactionCoordinator::new();
        let mut txn = dtc.begin();
        txn.enlist("s1", session_for(&e1)).unwrap();
        txn.enlist("s2", session_for(&e2)).unwrap();
        txn.session_mut("s1")
            .unwrap()
            .insert("t", &[row(1)])
            .unwrap();
        txn.session_mut("s2")
            .unwrap()
            .insert("t", &[row(2)])
            .unwrap();
        let err = txn.commit().unwrap_err();
        assert!(err.to_string().contains("refused prepare"), "{err}");
        // Atomicity: neither side applied.
        assert_eq!(e1.with_table("t", |t| t.row_count()).unwrap(), 0);
        assert_eq!(e2.with_table("t", |t| t.row_count()).unwrap(), 0);
        assert_eq!(dtc.stats(), (0, 1));
        // No dangling participant state.
        assert!(!e1.has_txn(dtc.log()[0].txn));
        assert!(!e2.has_txn(dtc.log()[0].txn));
    }

    #[test]
    fn explicit_abort_discards_work() {
        let e1 = engine("s1");
        let dtc = TransactionCoordinator::new();
        let mut txn = dtc.begin();
        txn.enlist("s1", session_for(&e1)).unwrap();
        txn.session_mut("s1")
            .unwrap()
            .insert("t", &[row(1)])
            .unwrap();
        txn.abort().unwrap();
        assert_eq!(e1.with_table("t", |t| t.row_count()).unwrap(), 0);
        assert_eq!(dtc.stats(), (0, 1));
    }

    #[test]
    fn dropped_transaction_presumes_abort() {
        let e1 = engine("s1");
        let dtc = TransactionCoordinator::new();
        {
            let mut txn = dtc.begin();
            txn.enlist("s1", session_for(&e1)).unwrap();
            txn.session_mut("s1")
                .unwrap()
                .insert("t", &[row(1)])
                .unwrap();
            // dropped without commit
        }
        assert_eq!(e1.with_table("t", |t| t.row_count()).unwrap(), 0);
        assert_eq!(dtc.stats(), (0, 1));
    }

    #[test]
    fn transaction_ids_are_unique() {
        let dtc = TransactionCoordinator::new();
        let a = dtc.begin();
        let b = dtc.begin();
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn unknown_participant_lookup_fails() {
        let dtc = TransactionCoordinator::new();
        let mut txn = dtc.begin();
        assert!(txn.session_mut("ghost").is_err());
        txn.abort().unwrap();
    }
}
