//! Plan-to-operator translation: open a [`PhysNode`] tree as a rowset.

use crate::context::ExecContext;
use crate::eval::{eval_predicate, RowEnv};
use crate::ops::agg::{HashAggregate, StreamAggregate};
use crate::ops::exchange::{BranchFactory, ExchangeRowset, PrefetchRowset};
use crate::ops::filter::{open_startup_filter, FilterRowset, ProjectRowset};
use crate::ops::join::{HashJoin, InnerFactory, MergeJoin, NestedLoopJoin};
use crate::ops::remote::{
    open_remote_fetch, open_remote_query, open_remote_range, open_remote_scan, remote_query_text,
};
use crate::ops::scan::{open_index_range, open_table_scan};
use crate::ops::semijoin::{open_semijoin_reduce, SemiJoinSpec};
use crate::ops::sort::{open_sort, open_spool, TopRowset, UnionAllRowset};
use crate::stats::{RemoteProbe, StatsRowset};
use dhqp_oledb::{MemRowset, Rowset};
use dhqp_optimizer::{ColumnId, PhysNode, PhysicalOp};
use dhqp_types::{DhqpError, Result, Row};
use std::collections::HashMap;
use std::sync::Arc;

/// Open a physical plan as a rowset. Re-entrant: nested-loop joins call
/// back into the builder for every outer row, with fresh correlation
/// bindings.
///
/// Every node is addressed by its **pre-order id** (root = 0, first child =
/// 1, each later child follows the previous sibling's subtree). Ids key
/// both the spool cache and the runtime stats collector; they are stable
/// across rescans even though nested-loop joins clone their inner subtree.
pub fn open(plan: &PhysNode, ctx: &ExecContext) -> Result<Box<dyn Rowset>> {
    open_node(plan, ctx, 0)
}

/// Pre-order id of `plan.children[k]` given the parent's id.
fn child_id(plan: &PhysNode, id: usize, k: usize) -> usize {
    id + 1
        + plan.children[..k]
            .iter()
            .map(PhysNode::subtree_size)
            .sum::<usize>()
}

/// Open one node: build its rowset, then (only when a stats collector is
/// attached) wrap it so rows/time — and, for remote operators, the shipped
/// command text plus the wire-traffic delta — land on this node's id.
fn open_node(plan: &PhysNode, ctx: &ExecContext, id: usize) -> Result<Box<dyn Rowset>> {
    let Some(collector) = ctx.stats() else {
        return build_node(plan, ctx, id);
    };
    let collector = Arc::clone(collector);
    // Snapshot the source's wire counters *before* the open: the open
    // itself is a metered round trip that belongs to this node.
    let probe = remote_probe(plan, ctx)?;
    let inner = build_node(plan, ctx, id)?;
    Ok(Box::new(StatsRowset::new(inner, id, collector, probe)))
}

/// For remote operators, resolve the target source and describe the exact
/// request that will cross the link.
fn remote_probe(plan: &PhysNode, ctx: &ExecContext) -> Result<Option<RemoteProbe>> {
    let (server, request) = match &plan.op {
        PhysicalOp::RemoteQuery {
            server,
            sql,
            params,
            ..
        } => (server.to_string(), remote_query_text(sql, params, ctx)?),
        PhysicalOp::RemoteScan { meta } => match meta.source.server_name() {
            Some(s) => (s.to_string(), format!("IOpenRowset([{}])", meta.table)),
            None => return Ok(None),
        },
        PhysicalOp::RemoteRange { meta, index, .. } => match meta.source.server_name() {
            Some(s) => (
                s.to_string(),
                format!("IRowsetIndex([{}].[{index}] range)", meta.table),
            ),
            None => return Ok(None),
        },
        PhysicalOp::RemoteFetch { meta } => match meta.source.server_name() {
            Some(s) => (
                s.to_string(),
                format!("IRowsetLocate([{}] bookmarks)", meta.table),
            ),
            None => return Ok(None),
        },
        _ => return Ok(None),
    };
    let source = ctx.catalog().linked(&server)?;
    Ok(Some(RemoteProbe::new(source, &server, request)))
}

/// First linked server a subtree would touch, if any — the member identity
/// degraded-mode pruning quarantines by. A DPV member branch is rooted at
/// (or wraps) exactly one remote operator, so the first hit is the member.
fn branch_server(plan: &PhysNode) -> Option<&str> {
    match &plan.op {
        PhysicalOp::RemoteQuery { server, .. } | PhysicalOp::SemiJoinReduce { server, .. } => {
            Some(server)
        }
        PhysicalOp::RemoteScan { meta }
        | PhysicalOp::RemoteRange { meta, .. }
        | PhysicalOp::RemoteFetch { meta } => meta.source.server_name(),
        _ => plan.children.iter().find_map(branch_server),
    }
}

/// First base table a subtree reads — the member identity reported for a
/// startup-pruned *local* DPV member, where there is no linked server.
fn branch_table(plan: &PhysNode) -> Option<String> {
    match &plan.op {
        PhysicalOp::TableScan { meta } | PhysicalOp::IndexRange { meta, .. } => {
            Some(meta.table.clone())
        }
        _ => plan.children.iter().find_map(branch_table),
    }
}

/// Runtime parameter-driven pruning (§4.1.5): does this union/exchange
/// member start with a startup filter whose column-free predicate is false
/// for the current parameter values? When it does, the member is skipped
/// before a connection, worker thread, or breaker admission is spent on
/// it. With the knob off the startup filter still gates lazily inside the
/// member, so results are identical either way — only the reporting and
/// the avoided opens differ.
fn startup_prunes(member: &PhysNode, ctx: &ExecContext) -> Result<bool> {
    if !ctx.runtime_prune() {
        return Ok(false);
    }
    let PhysicalOp::StartupFilter { predicate } = &member.op else {
        return Ok(false);
    };
    let positions: HashMap<ColumnId, usize> = HashMap::new();
    let row = Row::new(vec![]);
    let env = RowEnv {
        positions: &positions,
        row: &row,
        ctx,
    };
    Ok(!eval_predicate(predicate, &env)?)
}

/// Record one startup-pruned member on the startup channel (distinct from
/// degraded-mode quarantine) and in the engine counters.
fn skip_startup_member(member: &PhysNode, ctx: &ExecContext) {
    let label = branch_server(member)
        .map(str::to_string)
        .or_else(|| branch_table(member))
        .unwrap_or_else(|| "local".to_string());
    ctx.pruned().record_startup(&label);
    ctx.counters().add_startup_member_skipped();
}

/// Quarantine one union/exchange member: note it in the per-query prune
/// log (EXPLAIN ANALYZE, `sys.dm_exec_requests`) and the engine counters.
fn prune_member(server: &str, ctx: &ExecContext) {
    ctx.pruned().record(server);
    ctx.counters().add_member_pruned();
}

/// Open one union/exchange member under the degraded-mode policy. In
/// prune mode a remote branch whose open fails with a transport error
/// (breaker fail-fast or a genuinely exhausted retry budget) is skipped —
/// `Ok(None)` — instead of failing the statement. Everything else (fail
/// mode, local branches, permanent errors) propagates.
fn open_member(c: &PhysNode, ctx: &ExecContext, cid: usize) -> Result<Option<Box<dyn Rowset>>> {
    match open_node(c, ctx, cid) {
        Ok(rs) => Ok(Some(rs)),
        Err(e) if ctx.degraded().is_prune() && e.is_retryable() => match branch_server(c) {
            Some(server) => {
                prune_member(server, ctx);
                Ok(None)
            }
            None => Err(e),
        },
        Err(e) => Err(e),
    }
}

/// Every member was quarantined: degraded mode refuses to return an empty
/// answer that silently means "nothing survived".
fn all_members_pruned(ctx: &ExecContext) -> DhqpError {
    DhqpError::Unavailable(format!(
        "degraded mode pruned every member of the partitioned view \
         (quarantined: {})",
        ctx.pruned().members().join(", ")
    ))
}

/// Wrap a remote rowset in a prefetching decorator when the context asks
/// for it: a background worker pipelines the next batch across the link
/// while the consumer drains the current one.
fn maybe_prefetch(inner: Box<dyn Rowset>, ctx: &ExecContext) -> Box<dyn Rowset> {
    let cfg = ctx.parallel();
    if cfg.enabled && cfg.prefetch {
        ctx.counters().add_remote_prefetch();
        let batch = ctx.batch();
        // With batching on the worker ships DHQP_BATCH_SIZE-row round
        // trips; with it off the worker assembles prefetch_batch-row
        // buffers from per-row pulls, preserving per-row wire accounting.
        let (rows, batched) = if batch.enabled {
            (batch.batch_size, true)
        } else {
            (cfg.prefetch_batch, false)
        };
        Box::new(PrefetchRowset::new(
            inner,
            rows,
            cfg.prefetch_queue,
            batched,
        ))
    } else {
        inner
    }
}

fn build_node(plan: &PhysNode, ctx: &ExecContext, id: usize) -> Result<Box<dyn Rowset>> {
    match &plan.op {
        PhysicalOp::TableScan { meta } => open_table_scan(meta, ctx),
        PhysicalOp::IndexRange { meta, index, range } => open_index_range(meta, index, range, ctx),
        PhysicalOp::RemoteScan { meta } => {
            Ok(maybe_prefetch(open_remote_scan(meta, ctx, id)?, ctx))
        }
        PhysicalOp::RemoteRange { meta, index, range } => Ok(maybe_prefetch(
            open_remote_range(meta, index, range, ctx, id)?,
            ctx,
        )),
        PhysicalOp::RemoteFetch { meta } => {
            let child = open_node(&plan.children[0], ctx, child_id(plan, id, 0))?;
            Ok(maybe_prefetch(
                open_remote_fetch(meta, child, ctx, id)?,
                ctx,
            ))
        }
        PhysicalOp::RemoteQuery {
            server,
            sql,
            params,
            ..
        } => Ok(maybe_prefetch(
            open_remote_query(server, sql, params, ctx, id)?,
            ctx,
        )),
        PhysicalOp::SemiJoinReduce {
            kind,
            build_key,
            probe_key,
            residual,
            server,
            sql,
            columns,
            params,
            max_keys,
        } => {
            let build = open_node(&plan.children[0], ctx, child_id(plan, id, 0))?;
            open_semijoin_reduce(
                SemiJoinSpec {
                    kind: *kind,
                    build_key: *build_key,
                    probe_key: *probe_key,
                    residual: residual.as_ref(),
                    server,
                    sql,
                    params,
                    columns,
                    max_keys: *max_keys,
                },
                build,
                &plan.children[0].output,
                &plan.output,
                ctx,
                id,
            )
        }
        PhysicalOp::Filter { predicate } => {
            let child = open_node(&plan.children[0], ctx, child_id(plan, id, 0))?;
            Ok(Box::new(FilterRowset::new(
                child,
                predicate.clone(),
                &plan.children[0].output,
                ctx.clone(),
            )))
        }
        PhysicalOp::StartupFilter { predicate } => {
            let schema = ctx.schema_of(&plan.output);
            let child_plan = &plan.children[0];
            let cid = child_id(plan, id, 0);
            open_startup_filter(predicate, schema, ctx, || open_node(child_plan, ctx, cid))
        }
        PhysicalOp::Project { outputs } => {
            let child = open_node(&plan.children[0], ctx, child_id(plan, id, 0))?;
            let schema = ctx.schema_of(&plan.output);
            Ok(Box::new(ProjectRowset::new(
                child,
                outputs.clone(),
                &plan.children[0].output,
                schema,
                ctx.clone(),
            )))
        }
        PhysicalOp::NestedLoopJoin { kind, predicate } => {
            let outer = open_node(&plan.children[0], ctx, child_id(plan, id, 0))?;
            let inner_plan = Arc::new(plan.children[1].clone());
            let inner_id = child_id(plan, id, 1);
            let factory: InnerFactory = {
                let inner_plan = Arc::clone(&inner_plan);
                Box::new(move |child_ctx: &ExecContext| open_node(&inner_plan, child_ctx, inner_id))
            };
            let schema = ctx.schema_of(&plan.output);
            Ok(Box::new(NestedLoopJoin::new(
                outer,
                factory,
                *kind,
                predicate.clone(),
                plan.children[0].output.clone(),
                inner_plan.output.clone(),
                schema,
                ctx.clone(),
            )))
        }
        PhysicalOp::HashJoin {
            kind,
            left_keys,
            right_keys,
            residual,
        } => {
            let left = open_node(&plan.children[0], ctx, child_id(plan, id, 0))?;
            let right = open_node(&plan.children[1], ctx, child_id(plan, id, 1))?;
            let schema = ctx.schema_of(&plan.output);
            Ok(Box::new(HashJoin::new(
                left,
                right,
                *kind,
                left_keys,
                right_keys,
                residual.as_ref(),
                &plan.children[0].output,
                &plan.children[1].output,
                schema,
                ctx,
            )?))
        }
        PhysicalOp::MergeJoin {
            left_keys,
            right_keys,
            residual,
        } => {
            let left = open_node(&plan.children[0], ctx, child_id(plan, id, 0))?;
            let right = open_node(&plan.children[1], ctx, child_id(plan, id, 1))?;
            let schema = ctx.schema_of(&plan.output);
            Ok(Box::new(MergeJoin::new(
                left,
                right,
                left_keys,
                right_keys,
                residual.as_ref(),
                &plan.children[0].output,
                &plan.children[1].output,
                schema,
                ctx,
            )?))
        }
        PhysicalOp::HashAggregate { group_by, aggs } => {
            let child = open_node(&plan.children[0], ctx, child_id(plan, id, 0))?;
            let schema = ctx.schema_of(&plan.output);
            Ok(Box::new(HashAggregate::new(
                child,
                group_by,
                aggs,
                &plan.children[0].output,
                schema,
                ctx,
            )?))
        }
        PhysicalOp::StreamAggregate { group_by, aggs } => {
            let child = open_node(&plan.children[0], ctx, child_id(plan, id, 0))?;
            let schema = ctx.schema_of(&plan.output);
            Ok(Box::new(StreamAggregate::new(
                child,
                group_by,
                aggs.clone(),
                &plan.children[0].output,
                schema,
                ctx.clone(),
            )?))
        }
        PhysicalOp::Sort { keys } => {
            let child = open_node(&plan.children[0], ctx, child_id(plan, id, 0))?;
            open_sort(child, keys, &plan.children[0].output)
        }
        PhysicalOp::Top { n } => {
            let child = open_node(&plan.children[0], ctx, child_id(plan, id, 0))?;
            Ok(Box::new(TopRowset::new(child, *n)))
        }
        PhysicalOp::UnionAll { input_columns, .. } => {
            // children / delivered / inputs are filtered in lockstep when
            // degraded mode prunes a quarantined member, keeping the
            // permutation maps index-aligned with the surviving branches.
            let mut children = Vec::with_capacity(plan.children.len());
            let mut delivered = Vec::with_capacity(plan.children.len());
            let mut inputs = Vec::with_capacity(plan.children.len());
            let mut startup_skips = 0usize;
            for (k, c) in plan.children.iter().enumerate() {
                if startup_prunes(c, ctx)? {
                    startup_skips += 1;
                    skip_startup_member(c, ctx);
                    continue;
                }
                let Some(rs) = open_member(c, ctx, child_id(plan, id, k))? else {
                    continue;
                };
                children.push(rs);
                delivered.push(c.output.clone());
                inputs.push(input_columns[k].clone());
            }
            // All-startup-pruned is a legitimate empty answer (the lazy
            // startup filters would have produced the same); only an
            // all-*quarantined* view refuses to answer.
            if children.is_empty() && !plan.children.is_empty() && startup_skips == 0 {
                return Err(all_members_pruned(ctx));
            }
            let schema = ctx.schema_of(&plan.output);
            Ok(Box::new(UnionAllRowset::new(
                children, &delivered, &inputs, schema,
            )?))
        }
        PhysicalOp::Exchange { input_columns, .. } => {
            let schema = ctx.schema_of(&plan.output);
            if !ctx.parallel().enabled {
                // Serial fallback: identical semantics to UnionAll, same
                // deterministic branch-by-branch row order — including the
                // degraded-mode pruning of quarantined members.
                let mut children = Vec::with_capacity(plan.children.len());
                let mut delivered = Vec::with_capacity(plan.children.len());
                let mut inputs = Vec::with_capacity(plan.children.len());
                let mut startup_skips = 0usize;
                for (k, c) in plan.children.iter().enumerate() {
                    if startup_prunes(c, ctx)? {
                        startup_skips += 1;
                        skip_startup_member(c, ctx);
                        continue;
                    }
                    let Some(rs) = open_member(c, ctx, child_id(plan, id, k))? else {
                        continue;
                    };
                    children.push(rs);
                    delivered.push(c.output.clone());
                    inputs.push(input_columns[k].clone());
                }
                if children.is_empty() && !plan.children.is_empty() && startup_skips == 0 {
                    return Err(all_members_pruned(ctx));
                }
                return Ok(Box::new(UnionAllRowset::new(
                    children, &delivered, &inputs, schema,
                )?));
            }
            // Startup-pruned members are dropped before a worker is spawned
            // for them; branches/delivered/inputs stay index-aligned.
            let mut branches: Vec<BranchFactory> = Vec::with_capacity(plan.children.len());
            let mut delivered: Vec<Vec<ColumnId>> = Vec::with_capacity(plan.children.len());
            let mut inputs: Vec<Vec<ColumnId>> = Vec::with_capacity(plan.children.len());
            for (k, c) in plan.children.iter().enumerate() {
                if startup_prunes(c, ctx)? {
                    skip_startup_member(c, ctx);
                    continue;
                }
                // Workers re-enter the builder with the branch's own
                // pre-order id, so per-branch instrumentation (stats,
                // wire probes) lands on the right node.
                let branch_plan = Arc::new(c.clone());
                let branch_id = child_id(plan, id, k);
                // In prune mode a remote branch that fails its open
                // with a transport error yields an empty rowset and
                // quarantines the member instead of poisoning the
                // whole exchange.
                let mut factory: Option<BranchFactory> = None;
                if ctx.degraded().is_prune() {
                    if let Some(server) = branch_server(c) {
                        let server = server.to_string();
                        let branch_schema = ctx.schema_of(&c.output);
                        factory = Some(Box::new(move |cx: &ExecContext| {
                            match open_node(&branch_plan, cx, branch_id) {
                                Err(e) if e.is_retryable() => {
                                    prune_member(&server, cx);
                                    Ok(Box::new(MemRowset::empty(branch_schema.clone()))
                                        as Box<dyn Rowset>)
                                }
                                other => other,
                            }
                        }));
                    }
                }
                branches.push(factory.unwrap_or_else(|| {
                    let branch_plan = Arc::new(c.clone());
                    Box::new(move |cx: &ExecContext| open_node(&branch_plan, cx, branch_id))
                }));
                delivered.push(c.output.clone());
                inputs.push(input_columns[k].clone());
            }
            if branches.is_empty() && !plan.children.is_empty() {
                // Every member was startup-pruned: a legitimately empty
                // parameterized answer, with zero workers spawned.
                return Ok(Box::new(MemRowset::empty(schema)));
            }
            Ok(Box::new(ExchangeRowset::new(
                branches,
                &delivered,
                &inputs,
                schema,
                ctx.parallel(),
                ctx,
                id,
            )?))
        }
        PhysicalOp::Spool => {
            // Keyed by pre-order node id: stable across the inner-subtree
            // clones a nested-loop join makes per rescan (a raw pointer
            // would not be).
            let child_plan = &plan.children[0];
            let cid = child_id(plan, id, 0);
            open_spool(id, ctx, || open_node(child_plan, ctx, cid))
        }
        PhysicalOp::Values { rows, .. } => {
            let schema = ctx.schema_of(&plan.output);
            let rows = rows.iter().map(|vals| Row::new(vals.clone())).collect();
            Ok(Box::new(MemRowset::new(schema, rows)))
        }
        PhysicalOp::Empty { .. } => {
            let schema = ctx.schema_of(&plan.output);
            Ok(Box::new(MemRowset::empty(schema)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_support::TestCatalog;
    use dhqp_oledb::{DataSource, RowsetExt};
    use dhqp_optimizer::logical::test_table_meta;
    use dhqp_optimizer::physical::IndexRangeSpec;
    use dhqp_optimizer::props::ColumnRegistry;
    use dhqp_optimizer::{ColumnId, JoinKind, Locality, ScalarExpr};
    use dhqp_storage::{LocalDataSource, StorageEngine, TableDef};
    use dhqp_types::{Column, DataType, Schema, Value};
    use std::collections::HashMap;

    /// Local engine with t(k, v) plus a "remote" engine r with the same
    /// table behind the catalog's linked-server map.
    fn setup() -> (
        ExecContext,
        Arc<dhqp_optimizer::TableMeta>,
        Arc<dhqp_optimizer::TableMeta>,
    ) {
        let mut registry = ColumnRegistry::new();
        let local_engine = Arc::new(StorageEngine::new("local"));
        let remote_engine = Arc::new(StorageEngine::new("r-engine"));
        for engine in [&local_engine, &remote_engine] {
            engine
                .create_table(
                    TableDef::new(
                        "t",
                        Schema::new(vec![
                            Column::not_null("k", DataType::Int),
                            Column::not_null("v", DataType::Int),
                        ]),
                    )
                    .with_index("pk_t", &["k"], true),
                )
                .unwrap();
            let rows: Vec<Row> = (0..8)
                .map(|i| Row::new(vec![Value::Int(i), Value::Int(i * 10)]))
                .collect();
            engine.insert_rows("t", &rows).unwrap();
        }
        let local_meta = {
            let m = test_table_meta(
                0,
                "t",
                Locality::Local,
                &[("k", DataType::Int), ("v", DataType::Int)],
                &mut registry,
                8,
            );
            let mut m2 = (*m).clone();
            m2.indexes = vec![dhqp_oledb::IndexInfo {
                name: "pk_t".into(),
                key_columns: vec!["k".into()],
                unique: true,
            }];
            Arc::new(m2)
        };
        let remote_meta = {
            let m = test_table_meta(
                1,
                "t",
                Locality::remote("r"),
                &[("k", DataType::Int), ("v", DataType::Int)],
                &mut registry,
                8,
            );
            let mut m2 = (*m).clone();
            m2.indexes = vec![dhqp_oledb::IndexInfo {
                name: "pk_t".into(),
                key_columns: vec!["k".into()],
                unique: true,
            }];
            Arc::new(m2)
        };
        let mut catalog = TestCatalog::with_local(local_engine);
        catalog.remotes.insert(
            "r".into(),
            Arc::new(LocalDataSource::new(remote_engine)) as Arc<dyn DataSource>,
        );
        let ctx = ExecContext::new(Arc::new(catalog), HashMap::new(), Arc::new(registry));
        (ctx, local_meta, remote_meta)
    }

    #[test]
    fn remote_fetch_resolves_bookmarks_from_child() {
        let (ctx, _, remote) = setup();
        // RemoteRange over k in [2, 4], then RemoteFetch the base rows.
        let range = PhysNode::new(
            PhysicalOp::RemoteRange {
                meta: Arc::clone(&remote),
                index: "pk_t".into(),
                range: IndexRangeSpec {
                    low: Some((vec![ScalarExpr::literal(Value::Int(2))], true)),
                    high: Some((vec![ScalarExpr::literal(Value::Int(4))], true)),
                },
            },
            vec![],
            remote.column_ids.clone(),
        );
        let fetch = PhysNode::new(
            PhysicalOp::RemoteFetch {
                meta: Arc::clone(&remote),
            },
            vec![range],
            remote.column_ids.clone(),
        );
        let rows = open(&fetch, &ctx).unwrap().collect_rows().unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].get(1), &Value::Int(20));
    }

    #[test]
    fn nested_loop_rescans_spooled_inner_once() {
        let (ctx, local, remote) = setup();
        // NLJ: local t as outer (8 rows), spooled remote scan as inner.
        let outer = PhysNode::new(
            PhysicalOp::TableScan {
                meta: Arc::clone(&local),
            },
            vec![],
            local.column_ids.clone(),
        );
        let inner_scan = PhysNode::new(
            PhysicalOp::RemoteScan {
                meta: Arc::clone(&remote),
            },
            vec![],
            remote.column_ids.clone(),
        );
        let spool = PhysNode::new(
            PhysicalOp::Spool,
            vec![inner_scan],
            remote.column_ids.clone(),
        );
        let pred = ScalarExpr::eq(
            ScalarExpr::Column(local.column_id(0)),
            ScalarExpr::Column(remote.column_id(0)),
        );
        let mut out_cols = local.column_ids.clone();
        out_cols.extend(remote.column_ids.iter().copied());
        let join = PhysNode::new(
            PhysicalOp::NestedLoopJoin {
                kind: JoinKind::Inner,
                predicate: Some(pred),
            },
            vec![outer, spool],
            out_cols,
        );
        let rows = open(&join, &ctx).unwrap().collect_rows().unwrap();
        assert_eq!(rows.len(), 8, "equi self-match across engines");
    }

    #[test]
    fn startup_filter_gates_whole_subtree() {
        let (ctx, local, _) = setup();
        let scan = PhysNode::new(
            PhysicalOp::TableScan {
                meta: Arc::clone(&local),
            },
            vec![],
            local.column_ids.clone(),
        );
        let blocked = PhysNode::new(
            PhysicalOp::StartupFilter {
                predicate: ScalarExpr::literal(Value::Bool(false)),
            },
            vec![scan.clone()],
            local.column_ids.clone(),
        );
        assert_eq!(open(&blocked, &ctx).unwrap().count_rows().unwrap(), 0);
        let passed = PhysNode::new(
            PhysicalOp::StartupFilter {
                predicate: ScalarExpr::literal(Value::Bool(true)),
            },
            vec![scan],
            local.column_ids.clone(),
        );
        assert_eq!(open(&passed, &ctx).unwrap().count_rows().unwrap(), 8);
    }

    #[test]
    fn union_all_permutes_mismatched_child_orders() {
        let (ctx, local, remote) = setup();
        let child1 = PhysNode::new(
            PhysicalOp::TableScan {
                meta: Arc::clone(&local),
            },
            vec![],
            local.column_ids.clone(),
        );
        let child2 = PhysNode::new(
            PhysicalOp::RemoteScan {
                meta: Arc::clone(&remote),
            },
            vec![],
            remote.column_ids.clone(),
        );
        // Output columns: fresh ids fed by (k, v) of each child, but child2's
        // feeding list is reversed (v, k) to force a permutation.
        let out = vec![ColumnId(100), ColumnId(101)];
        let union = PhysNode {
            op: PhysicalOp::UnionAll {
                output: out.clone(),
                input_columns: vec![
                    local.column_ids.clone(),
                    vec![remote.column_id(1), remote.column_id(0)],
                ],
            },
            children: vec![child1, child2],
            output: out,
            est_rows: 16.0,
            est_cost: 0.0,
        };
        // schema_of needs registry entries for 100/101 — use a local ctx
        // with a registry containing them.
        let mut registry = ColumnRegistry::new();
        for _ in 0..100 {
            registry.allocate("pad", "", DataType::Int, true);
        }
        registry.allocate("c100", "", DataType::Int, true);
        registry.allocate("c101", "", DataType::Int, true);
        let ctx2 = ExecContext::new(
            Arc::clone(ctx.catalog()),
            HashMap::new(),
            Arc::new(registry),
        );
        let rows = open(&union, &ctx2).unwrap().collect_rows().unwrap();
        assert_eq!(rows.len(), 16);
        // First half: (k, v); second half: (v, k).
        assert_eq!(rows[0].values, vec![Value::Int(0), Value::Int(0)]);
        assert_eq!(rows[9].values, vec![Value::Int(10), Value::Int(1)]);
    }
}
