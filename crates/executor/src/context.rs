//! Execution context: parameter values, correlation bindings, data-source
//! resolution and the shared spool cache.

use crate::health::{DegradedMode, HealthRegistry, PruneLog};
use crate::ops::retry::RetryPolicy;
use crate::stats::{ExecCounters, RuntimeStatsCollector};
use dhqp_oledb::DataSource;
use dhqp_optimizer::props::ColumnRegistry;
use dhqp_optimizer::ColumnId;
use dhqp_types::{Column, DhqpError, Result, Row, Schema, Value};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Resolves data sources by linked-server name. The engine's federated
/// catalog implements this; tests provide small stubs.
pub trait SourceCatalog: Send + Sync {
    /// The local storage engine's data source.
    fn local(&self) -> Arc<dyn DataSource>;

    /// A linked server by name.
    fn linked(&self, server: &str) -> Result<Arc<dyn DataSource>>;
}

/// A materialized spool, shared across rescans of the same plan node.
pub type SpoolData = Arc<(Schema, Vec<Row>)>;

/// Knobs for intra-query parallel remote execution: exchange worker fan-out
/// and remote-rowset prefetching. Threaded through [`ExecContext`] so every
/// operator open sees the same settings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Master switch. Off, Exchange nodes drain their branches serially
    /// (UnionAll semantics) and no prefetch workers are spawned.
    pub enabled: bool,
    /// Maximum worker threads per exchange; branches are distributed
    /// round-robin when there are more branches than workers.
    pub max_workers: usize,
    /// Bounded-channel capacity (rows) between exchange workers and the
    /// consumer cursor — the backpressure window.
    pub exchange_queue: usize,
    /// Pipeline remote rowsets: a background worker pulls the next batch
    /// while the consumer drains the current one.
    pub prefetch: bool,
    /// Rows per prefetched batch.
    pub prefetch_batch: usize,
    /// Batches buffered ahead of the consumer.
    pub prefetch_queue: usize,
}

impl ParallelConfig {
    /// Everything off: the single-threaded pull pipeline.
    pub fn serial() -> Self {
        ParallelConfig {
            enabled: false,
            max_workers: 8,
            exchange_queue: 256,
            prefetch: false,
            prefetch_batch: 64,
            prefetch_queue: 2,
        }
    }

    /// Exchange dispatch and prefetching on, with default sizing.
    pub fn parallel() -> Self {
        ParallelConfig {
            enabled: true,
            prefetch: true,
            ..ParallelConfig::serial()
        }
    }

    /// [`ParallelConfig::parallel`] when the `DHQP_PARALLEL` environment
    /// switch is set (to anything but `0`), [`ParallelConfig::serial`]
    /// otherwise.
    pub fn from_env() -> Self {
        let on = std::env::var("DHQP_PARALLEL")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        if on {
            ParallelConfig::parallel()
        } else {
            ParallelConfig::serial()
        }
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig::from_env()
    }
}

/// Knobs for vectorized (batch-at-a-time) execution. When enabled, the
/// engine drains plans through [`dhqp_oledb::Rowset::next_batch`], batch-
/// native operators hand whole chunks down the tree, and the network layer
/// ships one simulated round trip per chunk. When disabled, every cursor
/// degenerates to the classic row-at-a-time pull.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchConfig {
    /// Master switch (`DHQP_BATCH`, default on).
    pub enabled: bool,
    /// Rows per chunk (`DHQP_BATCH_SIZE`, default 1024, clamped to ≥ 1).
    pub batch_size: usize,
}

/// Default rows-per-chunk when `DHQP_BATCH_SIZE` is unset.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

impl BatchConfig {
    /// Row-at-a-time compatibility mode.
    pub fn row_at_a_time() -> Self {
        BatchConfig {
            enabled: false,
            batch_size: DEFAULT_BATCH_SIZE,
        }
    }

    /// Vectorized execution with an explicit chunk size.
    pub fn batched(batch_size: usize) -> Self {
        BatchConfig {
            enabled: true,
            batch_size: batch_size.max(1),
        }
    }

    /// Batching on (unless `DHQP_BATCH=0`) with `DHQP_BATCH_SIZE` rows per
    /// chunk (default [`DEFAULT_BATCH_SIZE`]).
    pub fn from_env() -> Self {
        let enabled = std::env::var("DHQP_BATCH")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(true);
        let batch_size = std::env::var("DHQP_BATCH_SIZE")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_BATCH_SIZE)
            .max(1);
        BatchConfig {
            enabled,
            batch_size,
        }
    }

    /// The chunk size operators should pull with: the configured size when
    /// batching is on, 1 (today's per-row behavior) when off.
    pub fn pull_size(&self) -> usize {
        if self.enabled {
            self.batch_size
        } else {
            1
        }
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig::from_env()
    }
}

/// Runtime startup pruning on (unless `DHQP_RUNTIME_PRUNE=0`).
pub fn runtime_prune_from_env() -> bool {
    std::env::var("DHQP_RUNTIME_PRUNE")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(true)
}

/// Per-execution state threaded through every operator.
#[derive(Clone)]
pub struct ExecContext {
    catalog: Arc<dyn SourceCatalog>,
    /// `@name` parameter values for this execution.
    params: Arc<HashMap<String, Value>>,
    /// Correlation bindings: outer-row column values visible to a
    /// re-opened inner subtree of a nested-loop join.
    bindings: Arc<HashMap<u32, Value>>,
    /// Spool cache keyed by plan-node address (stable for the duration of
    /// one query execution).
    spools: Arc<Mutex<HashMap<usize, SpoolData>>>,
    /// Column metadata snapshot from binding, used to build operator
    /// output schemas.
    registry: Arc<ColumnRegistry>,
    /// Engine-wide lock-free counters (remote round trips, spool cache
    /// activity). The engine passes its own shared instance so counts
    /// survive the execution.
    counters: Arc<ExecCounters>,
    /// Per-node runtime stats, attached only for `EXPLAIN ANALYZE` (or
    /// tests); `None` keeps the plain execution path unchanged.
    stats: Option<Arc<RuntimeStatsCollector>>,
    /// Intra-query parallelism knobs (exchange workers, prefetch).
    parallel: Arc<ParallelConfig>,
    /// Retry/backoff policy for idempotent remote reads.
    retry: Arc<RetryPolicy>,
    /// Vectorized-execution knobs (chunked pulls, batched wire shipping).
    batch: Arc<BatchConfig>,
    /// Per-link circuit breakers: fail-fast gate for remote opens and the
    /// quarantine source for degraded-mode pruning. `None` (bare contexts,
    /// unit tests) means no health gating at all.
    health: Option<Arc<HealthRegistry>>,
    /// What to do when a DPV member is quarantined: fail or prune.
    degraded: DegradedMode,
    /// Runtime parameter-driven DPV pruning (§4.1.5): evaluate member
    /// startup predicates eagerly at drive time so non-qualifying members
    /// are skipped (and reported) before a connection or worker is spent
    /// on them. Off, startup filters still gate lazily — results are
    /// identical, only the reporting and the avoided opens differ.
    runtime_prune: bool,
    /// Members pruned during this execution (shared with the engine so the
    /// statement can report them after the drain).
    pruned: Arc<PruneLog>,
}

impl ExecContext {
    pub fn new(
        catalog: Arc<dyn SourceCatalog>,
        params: HashMap<String, Value>,
        registry: Arc<ColumnRegistry>,
    ) -> Self {
        ExecContext {
            catalog,
            params: Arc::new(params),
            bindings: Arc::new(HashMap::new()),
            spools: Arc::new(Mutex::new(HashMap::new())),
            registry,
            counters: Arc::new(ExecCounters::default()),
            stats: None,
            parallel: Arc::new(ParallelConfig::from_env()),
            retry: Arc::new(RetryPolicy::from_env()),
            batch: Arc::new(BatchConfig::from_env()),
            health: None,
            degraded: DegradedMode::from_env(),
            runtime_prune: runtime_prune_from_env(),
            pruned: Arc::new(PruneLog::default()),
        }
    }

    /// Share the engine's lock-free execution counters with this context.
    pub fn with_counters(mut self, counters: Arc<ExecCounters>) -> Self {
        self.counters = counters;
        self
    }

    /// Attach a per-node runtime stats collector (`EXPLAIN ANALYZE`).
    pub fn with_stats(mut self, stats: Arc<RuntimeStatsCollector>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Override the parallel-execution knobs for this execution.
    pub fn with_parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = Arc::new(parallel);
        self
    }

    /// Override the retry policy for this execution.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Arc::new(retry);
        self
    }

    /// Override the vectorized-execution knobs for this execution.
    pub fn with_batch(mut self, batch: BatchConfig) -> Self {
        self.batch = Arc::new(batch);
        self
    }

    /// Share the engine's per-link health registry with this execution.
    pub fn with_health(mut self, health: Arc<HealthRegistry>) -> Self {
        self.health = Some(health);
        self
    }

    /// Override the degraded-mode policy for this execution.
    pub fn with_degraded(mut self, degraded: DegradedMode) -> Self {
        self.degraded = degraded;
        self
    }

    /// Override the runtime startup-pruning knob for this execution.
    pub fn with_runtime_prune(mut self, runtime_prune: bool) -> Self {
        self.runtime_prune = runtime_prune;
        self
    }

    /// Share a per-statement prune log so the engine can report skipped
    /// members after the drain.
    pub fn with_pruned(mut self, pruned: Arc<PruneLog>) -> Self {
        self.pruned = pruned;
        self
    }

    pub fn parallel(&self) -> &ParallelConfig {
        &self.parallel
    }

    pub fn batch(&self) -> &BatchConfig {
        &self.batch
    }

    pub fn retry(&self) -> &RetryPolicy {
        &self.retry
    }

    pub fn counters(&self) -> &Arc<ExecCounters> {
        &self.counters
    }

    pub fn stats(&self) -> Option<&Arc<RuntimeStatsCollector>> {
        self.stats.as_ref()
    }

    pub fn health(&self) -> Option<&Arc<HealthRegistry>> {
        self.health.as_ref()
    }

    pub fn degraded(&self) -> DegradedMode {
        self.degraded
    }

    pub fn runtime_prune(&self) -> bool {
        self.runtime_prune
    }

    pub fn pruned(&self) -> &Arc<PruneLog> {
        &self.pruned
    }

    /// Build the runtime schema for a list of output columns.
    pub fn schema_of(&self, columns: &[ColumnId]) -> Schema {
        Schema::new(
            columns
                .iter()
                .map(|&c| {
                    let m = self.registry.meta(c);
                    Column {
                        name: m.name.clone(),
                        data_type: m.data_type,
                        nullable: m.nullable,
                    }
                })
                .collect(),
        )
    }

    pub fn catalog(&self) -> &Arc<dyn SourceCatalog> {
        &self.catalog
    }

    pub fn param(&self, name: &str) -> Result<&Value> {
        self.params
            .get(name)
            .ok_or_else(|| DhqpError::Execute(format!("missing value for parameter @{name}")))
    }

    pub fn binding(&self, column: u32) -> Option<&Value> {
        self.bindings.get(&column)
    }

    /// A child context with correlation bindings replaced (the nested-loop
    /// join's per-outer-row rebind). The spool cache is shared so inner
    /// spools survive rescans.
    pub fn with_bindings(&self, bindings: HashMap<u32, Value>) -> ExecContext {
        ExecContext {
            catalog: Arc::clone(&self.catalog),
            params: Arc::clone(&self.params),
            bindings: Arc::new(bindings),
            spools: Arc::clone(&self.spools),
            registry: Arc::clone(&self.registry),
            counters: Arc::clone(&self.counters),
            stats: self.stats.clone(),
            parallel: Arc::clone(&self.parallel),
            retry: Arc::clone(&self.retry),
            batch: Arc::clone(&self.batch),
            health: self.health.clone(),
            degraded: self.degraded,
            runtime_prune: self.runtime_prune,
            pruned: Arc::clone(&self.pruned),
        }
    }

    pub fn cached_spool(&self, key: usize) -> Option<SpoolData> {
        let cached = self.spools.lock().expect("spool lock").get(&key).cloned();
        if cached.is_some() {
            self.counters.add_spool_hit();
        }
        cached
    }

    pub fn store_spool(&self, key: usize, data: SpoolData) {
        self.counters.add_spool_build();
        self.spools.lock().expect("spool lock").insert(key, data);
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use dhqp_storage::{LocalDataSource, StorageEngine};

    /// A catalog over one local engine plus named remote sources.
    pub struct TestCatalog {
        pub local: Arc<dyn DataSource>,
        pub remotes: HashMap<String, Arc<dyn DataSource>>,
    }

    impl TestCatalog {
        pub fn with_local(engine: Arc<StorageEngine>) -> Self {
            TestCatalog {
                local: Arc::new(LocalDataSource::new(engine)),
                remotes: HashMap::new(),
            }
        }
    }

    impl SourceCatalog for TestCatalog {
        fn local(&self) -> Arc<dyn DataSource> {
            Arc::clone(&self.local)
        }

        fn linked(&self, server: &str) -> Result<Arc<dyn DataSource>> {
            self.remotes
                .get(server)
                .cloned()
                .ok_or_else(|| DhqpError::Catalog(format!("unknown linked server '{server}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhqp_storage::StorageEngine;

    #[test]
    fn params_and_bindings_resolve() {
        let catalog = Arc::new(test_support::TestCatalog::with_local(Arc::new(
            StorageEngine::new("local"),
        )));
        let mut params = HashMap::new();
        params.insert("id".to_string(), Value::Int(7));
        let ctx = ExecContext::new(catalog, params, Arc::new(ColumnRegistry::new()));
        assert_eq!(ctx.param("id").unwrap(), &Value::Int(7));
        assert!(ctx.param("missing").is_err());
        assert!(ctx.binding(3).is_none());
        let child = ctx.with_bindings([(3u32, Value::Int(9))].into_iter().collect());
        assert_eq!(child.binding(3), Some(&Value::Int(9)));
        // Params survive rebinding.
        assert_eq!(child.param("id").unwrap(), &Value::Int(7));
    }

    #[test]
    fn spool_cache_is_shared_across_rebinds() {
        let catalog = Arc::new(test_support::TestCatalog::with_local(Arc::new(
            StorageEngine::new("local"),
        )));
        let ctx = ExecContext::new(catalog, HashMap::new(), Arc::new(ColumnRegistry::new()));
        let data: SpoolData = Arc::new((Schema::empty(), vec![]));
        ctx.store_spool(42, Arc::clone(&data));
        let child = ctx.with_bindings(HashMap::new());
        assert!(child.cached_spool(42).is_some());
    }
}
