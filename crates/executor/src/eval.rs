//! Scalar expression evaluation with SQL three-valued logic.

use crate::context::ExecContext;
use dhqp_optimizer::scalar::{ArithOp, CmpOp, ScalarExpr};
use dhqp_optimizer::ColumnId;
use dhqp_types::{DhqpError, Result, Row, Value};
use std::collections::HashMap;

/// Resolution environment for one row: column positions within the row,
/// plus the execution context for parameters and correlation bindings.
pub struct RowEnv<'a> {
    pub positions: &'a HashMap<ColumnId, usize>,
    pub row: &'a Row,
    pub ctx: &'a ExecContext,
}

impl<'a> RowEnv<'a> {
    fn column(&self, id: ColumnId) -> Result<Value> {
        if let Some(&pos) = self.positions.get(&id) {
            return Ok(self.row.values[pos].clone());
        }
        // Correlation: the column belongs to an outer row.
        if let Some(v) = self.ctx.binding(id.0) {
            return Ok(v.clone());
        }
        Err(DhqpError::Execute(format!("unresolved column #{}", id.0)))
    }
}

/// Build the `ColumnId → position` map for an operator's input.
pub fn positions_of(output: &[ColumnId]) -> HashMap<ColumnId, usize> {
    output.iter().enumerate().map(|(i, c)| (*c, i)).collect()
}

/// Evaluate an expression to a value (NULL propagates).
pub fn eval_expr(expr: &ScalarExpr, env: &RowEnv<'_>) -> Result<Value> {
    match expr {
        ScalarExpr::Literal(v) => Ok(v.clone()),
        ScalarExpr::Column(c) => env.column(*c),
        ScalarExpr::Param(p) => env.ctx.param(p).cloned(),
        ScalarExpr::Arith { op, left, right } => {
            let l = eval_expr(left, env)?;
            let r = eval_expr(right, env)?;
            match op {
                ArithOp::Add => l.add(&r),
                ArithOp::Sub => l.sub(&r),
                ArithOp::Mul => l.mul(&r),
                ArithOp::Div => l.div(&r),
                ArithOp::Mod => match (l, r) {
                    (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                    (Value::Int(a), Value::Int(b)) if b != 0 => Ok(Value::Int(a % b)),
                    (Value::Int(_), Value::Int(_)) => {
                        Err(DhqpError::Execute("modulo by zero".into()))
                    }
                    (a, b) => Err(DhqpError::Type(format!(
                        "cannot apply % to {} and {}",
                        a.type_name(),
                        b.type_name()
                    ))),
                },
            }
        }
        ScalarExpr::Cast { expr, to } => eval_expr(expr, env)?.cast(*to),
        ScalarExpr::Func { name, args } => eval_function(name, args, env),
        // Boolean-valued expressions evaluate through the predicate path.
        other => Ok(match eval_bool(other, env)? {
            Some(b) => Value::Bool(b),
            None => Value::Null,
        }),
    }
}

/// Evaluate a predicate: UNKNOWN (NULL) collapses to `false`, per SQL
/// WHERE-clause semantics.
pub fn eval_predicate(expr: &ScalarExpr, env: &RowEnv<'_>) -> Result<bool> {
    Ok(eval_bool(expr, env)?.unwrap_or(false))
}

/// Three-valued boolean evaluation: `None` = UNKNOWN.
fn eval_bool(expr: &ScalarExpr, env: &RowEnv<'_>) -> Result<Option<bool>> {
    match expr {
        ScalarExpr::Literal(Value::Null) => Ok(None),
        ScalarExpr::Literal(Value::Bool(b)) => Ok(Some(*b)),
        ScalarExpr::Cmp { op, left, right } => {
            let l = eval_expr(left, env)?;
            let r = eval_expr(right, env)?;
            Ok(l.sql_cmp(&r).map(|ord| match op {
                CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                CmpOp::Neq => ord != std::cmp::Ordering::Equal,
                CmpOp::Lt => ord == std::cmp::Ordering::Less,
                CmpOp::Le => ord != std::cmp::Ordering::Greater,
                CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                CmpOp::Ge => ord != std::cmp::Ordering::Less,
            }))
        }
        ScalarExpr::And(list) => {
            let mut saw_unknown = false;
            for e in list {
                match eval_bool(e, env)? {
                    Some(false) => return Ok(Some(false)),
                    None => saw_unknown = true,
                    Some(true) => {}
                }
            }
            Ok(if saw_unknown { None } else { Some(true) })
        }
        ScalarExpr::Or(list) => {
            let mut saw_unknown = false;
            for e in list {
                match eval_bool(e, env)? {
                    Some(true) => return Ok(Some(true)),
                    None => saw_unknown = true,
                    Some(false) => {}
                }
            }
            Ok(if saw_unknown { None } else { Some(false) })
        }
        ScalarExpr::Not(inner) => Ok(eval_bool(inner, env)?.map(|b| !b)),
        ScalarExpr::IsNull { expr, negated } => {
            let v = eval_expr(expr, env)?;
            Ok(Some(v.is_null() != *negated))
        }
        ScalarExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval_expr(expr, env)?;
            match v {
                Value::Null => Ok(None),
                Value::Str(s) => Ok(Some(like_match(&s, pattern) != *negated)),
                other => Err(DhqpError::Type(format!(
                    "LIKE requires a string, got {}",
                    other.type_name()
                ))),
            }
        }
        ScalarExpr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_expr(expr, env)?;
            if v.is_null() {
                return Ok(None);
            }
            let mut saw_null = false;
            for item in list {
                match v.sql_eq(item) {
                    Some(true) => return Ok(Some(!*negated)),
                    None => saw_null = true,
                    Some(false) => {}
                }
            }
            Ok(if saw_null { None } else { Some(*negated) })
        }
        ScalarExpr::ParamInDomain { param, domain } => {
            let v = env.ctx.param(param)?;
            Ok(Some(domain.contains(v)))
        }
        // Value-typed expression in boolean position: truthiness of BIT.
        other => {
            let v = eval_expr(other, env)?;
            match v {
                Value::Null => Ok(None),
                Value::Bool(b) => Ok(Some(b)),
                other => Err(DhqpError::Type(format!(
                    "expected boolean, got {}",
                    other.type_name()
                ))),
            }
        }
    }
}

/// Scalar function evaluation (whitelisted set).
fn eval_function(name: &str, args: &[ScalarExpr], env: &RowEnv<'_>) -> Result<Value> {
    let eval_arg = |i: usize| -> Result<Value> {
        args.get(i)
            .ok_or_else(|| DhqpError::Execute(format!("{name}: missing argument {i}")))
            .and_then(|a| eval_expr(a, env))
    };
    match name {
        "UPPER" => match eval_arg(0)? {
            Value::Null => Ok(Value::Null),
            Value::Str(s) => Ok(Value::Str(s.to_uppercase())),
            v => Err(DhqpError::Type(format!(
                "UPPER requires a string, got {}",
                v.type_name()
            ))),
        },
        "LOWER" => match eval_arg(0)? {
            Value::Null => Ok(Value::Null),
            Value::Str(s) => Ok(Value::Str(s.to_lowercase())),
            v => Err(DhqpError::Type(format!(
                "LOWER requires a string, got {}",
                v.type_name()
            ))),
        },
        "ABS" => match eval_arg(0)? {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(i.abs())),
            Value::Float(f) => Ok(Value::Float(f.abs())),
            v => Err(DhqpError::Type(format!(
                "ABS requires a number, got {}",
                v.type_name()
            ))),
        },
        "LEN" => match eval_arg(0)? {
            Value::Null => Ok(Value::Null),
            Value::Str(s) => Ok(Value::Int(s.len() as i64)),
            v => Err(DhqpError::Type(format!(
                "LEN requires a string, got {}",
                v.type_name()
            ))),
        },
        // DATE(d, n): shift a date by n days (the paper's §2.4 helper).
        "DATE" => {
            let d = eval_arg(0)?;
            let n = eval_arg(1)?;
            d.add(&n)
        }
        other => Err(DhqpError::Unsupported(format!("unknown function {other}"))),
    }
}

pub use dhqp_types::value::like_match;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_support::TestCatalog;
    use dhqp_storage::StorageEngine;
    use dhqp_types::IntervalSet;
    use std::sync::Arc;

    fn ctx() -> ExecContext {
        let catalog = Arc::new(TestCatalog::with_local(Arc::new(StorageEngine::new(
            "local",
        ))));
        let mut params = HashMap::new();
        params.insert("p".to_string(), Value::Int(60));
        ExecContext::new(
            catalog,
            params,
            Arc::new(dhqp_optimizer::props::ColumnRegistry::new()),
        )
    }

    fn env_for<'a>(
        positions: &'a HashMap<ColumnId, usize>,
        row: &'a Row,
        ctx: &'a ExecContext,
    ) -> RowEnv<'a> {
        RowEnv {
            positions,
            row,
            ctx,
        }
    }

    #[test]
    fn comparisons_and_null_semantics() {
        let ctx = ctx();
        let positions = positions_of(&[ColumnId(0), ColumnId(1)]);
        let row = Row::new(vec![Value::Int(5), Value::Null]);
        let env = env_for(&positions, &row, &ctx);
        let gt = ScalarExpr::cmp(
            CmpOp::Gt,
            ScalarExpr::Column(ColumnId(0)),
            ScalarExpr::literal(Value::Int(3)),
        );
        assert!(eval_predicate(&gt, &env).unwrap());
        // NULL comparison → UNKNOWN → filter false.
        let null_cmp = ScalarExpr::cmp(
            CmpOp::Eq,
            ScalarExpr::Column(ColumnId(1)),
            ScalarExpr::literal(Value::Int(3)),
        );
        assert!(!eval_predicate(&null_cmp, &env).unwrap());
        // ... but IS NULL sees it.
        let is_null = ScalarExpr::IsNull {
            expr: Box::new(ScalarExpr::Column(ColumnId(1))),
            negated: false,
        };
        assert!(eval_predicate(&is_null, &env).unwrap());
    }

    #[test]
    fn three_valued_and_or() {
        let ctx = ctx();
        let positions = positions_of(&[ColumnId(0)]);
        let row = Row::new(vec![Value::Null]);
        let env = env_for(&positions, &row, &ctx);
        let unknown = ScalarExpr::cmp(
            CmpOp::Eq,
            ScalarExpr::Column(ColumnId(0)),
            ScalarExpr::literal(Value::Int(1)),
        );
        // FALSE AND UNKNOWN = FALSE (not an error, not unknown).
        let f = ScalarExpr::literal(Value::Bool(false));
        let and = ScalarExpr::And(vec![f.clone(), unknown.clone()]);
        assert_eq!(eval_bool(&and, &env).unwrap(), Some(false));
        // TRUE OR UNKNOWN = TRUE.
        let t = ScalarExpr::literal(Value::Bool(true));
        let or = ScalarExpr::Or(vec![t, unknown.clone()]);
        assert_eq!(eval_bool(&or, &env).unwrap(), Some(true));
        // TRUE AND UNKNOWN = UNKNOWN.
        let and2 = ScalarExpr::And(vec![ScalarExpr::literal(Value::Bool(true)), unknown]);
        assert_eq!(eval_bool(&and2, &env).unwrap(), None);
    }

    #[test]
    fn in_list_null_semantics() {
        let ctx = ctx();
        let positions = positions_of(&[ColumnId(0)]);
        let row = Row::new(vec![Value::Int(9)]);
        let env = env_for(&positions, &row, &ctx);
        // 9 NOT IN (1, NULL) is UNKNOWN, not TRUE.
        let e = ScalarExpr::InList {
            expr: Box::new(ScalarExpr::Column(ColumnId(0))),
            list: vec![Value::Int(1), Value::Null],
            negated: true,
        };
        assert_eq!(eval_bool(&e, &env).unwrap(), None);
        // 1 IN (1, NULL) is TRUE.
        let row = Row::new(vec![Value::Int(1)]);
        let env = env_for(&positions, &row, &ctx);
        let e = ScalarExpr::InList {
            expr: Box::new(ScalarExpr::Column(ColumnId(0))),
            list: vec![Value::Int(1), Value::Null],
            negated: false,
        };
        assert_eq!(eval_bool(&e, &env).unwrap(), Some(true));
    }

    #[test]
    fn params_and_startup_domains() {
        let ctx = ctx();
        let positions = HashMap::new();
        let row = Row::new(vec![]);
        let env = env_for(&positions, &row, &ctx);
        // @p = 60; domain (50, +inf) passes.
        let dom = IntervalSet::single(dhqp_types::Interval::greater_than(Value::Int(50)));
        let e = ScalarExpr::ParamInDomain {
            param: "p".into(),
            domain: dom,
        };
        assert!(eval_predicate(&e, &env).unwrap());
        let dom = IntervalSet::single(dhqp_types::Interval::less_than(Value::Int(50)));
        let e = ScalarExpr::ParamInDomain {
            param: "p".into(),
            domain: dom,
        };
        assert!(!eval_predicate(&e, &env).unwrap());
    }

    #[test]
    fn correlation_bindings_resolve_missing_columns() {
        let ctx = ctx().with_bindings([(7u32, Value::Int(42))].into_iter().collect());
        let positions = positions_of(&[ColumnId(0)]);
        let row = Row::new(vec![Value::Int(1)]);
        let env = env_for(&positions, &row, &ctx);
        let e = ScalarExpr::Column(ColumnId(7));
        assert_eq!(eval_expr(&e, &env).unwrap(), Value::Int(42));
        let missing = ScalarExpr::Column(ColumnId(9));
        assert!(eval_expr(&missing, &env).is_err());
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "h%o"));
        assert!(like_match("hello", "_ello"));
        assert!(!like_match("hello", "H%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("a%b", "a%b"));
        assert!(like_match("xyz", "%"));
        assert!(like_match("ab", "a%%b"));
    }

    #[test]
    fn functions() {
        let ctx = ctx();
        let positions = HashMap::new();
        let row = Row::new(vec![]);
        let env = env_for(&positions, &row, &ctx);
        let upper = ScalarExpr::Func {
            name: "UPPER".into(),
            args: vec![ScalarExpr::literal(Value::Str("abc".into()))],
        };
        assert_eq!(eval_expr(&upper, &env).unwrap(), Value::Str("ABC".into()));
        let len = ScalarExpr::Func {
            name: "LEN".into(),
            args: vec![ScalarExpr::literal(Value::Str("abcd".into()))],
        };
        assert_eq!(eval_expr(&len, &env).unwrap(), Value::Int(4));
        let date = ScalarExpr::Func {
            name: "DATE".into(),
            args: vec![
                ScalarExpr::literal(Value::Date(100)),
                ScalarExpr::literal(Value::Int(-2)),
            ],
        };
        assert_eq!(eval_expr(&date, &env).unwrap(), Value::Date(98));
        let nope = ScalarExpr::Func {
            name: "FROBNICATE".into(),
            args: vec![],
        };
        assert!(eval_expr(&nope, &env).is_err());
    }

    #[test]
    fn arithmetic_and_cast() {
        let ctx = ctx();
        let positions = HashMap::new();
        let row = Row::new(vec![]);
        let env = env_for(&positions, &row, &ctx);
        let e = ScalarExpr::Arith {
            op: ArithOp::Mod,
            left: Box::new(ScalarExpr::literal(Value::Int(10))),
            right: Box::new(ScalarExpr::literal(Value::Int(3))),
        };
        assert_eq!(eval_expr(&e, &env).unwrap(), Value::Int(1));
        let cast = ScalarExpr::Cast {
            expr: Box::new(ScalarExpr::literal(Value::Str("12".into()))),
            to: dhqp_types::DataType::Int,
        };
        assert_eq!(eval_expr(&cast, &env).unwrap(), Value::Int(12));
    }
}
