//! Member health: per-link circuit breakers and the degraded-mode policy
//! that lets DPV execution plan around quarantined members.
//!
//! Every linked server gets one breaker in the engine's [`HealthRegistry`].
//! The state machine is the classic three-state breaker:
//!
//! ```text
//!            consecutive give-ups >= threshold
//!            or windowed error rate >= rate
//!   Closed ────────────────────────────────────▶ Open
//!     ▲                                           │
//!     │ probe succeeds                            │ `cooldown` rejected
//!     │                                           │ admissions elapse
//!     │              probe fails                  ▼
//!   HalfOpen ◀────────────────────────────── (admit one probe)
//!      └──────────────── reopens ▲
//! ```
//!
//! Determinism: the cooldown is not wall-clock time. It is counted in
//! *rejected admissions on that link* — the same operation clock the
//! netsim fault plans use — so under a fixed fault seed the exact
//! admission at which a breaker re-probes is reproducible bit for bit,
//! independent of machine speed or thread scheduling on other links.
//!
//! Failures that feed the breaker are *retry-exhausted* remote operations
//! (the retry layer already absorbed transient faults); a single give-up
//! therefore represents `max_attempts` consecutive wire errors, which is
//! why the default `failure_threshold` is 1. Transitions are published as
//! `breaker_open` / `breaker_close` events through the thread-local
//! activity hook, and fail-fast rejections surface as the `CIRCUIT_OPEN`
//! wait class.

use dhqp_oledb::waits::emit_event;
use std::collections::HashMap;
use std::sync::Mutex;

/// One breaker's position in the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every admission passes.
    Closed,
    /// Quarantined: admissions are rejected without touching the wire
    /// until the cooldown elapses.
    Open,
    /// Probing: one admission has been let through to test the link.
    HalfOpen,
}

impl BreakerState {
    /// Lowercase name as shown by `sys.dm_link_health`.
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Breaker tuning knobs (`DHQP_BREAKER_*` environment family).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Master switch (`DHQP_BREAKER=0` disables): when off, every
    /// admission passes and no state is tracked.
    pub enabled: bool,
    /// Consecutive retry-exhausted failures that open a Closed breaker.
    /// Each one already stands for a full retry budget burned, so the
    /// default is 1.
    pub failure_threshold: u32,
    /// Alternative trip condition for non-consecutive failures: open when
    /// at least `rate_window` outcomes were observed since the last
    /// transition and the failure fraction reaches this rate.
    pub error_rate: f64,
    /// Minimum observations before `error_rate` applies.
    pub rate_window: u32,
    /// Rejected admissions an Open breaker absorbs before letting one
    /// probe through (the deterministic cooldown clock).
    pub cooldown: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig::standard()
    }
}

impl BreakerConfig {
    pub fn standard() -> Self {
        BreakerConfig {
            enabled: true,
            failure_threshold: 1,
            error_rate: 0.5,
            rate_window: 8,
            cooldown: 4,
        }
    }

    /// Breakers off: every admission passes (the pre-PR-8 behavior).
    pub fn disabled() -> Self {
        BreakerConfig {
            enabled: false,
            ..BreakerConfig::standard()
        }
    }

    /// Read `DHQP_BREAKER` / `DHQP_BREAKER_THRESHOLD` /
    /// `DHQP_BREAKER_COOLDOWN` / `DHQP_BREAKER_WINDOW` /
    /// `DHQP_BREAKER_ERROR_RATE`, falling back to [`standard`].
    ///
    /// [`standard`]: BreakerConfig::standard
    pub fn from_env() -> Self {
        fn var_u32(name: &str) -> Option<u32> {
            std::env::var(name).ok()?.trim().parse().ok()
        }
        let mut c = BreakerConfig::standard();
        if let Ok(v) = std::env::var("DHQP_BREAKER") {
            c.enabled = v.trim() != "0";
        }
        if let Some(n) = var_u32("DHQP_BREAKER_THRESHOLD") {
            c.failure_threshold = n.max(1);
        }
        if let Some(n) = var_u32("DHQP_BREAKER_COOLDOWN") {
            c.cooldown = n.max(1);
        }
        if let Some(n) = var_u32("DHQP_BREAKER_WINDOW") {
            c.rate_window = n.max(2);
        }
        if let Some(f) = std::env::var("DHQP_BREAKER_ERROR_RATE")
            .ok()
            .and_then(|v| v.trim().parse::<f64>().ok())
        {
            c.error_rate = f.clamp(0.0, 1.0);
        }
        c
    }
}

/// What happens when a remote operation asks to use a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Breaker Closed (or disabled): proceed normally.
    Allow,
    /// Breaker was Open and the cooldown elapsed: proceed, but this
    /// operation is the half-open probe — its outcome decides the link.
    Probe,
    /// Breaker Open and still cooling: fail fast without touching the
    /// wire. Carries the failure streak for the error message.
    Reject {
        /// Consecutive give-ups recorded when the breaker opened.
        consecutive_failures: u32,
    },
}

/// Point-in-time copy of one link's breaker, as served by
/// `sys.dm_link_health`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkHealthSnapshot {
    pub server: String,
    pub state: BreakerState,
    /// Current retry-exhausted failure streak.
    pub consecutive_failures: u32,
    /// Times the breaker tripped Closed/HalfOpen → Open (resettable).
    pub opens: u64,
    /// Half-open probes admitted (resettable).
    pub probes: u64,
    /// Registry clock value of the last state transition (0 = never).
    pub last_transition: u64,
    /// Message of the failure that last fed the breaker.
    pub last_error: Option<String>,
}

#[derive(Debug, Clone, Default)]
struct LinkBreaker {
    state: Option<BreakerState>, // None renders as Closed; set on first transition-relevant op
    consecutive_failures: u32,
    window_ops: u32,
    window_failures: u32,
    rejections_since_open: u32,
    opens: u64,
    probes: u64,
    last_transition: u64,
    last_error: Option<String>,
}

impl LinkBreaker {
    fn state(&self) -> BreakerState {
        self.state.unwrap_or(BreakerState::Closed)
    }
}

#[derive(Debug)]
struct RegistryInner {
    config: BreakerConfig,
    /// Logical operation clock: advances once per observed admission or
    /// outcome, across all links. Timestamps transitions without touching
    /// the wall clock.
    clock: u64,
    links: HashMap<String, LinkBreaker>,
}

/// Engine-wide member health: one circuit breaker per linked server,
/// fed by the executor's retry give-ups and consulted before every
/// remote open. Shared by reference between the engine (DMV, reset) and
/// every execution context (fail-fast, pruning).
#[derive(Debug)]
pub struct HealthRegistry {
    inner: Mutex<RegistryInner>,
}

impl Default for HealthRegistry {
    fn default() -> Self {
        HealthRegistry::new(BreakerConfig::standard())
    }
}

impl HealthRegistry {
    pub fn new(config: BreakerConfig) -> Self {
        HealthRegistry {
            inner: Mutex::new(RegistryInner {
                config,
                clock: 0,
                links: HashMap::new(),
            }),
        }
    }

    pub fn from_env() -> Self {
        HealthRegistry::new(BreakerConfig::from_env())
    }

    pub fn config(&self) -> BreakerConfig {
        self.inner.lock().expect("health lock").config
    }

    /// Replace the tuning knobs; existing breaker states survive.
    pub fn set_config(&self, config: BreakerConfig) {
        self.inner.lock().expect("health lock").config = config;
    }

    /// Register a link as Closed so health views list it before any
    /// traffic (called when a linked server or DPV member is defined).
    pub fn ensure(&self, server: &str) {
        let mut g = self.inner.lock().expect("health lock");
        g.links.entry(server.to_string()).or_default();
    }

    /// Ask to use a link. Advances the operation clock; an Open breaker
    /// counts the rejection toward its cooldown and eventually converts
    /// the admission into the half-open probe.
    pub fn admit(&self, server: &str) -> Admission {
        let mut g = self.inner.lock().expect("health lock");
        if !g.config.enabled {
            return Admission::Allow;
        }
        g.clock += 1;
        let now = g.clock;
        let cooldown = g.config.cooldown;
        let link = g.links.entry(server.to_string()).or_default();
        match link.state() {
            BreakerState::Closed | BreakerState::HalfOpen => Admission::Allow,
            BreakerState::Open => {
                link.rejections_since_open += 1;
                if link.rejections_since_open > cooldown {
                    link.state = Some(BreakerState::HalfOpen);
                    link.probes += 1;
                    link.last_transition = now;
                    Admission::Probe
                } else {
                    Admission::Reject {
                        consecutive_failures: link.consecutive_failures,
                    }
                }
            }
        }
    }

    /// Record a retry-exhausted (or otherwise terminal transport) failure
    /// on a link. May trip the breaker, publishing `breaker_open`.
    pub fn record_failure(&self, server: &str, error: &str) {
        let opened = {
            let mut g = self.inner.lock().expect("health lock");
            if !g.config.enabled {
                return;
            }
            g.clock += 1;
            let now = g.clock;
            let config = g.config;
            let link = g.links.entry(server.to_string()).or_default();
            link.consecutive_failures += 1;
            link.window_ops += 1;
            link.window_failures += 1;
            link.last_error = Some(error.to_string());
            let trip = match link.state() {
                BreakerState::Open => false,
                // A failed probe reopens immediately.
                BreakerState::HalfOpen => true,
                BreakerState::Closed => {
                    link.consecutive_failures >= config.failure_threshold
                        || (link.window_ops >= config.rate_window
                            && link.window_failures as f64 / link.window_ops as f64
                                >= config.error_rate)
                }
            };
            if trip {
                link.state = Some(BreakerState::Open);
                link.opens += 1;
                link.rejections_since_open = 0;
                link.last_transition = now;
                Some(link.consecutive_failures)
            } else {
                None
            }
        };
        if let Some(streak) = opened {
            emit_event(
                "breaker_open",
                &[
                    ("server", server.to_string()),
                    ("consecutive_failures", streak.to_string()),
                    ("error", error.to_string()),
                ],
            );
        }
    }

    /// Record a successful remote operation on a link. Closes a probing
    /// (or stale Open) breaker, publishing `breaker_close`.
    pub fn record_success(&self, server: &str) {
        let closed = {
            let mut g = self.inner.lock().expect("health lock");
            if !g.config.enabled {
                return;
            }
            g.clock += 1;
            let now = g.clock;
            let link = g.links.entry(server.to_string()).or_default();
            link.consecutive_failures = 0;
            link.window_ops += 1;
            match link.state() {
                BreakerState::Closed => None,
                // HalfOpen: the probe succeeded. Open: an operation
                // admitted before the trip came back healthy — equally
                // fresh evidence, close rather than hold the quarantine.
                BreakerState::HalfOpen | BreakerState::Open => {
                    link.state = Some(BreakerState::Closed);
                    link.window_ops = 0;
                    link.window_failures = 0;
                    link.rejections_since_open = 0;
                    link.last_transition = now;
                    Some(link.probes)
                }
            }
        };
        if let Some(probes) = closed {
            emit_event(
                "breaker_close",
                &[
                    ("server", server.to_string()),
                    ("probes", probes.to_string()),
                ],
            );
        }
    }

    /// Current state of one link's breaker (Closed if never seen).
    pub fn state(&self, server: &str) -> BreakerState {
        self.inner
            .lock()
            .expect("health lock")
            .links
            .get(server)
            .map(LinkBreaker::state)
            .unwrap_or(BreakerState::Closed)
    }

    /// All known links, sorted by name (the `sys.dm_link_health` rows).
    pub fn snapshot(&self) -> Vec<LinkHealthSnapshot> {
        let g = self.inner.lock().expect("health lock");
        let mut out: Vec<LinkHealthSnapshot> = g
            .links
            .iter()
            .map(|(server, l)| LinkHealthSnapshot {
                server: server.clone(),
                state: l.state(),
                consecutive_failures: l.consecutive_failures,
                opens: l.opens,
                probes: l.probes,
                last_transition: l.last_transition,
                last_error: l.last_error.clone(),
            })
            .collect();
        out.sort_by(|a, b| a.server.cmp(&b.server));
        out
    }

    /// `DBCC SQLPERF` analog: zero the resettable counters (opens,
    /// probes). Breaker *state* deliberately survives — a quarantined
    /// link stays quarantined across a metrics reset.
    pub fn reset_counters(&self) {
        let mut g = self.inner.lock().expect("health lock");
        for link in g.links.values_mut() {
            link.opens = 0;
            link.probes = 0;
        }
    }
}

/// What a query does when a DPV member is quarantined: fail the statement
/// (default) or prune the member and serve the survivors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradedMode {
    /// Propagate the member's `Unavailable` error (fail fast, but fail).
    #[default]
    Fail,
    /// Skip quarantined members at drive time and warn in EXPLAIN
    /// ANALYZE / `sys.dm_exec_requests`.
    Prune,
}

impl DegradedMode {
    pub fn is_prune(&self) -> bool {
        matches!(self, DegradedMode::Prune)
    }

    /// `DHQP_DEGRADED` = `prune` | `fail` (default `fail`).
    pub fn from_env() -> Self {
        match std::env::var("DHQP_DEGRADED") {
            Ok(v) if v.trim().eq_ignore_ascii_case("prune") => DegradedMode::Prune,
            _ => DegradedMode::Fail,
        }
    }
}

/// Per-query record of skipped DPV members, kept as two distinct channels
/// so the report never conflates *why* a member was skipped:
///
/// - **degraded**: quarantined by [`DegradedMode::Prune`] after a health
///   failure — surfaced as the `-- [degraded: ...]` EXPLAIN ANALYZE line
///   and the `pruned_members` column of `sys.dm_exec_requests`;
/// - **startup**: eliminated by runtime parameter-driven pruning (the
///   member's startup predicate evaluated false for this execution's
///   parameter values) — surfaced as the `-- [startup: ...]` line.
#[derive(Debug, Default)]
pub struct PruneLog {
    members: Mutex<Vec<String>>,
    startup: Mutex<Vec<String>>,
}

impl PruneLog {
    /// Note one degraded-mode pruned member (deduplicated; rescans prune
    /// once).
    pub fn record(&self, server: &str) {
        let mut g = self.members.lock().expect("prune lock");
        if !g.iter().any(|m| m == server) {
            g.push(server.to_string());
        }
    }

    /// Note one member skipped by runtime startup-predicate pruning
    /// (deduplicated).
    pub fn record_startup(&self, member: &str) {
        let mut g = self.startup.lock().expect("prune lock");
        if !g.iter().any(|m| m == member) {
            g.push(member.to_string());
        }
    }

    pub fn count(&self) -> u64 {
        self.members.lock().expect("prune lock").len() as u64
    }

    pub fn startup_count(&self) -> u64 {
        self.startup.lock().expect("prune lock").len() as u64
    }

    pub fn is_empty(&self) -> bool {
        self.members.lock().expect("prune lock").is_empty()
    }

    pub fn startup_is_empty(&self) -> bool {
        self.startup.lock().expect("prune lock").is_empty()
    }

    /// Degraded-mode pruned member names, sorted for stable rendering.
    pub fn members(&self) -> Vec<String> {
        let mut out = self.members.lock().expect("prune lock").clone();
        out.sort();
        out
    }

    /// Startup-pruned member names, sorted for stable rendering.
    pub fn startup_members(&self) -> Vec<String> {
        let mut out = self.startup.lock().expect("prune lock").clone();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry(threshold: u32, cooldown: u32) -> HealthRegistry {
        HealthRegistry::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown,
            ..BreakerConfig::standard()
        })
    }

    #[test]
    fn trips_on_consecutive_giveups_and_cools_down_into_a_probe() {
        let h = registry(2, 3);
        assert_eq!(h.admit("m1"), Admission::Allow);
        h.record_failure("m1", "boom");
        assert_eq!(h.state("m1"), BreakerState::Closed, "below threshold");
        h.record_failure("m1", "boom");
        assert_eq!(h.state("m1"), BreakerState::Open);
        // Cooldown: exactly `cooldown` rejections, then one probe.
        for _ in 0..3 {
            assert!(matches!(h.admit("m1"), Admission::Reject { .. }));
        }
        assert_eq!(h.admit("m1"), Admission::Probe);
        assert_eq!(h.state("m1"), BreakerState::HalfOpen);
    }

    #[test]
    fn probe_success_closes_and_probe_failure_reopens() {
        let h = registry(1, 1);
        h.record_failure("m1", "dead");
        assert!(matches!(h.admit("m1"), Admission::Reject { .. }));
        assert_eq!(h.admit("m1"), Admission::Probe);
        h.record_failure("m1", "still dead");
        assert_eq!(h.state("m1"), BreakerState::Open, "failed probe reopens");
        assert!(matches!(h.admit("m1"), Admission::Reject { .. }));
        assert_eq!(h.admit("m1"), Admission::Probe);
        h.record_success("m1");
        assert_eq!(h.state("m1"), BreakerState::Closed);
        assert_eq!(h.admit("m1"), Admission::Allow);
        let snap = &h.snapshot()[0];
        assert_eq!(snap.opens, 2);
        assert_eq!(snap.probes, 2);
        assert_eq!(snap.consecutive_failures, 0);
    }

    #[test]
    fn error_rate_trips_without_a_consecutive_streak() {
        let h = HealthRegistry::new(BreakerConfig {
            failure_threshold: 100, // out of reach
            error_rate: 0.5,
            rate_window: 4,
            ..BreakerConfig::standard()
        });
        // Alternating outcomes never build a streak but hit 50% over the
        // 4-op window.
        h.record_failure("m1", "e1");
        h.record_success("m1");
        h.record_failure("m1", "e2");
        assert_eq!(h.state("m1"), BreakerState::Closed);
        h.record_failure("m1", "e3");
        assert_eq!(h.state("m1"), BreakerState::Open, "3/5 >= 50% over window");
    }

    #[test]
    fn success_clears_the_streak() {
        let h = registry(2, 1);
        h.record_failure("m1", "x");
        h.record_success("m1");
        h.record_failure("m1", "x");
        assert_eq!(h.state("m1"), BreakerState::Closed, "streak was broken");
    }

    #[test]
    fn reset_counters_keeps_state_but_zeroes_opens_and_probes() {
        let h = registry(1, 1);
        h.record_failure("m1", "dead");
        assert!(matches!(h.admit("m1"), Admission::Reject { .. }));
        assert_eq!(h.admit("m1"), Admission::Probe);
        h.record_failure("m1", "dead again");
        let before = &h.snapshot()[0];
        assert_eq!((before.opens, before.probes), (2, 1));
        h.reset_counters();
        let after = &h.snapshot()[0];
        assert_eq!((after.opens, after.probes), (0, 0));
        assert_eq!(after.state, BreakerState::Open, "reset must not heal");
        assert_eq!(after.consecutive_failures, before.consecutive_failures);
    }

    #[test]
    fn disabled_registry_is_inert() {
        let h = HealthRegistry::new(BreakerConfig::disabled());
        h.record_failure("m1", "x");
        h.record_failure("m1", "x");
        assert_eq!(h.admit("m1"), Admission::Allow);
        assert_eq!(h.state("m1"), BreakerState::Closed);
        assert!(h.snapshot().is_empty());
    }

    #[test]
    fn links_are_isolated() {
        let h = registry(1, 4);
        h.ensure("m2");
        h.record_failure("m1", "x");
        assert!(matches!(h.admit("m1"), Admission::Reject { .. }));
        assert_eq!(h.admit("m2"), Admission::Allow);
        let snap = h.snapshot();
        assert_eq!(snap.len(), 2, "ensure() pre-registers: {snap:?}");
        assert_eq!(snap[0].server, "m1");
        assert_eq!(snap[1].state, BreakerState::Closed);
    }

    #[test]
    fn prune_log_deduplicates_and_sorts() {
        let log = PruneLog::default();
        assert!(log.is_empty());
        log.record("m3");
        log.record("m1");
        log.record("m3");
        assert_eq!(log.count(), 2);
        assert_eq!(log.members(), vec!["m1".to_string(), "m3".to_string()]);
    }

    #[test]
    fn startup_channel_is_distinct_from_the_degraded_channel() {
        let log = PruneLog::default();
        log.record("dead-member");
        log.record_startup("out-of-range-member");
        log.record_startup("out-of-range-member");
        assert_eq!(log.count(), 1);
        assert_eq!(log.startup_count(), 1);
        assert!(!log.startup_is_empty());
        assert_eq!(log.members(), vec!["dead-member".to_string()]);
        assert_eq!(
            log.startup_members(),
            vec!["out-of-range-member".to_string()]
        );
    }

    #[test]
    fn degraded_mode_defaults_to_fail() {
        assert_eq!(DegradedMode::default(), DegradedMode::Fail);
        assert!(DegradedMode::Prune.is_prune());
        assert!(!DegradedMode::Fail.is_prune());
    }
}
