//! The execution engine: Volcano-style operators over OLE DB rowsets.
//!
//! Every operator consumes and produces the [`dhqp_oledb::Rowset`]
//! abstraction, so local scans, remote query results and full-text rowsets
//! compose identically — the paper's layering argument (§3.1.2) made
//! executable. The remote family (`RemoteQuery`, `RemoteScan`,
//! `RemoteRange`, `RemoteFetch`), the rescannable spool operator and the
//! [`ops::filter`] startup filter implement the physical side of §4.1.2's
//! distributed implementation rules.
//!
//! Remote work can run concurrently: the [`ops::exchange`] module hosts the
//! parallel union (`Exchange`) and the remote-rowset prefetcher, both
//! governed by the [`ParallelConfig`] knobs on the execution context.

pub mod build;
pub mod context;
pub mod eval;
pub mod health;
pub mod ops;
pub mod stats;

pub use build::open;
pub use context::{
    runtime_prune_from_env, BatchConfig, ExecContext, ParallelConfig, SourceCatalog,
    DEFAULT_BATCH_SIZE,
};
pub use eval::{eval_expr, eval_predicate, RowEnv};
pub use health::{
    Admission, BreakerConfig, BreakerState, DegradedMode, HealthRegistry, LinkHealthSnapshot,
    PruneLog,
};
pub use ops::retry::RetryPolicy;
pub use ops::semijoin::{predicate_fingerprint, semijoin_remote_sql};
pub use stats::{
    ExchangeRuntime, ExecCounterSnapshot, ExecCounters, NodeRuntime, RemoteTrace,
    RuntimeStatsCollector, SemiJoinTrace, WorkerSpan,
};
