//! Aggregation operators: hash aggregate and (order-exploiting) stream
//! aggregate.

use crate::context::ExecContext;
use crate::eval::{eval_expr, positions_of, RowEnv};
use dhqp_oledb::Rowset;
use dhqp_optimizer::scalar::{AggCall, AggFunc};
use dhqp_optimizer::ColumnId;
use dhqp_types::{DhqpError, Result, Row, RowBatch, Schema, Value};
use std::collections::{HashMap, HashSet};

/// One running aggregate.
#[derive(Debug, Clone)]
struct Accumulator {
    func: AggFunc,
    distinct: bool,
    seen: HashSet<Value>,
    count: i64,
    sum: Value,
    min: Value,
    max: Value,
}

impl Accumulator {
    fn new(func: AggFunc, distinct: bool) -> Self {
        Accumulator {
            func,
            distinct,
            seen: HashSet::new(),
            count: 0,
            sum: Value::Null,
            min: Value::Null,
            max: Value::Null,
        }
    }

    fn update(&mut self, v: Value) -> Result<()> {
        if self.func == AggFunc::CountStar {
            self.count += 1;
            return Ok(());
        }
        if v.is_null() {
            return Ok(()); // aggregates ignore NULL inputs
        }
        if self.distinct && !self.seen.insert(v.clone()) {
            return Ok(());
        }
        self.count += 1;
        match self.func {
            AggFunc::Sum | AggFunc::Avg => {
                self.sum = if self.sum.is_null() {
                    v.clone()
                } else {
                    self.sum.add(&v)?
                };
            }
            AggFunc::Min => {
                if self.min.is_null() || v.sql_cmp(&self.min) == Some(std::cmp::Ordering::Less) {
                    self.min = v.clone();
                }
            }
            AggFunc::Max => {
                if self.max.is_null() || v.sql_cmp(&self.max) == Some(std::cmp::Ordering::Greater) {
                    self.max = v.clone();
                }
            }
            AggFunc::Count | AggFunc::CountStar => {}
        }
        Ok(())
    }

    fn finish(&self) -> Result<Value> {
        Ok(match self.func {
            AggFunc::CountStar | AggFunc::Count => Value::Int(self.count),
            AggFunc::Sum => self.sum.clone(),
            AggFunc::Min => self.min.clone(),
            AggFunc::Max => self.max.clone(),
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    self.sum
                        .cast(dhqp_types::DataType::Float)?
                        .div(&Value::Int(self.count))?
                }
            }
        })
    }
}

fn update_group(accs: &mut [Accumulator], aggs: &[AggCall], env: &RowEnv<'_>) -> Result<()> {
    for (acc, agg) in accs.iter_mut().zip(aggs) {
        let v = match &agg.arg {
            Some(e) => eval_expr(e, env)?,
            None => Value::Null, // COUNT(*) ignores the value anyway
        };
        acc.update(v)?;
    }
    Ok(())
}

fn finish_group(group_key: Vec<Value>, accs: &[Accumulator]) -> Result<Row> {
    let mut values = group_key;
    for acc in accs {
        values.push(acc.finish()?);
    }
    Ok(Row::new(values))
}

/// Hash aggregation (materializes all groups at open).
pub struct HashAggregate {
    schema: Schema,
    output: std::vec::IntoIter<Row>,
}

impl HashAggregate {
    pub fn new(
        mut input: Box<dyn Rowset>,
        group_by: &[ColumnId],
        aggs: &[AggCall],
        input_columns: &[ColumnId],
        schema: Schema,
        ctx: &ExecContext,
    ) -> Result<Self> {
        let positions = positions_of(input_columns);
        let group_pos: Vec<usize> = group_by
            .iter()
            .map(|c| {
                positions.get(c).copied().ok_or_else(|| {
                    DhqpError::Execute(format!("group column #{} missing from input", c.0))
                })
            })
            .collect::<Result<Vec<_>>>()?;
        let mut groups: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
        // Preserve first-seen group order for deterministic output.
        let mut order: Vec<Vec<Value>> = Vec::new();
        // Consume the input in chunks (one row per chunk when batching is
        // off, so the wire accounting degenerates to the row path).
        let pull = ctx.batch().pull_size();
        while let Some(batch) = input.next_batch(pull)? {
            for row in batch {
                let key: Vec<Value> = group_pos.iter().map(|&p| row.values[p].clone()).collect();
                let env = RowEnv {
                    positions: &positions,
                    row: &row,
                    ctx,
                };
                let accs = groups.entry(key.clone()).or_insert_with(|| {
                    order.push(key);
                    aggs.iter()
                        .map(|a| Accumulator::new(a.func, a.distinct))
                        .collect()
                });
                update_group(accs, aggs, &env)?;
            }
        }
        // Scalar aggregate over an empty input still yields one row.
        if group_by.is_empty() && groups.is_empty() {
            let accs: Vec<Accumulator> = aggs
                .iter()
                .map(|a| Accumulator::new(a.func, a.distinct))
                .collect();
            groups.insert(Vec::new(), accs);
            order.push(Vec::new());
        }
        let mut out = Vec::with_capacity(groups.len());
        for key in order {
            let accs = groups.remove(&key).expect("group recorded in order list");
            out.push(finish_group(key, &accs)?);
        }
        Ok(HashAggregate {
            schema,
            output: out.into_iter(),
        })
    }
}

impl Rowset for HashAggregate {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>> {
        Ok(self.output.next())
    }

    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        let take = max.max(1).min(self.output.len());
        if take == 0 {
            return Ok(None);
        }
        Ok(Some(self.output.by_ref().take(take).collect()))
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.output.len())
    }
}

/// Stream aggregation over input sorted on the grouping columns: emits a
/// group as soon as the key changes (no hash table).
pub struct StreamAggregate {
    input: Box<dyn Rowset>,
    /// Input rows buffered from one chunked pull (vectorized input path).
    buffered: std::vec::IntoIter<Row>,
    /// Rows requested per input pull (1 when batching is off).
    pull: usize,
    group_pos: Vec<usize>,
    aggs: Vec<AggCall>,
    positions: HashMap<ColumnId, usize>,
    schema: Schema,
    ctx: ExecContext,
    current_key: Option<Vec<Value>>,
    current_accs: Vec<Accumulator>,
    done: bool,
    emitted_any: bool,
}

impl StreamAggregate {
    pub fn new(
        input: Box<dyn Rowset>,
        group_by: &[ColumnId],
        aggs: Vec<AggCall>,
        input_columns: &[ColumnId],
        schema: Schema,
        ctx: ExecContext,
    ) -> Result<Self> {
        let positions = positions_of(input_columns);
        let group_pos: Vec<usize> = group_by
            .iter()
            .map(|c| {
                positions.get(c).copied().ok_or_else(|| {
                    DhqpError::Execute(format!("group column #{} missing from input", c.0))
                })
            })
            .collect::<Result<Vec<_>>>()?;
        let pull = ctx.batch().pull_size();
        Ok(StreamAggregate {
            input,
            buffered: Vec::new().into_iter(),
            pull,
            group_pos,
            aggs,
            positions,
            schema,
            ctx,
            current_key: None,
            current_accs: Vec::new(),
            done: false,
            emitted_any: false,
        })
    }

    fn fresh_accs(&self) -> Vec<Accumulator> {
        self.aggs
            .iter()
            .map(|a| Accumulator::new(a.func, a.distinct))
            .collect()
    }

    /// Next input row, refilling the buffer with one chunked pull when it
    /// runs dry.
    fn next_input(&mut self) -> Result<Option<Row>> {
        if let Some(row) = self.buffered.next() {
            return Ok(Some(row));
        }
        match self.input.next_batch(self.pull)? {
            Some(batch) => {
                self.buffered = batch.into_rows().into_iter();
                Ok(self.buffered.next())
            }
            None => Ok(None),
        }
    }
}

impl Rowset for StreamAggregate {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>> {
        if self.done {
            return Ok(None);
        }
        loop {
            match self.next_input()? {
                Some(row) => {
                    let key: Vec<Value> = self
                        .group_pos
                        .iter()
                        .map(|&p| row.values[p].clone())
                        .collect();
                    let boundary = self.current_key.as_ref().is_some_and(|k| *k != key);
                    let finished = if boundary {
                        let prev_key = self.current_key.take().expect("boundary implies key");
                        let accs = std::mem::take(&mut self.current_accs);
                        Some(finish_group(prev_key, &accs)?)
                    } else {
                        None
                    };
                    if self.current_key.is_none() {
                        self.current_key = Some(key);
                        self.current_accs = self.fresh_accs();
                    }
                    let env = RowEnv {
                        positions: &self.positions,
                        row: &row,
                        ctx: &self.ctx,
                    };
                    update_group(&mut self.current_accs, &self.aggs, &env)?;
                    if let Some(done_row) = finished {
                        self.emitted_any = true;
                        return Ok(Some(done_row));
                    }
                }
                None => {
                    self.done = true;
                    if let Some(key) = self.current_key.take() {
                        let accs = std::mem::take(&mut self.current_accs);
                        self.emitted_any = true;
                        return Ok(Some(finish_group(key, &accs)?));
                    }
                    // Scalar aggregate over empty input: one row.
                    if self.group_pos.is_empty() && !self.emitted_any {
                        let accs = self.fresh_accs();
                        return Ok(Some(finish_group(Vec::new(), &accs)?));
                    }
                    return Ok(None);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_support::TestCatalog;
    use dhqp_oledb::{MemRowset, RowsetExt};
    use dhqp_optimizer::props::ColumnRegistry;
    use dhqp_optimizer::ScalarExpr;
    use dhqp_storage::StorageEngine;
    use dhqp_types::{Column, DataType};
    use std::sync::Arc;

    fn ctx() -> ExecContext {
        let catalog = Arc::new(TestCatalog::with_local(Arc::new(StorageEngine::new("l"))));
        ExecContext::new(catalog, HashMap::new(), Arc::new(ColumnRegistry::new()))
    }

    fn input(rows: Vec<(i64, Option<i64>)>) -> Box<dyn Rowset> {
        let schema = Schema::new(vec![
            Column::new("g", DataType::Int),
            Column::new("v", DataType::Int),
        ]);
        let rows = rows
            .into_iter()
            .map(|(g, v)| Row::new(vec![Value::Int(g), v.map_or(Value::Null, Value::Int)]))
            .collect();
        Box::new(MemRowset::new(schema, rows))
    }

    fn agg_schema() -> Schema {
        Schema::new(vec![
            Column::new("g", DataType::Int),
            Column::new("cnt", DataType::Int),
            Column::new("sum", DataType::Int),
        ])
    }

    fn calls() -> Vec<AggCall> {
        vec![
            AggCall {
                func: AggFunc::CountStar,
                arg: None,
                distinct: false,
                output: ColumnId(10),
            },
            AggCall {
                func: AggFunc::Sum,
                arg: Some(ScalarExpr::Column(ColumnId(1))),
                distinct: false,
                output: ColumnId(11),
            },
        ]
    }

    #[test]
    fn hash_aggregate_groups_and_ignores_nulls() {
        let rows = vec![
            (1, Some(10)),
            (2, Some(5)),
            (1, None),
            (1, Some(20)),
            (2, Some(5)),
        ];
        let mut agg = HashAggregate::new(
            input(rows),
            &[ColumnId(0)],
            &calls(),
            &[ColumnId(0), ColumnId(1)],
            agg_schema(),
            &ctx(),
        )
        .unwrap();
        let out = agg.collect_rows().unwrap();
        assert_eq!(out.len(), 2);
        // Group 1: count 3 (COUNT(*) counts null rows), sum 30.
        assert_eq!(
            out[0].values,
            vec![Value::Int(1), Value::Int(3), Value::Int(30)]
        );
        assert_eq!(
            out[1].values,
            vec![Value::Int(2), Value::Int(2), Value::Int(10)]
        );
    }

    #[test]
    fn stream_aggregate_matches_hash_on_sorted_input() {
        let rows = vec![(1, Some(10)), (1, Some(20)), (2, Some(5)), (3, Some(1))];
        let mut s = StreamAggregate::new(
            input(rows.clone()),
            &[ColumnId(0)],
            calls(),
            &[ColumnId(0), ColumnId(1)],
            agg_schema(),
            ctx(),
        )
        .unwrap();
        let stream_out = s.collect_rows().unwrap();
        let mut h = HashAggregate::new(
            input(rows),
            &[ColumnId(0)],
            &calls(),
            &[ColumnId(0), ColumnId(1)],
            agg_schema(),
            &ctx(),
        )
        .unwrap();
        let hash_out = h.collect_rows().unwrap();
        assert_eq!(stream_out, hash_out);
        assert_eq!(stream_out.len(), 3);
    }

    #[test]
    fn scalar_aggregate_on_empty_input_yields_one_row() {
        let mut agg = HashAggregate::new(
            input(vec![]),
            &[],
            &calls(),
            &[ColumnId(0), ColumnId(1)],
            Schema::new(vec![
                Column::new("cnt", DataType::Int),
                Column::new("sum", DataType::Int),
            ]),
            &ctx(),
        )
        .unwrap();
        let out = agg.collect_rows().unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].values, vec![Value::Int(0), Value::Null]);
    }

    #[test]
    fn min_max_avg_distinct() {
        let rows = vec![(1, Some(4)), (1, Some(4)), (1, Some(8))];
        let aggs = vec![
            AggCall {
                func: AggFunc::Min,
                arg: Some(ScalarExpr::Column(ColumnId(1))),
                distinct: false,
                output: ColumnId(10),
            },
            AggCall {
                func: AggFunc::Max,
                arg: Some(ScalarExpr::Column(ColumnId(1))),
                distinct: false,
                output: ColumnId(11),
            },
            AggCall {
                func: AggFunc::Avg,
                arg: Some(ScalarExpr::Column(ColumnId(1))),
                distinct: false,
                output: ColumnId(12),
            },
            AggCall {
                func: AggFunc::Count,
                arg: Some(ScalarExpr::Column(ColumnId(1))),
                distinct: true,
                output: ColumnId(13),
            },
        ];
        let schema = Schema::new(vec![
            Column::new("g", DataType::Int),
            Column::new("min", DataType::Int),
            Column::new("max", DataType::Int),
            Column::new("avg", DataType::Float),
            Column::new("cd", DataType::Int),
        ]);
        let mut agg = HashAggregate::new(
            input(rows),
            &[ColumnId(0)],
            &aggs,
            &[ColumnId(0), ColumnId(1)],
            schema,
            &ctx(),
        )
        .unwrap();
        let out = agg.collect_rows().unwrap();
        assert_eq!(
            out[0].values,
            vec![
                Value::Int(1),
                Value::Int(4),
                Value::Int(8),
                Value::Float(16.0 / 3.0),
                Value::Int(2)
            ]
        );
    }
}
