//! Intra-query parallelism for remote work: the exchange operator and the
//! remote-rowset prefetcher.
//!
//! The paper's distributed partitioned views (§4.1.5) assume member servers
//! work concurrently, but a single-threaded pull pipeline pays every link's
//! latency in sequence. [`ExchangeRowset`] runs each union branch on a
//! worker thread, funneling rows through one bounded channel to the
//! consumer cursor; [`PrefetchRowset`] pipelines the next batch of a remote
//! rowset on a background worker while the consumer drains the current one.
//!
//! Error contract: the first branch error to reach the channel is the one
//! the consumer surfaces (original [`dhqp_types::DhqpError`], not a wrapper);
//! after that the cursor is done and remaining workers unwind cleanly —
//! dropping the receiver makes their blocked sends fail, and the drop path
//! joins every worker before returning.

use crate::context::{ExecContext, ParallelConfig};
use crate::ops::sort::union_perms;
use crate::stats::{RuntimeStatsCollector, WorkerSpan};
use dhqp_oledb::waits::{
    current_scope, emit_event, has_hook, install_scope, record_wait, WaitClass,
};
use dhqp_oledb::Rowset;
use dhqp_optimizer::ColumnId;
use dhqp_types::{Result, Row, RowBatch, Schema};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Opens one exchange branch. Boxed so the builder can capture the branch's
/// plan subtree and pre-order id; `Send` because it runs on a worker thread.
pub type BranchFactory = Box<dyn FnOnce(&ExecContext) -> Result<Box<dyn Rowset>> + Send>;

/// Parallel bag union: branches open and drain on worker threads, the
/// consumer pulls merged row batches (arrival order) from a bounded channel.
/// Each channel slot carries a whole [`RowBatch`], so the queue bound is
/// expressed in batches (`exchange_queue / pull_size`) to keep the buffered
/// row budget roughly constant whichever batch size is configured.
pub struct ExchangeRowset {
    rx: Option<Receiver<Result<RowBatch>>>,
    workers: Vec<JoinHandle<WorkerSpan>>,
    worker_count: usize,
    opened: Instant,
    schema: Schema,
    /// Replay remainder of the last received batch for row-at-a-time pulls.
    buffer: std::vec::IntoIter<Row>,
    done: bool,
    stats: Option<(usize, Arc<RuntimeStatsCollector>)>,
}

impl ExchangeRowset {
    /// Spawn workers immediately: branch k goes to worker `k % n` where
    /// `n = min(branches, max_workers)`, so every branch's provider SQL is
    /// dispatched concurrently up to the worker cap.
    pub fn new(
        branches: Vec<BranchFactory>,
        child_delivered: &[Vec<ColumnId>],
        input_columns: &[Vec<ColumnId>],
        schema: Schema,
        cfg: &ParallelConfig,
        ctx: &ExecContext,
        node: usize,
    ) -> Result<ExchangeRowset> {
        let perms = union_perms(child_delivered, input_columns)?;
        let n = branches.len().min(cfg.max_workers).max(1);
        let branch_count = branches.len();
        let pull = ctx.batch().pull_size();
        // Queue depth in batches: with batching off (pull = 1) this is the
        // historical row-granular bound, unchanged.
        let depth = cfg.exchange_queue.max(1).div_ceil(pull).max(1);
        let (tx, rx) = sync_channel::<Result<RowBatch>>(depth);
        let mut assigned: Vec<Vec<(BranchFactory, Vec<usize>)>> =
            (0..n).map(|_| Vec::new()).collect();
        for (k, (open, perm)) in branches.into_iter().zip(perms).enumerate() {
            assigned[k % n].push((open, perm));
        }
        let opened = Instant::now();
        let workers: Vec<JoinHandle<WorkerSpan>> = assigned
            .into_iter()
            .map(|work| {
                let tx = tx.clone();
                let wctx = ctx.clone();
                // Waits a worker incurs (link time, channel backpressure)
                // must land in the spawning statement's sinks, so the
                // consumer's activity scope rides into the thread.
                let scope = current_scope();
                std::thread::spawn(move || {
                    let _scope = install_scope(scope);
                    run_branches(work, &wctx, &tx, opened, pull)
                })
            })
            .collect();
        if has_hook() {
            emit_event(
                "exchange_spawn",
                &[
                    ("node", node.to_string()),
                    ("workers", n.to_string()),
                    ("branches", branch_count.to_string()),
                ],
            );
        }
        // Only worker-held senders remain: the channel disconnects exactly
        // when the last branch finishes.
        drop(tx);
        ctx.counters().add_parallel_exchange(n as u64);
        let stats = ctx.stats().map(|c| (node, Arc::clone(c)));
        Ok(ExchangeRowset {
            rx: Some(rx),
            workers,
            worker_count: n,
            opened,
            schema,
            buffer: Vec::new().into_iter(),
            done: false,
            stats,
        })
    }

    /// Receive the next batch from the channel (lock-free fast path, blocking
    /// fallback charged to EXCHANGE_QUEUE_EMPTY). `Err(())` = all senders
    /// gone, i.e. every branch drained.
    fn recv_batch(&mut self) -> std::result::Result<Result<RowBatch>, ()> {
        let Some(rx) = &self.rx else {
            return Err(());
        };
        match rx.try_recv() {
            Ok(item) => Ok(item),
            Err(TryRecvError::Disconnected) => Err(()),
            Err(TryRecvError::Empty) => {
                let t0 = Instant::now();
                let out = rx.recv().map_err(|_| ());
                record_wait(WaitClass::ExchangeQueueEmpty, t0.elapsed());
                out
            }
        }
    }

    /// Drop the receiver (failing any blocked sends), join every worker and
    /// record the exchange runtime. Idempotent. A worker panic is re-raised
    /// on the consumer thread (unless it is already unwinding) — branch
    /// errors travel through the channel, so a panicking worker is a bug
    /// that must not be swallowed by the join.
    fn shutdown(&mut self) {
        self.rx = None;
        if self.workers.is_empty() {
            return;
        }
        let mut busy = Duration::ZERO;
        let mut spans = Vec::with_capacity(self.workers.len());
        for handle in self.workers.drain(..) {
            match handle.join() {
                Ok(span) => {
                    busy += Duration::from_micros(span.elapsed_us);
                    spans.push(span);
                }
                Err(panic) => {
                    if !std::thread::panicking() {
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        }
        if has_hook() {
            let rows: u64 = spans.iter().map(|s| s.rows).sum();
            emit_event(
                "exchange_drain",
                &[
                    ("workers", spans.len().to_string()),
                    ("rows", rows.to_string()),
                    ("busy_us", busy.as_micros().to_string()),
                    ("wall_us", self.opened.elapsed().as_micros().to_string()),
                ],
            );
        }
        if let Some((node, collector)) = self.stats.take() {
            collector.record_exchange(
                node,
                self.worker_count as u64,
                busy,
                self.opened.elapsed(),
                spans,
            );
        }
    }
}

/// Push one result into the bounded channel: a free slot costs a lock-free
/// `try_send`; a full channel falls back to the blocking send and the
/// blocked time is charged to `EXCHANGE_QUEUE_FULL`. Returns `false` when
/// the consumer hung up.
fn send_with_backpressure(
    tx: &SyncSender<Result<RowBatch>>,
    item: Result<RowBatch>,
    span: &mut WorkerSpan,
) -> bool {
    match tx.try_send(item) {
        Ok(()) => true,
        Err(TrySendError::Disconnected(_)) => false,
        Err(TrySendError::Full(item)) => {
            let t0 = Instant::now();
            let ok = tx.send(item).is_ok();
            let waited = t0.elapsed();
            record_wait(WaitClass::ExchangeQueueFull, waited);
            span.send_wait_us += waited.as_micros() as u64;
            ok
        }
    }
}

/// Worker body: open and drain each assigned branch in turn, permuting rows
/// to the output column order and shipping `pull`-row batches. Returns the
/// worker's timeline (offsets relative to `opened`, the exchange's open
/// instant). A send failure means the consumer hung up — stop quietly.
fn run_branches(
    work: Vec<(BranchFactory, Vec<usize>)>,
    ctx: &ExecContext,
    tx: &SyncSender<Result<RowBatch>>,
    opened: Instant,
    pull: usize,
) -> WorkerSpan {
    let start = Instant::now();
    let mut span = WorkerSpan {
        start_us: opened.elapsed().as_micros() as u64,
        ..WorkerSpan::default()
    };
    'branches: for (open, perm) in work {
        let mut rowset = match open(ctx) {
            Ok(rs) => rs,
            Err(e) => {
                let _ = send_with_backpressure(tx, Err(e), &mut span);
                break 'branches;
            }
        };
        loop {
            match rowset.next_batch(pull) {
                Ok(Some(batch)) => {
                    let mut out = RowBatch::with_capacity(batch.len());
                    for row in batch {
                        let values = perm.iter().map(|&p| row.values[p].clone()).collect();
                        out.push(Row::new(values));
                    }
                    let n = out.len() as u64;
                    if !send_with_backpressure(tx, Ok(out), &mut span) {
                        break 'branches;
                    }
                    span.rows += n;
                }
                Ok(None) => break,
                Err(e) => {
                    let _ = send_with_backpressure(tx, Err(e), &mut span);
                    break 'branches;
                }
            }
        }
    }
    span.elapsed_us = start.elapsed().as_micros() as u64;
    span
}

impl Rowset for ExchangeRowset {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>> {
        if let Some(row) = self.buffer.next() {
            return Ok(Some(row));
        }
        if self.done {
            return Ok(None);
        }
        match self.recv_batch() {
            Ok(Ok(batch)) => {
                self.buffer = batch.into_rows().into_iter();
                Ok(self.buffer.next())
            }
            // First error wins: surface it once, then the cursor is done
            // (shutdown cancels the remaining workers).
            Ok(Err(e)) => {
                self.done = true;
                self.shutdown();
                Err(e)
            }
            // All senders gone: every branch drained.
            Err(()) => {
                self.done = true;
                self.shutdown();
                Ok(None)
            }
        }
    }

    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        let max = max.max(1);
        // Drain any row-at-a-time replay remainder first so mixed cursoring
        // never reorders rows.
        let buffered: Vec<Row> = self.buffer.by_ref().take(max).collect();
        if !buffered.is_empty() {
            return Ok(Some(RowBatch::from(buffered)));
        }
        if self.done {
            return Ok(None);
        }
        match self.recv_batch() {
            Ok(Ok(batch)) => {
                if batch.len() <= max {
                    return Ok(Some(batch));
                }
                // Caller asked for less than a worker shipped: hand back the
                // head and buffer the rest for the next pull.
                let mut rows = batch.into_rows();
                let rest = rows.split_off(max);
                self.buffer = rest.into_iter();
                Ok(Some(RowBatch::from(rows)))
            }
            Ok(Err(e)) => {
                self.done = true;
                self.shutdown();
                Err(e)
            }
            Err(()) => {
                self.done = true;
                self.shutdown();
                Ok(None)
            }
        }
    }
}

impl Drop for ExchangeRowset {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Pipelines a (typically remote) rowset: a background worker pulls rows in
/// batches so link latency and transfer time overlap with consumer work.
/// Row order is preserved — batches flow through a FIFO channel.
pub struct PrefetchRowset {
    rx: Option<Receiver<Result<RowBatch>>>,
    worker: Option<JoinHandle<()>>,
    buffer: std::vec::IntoIter<Row>,
    schema: Schema,
    done: bool,
}

impl PrefetchRowset {
    /// `batched` selects how the worker drains the source: `true` pulls
    /// whole `batch_rows` chunks over the wire (one round trip each);
    /// `false` assembles batches row by row, preserving the per-row wire
    /// accounting of the compatibility path (`DHQP_BATCH=0`).
    pub fn new(
        mut inner: Box<dyn Rowset>,
        batch_rows: usize,
        queue_depth: usize,
        batched: bool,
    ) -> Self {
        let schema = inner.schema().clone();
        let batch_rows = batch_rows.max(1);
        let (tx, rx) = sync_channel::<Result<RowBatch>>(queue_depth.max(1));
        // The prefetcher drains a metered remote rowset off-thread; its
        // link waits must land in the spawning statement's sinks too.
        let scope = current_scope();
        let worker = std::thread::spawn(move || {
            let _scope = install_scope(scope);
            if batched {
                loop {
                    match inner.next_batch(batch_rows) {
                        Ok(Some(batch)) => {
                            if tx.send(Ok(batch)).is_err() {
                                return;
                            }
                        }
                        Ok(None) => return,
                        Err(e) => {
                            let _ = tx.send(Err(e));
                            return;
                        }
                    }
                }
            }
            loop {
                let mut batch = RowBatch::with_capacity(batch_rows);
                let finished = loop {
                    match inner.next() {
                        Ok(Some(row)) => {
                            batch.push(row);
                            if batch.len() == batch_rows {
                                break false;
                            }
                        }
                        Ok(None) => break true,
                        Err(e) => {
                            if !batch.is_empty() {
                                let _ = tx.send(Ok(batch));
                            }
                            let _ = tx.send(Err(e));
                            return;
                        }
                    }
                };
                if !batch.is_empty() && tx.send(Ok(batch)).is_err() {
                    return;
                }
                if finished {
                    return;
                }
            }
        });
        PrefetchRowset {
            rx: Some(rx),
            worker: Some(worker),
            buffer: Vec::new().into_iter(),
            schema,
            done: false,
        }
    }
}

impl Rowset for PrefetchRowset {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>> {
        if let Some(row) = self.buffer.next() {
            return Ok(Some(row));
        }
        if self.done {
            return Ok(None);
        }
        let Some(rx) = &self.rx else {
            return Ok(None);
        };
        match rx.recv() {
            Ok(Ok(batch)) => {
                self.buffer = batch.into_rows().into_iter();
                Ok(self.buffer.next())
            }
            Ok(Err(e)) => {
                self.done = true;
                Err(e)
            }
            Err(_) => {
                self.done = true;
                Ok(None)
            }
        }
    }

    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        let max = max.max(1);
        let buffered: Vec<Row> = self.buffer.by_ref().take(max).collect();
        if !buffered.is_empty() {
            return Ok(Some(RowBatch::from(buffered)));
        }
        if self.done {
            return Ok(None);
        }
        let Some(rx) = &self.rx else {
            return Ok(None);
        };
        match rx.recv() {
            Ok(Ok(batch)) => {
                if batch.len() <= max {
                    return Ok(Some(batch));
                }
                let mut rows = batch.into_rows();
                let rest = rows.split_off(max);
                self.buffer = rest.into_iter();
                Ok(Some(RowBatch::from(rows)))
            }
            Ok(Err(e)) => {
                self.done = true;
                Err(e)
            }
            Err(_) => {
                self.done = true;
                Ok(None)
            }
        }
    }
}

impl Drop for PrefetchRowset {
    fn drop(&mut self) {
        // Hang up first so a worker blocked on a full queue exits, then
        // join it — all wire traffic is accounted before the drop returns.
        self.rx = None;
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_support::TestCatalog;
    use dhqp_oledb::{MemRowset, RowsetExt};
    use dhqp_optimizer::props::ColumnRegistry;
    use dhqp_storage::StorageEngine;
    use dhqp_types::{Column, DataType, DhqpError, Value};
    use std::collections::HashMap;

    fn ctx() -> ExecContext {
        let catalog = Arc::new(TestCatalog::with_local(Arc::new(StorageEngine::new("l"))));
        ExecContext::new(catalog, HashMap::new(), Arc::new(ColumnRegistry::new()))
    }

    fn int_schema() -> Schema {
        Schema::new(vec![Column::new("v", DataType::Int)])
    }

    fn ints(vals: Vec<i64>) -> BranchFactory {
        Box::new(move |_| {
            let rows = vals
                .iter()
                .map(|&i| Row::new(vec![Value::Int(i)]))
                .collect();
            Ok(Box::new(MemRowset::new(int_schema(), rows)) as Box<dyn Rowset>)
        })
    }

    /// Yields `ok` rows, then fails with a provider error.
    struct FaultyRowset {
        schema: Schema,
        remaining: usize,
    }

    impl Rowset for FaultyRowset {
        fn schema(&self) -> &Schema {
            &self.schema
        }

        fn next(&mut self) -> Result<Option<Row>> {
            if self.remaining == 0 {
                return Err(DhqpError::Provider("link reset mid-stream".into()));
            }
            self.remaining -= 1;
            Ok(Some(Row::new(vec![Value::Int(self.remaining as i64)])))
        }
    }

    fn exchange(branches: Vec<BranchFactory>, cfg: &ParallelConfig) -> ExchangeRowset {
        let cols = vec![vec![ColumnId(0)]; branches.len()];
        ExchangeRowset::new(branches, &cols, &cols, int_schema(), cfg, &ctx(), 0).unwrap()
    }

    #[test]
    fn merges_branches_as_a_multiset() {
        let mut rs = exchange(
            vec![ints(vec![1, 2]), ints(vec![3]), ints(vec![4, 5, 6])],
            &ParallelConfig::parallel(),
        );
        let mut got: Vec<i64> = rs
            .collect_rows()
            .unwrap()
            .iter()
            .map(|r| match r.get(0) {
                Value::Int(i) => *i,
                other => panic!("unexpected value {other:?}"),
            })
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3, 4, 5, 6]);
        // Exhausted cursor stays exhausted.
        assert!(rs.next().unwrap().is_none());
    }

    #[test]
    fn more_branches_than_workers_still_covers_all() {
        let cfg = ParallelConfig {
            max_workers: 2,
            ..ParallelConfig::parallel()
        };
        let branches: Vec<BranchFactory> = (0..7).map(|i| ints(vec![i])).collect();
        let mut rs = exchange(branches, &cfg);
        assert_eq!(rs.count_rows().unwrap(), 7);
    }

    #[test]
    fn first_error_wins_and_workers_unwind() {
        let faulty: BranchFactory = Box::new(|_| {
            Ok(Box::new(FaultyRowset {
                schema: int_schema(),
                remaining: 2,
            }) as Box<dyn Rowset>)
        });
        let mut rs = exchange(
            vec![ints((0..100).collect()), faulty, ints((0..100).collect())],
            &ParallelConfig {
                exchange_queue: 4,
                ..ParallelConfig::parallel()
            },
        );
        let err = loop {
            match rs.next() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("stream ended without surfacing the branch error"),
                Err(e) => break e,
            }
        };
        assert!(
            matches!(&err, DhqpError::Provider(m) if m.contains("link reset")),
            "original provider error must surface, got {err:?}"
        );
        // After the error the cursor is done, not wedged.
        assert!(rs.next().unwrap().is_none());
    }

    #[test]
    fn open_failure_propagates() {
        let bad: BranchFactory =
            Box::new(|_| Err(DhqpError::Provider("connection refused".into())));
        let mut rs = exchange(vec![bad], &ParallelConfig::parallel());
        let err = rs.next().unwrap_err();
        assert!(matches!(&err, DhqpError::Provider(m) if m.contains("connection refused")));
    }

    #[test]
    fn exchange_records_runtime_stats() {
        let collector = Arc::new(RuntimeStatsCollector::new());
        let ctx = ctx().with_stats(Arc::clone(&collector));
        let cols = vec![vec![ColumnId(0)]; 2];
        let branches = vec![ints(vec![1]), ints(vec![2])];
        let mut rs = ExchangeRowset::new(
            branches,
            &cols,
            &cols,
            int_schema(),
            &ParallelConfig::parallel(),
            &ctx,
            7,
        )
        .unwrap();
        assert_eq!(rs.count_rows().unwrap(), 2);
        drop(rs);
        let ex = collector.node(7).unwrap().exchange.unwrap();
        assert_eq!(ex.workers, 2);
        assert_eq!(ctx.counters().snapshot().parallel_exchanges, 1);
        assert_eq!(ctx.counters().snapshot().exchange_workers, 2);
    }

    #[test]
    fn exchange_batched_cursor_covers_all_rows() {
        let mut rs = exchange(
            vec![ints((0..23).collect()), ints((100..117).collect())],
            &ParallelConfig::parallel(),
        );
        // Mixed cursoring: a couple of single rows, then batch pulls.
        let mut got: Vec<i64> = Vec::new();
        for _ in 0..2 {
            if let Some(row) = rs.next().unwrap() {
                got.push(match row.get(0) {
                    Value::Int(i) => *i,
                    other => panic!("unexpected value {other:?}"),
                });
            }
        }
        while let Some(batch) = rs.next_batch(5).unwrap() {
            assert!(batch.len() <= 5, "consumer cap must re-slice big batches");
            for row in batch {
                got.push(match row.get(0) {
                    Value::Int(i) => *i,
                    other => panic!("unexpected value {other:?}"),
                });
            }
        }
        got.sort_unstable();
        let want: Vec<i64> = (0..23).chain(100..117).collect();
        assert_eq!(got, want);
    }

    /// Yields one row, dawdles, then fails — by which time the consumer in
    /// the regression test below has already hung up.
    struct SlowFaultyRowset {
        schema: Schema,
        yielded: bool,
    }

    impl Rowset for SlowFaultyRowset {
        fn schema(&self) -> &Schema {
            &self.schema
        }

        fn next(&mut self) -> Result<Option<Row>> {
            if self.yielded {
                std::thread::sleep(Duration::from_millis(50));
                return Err(DhqpError::Provider("late link reset".into()));
            }
            self.yielded = true;
            Ok(Some(Row::new(vec![Value::Int(0)])))
        }

        // Fault on a batch boundary (like a metered link does), so the one
        // good row reaches the consumer before the worker's late error.
        fn next_batch(&mut self, _max: usize) -> Result<Option<RowBatch>> {
            if self.yielded {
                std::thread::sleep(Duration::from_millis(50));
                return Err(DhqpError::Provider("late link reset".into()));
            }
            self.yielded = true;
            Ok(Some(RowBatch::from(vec![Row::new(vec![Value::Int(0)])])))
        }
    }

    #[test]
    fn branch_error_after_consumer_drop_is_silent() {
        // The branch fails only after the consumer dropped the receiver.
        // The worker's error send fails; that result must be dropped — not
        // unwrapped — so the unwind stays clean (shutdown re-raises worker
        // panics, so a spurious panic here would fail this test).
        let slow: BranchFactory = Box::new(|_| {
            Ok(Box::new(SlowFaultyRowset {
                schema: int_schema(),
                yielded: false,
            }) as Box<dyn Rowset>)
        });
        let mut rs = exchange(vec![slow], &ParallelConfig::parallel());
        assert!(rs.next().unwrap().is_some());
        drop(rs);
    }

    #[test]
    fn early_drop_cancels_workers() {
        let branches: Vec<BranchFactory> = (0..4).map(|_| ints((0..10_000).collect())).collect();
        let mut rs = exchange(
            branches,
            &ParallelConfig {
                exchange_queue: 2,
                ..ParallelConfig::parallel()
            },
        );
        // Take a couple of rows, then drop with workers blocked on the full
        // channel; Drop must join them without deadlocking.
        rs.next().unwrap();
        rs.next().unwrap();
        drop(rs);
    }

    #[test]
    fn prefetch_preserves_order_and_completes() {
        for batched in [false, true] {
            let rows: Vec<Row> = (0..103).map(|i| Row::new(vec![Value::Int(i)])).collect();
            let inner: Box<dyn Rowset> = Box::new(MemRowset::new(int_schema(), rows));
            let mut rs = PrefetchRowset::new(inner, 16, 2, batched);
            let got = rs.collect_rows().unwrap();
            assert_eq!(got.len(), 103);
            assert!(got
                .iter()
                .enumerate()
                .all(|(i, r)| r.get(0) == &Value::Int(i as i64)));
            assert!(rs.next().unwrap().is_none());
        }
    }

    #[test]
    fn prefetch_surfaces_buffered_rows_before_error() {
        let inner: Box<dyn Rowset> = Box::new(FaultyRowset {
            schema: int_schema(),
            remaining: 3,
        });
        let mut rs = PrefetchRowset::new(inner, 2, 2, false);
        let mut seen = 0;
        let err = loop {
            match rs.next() {
                Ok(Some(_)) => seen += 1,
                Ok(None) => panic!("error swallowed"),
                Err(e) => break e,
            }
        };
        assert_eq!(seen, 3, "rows before the fault must be delivered");
        assert!(matches!(err, DhqpError::Provider(_)));
        assert!(rs.next().unwrap().is_none());
    }

    #[test]
    fn prefetch_batched_pull_forwards_whole_chunks() {
        let rows: Vec<Row> = (0..10).map(|i| Row::new(vec![Value::Int(i)])).collect();
        let inner: Box<dyn Rowset> = Box::new(MemRowset::new(int_schema(), rows));
        let mut rs = PrefetchRowset::new(inner, 4, 2, true);
        // A mixed cursor: one row off the front, then batches — order holds.
        assert_eq!(rs.next().unwrap().unwrap().get(0), &Value::Int(0));
        let mut got = vec![0i64];
        while let Some(batch) = rs.next_batch(4).unwrap() {
            assert!(batch.len() <= 4);
            for row in batch {
                got.push(match row.get(0) {
                    Value::Int(i) => *i,
                    other => panic!("unexpected value {other:?}"),
                });
            }
        }
        assert_eq!(got, (0..10).collect::<Vec<i64>>());
    }

    #[test]
    fn prefetch_early_drop_joins_worker() {
        let rows: Vec<Row> = (0..10_000).map(|i| Row::new(vec![Value::Int(i)])).collect();
        let inner: Box<dyn Rowset> = Box::new(MemRowset::new(int_schema(), rows));
        let mut rs = PrefetchRowset::new(inner, 8, 1, true);
        rs.next().unwrap();
        drop(rs);
    }
}
