//! Row-level operators: filter, startup filter, projection.

use crate::context::ExecContext;
use crate::eval::{eval_expr, eval_predicate, positions_of, RowEnv};
use dhqp_oledb::{MemRowset, Rowset};
use dhqp_optimizer::{ColumnId, ScalarExpr};
use dhqp_types::{Result, Row, RowBatch, Schema};
use std::collections::HashMap;

/// Streaming filter.
pub struct FilterRowset {
    inner: Box<dyn Rowset>,
    predicate: ScalarExpr,
    positions: HashMap<ColumnId, usize>,
    ctx: ExecContext,
}

impl FilterRowset {
    pub fn new(
        inner: Box<dyn Rowset>,
        predicate: ScalarExpr,
        input_columns: &[ColumnId],
        ctx: ExecContext,
    ) -> Self {
        FilterRowset {
            inner,
            predicate,
            positions: positions_of(input_columns),
            ctx,
        }
    }
}

impl Rowset for FilterRowset {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next(&mut self) -> Result<Option<Row>> {
        while let Some(row) = self.inner.next()? {
            let env = RowEnv {
                positions: &self.positions,
                row: &row,
                ctx: &self.ctx,
            };
            if eval_predicate(&self.predicate, &env)? {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }

    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        // Pull whole chunks from the child and keep the survivors; loop so
        // a fully-filtered chunk never surfaces as an empty batch.
        loop {
            let Some(batch) = self.inner.next_batch(max)? else {
                return Ok(None);
            };
            let mut kept = RowBatch::with_capacity(batch.len());
            for row in batch {
                let env = RowEnv {
                    positions: &self.positions,
                    row: &row,
                    ctx: &self.ctx,
                };
                if eval_predicate(&self.predicate, &env)? {
                    kept.push(row);
                }
            }
            if !kept.is_empty() {
                return Ok(Some(kept));
            }
        }
    }
}

/// Startup filter (paper §4.1.5): evaluates a column-free predicate *once*;
/// when false the child subtree is never opened. `open_child` is called
/// lazily so a pruned branch costs nothing — the runtime half of partition
/// elimination.
pub fn open_startup_filter(
    predicate: &ScalarExpr,
    schema: Schema,
    ctx: &ExecContext,
    open_child: impl FnOnce() -> Result<Box<dyn Rowset>>,
) -> Result<Box<dyn Rowset>> {
    let positions: HashMap<ColumnId, usize> = HashMap::new();
    let row = Row::new(vec![]);
    let env = RowEnv {
        positions: &positions,
        row: &row,
        ctx,
    };
    if eval_predicate(predicate, &env)? {
        open_child()
    } else {
        Ok(Box::new(MemRowset::empty(schema)))
    }
}

/// Computed projection.
pub struct ProjectRowset {
    inner: Box<dyn Rowset>,
    outputs: Vec<(ColumnId, ScalarExpr)>,
    positions: HashMap<ColumnId, usize>,
    schema: Schema,
    ctx: ExecContext,
}

impl ProjectRowset {
    pub fn new(
        inner: Box<dyn Rowset>,
        outputs: Vec<(ColumnId, ScalarExpr)>,
        input_columns: &[ColumnId],
        schema: Schema,
        ctx: ExecContext,
    ) -> Self {
        ProjectRowset {
            inner,
            outputs,
            positions: positions_of(input_columns),
            schema,
            ctx,
        }
    }
}

impl Rowset for ProjectRowset {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>> {
        let Some(row) = self.inner.next()? else {
            return Ok(None);
        };
        let env = RowEnv {
            positions: &self.positions,
            row: &row,
            ctx: &self.ctx,
        };
        let values = self
            .outputs
            .iter()
            .map(|(_, e)| eval_expr(e, &env))
            .collect::<Result<Vec<_>>>()?;
        Ok(Some(Row::new(values)))
    }

    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        let Some(batch) = self.inner.next_batch(max)? else {
            return Ok(None);
        };
        let mut out = RowBatch::with_capacity(batch.len());
        for row in batch {
            let env = RowEnv {
                positions: &self.positions,
                row: &row,
                ctx: &self.ctx,
            };
            let values = self
                .outputs
                .iter()
                .map(|(_, e)| eval_expr(e, &env))
                .collect::<Result<Vec<_>>>()?;
            out.push(Row::new(values));
        }
        Ok(Some(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_support::TestCatalog;
    use dhqp_oledb::RowsetExt;
    use dhqp_optimizer::props::ColumnRegistry;
    use dhqp_optimizer::scalar::CmpOp;
    use dhqp_storage::StorageEngine;
    use dhqp_types::{Column, DataType, IntervalSet, Value};
    use std::sync::Arc;

    fn ctx() -> ExecContext {
        let catalog = Arc::new(TestCatalog::with_local(Arc::new(StorageEngine::new("l"))));
        let mut params = HashMap::new();
        params.insert("k".to_string(), Value::Int(15));
        ExecContext::new(catalog, params, Arc::new(ColumnRegistry::new()))
    }

    fn input() -> (Box<dyn Rowset>, Vec<ColumnId>) {
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        let rows = (0..10).map(|i| Row::new(vec![Value::Int(i)])).collect();
        (Box::new(MemRowset::new(schema, rows)), vec![ColumnId(0)])
    }

    #[test]
    fn filter_keeps_matching_rows() {
        let (rs, cols) = input();
        let pred = ScalarExpr::cmp(
            CmpOp::Ge,
            ScalarExpr::Column(ColumnId(0)),
            ScalarExpr::literal(Value::Int(7)),
        );
        let mut f = FilterRowset::new(rs, pred, &cols, ctx());
        assert_eq!(f.count_rows().unwrap(), 3);
    }

    #[test]
    fn startup_filter_skips_child_entirely() {
        let c = ctx();
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        // @k = 15, domain [0,9]: prune.
        let pred = ScalarExpr::ParamInDomain {
            param: "k".into(),
            domain: IntervalSet::single(dhqp_types::Interval::between(
                Value::Int(0),
                Value::Int(9),
            )),
        };
        let mut opened = false;
        let mut rs = open_startup_filter(&pred, schema.clone(), &c, || {
            opened = true;
            let (rs, _) = input();
            Ok(rs)
        })
        .unwrap();
        assert_eq!(rs.count_rows().unwrap(), 0);
        assert!(
            !opened,
            "child must not be opened when startup predicate fails"
        );
        // Domain [10,19] passes.
        let pred = ScalarExpr::ParamInDomain {
            param: "k".into(),
            domain: IntervalSet::single(dhqp_types::Interval::between(
                Value::Int(10),
                Value::Int(19),
            )),
        };
        let mut rs = open_startup_filter(&pred, schema, &c, || Ok(input().0)).unwrap();
        assert_eq!(rs.count_rows().unwrap(), 10);
    }

    #[test]
    fn project_computes_expressions() {
        let (rs, cols) = input();
        let out_col = ColumnId(5);
        let outputs = vec![(
            out_col,
            ScalarExpr::Arith {
                op: dhqp_optimizer::ArithOp::Mul,
                left: Box::new(ScalarExpr::Column(ColumnId(0))),
                right: Box::new(ScalarExpr::literal(Value::Int(2))),
            },
        )];
        let schema = Schema::new(vec![Column::new("double_x", DataType::Int)]);
        let mut p = ProjectRowset::new(rs, outputs, &cols, schema, ctx());
        let rows = p.collect_rows().unwrap();
        assert_eq!(rows[3].get(0), &Value::Int(6));
        assert_eq!(rows.len(), 10);
    }
}
