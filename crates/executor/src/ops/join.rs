//! Join operators: nested loops (with per-row inner rebinds — the vehicle
//! for parameterized remote access), hash join and merge join.

use crate::context::ExecContext;
use crate::eval::{eval_expr, eval_predicate, positions_of, RowEnv};
use dhqp_oledb::{Rowset, RowsetExt};
use dhqp_optimizer::{ColumnId, JoinKind, ScalarExpr};
use dhqp_types::{DhqpError, Result, Row, Schema, Value};
use std::collections::HashMap;

/// Factory re-opening the inner side of a nested-loop join under fresh
/// correlation bindings.
pub type InnerFactory = Box<dyn Fn(&ExecContext) -> Result<Box<dyn Rowset>> + Send>;

/// Tuple-at-a-time nested-loop join. The inner side is re-opened for every
/// outer row with that row's columns exposed as correlation bindings, which
/// is what lets a `RemoteQuery`/`RemoteRange` inner child push the current
/// join key to the remote source (§4.1.2 parameterization).
pub struct NestedLoopJoin {
    outer: Box<dyn Rowset>,
    inner_factory: InnerFactory,
    kind: JoinKind,
    predicate: Option<ScalarExpr>,
    positions: HashMap<ColumnId, usize>,
    outer_columns: Vec<ColumnId>,
    inner_width: usize,
    schema: Schema,
    ctx: ExecContext,
    current_outer: Option<Row>,
    current_inner: Option<Box<dyn Rowset>>,
    matched: bool,
}

impl NestedLoopJoin {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        outer: Box<dyn Rowset>,
        inner_factory: InnerFactory,
        kind: JoinKind,
        predicate: Option<ScalarExpr>,
        outer_columns: Vec<ColumnId>,
        inner_columns: Vec<ColumnId>,
        schema: Schema,
        ctx: ExecContext,
    ) -> Self {
        let mut combined = outer_columns.clone();
        combined.extend(inner_columns.iter().copied());
        NestedLoopJoin {
            outer,
            inner_factory,
            kind,
            predicate,
            positions: positions_of(&combined),
            outer_columns,
            inner_width: inner_columns.len(),
            schema,
            ctx,
            current_outer: None,
            current_inner: None,
            matched: false,
        }
    }

    fn rebind(&self, outer_row: &Row) -> ExecContext {
        let bindings: HashMap<u32, Value> = self
            .outer_columns
            .iter()
            .zip(outer_row.values.iter())
            .map(|(c, v)| (c.0, v.clone()))
            .collect();
        self.ctx.with_bindings(bindings)
    }

    fn null_pad(&self, outer_row: &Row) -> Row {
        let mut values = outer_row.values.clone();
        values.extend(std::iter::repeat_n(Value::Null, self.inner_width));
        Row::new(values)
    }
}

impl Rowset for NestedLoopJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            if self.current_outer.is_none() {
                let Some(outer_row) = self.outer.next()? else {
                    return Ok(None);
                };
                let child_ctx = self.rebind(&outer_row);
                self.current_inner = Some((self.inner_factory)(&child_ctx)?);
                self.current_outer = Some(outer_row);
                self.matched = false;
            }
            let outer_row = self.current_outer.clone().expect("outer row set above");
            let inner = self.current_inner.as_mut().expect("inner open");
            let mut emit: Option<Row> = None;
            let mut outer_done = false;
            loop {
                match inner.next()? {
                    Some(inner_row) => {
                        let combined = outer_row.join(&inner_row);
                        let passes = match &self.predicate {
                            None => true,
                            Some(p) => {
                                let env = RowEnv {
                                    positions: &self.positions,
                                    row: &combined,
                                    ctx: &self.ctx,
                                };
                                eval_predicate(p, &env)?
                            }
                        };
                        if !passes {
                            continue;
                        }
                        match self.kind {
                            JoinKind::Inner | JoinKind::Cross | JoinKind::LeftOuter => {
                                self.matched = true;
                                emit = Some(combined);
                            }
                            JoinKind::Semi => {
                                emit = Some(outer_row.clone());
                                outer_done = true;
                            }
                            JoinKind::Anti => {
                                // A single match disqualifies the outer row.
                                self.matched = true;
                                outer_done = true;
                            }
                        }
                        break;
                    }
                    None => {
                        // Inner exhausted for this outer row.
                        match self.kind {
                            JoinKind::LeftOuter if !self.matched => {
                                emit = Some(self.null_pad(&outer_row));
                            }
                            JoinKind::Anti if !self.matched => {
                                emit = Some(outer_row.clone());
                            }
                            _ => {}
                        }
                        outer_done = true;
                        break;
                    }
                }
            }
            if outer_done {
                self.current_outer = None;
                self.current_inner = None;
            }
            if let Some(row) = emit {
                return Ok(Some(row));
            }
        }
    }
}

/// Hash join: builds on the right input, probes with the left.
pub struct HashJoin {
    schema: Schema,
    output: std::vec::IntoIter<Row>,
}

impl HashJoin {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        mut left: Box<dyn Rowset>,
        mut right: Box<dyn Rowset>,
        kind: JoinKind,
        left_keys: &[ScalarExpr],
        right_keys: &[ScalarExpr],
        residual: Option<&ScalarExpr>,
        left_columns: &[ColumnId],
        right_columns: &[ColumnId],
        schema: Schema,
        ctx: &ExecContext,
    ) -> Result<Self> {
        if left_keys.len() != right_keys.len() || left_keys.is_empty() {
            return Err(DhqpError::Execute(
                "hash join requires matching key lists".into(),
            ));
        }
        let left_pos = positions_of(left_columns);
        let right_pos = positions_of(right_columns);
        let mut combined_cols = left_columns.to_vec();
        combined_cols.extend(right_columns.iter().copied());
        let combined_pos = positions_of(&combined_cols);

        // Build phase: hash the right input (null keys never match).
        let mut table: HashMap<Vec<Value>, Vec<Row>> = HashMap::new();
        while let Some(row) = right.next()? {
            let env = RowEnv {
                positions: &right_pos,
                row: &row,
                ctx,
            };
            let key = right_keys
                .iter()
                .map(|k| eval_expr(k, &env))
                .collect::<Result<Vec<_>>>()?;
            if key.iter().any(Value::is_null) {
                continue;
            }
            table.entry(key).or_default().push(row);
        }

        // Probe phase.
        let right_width = right_columns.len();
        let mut out = Vec::new();
        while let Some(lrow) = left.next()? {
            let env = RowEnv {
                positions: &left_pos,
                row: &lrow,
                ctx,
            };
            let key = left_keys
                .iter()
                .map(|k| eval_expr(k, &env))
                .collect::<Result<Vec<_>>>()?;
            let candidates: &[Row] = if key.iter().any(Value::is_null) {
                &[]
            } else {
                table.get(&key).map(|v| v.as_slice()).unwrap_or(&[])
            };
            let mut matched = false;
            for rrow in candidates {
                let combined = lrow.join(rrow);
                let passes = match residual {
                    None => true,
                    Some(p) => {
                        let env = RowEnv {
                            positions: &combined_pos,
                            row: &combined,
                            ctx,
                        };
                        eval_predicate(p, &env)?
                    }
                };
                if !passes {
                    continue;
                }
                matched = true;
                match kind {
                    JoinKind::Inner | JoinKind::Cross | JoinKind::LeftOuter => out.push(combined),
                    JoinKind::Semi => break,
                    JoinKind::Anti => break,
                }
            }
            match kind {
                JoinKind::LeftOuter if !matched => {
                    let mut values = lrow.values.clone();
                    values.extend(std::iter::repeat_n(Value::Null, right_width));
                    out.push(Row::new(values));
                }
                JoinKind::Semi if matched => out.push(lrow),
                JoinKind::Anti if !matched => out.push(lrow),
                _ => {}
            }
        }
        Ok(HashJoin {
            schema,
            output: out.into_iter(),
        })
    }
}

impl Rowset for HashJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>> {
        Ok(self.output.next())
    }
}

/// Merge join over inputs sorted ascending on the key columns (inner join
/// only; the optimizer requests the orderings via enforcers).
pub struct MergeJoin {
    schema: Schema,
    output: std::vec::IntoIter<Row>,
}

impl MergeJoin {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        mut left: Box<dyn Rowset>,
        mut right: Box<dyn Rowset>,
        left_keys: &[ColumnId],
        right_keys: &[ColumnId],
        residual: Option<&ScalarExpr>,
        left_columns: &[ColumnId],
        right_columns: &[ColumnId],
        schema: Schema,
        ctx: &ExecContext,
    ) -> Result<Self> {
        let lpos = positions_of(left_columns);
        let rpos = positions_of(right_columns);
        let lkey_pos: Vec<usize> = left_keys
            .iter()
            .map(|c| {
                lpos.get(c).copied().ok_or_else(|| {
                    DhqpError::Execute(format!("merge key #{} missing from left input", c.0))
                })
            })
            .collect::<Result<Vec<_>>>()?;
        let rkey_pos: Vec<usize> = right_keys
            .iter()
            .map(|c| {
                rpos.get(c).copied().ok_or_else(|| {
                    DhqpError::Execute(format!("merge key #{} missing from right input", c.0))
                })
            })
            .collect::<Result<Vec<_>>>()?;
        let mut combined_cols = left_columns.to_vec();
        combined_cols.extend(right_columns.iter().copied());
        let combined_pos = positions_of(&combined_cols);

        let lrows = left.collect_rows()?;
        let rrows = right.collect_rows()?;
        let key_of = |row: &Row, pos: &[usize]| -> Vec<Value> {
            pos.iter().map(|&p| row.values[p].clone()).collect()
        };
        let cmp_keys = |a: &[Value], b: &[Value]| -> std::cmp::Ordering {
            for (x, y) in a.iter().zip(b.iter()) {
                let o = x.total_cmp(y);
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        };

        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < lrows.len() && j < rrows.len() {
            let lk = key_of(&lrows[i], &lkey_pos);
            let rk = key_of(&rrows[j], &rkey_pos);
            // SQL semantics: null keys never join.
            if lk.iter().any(Value::is_null) {
                i += 1;
                continue;
            }
            if rk.iter().any(Value::is_null) {
                j += 1;
                continue;
            }
            match cmp_keys(&lk, &rk) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // Group boundaries on both sides.
                    let mut i_end = i;
                    while i_end < lrows.len()
                        && cmp_keys(&key_of(&lrows[i_end], &lkey_pos), &lk)
                            == std::cmp::Ordering::Equal
                    {
                        i_end += 1;
                    }
                    let mut j_end = j;
                    while j_end < rrows.len()
                        && cmp_keys(&key_of(&rrows[j_end], &rkey_pos), &rk)
                            == std::cmp::Ordering::Equal
                    {
                        j_end += 1;
                    }
                    for lrow in &lrows[i..i_end] {
                        for rrow in &rrows[j..j_end] {
                            let combined = lrow.join(rrow);
                            let passes = match residual {
                                None => true,
                                Some(p) => {
                                    let env = RowEnv {
                                        positions: &combined_pos,
                                        row: &combined,
                                        ctx,
                                    };
                                    eval_predicate(p, &env)?
                                }
                            };
                            if passes {
                                out.push(combined);
                            }
                        }
                    }
                    i = i_end;
                    j = j_end;
                }
            }
        }
        Ok(MergeJoin {
            schema,
            output: out.into_iter(),
        })
    }
}

impl Rowset for MergeJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>> {
        Ok(self.output.next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_support::TestCatalog;
    use dhqp_oledb::MemRowset;
    use dhqp_optimizer::props::ColumnRegistry;
    use dhqp_optimizer::scalar::CmpOp;
    use dhqp_storage::StorageEngine;
    use dhqp_types::{Column, DataType};
    use std::sync::Arc;

    fn ctx() -> ExecContext {
        let catalog = Arc::new(TestCatalog::with_local(Arc::new(StorageEngine::new("l"))));
        ExecContext::new(catalog, HashMap::new(), Arc::new(ColumnRegistry::new()))
    }

    fn ints(vals: &[i64]) -> (Box<dyn Rowset>, Schema) {
        let schema = Schema::new(vec![Column::new("v", DataType::Int)]);
        let rows = vals
            .iter()
            .map(|&i| Row::new(vec![Value::Int(i)]))
            .collect();
        (Box::new(MemRowset::new(schema.clone(), rows)), schema)
    }

    fn join_schema() -> Schema {
        Schema::new(vec![
            Column::new("l", DataType::Int),
            Column::new("r", DataType::Int),
        ])
    }

    fn eq_pred() -> ScalarExpr {
        ScalarExpr::eq(
            ScalarExpr::Column(ColumnId(0)),
            ScalarExpr::Column(ColumnId(1)),
        )
    }

    fn nlj(kind: JoinKind, left: &[i64], right: &'static [i64]) -> Vec<Row> {
        let (outer, _) = ints(left);
        let factory: InnerFactory = Box::new(move |_ctx| Ok(ints(right).0));
        let schema = if kind.produces_right() {
            join_schema()
        } else {
            Schema::new(vec![Column::new("l", DataType::Int)])
        };
        let mut j = NestedLoopJoin::new(
            outer,
            factory,
            kind,
            Some(eq_pred()),
            vec![ColumnId(0)],
            vec![ColumnId(1)],
            schema,
            ctx(),
        );
        j.collect_rows().unwrap()
    }

    #[test]
    fn nlj_inner() {
        let rows = nlj(JoinKind::Inner, &[1, 2, 3], &[2, 3, 3, 4]);
        // 2 matches once, 3 matches twice.
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn nlj_left_outer_pads_nulls() {
        let rows = nlj(JoinKind::LeftOuter, &[1, 2], &[2]);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].get(1).is_null());
        assert_eq!(rows[1].get(1), &Value::Int(2));
    }

    #[test]
    fn nlj_semi_and_anti() {
        let semi = nlj(JoinKind::Semi, &[1, 2, 3], &[2, 2, 3]);
        assert_eq!(semi.len(), 2);
        assert_eq!(semi[0].len(), 1, "semi join emits outer columns only");
        let anti = nlj(JoinKind::Anti, &[1, 2, 3], &[2, 2, 3]);
        assert_eq!(anti.len(), 1);
        assert_eq!(anti[0].get(0), &Value::Int(1));
    }

    #[test]
    fn hash_join_kinds() {
        let run = |kind: JoinKind| -> Vec<Row> {
            let (l, _) = ints(&[1, 2, 3]);
            let (r, _) = ints(&[2, 3, 3]);
            let schema = if kind.produces_right() {
                join_schema()
            } else {
                Schema::new(vec![Column::new("l", DataType::Int)])
            };
            let mut j = HashJoin::new(
                l,
                r,
                kind,
                &[ScalarExpr::Column(ColumnId(0))],
                &[ScalarExpr::Column(ColumnId(1))],
                None,
                &[ColumnId(0)],
                &[ColumnId(1)],
                schema,
                &ctx(),
            )
            .unwrap();
            j.collect_rows().unwrap()
        };
        assert_eq!(run(JoinKind::Inner).len(), 3);
        assert_eq!(run(JoinKind::LeftOuter).len(), 4); // 1 padded
        assert_eq!(run(JoinKind::Semi).len(), 2);
        assert_eq!(run(JoinKind::Anti).len(), 1);
    }

    #[test]
    fn hash_join_null_keys_never_match() {
        let schema = Schema::new(vec![Column::new("v", DataType::Int)]);
        let l: Box<dyn Rowset> = Box::new(MemRowset::new(
            schema.clone(),
            vec![Row::new(vec![Value::Null]), Row::new(vec![Value::Int(1)])],
        ));
        let r: Box<dyn Rowset> = Box::new(MemRowset::new(
            schema,
            vec![Row::new(vec![Value::Null]), Row::new(vec![Value::Int(1)])],
        ));
        let mut j = HashJoin::new(
            l,
            r,
            JoinKind::Inner,
            &[ScalarExpr::Column(ColumnId(0))],
            &[ScalarExpr::Column(ColumnId(1))],
            None,
            &[ColumnId(0)],
            &[ColumnId(1)],
            join_schema(),
            &ctx(),
        )
        .unwrap();
        assert_eq!(j.count_rows().unwrap(), 1, "NULL = NULL must not join");
    }

    #[test]
    fn merge_join_with_duplicates() {
        let (l, _) = ints(&[1, 2, 2, 3]);
        let (r, _) = ints(&[2, 2, 3, 4]);
        let mut j = MergeJoin::new(
            l,
            r,
            &[ColumnId(0)],
            &[ColumnId(1)],
            None,
            &[ColumnId(0)],
            &[ColumnId(1)],
            join_schema(),
            &ctx(),
        )
        .unwrap();
        // 2x2 group yields 4, 3 yields 1.
        assert_eq!(j.count_rows().unwrap(), 5);
    }

    #[test]
    fn nlj_rebinds_inner_via_correlation() {
        // Inner factory returns rows derived from the binding: simulate a
        // parameterized remote probe returning exactly the bound key.
        let (outer, _) = ints(&[5, 7]);
        let factory: InnerFactory = Box::new(|ctx| {
            let v = ctx.binding(0).cloned().unwrap();
            let schema = Schema::new(vec![Column::new("r", DataType::Int)]);
            Ok(Box::new(MemRowset::new(schema, vec![Row::new(vec![v])])))
        });
        let mut j = NestedLoopJoin::new(
            outer,
            factory,
            JoinKind::Inner,
            Some(eq_pred()),
            vec![ColumnId(0)],
            vec![ColumnId(1)],
            join_schema(),
            ctx(),
        );
        let rows = j.collect_rows().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get(0), rows[0].get(1));
    }

    #[test]
    fn residual_predicate_filters_hash_matches() {
        let (l, _) = ints(&[1, 2, 3]);
        let (r, _) = ints(&[1, 2, 3]);
        // key match AND l < 3
        let residual = ScalarExpr::And(vec![
            eq_pred(),
            ScalarExpr::cmp(
                CmpOp::Lt,
                ScalarExpr::Column(ColumnId(0)),
                ScalarExpr::literal(Value::Int(3)),
            ),
        ]);
        let mut j = HashJoin::new(
            l,
            r,
            JoinKind::Inner,
            &[ScalarExpr::Column(ColumnId(0))],
            &[ScalarExpr::Column(ColumnId(1))],
            Some(&residual),
            &[ColumnId(0)],
            &[ColumnId(1)],
            join_schema(),
            &ctx(),
        )
        .unwrap();
        assert_eq!(j.count_rows().unwrap(), 2);
    }
}
