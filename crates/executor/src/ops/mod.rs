//! Physical operator implementations.

pub mod agg;
pub mod exchange;
pub mod filter;
pub mod join;
pub mod remote;
pub mod retry;
pub mod scan;
pub mod semijoin;
pub mod sort;
