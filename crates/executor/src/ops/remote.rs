//! Remote access paths: the executor side of the paper's *build remote
//! query*, *remote scan*, *remote range* and *remote fetch* rules (§4.1.2).
//!
//! A remote query's parameters (`@__corr0`-style correlation markers and
//! `@user` parameters) are substituted as literals into the SQL text before
//! it crosses the link — every provider sees plain SQL in its own dialect,
//! and the traffic accounting stays honest.

use crate::context::ExecContext;
use crate::eval::{eval_expr, RowEnv};
use crate::health::{Admission, HealthRegistry};
use crate::ops::retry::{open_with_retries_tagged, ReopenFactory};
use crate::ops::scan::resolve_range;
use crate::stats::RuntimeStatsCollector;
use dhqp_oledb::waits::{record_wait, WaitClass};
use dhqp_oledb::{MemRowset, Rowset};
use dhqp_optimizer::physical::{IndexRangeSpec, ParamSource, RemoteParam};
use dhqp_optimizer::{ColumnId, TableMeta};
use dhqp_types::{DhqpError, Result, Row, RowBatch, Schema, Value};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Resolve one remote parameter to a concrete value.
fn param_value(p: &RemoteParam, ctx: &ExecContext) -> Result<Value> {
    match &p.source {
        ParamSource::QueryParam(name) => ctx.param(name).cloned(),
        ParamSource::OuterColumn(col) => ctx.binding(col.0).cloned().ok_or_else(|| {
            DhqpError::Execute(format!(
                "no outer binding for correlation column #{} (parameter @{})",
                col.0, p.name
            ))
        }),
    }
}

/// Substitute `@name` placeholders with SQL literals in one left-to-right
/// scan. At each `@` the longest matching parameter name wins (so `@p10` is
/// never clobbered by `@p1`), and substituted literals are never rescanned —
/// a string value containing `@name` cannot be re-substituted.
pub fn substitute_params(sql: &str, params: &[(String, Value)]) -> String {
    let mut ordered: Vec<&(String, Value)> = params.iter().collect();
    ordered.sort_by_key(|(n, _)| std::cmp::Reverse(n.len()));
    let mut out = String::with_capacity(sql.len());
    let mut rest = sql;
    while let Some(at) = rest.find('@') {
        out.push_str(&rest[..at]);
        let after = &rest[at + 1..];
        match ordered
            .iter()
            .find(|(name, _)| after.starts_with(name.as_str()))
        {
            Some((name, value)) => {
                out.push_str(&value.to_sql_literal());
                rest = &after[name.len()..];
            }
            None => {
                out.push('@');
                rest = after;
            }
        }
    }
    out.push_str(rest);
    out
}

/// The exact text a remote query ships for the current parameter values —
/// what `EXPLAIN ANALYZE` reports as the decoder-emitted SQL.
pub fn remote_query_text(sql: &str, params: &[RemoteParam], ctx: &ExecContext) -> Result<String> {
    let bound: Vec<(String, Value)> = params
        .iter()
        .map(|p| Ok((p.name.clone(), param_value(p, ctx)?)))
        .collect::<Result<Vec<_>>>()?;
    Ok(substitute_params(sql, &bound))
}

/// Per-node retry attribution, attached only when a stats collector is.
fn retry_stats(ctx: &ExecContext, node: usize) -> Option<(usize, Arc<RuntimeStatsCollector>)> {
    ctx.stats().map(|c| (node, Arc::clone(c)))
}

/// The breaker-gated tail shared by every remote open path: consult the
/// link's circuit breaker before touching the wire (an Open breaker fails
/// fast with `Unavailable`, no retry budget burned), run the retrying
/// open, and feed the outcome back into the health registry. Exchange
/// workers and the prefetcher inherit the gate because their branch opens
/// land here too.
fn open_via_breaker(
    server: &str,
    ctx: &ExecContext,
    node: usize,
    factory: ReopenFactory,
) -> Result<Box<dyn Rowset>> {
    open_via_breaker_tagged(server, ctx, node, factory, None)
}

/// [`open_via_breaker`] with an operation tag stamped onto any retry
/// give-up, so a failure that opened the breaker is attributable to the
/// exact request shape (e.g. a semi-join-reduced statement's
/// shipped-predicate fingerprint) in `sys.dm_link_health`.
pub(crate) fn open_via_breaker_tagged(
    server: &str,
    ctx: &ExecContext,
    node: usize,
    factory: ReopenFactory,
    op_tag: Option<String>,
) -> Result<Box<dyn Rowset>> {
    let counters = Arc::clone(ctx.counters());
    if let Some(health) = ctx.health() {
        let checked = Instant::now();
        match health.admit(server) {
            Admission::Allow | Admission::Probe => {}
            Admission::Reject {
                consecutive_failures,
            } => {
                counters.add_breaker_fast_fail();
                // Near-zero time was spent, but the rejection must be
                // countable (and attributable as a dominant wait).
                record_wait(
                    WaitClass::CircuitOpen,
                    checked.elapsed().max(Duration::from_micros(1)),
                );
                return Err(DhqpError::Unavailable(format!(
                    "linked server '{server}' unavailable: circuit breaker open after \
                     {consecutive_failures} consecutive retry-exhausted failures (fail-fast)"
                )));
            }
        }
    }
    let result = open_with_retries_tagged(
        factory,
        ctx.retry(),
        &counters,
        retry_stats(ctx, node),
        ctx.batch().pull_size(),
        op_tag,
    );
    let Some(health) = ctx.health() else {
        return result;
    };
    match result {
        Ok(inner) => {
            health.record_success(server);
            Ok(Box::new(HealthWatchRowset {
                inner,
                server: server.to_string(),
                health: Arc::clone(health),
                reported: false,
            }))
        }
        Err(e) => {
            // A retryable error surfacing here means the retry budget was
            // exhausted (transients were absorbed below) — breaker food.
            // Permanent errors say nothing about link health.
            if e.is_retryable() {
                health.record_failure(server, e.message());
            }
            Err(e)
        }
    }
}

/// Reports mid-stream retry exhaustion to the health registry: the open
/// succeeded, but a later rewind can still burn the whole budget.
struct HealthWatchRowset {
    inner: Box<dyn Rowset>,
    server: String,
    health: Arc<HealthRegistry>,
    reported: bool,
}

impl HealthWatchRowset {
    fn observe<T>(&mut self, result: Result<T>) -> Result<T> {
        if let Err(e) = &result {
            if e.is_retryable() && !self.reported {
                self.reported = true;
                self.health.record_failure(&self.server, e.message());
            }
        }
        result
    }
}

impl Rowset for HealthWatchRowset {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next(&mut self) -> Result<Option<Row>> {
        let r = self.inner.next();
        self.observe(r)
    }

    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        let r = self.inner.next_batch(max);
        self.observe(r)
    }

    fn size_hint(&self) -> Option<usize> {
        self.inner.size_hint()
    }
}

/// Execute a pushed-down SQL statement on a linked server. The open (and
/// any mid-stream rewind) is retried on transient transport faults: a
/// pushed-down SELECT is idempotent, so re-issuing the same text is safe.
pub fn open_remote_query(
    server: &str,
    sql: &str,
    params: &[RemoteParam],
    ctx: &ExecContext,
    node: usize,
) -> Result<Box<dyn Rowset>> {
    let source = ctx.catalog().linked(server)?;
    let text = remote_query_text(sql, params, ctx)?;
    let counters = Arc::clone(ctx.counters());
    let factory: ReopenFactory = {
        let counters = Arc::clone(&counters);
        Box::new(move || {
            let mut session = source.create_session()?;
            let mut command = session.create_command()?;
            command.set_text(&text)?;
            counters.add_remote_roundtrip();
            command.execute()?.into_rowset()
        })
    };
    open_via_breaker(server, ctx, node, factory)
}

/// `IOpenRowset` against a remote base table (ships the whole table).
pub fn open_remote_scan(
    meta: &TableMeta,
    ctx: &ExecContext,
    node: usize,
) -> Result<Box<dyn Rowset>> {
    let server = meta
        .source
        .server_name()
        .ok_or_else(|| DhqpError::Execute("remote scan of a local table".into()))?;
    let source = ctx.catalog().linked(server)?;
    let table = meta.table.clone();
    let counters = Arc::clone(ctx.counters());
    let factory: ReopenFactory = {
        let counters = Arc::clone(&counters);
        Box::new(move || {
            let mut session = source.create_session()?;
            counters.add_remote_roundtrip();
            session.open_rowset(&table)
        })
    };
    open_via_breaker(server, ctx, node, factory)
}

/// `IRowsetIndex` range against a remote index.
pub fn open_remote_range(
    meta: &TableMeta,
    index: &str,
    spec: &IndexRangeSpec,
    ctx: &ExecContext,
    node: usize,
) -> Result<Box<dyn Rowset>> {
    let server = meta
        .source
        .server_name()
        .ok_or_else(|| DhqpError::Execute("remote range of a local table".into()))?;
    let range = resolve_range(spec, ctx)?;
    let source = ctx.catalog().linked(server)?;
    let table = meta.table.clone();
    let index = index.to_string();
    let counters = Arc::clone(ctx.counters());
    let factory: ReopenFactory = {
        let counters = Arc::clone(&counters);
        Box::new(move || {
            let mut session = source.create_session()?;
            counters.add_remote_roundtrip();
            session.open_index(&table, &index, &range)
        })
    };
    open_via_breaker(server, ctx, node, factory)
}

/// `IRowsetLocate` fetch: pull base rows for the bookmarks produced by a
/// child rowset (typically a remote index range over a secondary index).
pub fn open_remote_fetch(
    meta: &TableMeta,
    mut child: Box<dyn Rowset>,
    ctx: &ExecContext,
    node: usize,
) -> Result<Box<dyn Rowset>> {
    let server = meta
        .source
        .server_name()
        .ok_or_else(|| DhqpError::Execute("remote fetch of a local table".into()))?;
    let mut bookmarks = Vec::new();
    while let Some(row) = child.next()? {
        bookmarks.push(row.bookmark.ok_or_else(|| {
            DhqpError::Execute("remote fetch child produced a row without a bookmark".into())
        })?);
    }
    let source = ctx.catalog().linked(server)?;
    let table = meta.table.clone();
    let schema = meta.schema.clone();
    let counters = Arc::clone(ctx.counters());
    let factory: ReopenFactory = {
        let counters = Arc::clone(&counters);
        Box::new(move || {
            let mut session = source.create_session()?;
            counters.add_remote_roundtrip();
            let rows = session.fetch_by_bookmarks(&table, &bookmarks)?;
            Ok(Box::new(MemRowset::new(schema.clone(), rows)) as Box<dyn Rowset>)
        })
    };
    open_via_breaker(server, ctx, node, factory)
}

/// Evaluate a list of column-free expressions (used by DML routing).
pub fn eval_standalone(
    exprs: &[dhqp_optimizer::ScalarExpr],
    ctx: &ExecContext,
) -> Result<Vec<Value>> {
    let positions: HashMap<ColumnId, usize> = HashMap::new();
    let row = Row::new(vec![]);
    let env = RowEnv {
        positions: &positions,
        row: &row,
        ctx,
    };
    exprs.iter().map(|e| eval_expr(e, &env)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substitution_orders_by_length() {
        let sql = "SELECT * FROM t WHERE a = @p1 AND b = @p10";
        let out = substitute_params(
            sql,
            &[("p1".into(), Value::Int(1)), ("p10".into(), Value::Int(10))],
        );
        assert_eq!(out, "SELECT * FROM t WHERE a = 1 AND b = 10");
    }

    #[test]
    fn substitution_quotes_strings() {
        let out = substitute_params(
            "WHERE n = @name",
            &[("name".into(), Value::Str("O'Brien".into()))],
        );
        assert_eq!(out, "WHERE n = 'O''Brien'");
    }

    #[test]
    fn substitution_never_rescans_substituted_literals() {
        // A string literal containing "@q" must not be re-substituted when
        // @q is bound too (the old repeated-replace implementation did).
        let out = substitute_params(
            "SELECT @p, @q",
            &[
                ("p".into(), Value::Str("@q".into())),
                ("q".into(), Value::Int(1)),
            ],
        );
        assert_eq!(out, "SELECT '@q', 1");
    }

    #[test]
    fn substitution_leaves_unknown_placeholders_and_trailing_text() {
        let out = substitute_params("a = @p AND b = @unknown @", &[("p".into(), Value::Int(5))]);
        assert_eq!(out, "a = 5 AND b = @unknown @");
    }
}
