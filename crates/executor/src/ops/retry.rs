//! Transparent retry for idempotent remote reads.
//!
//! Remote opens (scans, ranges, bookmark fetches, pushed-down queries) are
//! read-only and deterministic, so a transient transport fault —
//! [`DhqpError::Unavailable`], [`DhqpError::Timeout`] — can be absorbed by
//! re-issuing the operation: bounded attempts, deterministic exponential
//! backoff, and an optional per-query deadline. Mid-stream faults rewind by
//! re-opening the rowset and skipping the rows already delivered (provider
//! row order is deterministic for the same request).
//!
//! Permanent errors — anything the provider said about the request itself —
//! are never retried; DML and enlisted-transaction traffic never reaches
//! this layer (the DTC owns those failure semantics, and the fault injector
//! exempts them too).

use crate::stats::{ExecCounters, RuntimeStatsCollector};
use dhqp_oledb::waits::{emit_event, has_hook, record_wait, WaitClass};
use dhqp_oledb::Rowset;
use dhqp_types::{DhqpError, Result, Row, RowBatch, Schema};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Retry knobs, threaded through the execution context like
/// [`crate::ParallelConfig`] so every remote open sees the same policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation (first try included). `1` disables
    /// retrying entirely.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per attempt after that.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Wall-clock ceiling for one attempt: a failing attempt that ran
    /// longer than this is reported as a deadline hit (and the error
    /// becomes [`DhqpError::Timeout`]).
    pub attempt_deadline: Option<Duration>,
    /// Wall-clock budget across *all* attempts of one operation; once a
    /// retry would exceed it, the operation fails with a timeout instead
    /// of backing off again.
    pub query_deadline: Option<Duration>,
}

impl RetryPolicy {
    /// Three attempts, 10 ms → 100 ms deterministic exponential backoff,
    /// no deadlines.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            attempt_deadline: None,
            query_deadline: None,
        }
    }

    /// Single attempt: transient errors surface immediately.
    pub fn no_retry() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::standard()
        }
    }

    /// [`RetryPolicy::standard`] overridden by the environment:
    /// `DHQP_RETRY_ATTEMPTS`, `DHQP_RETRY_BACKOFF_MS`,
    /// `DHQP_RETRY_MAX_BACKOFF_MS`, `DHQP_RETRY_DEADLINE_MS` (per query).
    pub fn from_env() -> Self {
        fn env_u64(name: &str) -> Option<u64> {
            std::env::var(name).ok()?.trim().parse().ok()
        }
        let mut p = RetryPolicy::standard();
        if let Some(n) = env_u64("DHQP_RETRY_ATTEMPTS") {
            p.max_attempts = (n as u32).max(1);
        }
        if let Some(ms) = env_u64("DHQP_RETRY_BACKOFF_MS") {
            p.base_backoff = Duration::from_millis(ms);
        }
        if let Some(ms) = env_u64("DHQP_RETRY_MAX_BACKOFF_MS") {
            p.max_backoff = Duration::from_millis(ms);
        }
        if let Some(ms) = env_u64("DHQP_RETRY_DEADLINE_MS") {
            p.query_deadline = Some(Duration::from_millis(ms));
        }
        p
    }

    /// Deterministic backoff before attempt `attempt + 1` (attempts are
    /// 1-based): `base * 2^(attempt-1)`, capped at `max_backoff`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::from_env()
    }
}

/// Append the give-up reason chain — attempt count, wall time burned, the
/// kind of the last underlying error and, when the operation shipped a
/// spliced predicate, that predicate's fingerprint — to a transient error
/// that exhausted its retries, preserving the variant (and hence `kind()`).
/// The base message is the last underlying error's own text, so a chaos
/// failure is diagnosable from the string alone, and the fingerprint lets
/// `sys.dm_link_health` distinguish filter-ship failures from plain scans.
fn give_up(e: DhqpError, attempts: u32, elapsed: Duration, op_tag: Option<&str>) -> DhqpError {
    let tag = op_tag.map(|t| format!("; {t}")).unwrap_or_default();
    let note = format!(
        " (giving up after {attempts} attempts in {elapsed:.1?}; last error kind: {}{tag})",
        e.kind()
    );
    match e {
        DhqpError::Unavailable(m) => DhqpError::Unavailable(m + &note),
        DhqpError::Timeout(m) => DhqpError::Timeout(m + &note),
        other => other,
    }
}

/// Shared bookkeeping for one retried operation: the attempt counter, the
/// operation's start instant, and where retries/faults are counted.
struct RetryState {
    policy: RetryPolicy,
    counters: Arc<ExecCounters>,
    stats: Option<(usize, Arc<RuntimeStatsCollector>)>,
    started: Instant,
    attempt: u32,
    /// Operation descriptor appended to the give-up reason chain (e.g. the
    /// shipped-predicate fingerprint of a semi-join-reduced open).
    op_tag: Option<String>,
}

impl RetryState {
    fn new(
        policy: RetryPolicy,
        counters: Arc<ExecCounters>,
        stats: Option<(usize, Arc<RuntimeStatsCollector>)>,
    ) -> Self {
        RetryState {
            policy,
            counters,
            stats,
            started: Instant::now(),
            attempt: 1,
            op_tag: None,
        }
    }

    /// Account one transient failure of the current attempt (which took
    /// `attempt_elapsed`) and decide: `Ok(())` to back off and retry, or
    /// the final error to surface.
    fn absorb(&mut self, error: DhqpError, attempt_elapsed: Duration) -> Result<()> {
        self.counters.add_remote_transient_error();
        let error = match self.policy.attempt_deadline {
            Some(limit) if attempt_elapsed >= limit => {
                self.counters.add_remote_deadline_hit();
                DhqpError::Timeout(format!(
                    "attempt deadline ({limit:?}) exceeded: {}",
                    error.message()
                ))
            }
            _ => error,
        };
        if self.attempt >= self.policy.max_attempts {
            return Err(give_up(
                error,
                self.attempt,
                self.started.elapsed(),
                self.op_tag.as_deref(),
            ));
        }
        let backoff = self.policy.backoff(self.attempt);
        if let Some(deadline) = self.policy.query_deadline {
            if self.started.elapsed() + backoff >= deadline {
                self.counters.add_remote_deadline_hit();
                return Err(DhqpError::Timeout(format!(
                    "query deadline ({deadline:?}) exceeded after {} attempts: {}",
                    self.attempt,
                    error.message()
                )));
            }
        }
        if has_hook() {
            emit_event(
                "retry",
                &[
                    ("attempt", self.attempt.to_string()),
                    ("backoff_ms", backoff.as_millis().to_string()),
                    ("error", error.message().to_string()),
                ],
            );
        }
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
            record_wait(WaitClass::RetryBackoff, backoff);
        }
        self.attempt += 1;
        self.counters.add_remote_retry();
        if let Some((node, collector)) = &self.stats {
            collector.record_retries(*node, 1);
        }
        Ok(())
    }
}

/// Re-opens a remote rowset from scratch. `FnMut` because a rewind can
/// re-open any number of times; `Send` because exchange workers and the
/// prefetcher move rowsets across threads.
pub type ReopenFactory = Box<dyn FnMut() -> Result<Box<dyn Rowset>> + Send>;

/// Open a remote rowset with retries, and keep retrying transparently on
/// mid-stream transient faults: the stream is re-opened and already
/// delivered rows are skipped. With `max_attempts == 1` the factory runs
/// once, unwrapped — the fault-free fast path allocates nothing extra.
pub fn open_with_retries(
    factory: ReopenFactory,
    policy: &RetryPolicy,
    counters: &Arc<ExecCounters>,
    stats: Option<(usize, Arc<RuntimeStatsCollector>)>,
) -> Result<Box<dyn Rowset>> {
    open_with_retries_batched(factory, policy, counters, stats, 1)
}

/// [`open_with_retries`] with a batch-aware rewind: a mid-stream rewind
/// fast-forwards past already-delivered rows `rewind_chunk` rows per pull
/// (whole skipped batches cross the wire as single round trips; the final
/// partial chunk is re-sliced to land exactly on the delivered count).
pub fn open_with_retries_batched(
    factory: ReopenFactory,
    policy: &RetryPolicy,
    counters: &Arc<ExecCounters>,
    stats: Option<(usize, Arc<RuntimeStatsCollector>)>,
    rewind_chunk: usize,
) -> Result<Box<dyn Rowset>> {
    open_with_retries_tagged(factory, policy, counters, stats, rewind_chunk, None)
}

/// [`open_with_retries_batched`] with an operation tag appended to any
/// give-up reason chain — how a semi-join-reduced open stamps its
/// shipped-predicate fingerprint onto the failure that reaches the health
/// registry (`sys.dm_link_health` last-error).
pub fn open_with_retries_tagged(
    mut factory: ReopenFactory,
    policy: &RetryPolicy,
    counters: &Arc<ExecCounters>,
    stats: Option<(usize, Arc<RuntimeStatsCollector>)>,
    rewind_chunk: usize,
    op_tag: Option<String>,
) -> Result<Box<dyn Rowset>> {
    if policy.max_attempts <= 1 {
        return factory();
    }
    let mut state = RetryState::new(policy.clone(), Arc::clone(counters), stats);
    state.op_tag = op_tag;
    let inner = loop {
        let attempt_started = Instant::now();
        match factory() {
            Ok(rs) => break rs,
            Err(e) if e.is_retryable() => state.absorb(e, attempt_started.elapsed())?,
            Err(e) => return Err(e),
        }
    };
    let schema = inner.schema().clone();
    Ok(Box::new(RetryRowset {
        factory,
        inner,
        schema,
        delivered: 0,
        rewind_chunk: rewind_chunk.max(1),
        state,
    }))
}

/// Run a borrowed idempotent read with retries. Unlike
/// [`open_with_retries`] the closure may borrow local state (a cached DML
/// session, say); each attempt must produce the full result, so there is
/// no mid-stream rewind here.
pub fn with_retries<T>(
    policy: &RetryPolicy,
    counters: &Arc<ExecCounters>,
    mut op: impl FnMut() -> Result<T>,
) -> Result<T> {
    if policy.max_attempts <= 1 {
        return op();
    }
    let mut state = RetryState::new(policy.clone(), Arc::clone(counters), None);
    loop {
        let attempt_started = Instant::now();
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_retryable() => state.absorb(e, attempt_started.elapsed())?,
            Err(e) => return Err(e),
        }
    }
}

/// A rowset that survives transient mid-stream faults by re-opening its
/// source and fast-forwarding past the rows it already produced.
struct RetryRowset {
    factory: ReopenFactory,
    inner: Box<dyn Rowset>,
    schema: Schema,
    /// Rows already handed to the consumer — the rewind skip count.
    delivered: u64,
    /// Chunk size for the rewind fast-forward: skipped rows are re-pulled
    /// `rewind_chunk` at a time so whole already-delivered batches cost one
    /// round trip each, and the last pull is re-sliced to the exact count.
    rewind_chunk: usize,
    state: RetryState,
}

impl RetryRowset {
    /// Re-open the stream and skip `delivered` rows. Transient faults
    /// during the rewind consume attempts from the same budget.
    fn rewind(&mut self, mut cause: DhqpError, mut attempt_elapsed: Duration) -> Result<()> {
        loop {
            self.state.absorb(cause, attempt_elapsed)?;
            let attempt_started = Instant::now();
            match self.try_reopen() {
                Ok(rs) => {
                    self.inner = rs;
                    return Ok(());
                }
                Err(e) if e.is_retryable() => {
                    cause = e;
                    attempt_elapsed = attempt_started.elapsed();
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn try_reopen(&mut self) -> Result<Box<dyn Rowset>> {
        let mut rs = (self.factory)()?;
        let mut skipped: u64 = 0;
        while skipped < self.delivered {
            let want = (self.delivered - skipped).min(self.rewind_chunk as u64) as usize;
            match rs.next_batch(want)? {
                Some(batch) => skipped += batch.len() as u64,
                None => {
                    return Err(DhqpError::Execute(format!(
                        "remote stream shrank during retry rewind ({} of {} rows)",
                        skipped, self.delivered
                    )))
                }
            }
        }
        Ok(rs)
    }
}

impl Rowset for RetryRowset {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            let attempt_started = Instant::now();
            match self.inner.next() {
                Ok(Some(row)) => {
                    self.delivered += 1;
                    return Ok(Some(row));
                }
                Ok(None) => return Ok(None),
                Err(e) if e.is_retryable() => self.rewind(e, attempt_started.elapsed())?,
                Err(e) => return Err(e),
            }
        }
    }

    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        loop {
            let attempt_started = Instant::now();
            match self.inner.next_batch(max) {
                Ok(Some(batch)) => {
                    // Delivered advances by whole batches, so a later rewind
                    // lands exactly on a batch boundary of what the consumer
                    // actually saw (a partially shipped batch was never
                    // counted and is re-pulled from scratch).
                    self.delivered += batch.len() as u64;
                    return Ok(Some(batch));
                }
                Ok(None) => return Ok(None),
                Err(e) if e.is_retryable() => self.rewind(e, attempt_started.elapsed())?,
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhqp_oledb::{MemRowset, RowsetExt};
    use dhqp_types::{Column, DataType, Value};
    use std::sync::atomic::{AtomicU32, Ordering};

    fn int_schema() -> Schema {
        Schema::new(vec![Column::not_null("x", DataType::Int)])
    }

    fn rows(n: i64) -> Vec<Row> {
        (0..n).map(|i| Row::new(vec![Value::Int(i)])).collect()
    }

    /// Ten rows, but each of the first `open_faults` opens fails and each
    /// of the first `stream_faults` streams drops after three rows.
    fn flaky_factory(open_faults: u32, stream_faults: u32) -> ReopenFactory {
        let opens = Arc::new(AtomicU32::new(0));
        Box::new(move || {
            let k = opens.fetch_add(1, Ordering::Relaxed);
            if k < open_faults {
                return Err(DhqpError::Unavailable("injected connect fault".into()));
            }
            let full: Box<dyn Rowset> = Box::new(MemRowset::new(int_schema(), rows(10)));
            if k < open_faults + stream_faults {
                Ok(Box::new(DropAfter {
                    inner: full,
                    remaining: 3,
                }))
            } else {
                Ok(full)
            }
        })
    }

    struct DropAfter {
        inner: Box<dyn Rowset>,
        remaining: usize,
    }

    impl Rowset for DropAfter {
        fn schema(&self) -> &Schema {
            self.inner.schema()
        }

        fn next(&mut self) -> Result<Option<Row>> {
            if self.remaining == 0 {
                return Err(DhqpError::Unavailable("injected stream drop".into()));
            }
            self.remaining -= 1;
            self.inner.next()
        }
    }

    fn fast() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            attempt_deadline: None,
            query_deadline: None,
        }
    }

    fn counters() -> Arc<ExecCounters> {
        Arc::new(ExecCounters::default())
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(25),
            ..RetryPolicy::standard()
        };
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(25));
        assert_eq!(p.backoff(30), Duration::from_millis(25));
    }

    #[test]
    fn transient_open_fault_is_absorbed() {
        let c = counters();
        let mut rs = open_with_retries(flaky_factory(1, 0), &fast(), &c, None).unwrap();
        assert_eq!(rs.count_rows().unwrap(), 10);
        let s = c.snapshot();
        assert_eq!(s.remote_retries, 1);
        assert_eq!(s.remote_transient_errors, 1);
    }

    #[test]
    fn mid_stream_fault_rewinds_without_duplicating_rows() {
        let c = counters();
        let mut rs = open_with_retries(flaky_factory(0, 1), &fast(), &c, None).unwrap();
        let got = rs.collect_rows().unwrap();
        assert_eq!(got.len(), 10, "no duplicates, no gaps");
        assert!(got
            .iter()
            .enumerate()
            .all(|(i, r)| r.get(0) == &Value::Int(i as i64)));
        assert_eq!(c.snapshot().remote_retries, 1);
    }

    #[test]
    fn attempts_are_bounded_and_reported() {
        let c = counters();
        let err = match open_with_retries(flaky_factory(99, 0), &fast(), &c, None) {
            Err(e) => e,
            Ok(_) => panic!("permanent flakiness must surface"),
        };
        assert_eq!(err.kind(), "unavailable");
        assert!(
            err.message().contains("giving up after 3 attempts"),
            "{err}"
        );
        // The reason chain: underlying error text, elapsed time, last kind.
        assert!(err.message().contains("injected connect fault"), "{err}");
        assert!(
            err.message().contains("last error kind: unavailable"),
            "{err}"
        );
        assert_eq!(c.snapshot().remote_transient_errors, 3);
        assert_eq!(c.snapshot().remote_retries, 2);
    }

    #[test]
    fn give_up_chain_carries_the_operation_tag() {
        let c = counters();
        let err = match open_with_retries_tagged(
            flaky_factory(99, 0),
            &fast(),
            &c,
            None,
            1,
            Some("shipped predicate fp=deadbeef keys=4".into()),
        ) {
            Err(e) => e,
            Ok(_) => panic!("permanent flakiness must surface"),
        };
        assert!(
            err.message().contains("giving up after 3 attempts"),
            "{err}"
        );
        assert!(
            err.message()
                .contains("last error kind: unavailable; shipped predicate fp=deadbeef keys=4"),
            "tag must ride the reason chain: {err}"
        );
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let c = counters();
        let factory: ReopenFactory =
            Box::new(|| Err(DhqpError::Catalog("unknown table 'nope'".into())));
        let err = match open_with_retries(factory, &fast(), &c, None) {
            Err(e) => e,
            Ok(_) => panic!(),
        };
        assert_eq!(err.kind(), "catalog");
        assert_eq!(c.snapshot().remote_retries, 0);
    }

    #[test]
    fn query_deadline_stops_retrying() {
        let c = counters();
        let policy = RetryPolicy {
            max_attempts: 100,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_millis(50),
            attempt_deadline: None,
            query_deadline: Some(Duration::from_millis(20)),
        };
        let err = match open_with_retries(flaky_factory(99, 0), &policy, &c, None) {
            Err(e) => e,
            Ok(_) => panic!(),
        };
        assert_eq!(err.kind(), "timeout");
        assert!(err.message().contains("query deadline"), "{err}");
        assert_eq!(c.snapshot().remote_deadline_hits, 1);
    }

    #[test]
    fn no_retry_policy_returns_inner_unwrapped() {
        let c = counters();
        let err = match open_with_retries(flaky_factory(1, 0), &RetryPolicy::no_retry(), &c, None) {
            Err(e) => e,
            Ok(_) => panic!("single attempt must surface the fault"),
        };
        assert_eq!(err.kind(), "unavailable");
        assert_eq!(c.snapshot().remote_transient_errors, 0);
    }

    #[test]
    fn batched_pull_rewinds_mid_batch_fault_without_duplicates() {
        // The stream drops after 3 rows — mid-way through the first 4-row
        // batch. The partial batch was never delivered, so the rewind skips
        // zero rows and the consumer still sees all 10 exactly once.
        let c = counters();
        let mut rs = open_with_retries_batched(flaky_factory(0, 1), &fast(), &c, None, 4).unwrap();
        let mut got = Vec::new();
        while let Some(batch) = rs.next_batch(4).unwrap() {
            assert!(batch.len() <= 4);
            got.extend(batch.into_rows());
        }
        assert_eq!(got.len(), 10, "no duplicates, no gaps");
        assert!(got
            .iter()
            .enumerate()
            .all(|(i, r)| r.get(0) == &Value::Int(i as i64)));
        assert_eq!(c.snapshot().remote_retries, 1);
    }

    #[test]
    fn batched_rewind_reslices_final_partial_chunk() {
        // Deliver 2 full 3-row batches (6 rows), then hit a fresh stream
        // drop on a second flaky open: the rewind must fast-forward exactly
        // 6 rows in 3-row pulls and resume at row 6.
        let opens = Arc::new(AtomicU32::new(0));
        let factory: ReopenFactory = Box::new(move || {
            let k = opens.fetch_add(1, Ordering::Relaxed);
            let full: Box<dyn Rowset> = Box::new(MemRowset::new(int_schema(), rows(10)));
            if k == 0 {
                Ok(Box::new(DropAfter {
                    inner: full,
                    remaining: 7,
                }))
            } else {
                Ok(full)
            }
        });
        let c = counters();
        let mut rs = open_with_retries_batched(factory, &fast(), &c, None, 3).unwrap();
        let mut got = Vec::new();
        while let Some(batch) = rs.next_batch(3).unwrap() {
            got.extend(batch.into_rows());
        }
        assert_eq!(got.len(), 10);
        assert!(got
            .iter()
            .enumerate()
            .all(|(i, r)| r.get(0) == &Value::Int(i as i64)));
        assert_eq!(c.snapshot().remote_retries, 1);
    }

    #[test]
    fn retries_land_on_the_node_runtime() {
        let c = counters();
        let collector = Arc::new(RuntimeStatsCollector::new());
        let mut rs = open_with_retries(
            flaky_factory(1, 1),
            &fast(),
            &c,
            Some((4, Arc::clone(&collector))),
        )
        .unwrap();
        assert_eq!(rs.count_rows().unwrap(), 10);
        assert_eq!(collector.node(4).unwrap().retries, 2);
    }
}
