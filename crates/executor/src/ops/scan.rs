//! Local access paths: table scans, index ranges, constant rowsets.

use crate::context::ExecContext;
use crate::eval::{eval_expr, RowEnv};
use dhqp_oledb::{KeyRange, Rowset};
use dhqp_optimizer::physical::IndexRangeSpec;
use dhqp_optimizer::{ColumnId, TableMeta};
use dhqp_types::{Result, Row, Value};
use std::collections::HashMap;

/// Open a sequential scan over a local base table.
pub fn open_table_scan(meta: &TableMeta, ctx: &ExecContext) -> Result<Box<dyn Rowset>> {
    let source = ctx.catalog().local();
    let mut session = source.create_session()?;
    session.open_rowset(&meta.table)
}

/// Evaluate an [`IndexRangeSpec`]'s bounds into a concrete [`KeyRange`].
/// Bound expressions are column-free in the local scope: literals, query
/// parameters or correlation bindings from an outer row.
pub fn resolve_range(spec: &IndexRangeSpec, ctx: &ExecContext) -> Result<KeyRange> {
    let empty_positions: HashMap<ColumnId, usize> = HashMap::new();
    let empty_row = Row::new(vec![]);
    let env = RowEnv {
        positions: &empty_positions,
        row: &empty_row,
        ctx,
    };
    let eval_bound = |bound: &Option<(Vec<dhqp_optimizer::ScalarExpr>, bool)>| -> Result<Option<(Vec<Value>, bool)>> {
        match bound {
            None => Ok(None),
            Some((exprs, inclusive)) => {
                let vals = exprs.iter().map(|e| eval_expr(e, &env)).collect::<Result<Vec<_>>>()?;
                Ok(Some((vals, *inclusive)))
            }
        }
    };
    Ok(KeyRange {
        low: eval_bound(&spec.low)?,
        high: eval_bound(&spec.high)?,
    })
}

/// Open a local index range access (delivers key order, carries bookmarks).
pub fn open_index_range(
    meta: &TableMeta,
    index: &str,
    spec: &IndexRangeSpec,
    ctx: &ExecContext,
) -> Result<Box<dyn Rowset>> {
    let range = resolve_range(spec, ctx)?;
    let source = ctx.catalog().local();
    let mut session = source.create_session()?;
    session.open_index(&meta.table, index, &range)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_support::TestCatalog;
    use dhqp_oledb::RowsetExt;
    use dhqp_optimizer::props::ColumnRegistry;
    use dhqp_optimizer::{Locality, ScalarExpr};
    use dhqp_storage::{StorageEngine, TableDef};
    use dhqp_types::{Column, DataType, Schema};
    use std::sync::Arc;

    fn setup() -> (ExecContext, Arc<TableMeta>) {
        let engine = Arc::new(StorageEngine::new("local"));
        engine
            .create_table(
                TableDef::new("t", Schema::new(vec![Column::not_null("k", DataType::Int)]))
                    .with_index("pk", &["k"], true),
            )
            .unwrap();
        let rows: Vec<Row> = (0..20).map(|i| Row::new(vec![Value::Int(i)])).collect();
        engine.insert_rows("t", &rows).unwrap();
        let mut reg = ColumnRegistry::new();
        let meta = dhqp_optimizer::logical::test_table_meta(
            0,
            "t",
            Locality::Local,
            &[("k", DataType::Int)],
            &mut reg,
            20,
        );
        let mut m = (*meta).clone();
        m.indexes = vec![dhqp_oledb::IndexInfo {
            name: "pk".into(),
            key_columns: vec!["k".into()],
            unique: true,
        }];
        let catalog = Arc::new(TestCatalog::with_local(engine));
        let mut params = HashMap::new();
        params.insert("lo".to_string(), Value::Int(5));
        let ctx = ExecContext::new(catalog, params, Arc::new(reg));
        (ctx, Arc::new(m))
    }

    #[test]
    fn table_scan_returns_all_rows() {
        let (ctx, meta) = setup();
        let mut rs = open_table_scan(&meta, &ctx).unwrap();
        assert_eq!(rs.count_rows().unwrap(), 20);
    }

    #[test]
    fn index_range_with_literal_and_param_bounds() {
        let (ctx, meta) = setup();
        // k in [@lo, 8]
        let spec = IndexRangeSpec {
            low: Some((vec![ScalarExpr::Param("lo".into())], true)),
            high: Some((vec![ScalarExpr::literal(Value::Int(8))], true)),
        };
        let mut rs = open_index_range(&meta, "pk", &spec, &ctx).unwrap();
        let rows = rs.collect_rows().unwrap();
        assert_eq!(rows.len(), 4); // 5,6,7,8
        assert_eq!(rows[0].get(0), &Value::Int(5));
        assert!(rows[0].bookmark.is_some(), "index rows carry bookmarks");
    }

    #[test]
    fn correlation_binding_drives_range() {
        let (ctx, meta) = setup();
        let bound_ctx = ctx.with_bindings([(99u32, Value::Int(3))].into_iter().collect());
        let spec = IndexRangeSpec::eq(vec![ScalarExpr::Column(ColumnId(99))]);
        let mut rs = open_index_range(&meta, "pk", &spec, &bound_ctx).unwrap();
        let rows = rs.collect_rows().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Value::Int(3));
    }
}
