//! Semi-join reduction: the executor half of the paper's §4.1.5 byte
//! minimization.
//!
//! The optimizer's `SemiJoinReduce` operator arrives with the *unreduced*
//! remote statement already decoded. At drive time this module drains the
//! build (local/cheap) child, collects its distinct non-NULL join keys,
//! splices them into the statement as an `IN`-list over the probe column,
//! and ships the reduced text — so only matching rows ever cross the link.
//! The reduced rows are then hash-joined back against the buffered build
//! rows, which also re-checks the full join predicate.
//!
//! Runtime fallbacks keep the reduction an optimization, never a semantic
//! change:
//! - more distinct keys than `max_keys` → ship the unreduced statement
//!   (the optimizer's cardinality estimate was wrong; an oversized
//!   `IN`-list would cost more than it saves);
//! - the reduced open exhausts its retry budget on a transient fault →
//!   re-open with the unreduced statement rather than surfacing an error
//!   (or partial results) the unreduced plan would not have had;
//! - an empty key set → answer the inner/semi join locally with zero
//!   round trips.

use crate::context::ExecContext;
use crate::ops::join::HashJoin;
use crate::ops::remote::{open_via_breaker_tagged, remote_query_text};
use crate::ops::retry::ReopenFactory;
use crate::stats::{RemoteProbe, SemiJoinTrace};
use dhqp_oledb::{MemRowset, Rowset, RowsetExt};
use dhqp_optimizer::physical::RemoteParam;
use dhqp_optimizer::{ColumnId, JoinKind, ScalarExpr};
use dhqp_types::{DhqpError, Result, Value};
use std::collections::HashSet;
use std::sync::Arc;

/// Everything the builder destructures out of a `SemiJoinReduce` plan node.
pub struct SemiJoinSpec<'a> {
    pub kind: JoinKind,
    pub build_key: ColumnId,
    pub probe_key: ColumnId,
    pub residual: Option<&'a ScalarExpr>,
    pub server: &'a str,
    pub sql: &'a str,
    pub params: &'a [RemoteParam],
    pub columns: &'a [ColumnId],
    pub max_keys: usize,
}

/// Render the reduced remote statement: wrap the (parameter-substituted)
/// base statement as a derived table and restrict the probe column to the
/// collected keys. NULL keys are dropped — `x IN (..., NULL)` can never
/// match more rows, only ship more bytes — and an empty (or all-NULL) key
/// set degenerates to the provably-empty `WHERE 1=0`.
pub fn semijoin_remote_sql(base_sql: &str, probe_column: &str, keys: &[Value]) -> String {
    let literals: Vec<String> = keys
        .iter()
        .filter(|v| !v.is_null())
        .map(Value::to_sql_literal)
        .collect();
    if literals.is_empty() {
        format!("SELECT * FROM ({base_sql}) AS [__sj] WHERE 1=0")
    } else {
        format!(
            "SELECT * FROM ({base_sql}) AS [__sj] WHERE [{probe_column}] IN ({})",
            literals.join(", ")
        )
    }
}

/// Stable 64-bit FNV-1a fingerprint of a shipped predicate, rendered as
/// 16 hex digits. Short enough for an error message, stable enough that
/// `sys.dm_link_health` can correlate repeated failures of the same
/// filter-ship shape.
pub fn predicate_fingerprint(text: &str) -> String {
    let mut hash: u64 = 0xcbf29ce484222325;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    format!("{hash:016x}")
}

/// Ship one statement to a linked server through the breaker-gated retry
/// path, tagging any give-up with the caller's operation descriptor.
fn open_shipped(
    server: &str,
    text: &str,
    op_tag: Option<String>,
    ctx: &ExecContext,
    node: usize,
) -> Result<Box<dyn Rowset>> {
    let source = ctx.catalog().linked(server)?;
    let counters = Arc::clone(ctx.counters());
    let text = text.to_string();
    let factory: ReopenFactory = Box::new(move || {
        let mut session = source.create_session()?;
        let mut command = session.create_command()?;
        command.set_text(&text)?;
        counters.add_remote_roundtrip();
        command.execute()?.into_rowset()
    });
    open_via_breaker_tagged(server, ctx, node, factory, op_tag)
}

/// Open a `SemiJoinReduce` node: collect keys from the (already opened)
/// build child, fetch the reduced remote side, and hash-join the two.
pub fn open_semijoin_reduce(
    spec: SemiJoinSpec<'_>,
    mut build: Box<dyn Rowset>,
    build_columns: &[ColumnId],
    output: &[ColumnId],
    ctx: &ExecContext,
    node: usize,
) -> Result<Box<dyn Rowset>> {
    let schema = ctx.schema_of(output);
    let key_pos = build_columns
        .iter()
        .position(|c| *c == spec.build_key)
        .ok_or_else(|| {
            DhqpError::Execute(format!(
                "semi-join build key #{} is not among the build child's outputs",
                spec.build_key.0
            ))
        })?;
    let build_rows = build.collect_rows()?;
    let mut seen = HashSet::new();
    let mut keys = Vec::new();
    for row in &build_rows {
        let v = row.get(key_pos);
        if !v.is_null() && seen.insert(v.clone()) {
            keys.push(v.clone());
        }
    }

    if keys.is_empty() {
        // No joinable build rows: an inner/semi join is empty by
        // construction. Zero round trips, zero bytes.
        ctx.counters().add_semijoin_reduction(0);
        if let Some(collector) = ctx.stats() {
            collector.record_semijoin(node, SemiJoinTrace::default());
        }
        return Ok(Box::new(MemRowset::empty(schema)));
    }

    let base = remote_query_text(spec.sql, spec.params, ctx)?;
    let probe_column = format!("c{}", spec.probe_key.0);
    // Wire-traffic attribution: SemiJoinReduce is its own remote operator,
    // and the hash build below drains the link before this function
    // returns, so the probe diff is complete at record time.
    let probe = match ctx.stats() {
        Some(_) => Some(RemoteProbe::new(
            ctx.catalog().linked(spec.server)?,
            spec.server,
            String::new(),
        )),
        None => None,
    };

    let mut trace = SemiJoinTrace {
        keys: keys.len() as u64,
        filter_bytes: 0,
        fallback: false,
    };
    let mut shipped = base.clone();
    let remote: Box<dyn Rowset> = if keys.len() <= spec.max_keys {
        let reduced = semijoin_remote_sql(&base, &probe_column, &keys);
        let filter_bytes = reduced.len().saturating_sub(base.len()) as u64;
        let tag = format!(
            "shipped predicate fp={} keys={}",
            predicate_fingerprint(&reduced),
            keys.len()
        );
        match open_shipped(spec.server, &reduced, Some(tag), ctx, node) {
            Ok(rs) => {
                trace.filter_bytes = filter_bytes;
                shipped = reduced;
                ctx.counters().add_semijoin_reduction(filter_bytes);
                rs
            }
            Err(e) if e.is_retryable() => {
                // Retry budget exhausted on the reduced open: fall back to
                // the unreduced statement. If the link is genuinely dead
                // this open fails too and the error propagates — exactly
                // what the unreduced plan would have done; the reduction
                // never turns a full answer into a partial one.
                trace.fallback = true;
                ctx.counters().add_semijoin_fallback();
                open_shipped(spec.server, &base, None, ctx, node)?
            }
            Err(e) => return Err(e),
        }
    } else {
        // More distinct keys than the splice threshold: the plan-time
        // cardinality estimate undershot, abandon the reduction.
        trace.fallback = true;
        ctx.counters().add_semijoin_fallback();
        open_shipped(spec.server, &base, None, ctx, node)?
    };

    let left: Box<dyn Rowset> = Box::new(MemRowset::new(ctx.schema_of(build_columns), build_rows));
    let left_keys = [ScalarExpr::Column(spec.build_key)];
    let right_keys = [ScalarExpr::Column(spec.probe_key)];
    let join = HashJoin::new(
        left,
        remote,
        spec.kind,
        &left_keys,
        &right_keys,
        spec.residual,
        build_columns,
        spec.columns,
        schema,
        ctx,
    )?;

    if let (Some(collector), Some(probe)) = (ctx.stats(), probe) {
        collector.record_semijoin(node, trace);
        let delta = probe
            .source
            .traffic()
            .unwrap_or_default()
            .since(&probe.start);
        let latency = probe.source.latency();
        collector.record_remote(node, spec.server, shipped, delta, latency);
    }
    Ok(Box::new(join))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_list_renders_escaped_literals_and_drops_nulls() {
        let sql = semijoin_remote_sql(
            "SELECT [a] AS [c3] FROM [t]",
            "c3",
            &[
                Value::Int(1),
                Value::Str("O'Brien".into()),
                Value::Null,
                Value::Int(2),
            ],
        );
        assert_eq!(
            sql,
            "SELECT * FROM (SELECT [a] AS [c3] FROM [t]) AS [__sj] \
             WHERE [c3] IN (1, 'O''Brien', 2)"
        );
    }

    #[test]
    fn empty_or_all_null_key_set_degenerates_to_provably_empty() {
        let base = "SELECT [a] AS [c3] FROM [t]";
        let expect = "SELECT * FROM (SELECT [a] AS [c3] FROM [t]) AS [__sj] WHERE 1=0";
        assert_eq!(semijoin_remote_sql(base, "c3", &[]), expect);
        assert_eq!(
            semijoin_remote_sql(base, "c3", &[Value::Null, Value::Null]),
            expect
        );
    }

    #[test]
    fn fingerprint_is_stable_and_shape_sensitive() {
        let a = predicate_fingerprint("WHERE [c3] IN (1, 2)");
        assert_eq!(a, predicate_fingerprint("WHERE [c3] IN (1, 2)"));
        assert_ne!(a, predicate_fingerprint("WHERE [c3] IN (1, 3)"));
        assert_eq!(a.len(), 16);
    }
}
