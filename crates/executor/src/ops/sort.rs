//! Order/limit/union/spool operators.

use crate::context::{ExecContext, SpoolData};
use crate::eval::positions_of;
use dhqp_oledb::{MemRowset, Rowset, RowsetExt};
use dhqp_optimizer::ColumnId;
use dhqp_types::{DhqpError, Result, Row, RowBatch, Schema};
use std::sync::Arc;

/// Full sort (materializing). NULLs sort first, per the engine's total
/// order.
pub fn open_sort(
    mut input: Box<dyn Rowset>,
    keys: &[(ColumnId, bool)],
    input_columns: &[ColumnId],
) -> Result<Box<dyn Rowset>> {
    let positions = positions_of(input_columns);
    let key_pos: Vec<(usize, bool)> =
        keys.iter()
            .map(|(c, asc)| {
                positions.get(c).map(|&p| (p, *asc)).ok_or_else(|| {
                    DhqpError::Execute(format!("sort key #{} missing from input", c.0))
                })
            })
            .collect::<Result<Vec<_>>>()?;
    let schema = input.schema().clone();
    let mut rows = input.collect_rows()?;
    rows.sort_by(|a, b| {
        for &(p, asc) in &key_pos {
            let o = a.values[p].total_cmp(&b.values[p]);
            if o != std::cmp::Ordering::Equal {
                return if asc { o } else { o.reverse() };
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(Box::new(MemRowset::new(schema, rows)))
}

/// First-n limiter (TOP).
pub struct TopRowset {
    inner: Box<dyn Rowset>,
    remaining: u64,
}

impl TopRowset {
    pub fn new(inner: Box<dyn Rowset>, n: u64) -> Self {
        TopRowset {
            inner,
            remaining: n,
        }
    }
}

impl Rowset for TopRowset {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next(&mut self) -> Result<Option<Row>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.inner.next()? {
            Some(row) => {
                self.remaining -= 1;
                Ok(Some(row))
            }
            None => {
                self.remaining = 0;
                Ok(None)
            }
        }
    }

    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        // Never over-pull past the limit: the child (possibly a metered
        // remote stream) only ships rows TOP will actually deliver.
        let want = (max.max(1) as u64).min(self.remaining) as usize;
        match self.inner.next_batch(want)? {
            Some(batch) => {
                self.remaining -= batch.len() as u64;
                Ok(Some(batch))
            }
            None => {
                self.remaining = 0;
                Ok(None)
            }
        }
    }
}

/// Per-branch permutations for a union: `perms[k][i]` is the position
/// within branch k's row that feeds output column i. `child_delivered[k]`
/// is branch k's actual output column order; `input_columns[k]` is the
/// column list whose i-th entry feeds output column i.
pub(crate) fn union_perms(
    child_delivered: &[Vec<ColumnId>],
    input_columns: &[Vec<ColumnId>],
) -> Result<Vec<Vec<usize>>> {
    child_delivered
        .iter()
        .zip(input_columns)
        .map(|(delivered, wanted)| {
            let pos = positions_of(delivered);
            wanted
                .iter()
                .map(|c| {
                    pos.get(c).copied().ok_or_else(|| {
                        DhqpError::Execute(format!(
                            "union input column #{} missing from child output",
                            c.0
                        ))
                    })
                })
                .collect()
        })
        .collect()
}

/// Bag union over children, permuting each child's physical column order to
/// the view's output order (children may deliver equivalent plans whose
/// column order differs).
pub struct UnionAllRowset {
    children: Vec<Box<dyn Rowset>>,
    /// `perms[k][i]`: position within child k's row feeding output column i.
    perms: Vec<Vec<usize>>,
    current: usize,
    schema: Schema,
}

impl UnionAllRowset {
    /// `child_delivered[k]` is child k's actual output column order;
    /// `input_columns[k]` is the column list whose i-th entry feeds output
    /// column i.
    pub fn new(
        children: Vec<Box<dyn Rowset>>,
        child_delivered: &[Vec<ColumnId>],
        input_columns: &[Vec<ColumnId>],
        schema: Schema,
    ) -> Result<Self> {
        let perms = union_perms(child_delivered, input_columns)?;
        Ok(UnionAllRowset {
            children,
            perms,
            current: 0,
            schema,
        })
    }
}

impl Rowset for UnionAllRowset {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>> {
        while self.current < self.children.len() {
            match self.children[self.current].next()? {
                Some(row) => {
                    let perm = &self.perms[self.current];
                    let values = perm.iter().map(|&p| row.values[p].clone()).collect();
                    return Ok(Some(Row::new(values)));
                }
                None => self.current += 1,
            }
        }
        Ok(None)
    }

    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        // Forward whole chunks from the current child (this is the serial
        // fallback of the Exchange operator, so DPV member streams ship
        // batched here too), permuting each row to the output order.
        while self.current < self.children.len() {
            match self.children[self.current].next_batch(max)? {
                Some(batch) => {
                    let perm = &self.perms[self.current];
                    let mut out = RowBatch::with_capacity(batch.len());
                    for row in batch {
                        let values = perm.iter().map(|&p| row.values[p].clone()).collect();
                        out.push(Row::new(values));
                    }
                    return Ok(Some(out));
                }
                None => self.current += 1,
            }
        }
        Ok(None)
    }
}

/// Spool: materialize the child once per query execution, replay from the
/// shared cache on every rescan — "a spool to store a copy of the remote
/// results for subsequent accesses within the same query context without
/// having to request the data from the remote sources again" (§4.1.2).
pub fn open_spool(
    key: usize,
    ctx: &ExecContext,
    open_child: impl FnOnce() -> Result<Box<dyn Rowset>>,
) -> Result<Box<dyn Rowset>> {
    let data: SpoolData = match ctx.cached_spool(key) {
        Some(d) => d,
        None => dhqp_oledb::timed_wait(dhqp_oledb::WaitClass::Spool, || {
            let mut child = open_child()?;
            let schema = child.schema().clone();
            let rows = child.collect_rows()?;
            let data: SpoolData = Arc::new((schema, rows));
            ctx.store_spool(key, Arc::clone(&data));
            Ok::<SpoolData, dhqp_types::DhqpError>(data)
        })?,
    };
    Ok(Box::new(MemRowset::new(data.0.clone(), data.1.clone())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_support::TestCatalog;
    use dhqp_optimizer::props::ColumnRegistry;
    use dhqp_storage::StorageEngine;
    use dhqp_types::{Column, DataType, Value};
    use std::collections::HashMap;

    fn ctx() -> ExecContext {
        let catalog = Arc::new(TestCatalog::with_local(Arc::new(StorageEngine::new("l"))));
        ExecContext::new(catalog, HashMap::new(), Arc::new(ColumnRegistry::new()))
    }

    fn ints(vals: &[i64]) -> Box<dyn Rowset> {
        let schema = Schema::new(vec![Column::new("v", DataType::Int)]);
        let rows = vals
            .iter()
            .map(|&i| Row::new(vec![Value::Int(i)]))
            .collect();
        Box::new(MemRowset::new(schema, rows))
    }

    #[test]
    fn sort_asc_desc_nulls_first() {
        let schema = Schema::new(vec![Column::new("v", DataType::Int)]);
        let rows = vec![
            Row::new(vec![Value::Int(3)]),
            Row::new(vec![Value::Null]),
            Row::new(vec![Value::Int(1)]),
        ];
        let input: Box<dyn Rowset> = Box::new(MemRowset::new(schema, rows));
        let mut sorted = open_sort(input, &[(ColumnId(0), true)], &[ColumnId(0)]).unwrap();
        let out = sorted.collect_rows().unwrap();
        assert!(out[0].get(0).is_null());
        assert_eq!(out[1].get(0), &Value::Int(1));
        // Descending.
        let input = ints(&[1, 3, 2]);
        let mut sorted = open_sort(input, &[(ColumnId(0), false)], &[ColumnId(0)]).unwrap();
        let out = sorted.collect_rows().unwrap();
        assert_eq!(out[0].get(0), &Value::Int(3));
    }

    #[test]
    fn top_limits() {
        let mut t = TopRowset::new(ints(&[1, 2, 3, 4]), 2);
        assert_eq!(t.count_rows().unwrap(), 2);
        let mut t = TopRowset::new(ints(&[1]), 5);
        assert_eq!(t.count_rows().unwrap(), 1);
        let mut t = TopRowset::new(ints(&[1, 2]), 0);
        assert_eq!(t.count_rows().unwrap(), 0);
    }

    #[test]
    fn union_permutes_children() {
        // Child 1 delivers (a, b); child 2 delivers (b, a) — output wants
        // each child's (a, b).
        let schema2 = Schema::new(vec![
            Column::new("x", DataType::Int),
            Column::new("y", DataType::Int),
        ]);
        let c1: Box<dyn Rowset> = Box::new(MemRowset::new(
            schema2.clone(),
            vec![Row::new(vec![Value::Int(1), Value::Int(2)])],
        ));
        let c2: Box<dyn Rowset> = Box::new(MemRowset::new(
            schema2.clone(),
            vec![Row::new(vec![Value::Int(20), Value::Int(10)])],
        ));
        let a1 = ColumnId(0);
        let b1 = ColumnId(1);
        let a2 = ColumnId(2);
        let b2 = ColumnId(3);
        let mut u = UnionAllRowset::new(
            vec![c1, c2],
            &[vec![a1, b1], vec![b2, a2]], // delivered orders
            &[vec![a1, b1], vec![a2, b2]], // wanted (i-th feeds output i)
            schema2,
        )
        .unwrap();
        let rows = u.collect_rows().unwrap();
        assert_eq!(rows[0].values, vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(rows[1].values, vec![Value::Int(10), Value::Int(20)]);
    }

    #[test]
    fn spool_materializes_once() {
        let ctx = ctx();
        let mut opens = 0;
        for _ in 0..3 {
            let mut rs = open_spool(77, &ctx, || {
                opens += 1;
                Ok(ints(&[1, 2, 3]))
            })
            .unwrap();
            assert_eq!(rs.count_rows().unwrap(), 3);
        }
        assert_eq!(opens, 1, "rescans must replay the cache");
    }
}
