//! Per-operator runtime statistics (the `EXPLAIN ANALYZE` substrate) and
//! engine-wide execution counters.
//!
//! Collection is designed to stay off the per-row hot path: each opened
//! operator accumulates its row count and cursor time in plain local fields
//! inside [`StatsRowset`] and flushes them into the shared collector exactly
//! once, on drop. The only synchronized operations happen at open/close
//! (one mutex acquisition per operator open) and the engine-level counters
//! are lock-free atomics bumped at open time, never per row.

use dhqp_oledb::{DataSource, LatencySummary, Rowset, TrafficSnapshot};
use dhqp_types::{Result, Row, Schema};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Lock-free counters shared between one engine and every execution it
/// runs. Snapshot with [`ExecCounters::snapshot`].
#[derive(Debug, Default)]
pub struct ExecCounters {
    /// Remote opens: one per `IOpenRowset`/`IRowsetIndex`/`IRowsetLocate`/
    /// command execution issued against a linked server.
    pub remote_roundtrips: AtomicU64,
    /// Spool rescans served from the in-memory cache instead of re-running
    /// (and possibly re-shipping) the child.
    pub spool_hits: AtomicU64,
    /// Spool first-time materializations.
    pub spool_builds: AtomicU64,
    /// Exchange operators that opened with parallel dispatch (the serial
    /// fallback does not count).
    pub parallel_exchanges: AtomicU64,
    /// Worker threads spawned by parallel exchanges, summed.
    pub exchange_workers: AtomicU64,
    /// Remote rowsets wrapped in a prefetching decorator.
    pub remote_prefetches: AtomicU64,
    /// Remote operations re-issued after a transient fault.
    pub remote_retries: AtomicU64,
    /// Transient (retryable) errors observed on remote operations,
    /// whether or not a retry followed.
    pub remote_transient_errors: AtomicU64,
    /// Retries abandoned because an attempt or query deadline was hit.
    pub remote_deadline_hits: AtomicU64,
    /// Remote opens rejected immediately by an open circuit breaker
    /// (no wire traffic, no retry budget burned).
    pub breaker_fast_fails: AtomicU64,
    /// DPV members skipped by degraded-mode pruning, summed over queries.
    pub members_pruned: AtomicU64,
    /// DPV members skipped by runtime startup-predicate pruning (the
    /// parameter value proved the member empty before any open).
    pub startup_members_skipped: AtomicU64,
    /// Semi-join reductions executed: remote fetches that shipped a
    /// drive-time `IN`-list of build-side join keys.
    pub semijoin_reductions: AtomicU64,
    /// Semi-join reductions abandoned at drive time (key overflow past
    /// `DHQP_SEMIJOIN_MAX_KEYS`, or a reduced open that exhausted its
    /// retries and fell back to the unreduced statement).
    pub semijoin_fallbacks: AtomicU64,
    /// Bytes of spliced `IN`-list text shipped outbound by reductions.
    pub semijoin_filter_bytes: AtomicU64,
}

impl ExecCounters {
    pub fn add_remote_roundtrip(&self) {
        self.remote_roundtrips.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_spool_hit(&self) {
        self.spool_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_spool_build(&self) {
        self.spool_builds.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_parallel_exchange(&self, workers: u64) {
        self.parallel_exchanges.fetch_add(1, Ordering::Relaxed);
        self.exchange_workers.fetch_add(workers, Ordering::Relaxed);
    }

    pub fn add_remote_prefetch(&self) {
        self.remote_prefetches.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_remote_retry(&self) {
        self.remote_retries.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_remote_transient_error(&self) {
        self.remote_transient_errors.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_remote_deadline_hit(&self) {
        self.remote_deadline_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_breaker_fast_fail(&self) {
        self.breaker_fast_fails.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_member_pruned(&self) {
        self.members_pruned.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_startup_member_skipped(&self) {
        self.startup_members_skipped.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_semijoin_reduction(&self, filter_bytes: u64) {
        self.semijoin_reductions.fetch_add(1, Ordering::Relaxed);
        self.semijoin_filter_bytes
            .fetch_add(filter_bytes, Ordering::Relaxed);
    }

    pub fn add_semijoin_fallback(&self) {
        self.semijoin_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> ExecCounterSnapshot {
        ExecCounterSnapshot {
            remote_roundtrips: self.remote_roundtrips.load(Ordering::Relaxed),
            spool_hits: self.spool_hits.load(Ordering::Relaxed),
            spool_builds: self.spool_builds.load(Ordering::Relaxed),
            parallel_exchanges: self.parallel_exchanges.load(Ordering::Relaxed),
            exchange_workers: self.exchange_workers.load(Ordering::Relaxed),
            remote_prefetches: self.remote_prefetches.load(Ordering::Relaxed),
            remote_retries: self.remote_retries.load(Ordering::Relaxed),
            remote_transient_errors: self.remote_transient_errors.load(Ordering::Relaxed),
            remote_deadline_hits: self.remote_deadline_hits.load(Ordering::Relaxed),
            breaker_fast_fails: self.breaker_fast_fails.load(Ordering::Relaxed),
            members_pruned: self.members_pruned.load(Ordering::Relaxed),
            startup_members_skipped: self.startup_members_skipped.load(Ordering::Relaxed),
            semijoin_reductions: self.semijoin_reductions.load(Ordering::Relaxed),
            semijoin_fallbacks: self.semijoin_fallbacks.load(Ordering::Relaxed),
            semijoin_filter_bytes: self.semijoin_filter_bytes.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter (`DBCC SQLPERF(..., CLEAR)` between bench phases).
    pub fn reset(&self) {
        for counter in [
            &self.remote_roundtrips,
            &self.spool_hits,
            &self.spool_builds,
            &self.parallel_exchanges,
            &self.exchange_workers,
            &self.remote_prefetches,
            &self.remote_retries,
            &self.remote_transient_errors,
            &self.remote_deadline_hits,
            &self.breaker_fast_fails,
            &self.members_pruned,
            &self.startup_members_skipped,
            &self.semijoin_reductions,
            &self.semijoin_fallbacks,
            &self.semijoin_filter_bytes,
        ] {
            counter.store(0, Ordering::Relaxed);
        }
    }
}

/// Point-in-time copy of [`ExecCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecCounterSnapshot {
    pub remote_roundtrips: u64,
    pub spool_hits: u64,
    pub spool_builds: u64,
    pub parallel_exchanges: u64,
    pub exchange_workers: u64,
    pub remote_prefetches: u64,
    pub remote_retries: u64,
    pub remote_transient_errors: u64,
    pub remote_deadline_hits: u64,
    pub breaker_fast_fails: u64,
    pub members_pruned: u64,
    pub startup_members_skipped: u64,
    pub semijoin_reductions: u64,
    pub semijoin_fallbacks: u64,
    pub semijoin_filter_bytes: u64,
}

/// What one remote plan node actually did on the wire.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RemoteTrace {
    /// Linked-server name the node talked to.
    pub server: String,
    /// Exact command text shipped (decoder-emitted SQL with parameters
    /// substituted), or a rowset-interface description for scan/range/fetch
    /// access paths.
    pub sql: String,
    /// Requests/rows/bytes attributed to this node, summed over rescans.
    pub traffic: TrafficSnapshot,
    /// Round-trip latency percentiles of the link this node crossed, as of
    /// the node's last close. Cumulative link history, not a per-node
    /// delta — percentiles of a difference are not well-defined — so this
    /// describes the wire the node used, attributed to the plan shape.
    pub link_latency: Option<LatencySummary>,
}

/// One exchange worker's lifetime, relative to its exchange's open instant
/// — the substrate for the Perfetto per-worker timeline tracks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerSpan {
    /// Microseconds from exchange open to the worker's first instruction.
    pub start_us: u64,
    /// Worker lifetime (spawn to exit), microseconds.
    pub elapsed_us: u64,
    /// Time the worker spent blocked on a full output channel, µs.
    pub send_wait_us: u64,
    /// Rows this worker produced into the channel.
    pub rows: u64,
}

/// What one parallel exchange open actually did: how many workers it ran
/// and how their busy time overlapped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExchangeRuntime {
    /// Worker threads the exchange spawned (max over rescans).
    pub workers: u64,
    /// Per-worker busy time (spawn to exit), summed over workers and opens.
    pub busy: Duration,
    /// Wall time from open to the last worker's exit, summed over opens.
    pub wall: Duration,
    /// Per-worker timelines of the last open (rescans replace, not append,
    /// so a trace renders one coherent set of tracks).
    pub worker_spans: Vec<WorkerSpan>,
}

impl ExchangeRuntime {
    /// Time saved by concurrency: how much of the workers' combined busy
    /// time ran in parallel rather than stretching the wall clock. Zero for
    /// a single worker (or a fully serialized schedule).
    pub fn overlap(&self) -> Duration {
        self.busy.saturating_sub(self.wall)
    }
}

/// What one semi-join-reduced remote fetch actually shipped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SemiJoinTrace {
    /// Distinct non-NULL build-side join keys collected at drive time.
    pub keys: u64,
    /// Bytes of spliced `IN`-list text added to the shipped statement.
    pub filter_bytes: u64,
    /// The reduction was abandoned (key overflow or a reduced open that
    /// exhausted its retries) and the unreduced statement shipped instead.
    pub fallback: bool,
}

/// Runtime facts about one plan node, keyed by its pre-order id.
#[derive(Debug, Clone, Default)]
pub struct NodeRuntime {
    /// Successful opens; values above 1 are rescans (nested-loop inners,
    /// spool replays).
    pub opens: u64,
    /// Rows produced, summed over all opens.
    pub rows: u64,
    /// Cumulative wall time spent inside this operator's `next` (includes
    /// children's time, as in SQL Server showplan).
    pub next_time: Duration,
    /// Wire activity for remote nodes.
    pub remote: Option<RemoteTrace>,
    /// Worker fan-out and overlap for parallel exchange nodes.
    pub exchange: Option<ExchangeRuntime>,
    /// Remote operations this node re-issued after transient faults.
    pub retries: u64,
    /// Drive-time key shipping for semi-join-reduction nodes.
    pub semijoin: Option<SemiJoinTrace>,
}

/// Collects per-node runtime stats for one query execution. Cheap enough
/// to attach only when `EXPLAIN ANALYZE` (or a test) asks for it.
#[derive(Debug, Default)]
pub struct RuntimeStatsCollector {
    nodes: Mutex<HashMap<usize, NodeRuntime>>,
}

impl RuntimeStatsCollector {
    pub fn new() -> Self {
        RuntimeStatsCollector::default()
    }

    pub fn record_open(&self, node: usize) {
        self.nodes
            .lock()
            .expect("stats lock")
            .entry(node)
            .or_default()
            .opens += 1;
    }

    /// Merge one operator's accumulated row count and cursor time
    /// (called once per open, from `StatsRowset::drop`).
    pub fn flush(&self, node: usize, rows: u64, next_time: Duration) {
        let mut nodes = self.nodes.lock().expect("stats lock");
        let entry = nodes.entry(node).or_default();
        entry.rows += rows;
        entry.next_time += next_time;
    }

    /// Attribute a traffic delta (and the shipped command text) to a remote
    /// node. Traffic accumulates over rescans; the text of the last open
    /// wins, which only matters for parameterized rescans where each open
    /// ships different literals.
    pub fn record_remote(
        &self,
        node: usize,
        server: &str,
        sql: String,
        delta: TrafficSnapshot,
        link_latency: Option<LatencySummary>,
    ) {
        let mut nodes = self.nodes.lock().expect("stats lock");
        let entry = nodes.entry(node).or_default();
        match &mut entry.remote {
            Some(trace) => {
                trace.traffic = trace.traffic + delta;
                trace.sql = sql;
                trace.link_latency = link_latency.or(trace.link_latency);
            }
            None => {
                entry.remote = Some(RemoteTrace {
                    server: server.to_string(),
                    sql,
                    traffic: delta,
                    link_latency,
                })
            }
        }
    }

    /// Attribute one parallel exchange run (worker count, combined busy
    /// time, wall time, per-worker timelines) to its node. Counts and times
    /// accumulate over rescans; worker spans are replaced by the last open.
    pub fn record_exchange(
        &self,
        node: usize,
        workers: u64,
        busy: Duration,
        wall: Duration,
        spans: Vec<WorkerSpan>,
    ) {
        let mut nodes = self.nodes.lock().expect("stats lock");
        let entry = nodes
            .entry(node)
            .or_default()
            .exchange
            .get_or_insert_with(ExchangeRuntime::default);
        entry.workers = entry.workers.max(workers);
        entry.busy += busy;
        entry.wall += wall;
        if !spans.is_empty() {
            entry.worker_spans = spans;
        }
    }

    /// Attribute one semi-join reduction's drive-time shipping facts to its
    /// node (the last open wins — rescans re-collect keys from scratch).
    pub fn record_semijoin(&self, node: usize, trace: SemiJoinTrace) {
        self.nodes
            .lock()
            .expect("stats lock")
            .entry(node)
            .or_default()
            .semijoin = Some(trace);
    }

    /// Attribute `n` transient-fault retries to a remote node.
    pub fn record_retries(&self, node: usize, n: u64) {
        self.nodes
            .lock()
            .expect("stats lock")
            .entry(node)
            .or_default()
            .retries += n;
    }

    /// Stats for one node, if it ever opened.
    pub fn node(&self, node: usize) -> Option<NodeRuntime> {
        self.nodes.lock().expect("stats lock").get(&node).cloned()
    }

    /// Full copy of the per-node map.
    pub fn snapshot(&self) -> HashMap<usize, NodeRuntime> {
        self.nodes.lock().expect("stats lock").clone()
    }
}

/// Pending wire-traffic attribution for a remote operator: the source's
/// counters at open time, diffed at close.
pub struct RemoteProbe {
    pub source: Arc<dyn DataSource>,
    pub server: String,
    pub sql: String,
    pub start: TrafficSnapshot,
}

impl RemoteProbe {
    pub fn new(source: Arc<dyn DataSource>, server: &str, sql: String) -> Self {
        let start = source.traffic().unwrap_or_default();
        RemoteProbe {
            source,
            server: server.to_string(),
            sql,
            start,
        }
    }
}

/// Decorator recording rows produced and cumulative `next` time for one
/// operator open. All accumulation is in local fields; the collector is
/// touched once, on drop.
pub struct StatsRowset {
    inner: Box<dyn Rowset>,
    node: usize,
    collector: Arc<RuntimeStatsCollector>,
    rows: u64,
    next_time: Duration,
    remote: Option<RemoteProbe>,
}

impl StatsRowset {
    pub fn new(
        inner: Box<dyn Rowset>,
        node: usize,
        collector: Arc<RuntimeStatsCollector>,
        remote: Option<RemoteProbe>,
    ) -> Self {
        collector.record_open(node);
        StatsRowset {
            inner,
            node,
            collector,
            rows: 0,
            next_time: Duration::ZERO,
            remote,
        }
    }
}

impl Rowset for StatsRowset {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next(&mut self) -> Result<Option<Row>> {
        let start = Instant::now();
        let row = self.inner.next();
        self.next_time += start.elapsed();
        if let Ok(Some(_)) = &row {
            self.rows += 1;
        }
        row
    }

    fn next_batch(&mut self, max: usize) -> Result<Option<dhqp_types::RowBatch>> {
        let start = Instant::now();
        let batch = self.inner.next_batch(max);
        self.next_time += start.elapsed();
        if let Ok(Some(b)) = &batch {
            // Row-accurate: EXPLAIN ANALYZE reports the same actual_rows
            // whether the operator was cursored by row or by chunk.
            self.rows += b.len() as u64;
        }
        batch
    }

    fn size_hint(&self) -> Option<usize> {
        self.inner.size_hint()
    }
}

impl Drop for StatsRowset {
    fn drop(&mut self) {
        self.collector.flush(self.node, self.rows, self.next_time);
        if let Some(probe) = self.remote.take() {
            let delta = probe
                .source
                .traffic()
                .unwrap_or_default()
                .since(&probe.start);
            let latency = probe.source.latency();
            self.collector
                .record_remote(self.node, &probe.server, probe.sql, delta, latency);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhqp_oledb::MemRowset;
    use dhqp_types::{Column, DataType, Value};

    fn three_rows() -> Box<dyn Rowset> {
        let schema = Schema::new(vec![Column::not_null("x", DataType::Int)]);
        let rows = (0..3).map(|i| Row::new(vec![Value::Int(i)])).collect();
        Box::new(MemRowset::new(schema, rows))
    }

    #[test]
    fn stats_flush_on_drop_and_accumulate_over_opens() {
        let collector = Arc::new(RuntimeStatsCollector::new());
        for _ in 0..2 {
            let mut rs = StatsRowset::new(three_rows(), 5, Arc::clone(&collector), None);
            while rs.next().unwrap().is_some() {}
        }
        let node = collector.node(5).unwrap();
        assert_eq!(node.opens, 2);
        assert_eq!(node.rows, 6);
        assert!(collector.node(99).is_none());
    }

    #[test]
    fn partial_consumption_counts_only_produced_rows() {
        let collector = Arc::new(RuntimeStatsCollector::new());
        {
            let mut rs = StatsRowset::new(three_rows(), 0, Arc::clone(&collector), None);
            rs.next().unwrap();
        }
        assert_eq!(collector.node(0).unwrap().rows, 1);
    }

    #[test]
    fn counters_snapshot() {
        let c = ExecCounters::default();
        c.add_remote_roundtrip();
        c.add_spool_build();
        c.add_spool_hit();
        c.add_spool_hit();
        let s = c.snapshot();
        assert_eq!(s.remote_roundtrips, 1);
        assert_eq!(s.spool_builds, 1);
        assert_eq!(s.spool_hits, 2);
    }
}
