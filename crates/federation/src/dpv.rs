//! Distributed partitioned views (paper §4.1.5).
//!
//! "Records in the partitioned view are distributed across the member
//! tables, each table representing a single logical partition. The range of
//! values in each member table is enforced by a CHECK constraint on a
//! column designated as the partitioning column. Each table must store a
//! disjoint range of partitioned values."

use dhqp_oledb::TableInfo;
use dhqp_types::{DhqpError, IntervalSet, Result, Value};

/// One member table of a partitioned view.
#[derive(Debug, Clone)]
pub struct MemberTable {
    /// Linked server holding the member; `None` = the local server (a
    /// *local* partitioned view member).
    pub server: Option<String>,
    pub table: String,
    /// The CHECK-constraint domain of the partitioning column.
    pub check: IntervalSet,
    /// Schema snapshot taken when the view was defined — the basis of
    /// *delayed schema validation*: compilation trusts this snapshot and
    /// execution re-verifies it.
    pub schema_snapshot: TableInfo,
}

/// A (distributed) partitioned view definition.
#[derive(Debug, Clone)]
pub struct PartitionedView {
    pub name: String,
    /// View column names, in order (shared by all members).
    pub columns: Vec<String>,
    /// Position of the partitioning column within `columns`.
    pub partition_column: usize,
    pub members: Vec<MemberTable>,
}

impl PartitionedView {
    /// Define a view, verifying the §4.1.5 rules: at least one member,
    /// consistent member schemas, and pairwise-disjoint CHECK ranges.
    pub fn define(
        name: impl Into<String>,
        partition_column: &str,
        members: Vec<MemberTable>,
    ) -> Result<Self> {
        let name = name.into();
        if members.is_empty() {
            return Err(DhqpError::Catalog(format!(
                "partitioned view '{name}' needs at least one member table"
            )));
        }
        // Column lists must agree across members (by name and type).
        let first = &members[0].schema_snapshot;
        let columns: Vec<String> = first.columns.iter().map(|c| c.name.clone()).collect();
        for m in &members[1..] {
            let cols: Vec<String> = m
                .schema_snapshot
                .columns
                .iter()
                .map(|c| c.name.clone())
                .collect();
            if cols.len() != columns.len()
                || !cols
                    .iter()
                    .zip(&columns)
                    .all(|(a, b)| a.eq_ignore_ascii_case(b))
                || m.schema_snapshot
                    .columns
                    .iter()
                    .zip(&first.columns)
                    .any(|(a, b)| a.data_type != b.data_type)
            {
                return Err(DhqpError::Catalog(format!(
                    "member '{}' of view '{name}' has a different schema",
                    m.table
                )));
            }
        }
        let partition_column_pos = columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(partition_column))
            .ok_or_else(|| {
                DhqpError::Catalog(format!(
                    "partitioning column '{partition_column}' not in view '{name}'"
                ))
            })?;
        // Disjointness: "each table must store a disjoint range".
        for (i, a) in members.iter().enumerate() {
            if a.check.is_empty() {
                return Err(DhqpError::Catalog(format!(
                    "member '{}' of view '{name}' has an empty CHECK range",
                    a.table
                )));
            }
            for b in members.iter().skip(i + 1) {
                if a.check.intersects(&b.check) {
                    return Err(DhqpError::Catalog(format!(
                        "members '{}' and '{}' of view '{name}' have overlapping CHECK ranges",
                        a.table, b.table
                    )));
                }
            }
        }
        Ok(PartitionedView {
            name,
            columns,
            partition_column: partition_column_pos,
            members,
        })
    }

    /// Route a partitioning-column value to its member table (INSERT
    /// routing). NULL and out-of-range values are constraint violations.
    pub fn route(&self, value: &Value) -> Result<usize> {
        if value.is_null() {
            return Err(DhqpError::Constraint(format!(
                "NULL partitioning value cannot be routed in view '{}'",
                self.name
            )));
        }
        self.members
            .iter()
            .position(|m| m.check.contains(value))
            .ok_or_else(|| {
                DhqpError::Constraint(format!(
                    "value {value} falls outside every partition of view '{}'",
                    self.name
                ))
            })
    }

    /// Member indexes whose ranges intersect a predicate domain — static
    /// pruning at the view level (used by DML planning; SELECT pruning
    /// happens in the optimizer's constraint framework).
    pub fn members_for_domain(&self, domain: &IntervalSet) -> Vec<usize> {
        self.members
            .iter()
            .enumerate()
            .filter(|(_, m)| m.check.intersects(domain))
            .map(|(i, _)| i)
            .collect()
    }

    /// Delayed schema validation (§4.1.5): compare a member's *current*
    /// provider metadata against the definition-time snapshot. Called at
    /// execution, never at compile time — that is the point.
    pub fn validate_member(&self, member: usize, current: &TableInfo) -> Result<()> {
        let snap = &self.members[member].schema_snapshot;
        let same =
            current.columns.len() == snap.columns.len()
                && current.columns.iter().zip(&snap.columns).all(|(a, b)| {
                    a.name.eq_ignore_ascii_case(&b.name) && a.data_type == b.data_type
                });
        if !same {
            return Err(DhqpError::SchemaDrift(format!(
                "member '{}' of view '{}' changed schema since the plan was compiled",
                self.members[member].table, self.name
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhqp_oledb::ColumnInfo;
    use dhqp_types::{DataType, Interval};

    fn member(server: Option<&str>, table: &str, lo: i64, hi: i64) -> MemberTable {
        MemberTable {
            server: server.map(str::to_string),
            table: table.to_string(),
            check: IntervalSet::single(Interval::between(Value::Int(lo), Value::Int(hi))),
            schema_snapshot: TableInfo::new(
                table,
                vec![
                    ColumnInfo::not_null("k", DataType::Int),
                    ColumnInfo::new("v", DataType::Str),
                ],
            ),
        }
    }

    fn view() -> PartitionedView {
        PartitionedView::define(
            "all_rows",
            "k",
            vec![
                member(None, "p0", 0, 9),
                member(Some("s1"), "p1", 10, 19),
                member(Some("s2"), "p2", 20, 29),
            ],
        )
        .unwrap()
    }

    #[test]
    fn define_validates_disjointness() {
        let v = view();
        assert_eq!(v.members.len(), 3);
        assert_eq!(v.partition_column, 0);
        let overlapping = PartitionedView::define(
            "bad",
            "k",
            vec![member(None, "a", 0, 10), member(None, "b", 10, 20)],
        );
        assert!(overlapping.is_err(), "touching ranges share value 10");
    }

    #[test]
    fn define_validates_schemas_and_column() {
        let mut odd = member(None, "odd", 30, 39);
        odd.schema_snapshot = TableInfo::new("odd", vec![ColumnInfo::not_null("k", DataType::Int)]);
        assert!(PartitionedView::define("v", "k", vec![member(None, "a", 0, 9), odd]).is_err());
        assert!(PartitionedView::define("v", "ghost", vec![member(None, "a", 0, 9)]).is_err());
        assert!(PartitionedView::define("v", "k", vec![]).is_err());
    }

    #[test]
    fn insert_routing() {
        let v = view();
        assert_eq!(v.route(&Value::Int(5)).unwrap(), 0);
        assert_eq!(v.route(&Value::Int(15)).unwrap(), 1);
        assert_eq!(v.route(&Value::Int(25)).unwrap(), 2);
        assert!(v.route(&Value::Int(99)).is_err());
        assert!(v.route(&Value::Null).is_err());
    }

    #[test]
    fn domain_pruning_selects_members() {
        let v = view();
        let dom = IntervalSet::single(Interval::between(Value::Int(8), Value::Int(12)));
        assert_eq!(v.members_for_domain(&dom), vec![0, 1]);
        let point = IntervalSet::point(Value::Int(22));
        assert_eq!(v.members_for_domain(&point), vec![2]);
        let nothing = IntervalSet::point(Value::Int(500));
        assert!(v.members_for_domain(&nothing).is_empty());
    }

    #[test]
    fn delayed_schema_validation_detects_drift() {
        let v = view();
        let unchanged = v.members[1].schema_snapshot.clone();
        assert!(v.validate_member(1, &unchanged).is_ok());
        let mut drifted = unchanged.clone();
        drifted.columns[1].data_type = DataType::Int;
        let err = v.validate_member(1, &drifted).unwrap_err();
        assert_eq!(err.kind(), "schema-drift");
        let mut renamed = unchanged;
        renamed.columns[1].name = "renamed".into();
        assert!(v.validate_member(1, &renamed).is_err());
    }
}
