//! Federation support: linked servers and distributed partitioned views
//! (paper §2.1, §4.1.5).
//!
//! "Linked server names associate a server name with an OLE DB data
//! source"; a distributed partitioned view "unions horizontally partitioned
//! data from a set of member tables across one or more servers, making the
//! data appear as if from one table", with per-member CHECK constraints on
//! the partitioning column feeding the constraint property framework.
//! Delayed schema validation (§4.1.5) is implemented by snapshotting member
//! schemas at definition time and re-checking them at execution, never at
//! compile time.

pub mod dpv;
pub mod linked;

pub use dpv::{MemberTable, PartitionedView};
pub use linked::LinkedServerRegistry;
