//! Linked servers: named OLE DB data sources (paper §2.1) plus the ad-hoc
//! provider factories behind `OPENROWSET`.

use dhqp_oledb::DataSource;
use dhqp_types::{DhqpError, Result};
use std::collections::HashMap;
use std::sync::Arc;

/// Factory for ad-hoc (`OPENROWSET`) connections: given the datasource
/// string (e.g. a catalog name or file path), produce a data source.
pub type AdHocFactory = Arc<dyn Fn(&str) -> Result<Arc<dyn DataSource>> + Send + Sync>;

/// The registry of linked servers and OPENROWSET provider factories.
#[derive(Default, Clone)]
pub struct LinkedServerRegistry {
    servers: HashMap<String, Arc<dyn DataSource>>,
    providers: HashMap<String, AdHocFactory>,
}

impl LinkedServerRegistry {
    pub fn new() -> Self {
        LinkedServerRegistry::default()
    }

    /// Define a linked server name → data source association
    /// (`sp_addlinkedserver`). Re-registering a name replaces the old
    /// association; callers caching metadata per server must invalidate it.
    pub fn add_linked_server(&mut self, name: &str, source: Arc<dyn DataSource>) -> Result<()> {
        self.servers.insert(name.to_lowercase(), source);
        Ok(())
    }

    pub fn drop_linked_server(&mut self, name: &str) -> Result<()> {
        self.servers
            .remove(&name.to_lowercase())
            .map(|_| ())
            .ok_or_else(|| DhqpError::Catalog(format!("no linked server '{name}'")))
    }

    /// Resolve a linked server by name.
    pub fn linked_server(&self, name: &str) -> Result<Arc<dyn DataSource>> {
        self.servers
            .get(&name.to_lowercase())
            .cloned()
            .ok_or_else(|| DhqpError::Catalog(format!("unknown linked server '{name}'")))
    }

    pub fn server_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.servers.keys().cloned().collect();
        names.sort();
        names
    }

    /// Register an OPENROWSET provider by name ('MSIDXS', 'Mail', ...).
    pub fn register_provider(&mut self, name: &str, factory: AdHocFactory) {
        self.providers.insert(name.to_lowercase(), factory);
    }

    /// Open an ad-hoc connection: `OPENROWSET('provider', 'datasource', ...)`.
    pub fn open_ad_hoc(&self, provider: &str, datasource: &str) -> Result<Arc<dyn DataSource>> {
        let factory = self
            .providers
            .get(&provider.to_lowercase())
            .ok_or_else(|| {
                DhqpError::Catalog(format!("no OLE DB provider registered as '{provider}'"))
            })?;
        factory(datasource)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhqp_storage::{LocalDataSource, StorageEngine};

    fn source(name: &str) -> Arc<dyn DataSource> {
        Arc::new(LocalDataSource::new(Arc::new(StorageEngine::new(name))))
    }

    #[test]
    fn add_resolve_drop() {
        let mut reg = LinkedServerRegistry::new();
        reg.add_linked_server("DeptSQLSrvr", source("dept"))
            .unwrap();
        assert!(
            reg.linked_server("deptsqlsrvr").is_ok(),
            "names are case-insensitive"
        );
        // Re-registration replaces the association.
        reg.add_linked_server("DEPTSQLSRVR", source("x")).unwrap();
        assert_eq!(reg.linked_server("deptsqlsrvr").unwrap().name(), "x");
        assert_eq!(reg.server_names(), vec!["deptsqlsrvr"]);
        reg.drop_linked_server("DeptSQLSrvr").unwrap();
        assert!(reg.linked_server("DeptSQLSrvr").is_err());
        assert!(reg.drop_linked_server("DeptSQLSrvr").is_err());
    }

    #[test]
    fn ad_hoc_factories() {
        let mut reg = LinkedServerRegistry::new();
        reg.register_provider(
            "MSIDXS",
            Arc::new(|ds: &str| {
                if ds == "DQLiterature" {
                    Ok(source("ft") as Arc<dyn DataSource>)
                } else {
                    Err(DhqpError::Catalog(format!("no catalog '{ds}'")))
                }
            }),
        );
        assert!(reg.open_ad_hoc("msidxs", "DQLiterature").is_ok());
        assert!(reg.open_ad_hoc("msidxs", "Other").is_err());
        assert!(reg.open_ad_hoc("unknown", "x").is_err());
    }
}
