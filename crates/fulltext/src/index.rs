//! Positional inverted index with tf-idf ranking.

use crate::stemmer::stem;
use crate::tokenizer::tokenize;
use std::collections::{BTreeMap, HashMap};

/// Postings for one term: document → word positions (ascending).
type Postings = BTreeMap<u64, Vec<u32>>;

/// A positional inverted index over documents identified by `u64` keys
/// (heap bookmarks when indexing SQL tables, document ids for file stores).
#[derive(Debug, Default)]
pub struct InvertedIndex {
    postings: HashMap<String, Postings>,
    doc_lengths: HashMap<u64, u32>,
}

impl InvertedIndex {
    pub fn new() -> Self {
        InvertedIndex::default()
    }

    /// Number of indexed documents.
    pub fn doc_count(&self) -> usize {
        self.doc_lengths.len()
    }

    /// Number of distinct indexed terms.
    pub fn term_count(&self) -> usize {
        self.postings.len()
    }

    /// Index (or re-index) one document's text.
    pub fn add_document(&mut self, doc: u64, text: &str) {
        self.remove_document(doc);
        let tokens = tokenize(text);
        self.doc_lengths.insert(doc, tokens.len() as u32);
        for t in tokens {
            self.postings
                .entry(stem(&t.term))
                .or_default()
                .entry(doc)
                .or_default()
                .push(t.position);
        }
    }

    /// Remove a document from the index (maintenance path, §2.3 "creation,
    /// update, and administration of full-text catalogs and indexes").
    pub fn remove_document(&mut self, doc: u64) {
        if self.doc_lengths.remove(&doc).is_none() {
            return;
        }
        self.postings.retain(|_, postings| {
            postings.remove(&doc);
            !postings.is_empty()
        });
    }

    /// Documents containing `term` (stemmed), with positions.
    pub fn lookup(&self, term: &str) -> Option<&Postings> {
        self.postings.get(&stem(&term.to_lowercase()))
    }

    /// Documents containing the exact phrase (consecutive positions).
    pub fn phrase_docs(&self, words: &[String]) -> BTreeMap<u64, u32> {
        let mut out = BTreeMap::new();
        if words.is_empty() {
            return out;
        }
        let Some(first) = self.lookup(&words[0]) else {
            return out;
        };
        'docs: for (&doc, first_positions) in first {
            let mut count = 0u32;
            'starts: for &start in first_positions {
                for (offset, w) in words.iter().enumerate().skip(1) {
                    let Some(postings) = self.lookup(w) else {
                        continue 'docs;
                    };
                    let Some(positions) = postings.get(&doc) else {
                        continue 'docs;
                    };
                    if !positions.contains(&(start + offset as u32)) {
                        continue 'starts;
                    }
                }
                count += 1;
            }
            if count > 0 {
                out.insert(doc, count);
            }
        }
        out
    }

    /// Documents where `a` and `b` occur within `distance` words.
    pub fn near_docs(&self, a: &str, b: &str, distance: u32) -> BTreeMap<u64, u32> {
        let mut out = BTreeMap::new();
        let (Some(pa), Some(pb)) = (self.lookup(a), self.lookup(b)) else {
            return out;
        };
        for (&doc, pos_a) in pa {
            let Some(pos_b) = pb.get(&doc) else { continue };
            let mut hits = 0u32;
            for &x in pos_a {
                if pos_b.iter().any(|&y| x.abs_diff(y) <= distance) {
                    hits += 1;
                }
            }
            if hits > 0 {
                out.insert(doc, hits);
            }
        }
        out
    }

    /// tf-idf score contribution of one term for one document, given its
    /// term frequency.
    pub fn tf_idf(&self, term: &str, doc: u64, tf: u32) -> f64 {
        let n = self.doc_count() as f64;
        let df = self.lookup(term).map(|p| p.len()).unwrap_or(0) as f64;
        if df == 0.0 || n == 0.0 {
            return 0.0;
        }
        let len = *self.doc_lengths.get(&doc).unwrap_or(&1) as f64;
        (tf as f64 / len.max(1.0)) * (1.0 + (n / df).ln())
    }

    /// All indexed documents.
    pub fn documents(&self) -> impl Iterator<Item = u64> + '_ {
        self.doc_lengths.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InvertedIndex {
        let mut ix = InvertedIndex::new();
        ix.add_document(1, "Parallel database systems run queries in parallel");
        ix.add_document(2, "Heterogeneous query processing in federated databases");
        ix.add_document(3, "The runner ran a marathon");
        ix
    }

    #[test]
    fn lookup_is_stemmed_and_case_folded() {
        let ix = sample();
        // "queries" and "query" share a stem.
        let q = ix.lookup("Queries").unwrap();
        assert!(q.contains_key(&1));
        assert!(q.contains_key(&2));
        // "databases" stems to "database".
        assert_eq!(ix.lookup("database").unwrap().len(), 2);
    }

    #[test]
    fn inflection_equivalence_run_ran_runner() {
        let ix = sample();
        let runs = ix.lookup("run").unwrap();
        assert!(runs.contains_key(&1), "'run' in doc 1");
        assert!(runs.contains_key(&3), "'runner' and 'ran' in doc 3");
    }

    #[test]
    fn phrase_requires_adjacency() {
        let ix = sample();
        let hits = ix.phrase_docs(&["parallel".into(), "database".into()]);
        assert!(hits.contains_key(&1));
        assert_eq!(hits.len(), 1);
        let none = ix.phrase_docs(&["database".into(), "parallel".into()]);
        assert!(none.is_empty(), "reversed phrase must not match");
    }

    #[test]
    fn near_within_distance() {
        let ix = sample();
        // "heterogeneous" and "processing" are 2 words apart in doc 2.
        assert!(ix
            .near_docs("heterogeneous", "processing", 2)
            .contains_key(&2));
        assert!(ix.near_docs("heterogeneous", "processing", 1).is_empty());
    }

    #[test]
    fn remove_document_cleans_postings() {
        let mut ix = sample();
        ix.remove_document(1);
        assert_eq!(ix.doc_count(), 2);
        assert!(!ix
            .lookup("parallel")
            .map(|p| p.contains_key(&1))
            .unwrap_or(false));
        // Re-adding replaces cleanly.
        ix.add_document(2, "entirely new words");
        assert!(
            ix.lookup("federated").is_none() || !ix.lookup("federated").unwrap().contains_key(&2)
        );
    }

    #[test]
    fn tf_idf_prefers_rare_terms() {
        let ix = sample();
        let rare = ix.tf_idf("marathon", 3, 1);
        let common = ix.tf_idf("database", 1, 1);
        assert!(rare > common, "rare={rare} common={common}");
        assert_eq!(ix.tf_idf("missing", 1, 1), 0.0);
    }
}
