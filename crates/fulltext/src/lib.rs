//! The full-text search service — the Microsoft Search Service analog
//! (paper §2.2–§2.3, Figure 2).
//!
//! "Given a full-text predicate, the search service determines which
//! entries in the index meet the full-text selection criteria. For each
//! entry \[it\] returns an OLE DB Rowset containing the identity of the row
//! whose columns match the search criteria, and a ranking value."
//!
//! Pieces:
//! * [`tokenizer`] + [`stemmer`] — word extraction and inflection folding
//!   ("'runner', 'run', and 'ran' can all be equivalent").
//! * [`index`] — positional inverted index with tf-idf ranking.
//! * [`query`] — the Index-Server-style query language: words, "phrases",
//!   AND/OR/NOT, NEAR proximity.
//! * [`service`] — catalogs over document stores, with IFilter-style text
//!   extractors per document type.
//! * [`provider`] — the `MSIDXS` OLE DB-style provider: a *query provider
//!   with proprietary syntax* (§3.3), reachable only via pass-through
//!   command text, returning (key, rank) rowsets the relational engine
//!   joins back to base tables.

pub mod index;
pub mod provider;
pub mod query;
pub mod service;
pub mod stemmer;
pub mod tokenizer;

pub use index::InvertedIndex;
pub use provider::FullTextProvider;
pub use query::FtQuery;
pub use service::{Document, FullTextCatalog, SearchService};
