//! The `MSIDXS` OLE DB-style provider over the search service.
//!
//! This is the paper's canonical *query provider with proprietary syntax*
//! (§3.3): it has a command object, but its language is the Index-Server
//! dialect, so the DHQP can only pass queries through (`OPENROWSET` /
//! `OPENQUERY`), never compose SQL for it. Commands look like the §2.2
//! example:
//!
//! ```text
//! Select Path, FileName, size, Write from SCOPE()
//! where CONTAINS('"Parallel database" OR "heterogeneous query"')
//! ```

use crate::service::SearchService;
use dhqp_oledb::{
    ColumnInfo, Command, CommandResult, DataSource, MemRowset, ProviderCapabilities, Rowset,
    Session, SqlSupport, TableInfo,
};
use dhqp_types::{Column, DataType, DhqpError, Result, Row, Schema, Value};
use std::sync::Arc;

/// Columns exposed by a scope query.
const SCOPE_COLUMNS: &[(&str, DataType)] = &[
    ("path", DataType::Str),
    ("directory", DataType::Str),
    ("filename", DataType::Str),
    ("size", DataType::Int),
    ("create", DataType::Date),
    ("write", DataType::Date),
    ("rank", DataType::Int),
    ("doc_id", DataType::Int),
];

/// An OLE DB-style data source over one full-text catalog.
pub struct FullTextProvider {
    service: Arc<SearchService>,
    catalog: String,
}

impl FullTextProvider {
    pub fn new(service: Arc<SearchService>, catalog: impl Into<String>) -> Self {
        FullTextProvider {
            service,
            catalog: catalog.into(),
        }
    }

    pub fn service(&self) -> &Arc<SearchService> {
        &self.service
    }
}

impl DataSource for FullTextProvider {
    fn name(&self) -> &str {
        &self.catalog
    }

    fn capabilities(&self) -> ProviderCapabilities {
        ProviderCapabilities {
            provider_name: "MSIDXS".into(),
            sql_support: SqlSupport::None,
            proprietary_command: true,
            index_support: false,
            statistics_support: false,
            transaction_support: false,
            dialect: Default::default(),
            latency_hint_us: 200,
        }
    }

    fn tables(&self) -> Result<Vec<TableInfo>> {
        // The catalog's document listing is exposed as one named rowset.
        let cardinality = self
            .service
            .with_catalog(&self.catalog, |c| c.doc_count() as u64)?;
        Ok(vec![TableInfo {
            name: "SCOPE".into(),
            columns: SCOPE_COLUMNS
                .iter()
                .map(|(n, t)| ColumnInfo::new(*n, *t))
                .collect(),
            indexes: Vec::new(),
            cardinality: Some(cardinality),
        }])
    }

    fn create_session(&self) -> Result<Box<dyn Session>> {
        Ok(Box::new(FtSession {
            service: Arc::clone(&self.service),
            catalog: self.catalog.clone(),
        }))
    }
}

struct FtSession {
    service: Arc<SearchService>,
    catalog: String,
}

impl Session for FtSession {
    fn open_rowset(&mut self, table: &str) -> Result<Box<dyn Rowset>> {
        if !table.eq_ignore_ascii_case("scope") {
            return Err(DhqpError::Catalog(format!(
                "full-text provider exposes only SCOPE, not '{table}'"
            )));
        }
        // Unfiltered listing: every document, rank 0.
        let rows = self.service.with_catalog(&self.catalog, |cat| {
            cat.documents_iter()
                .map(|d| doc_row(d, 0, SCOPE_COLUMNS))
                .collect::<Vec<Row>>()
        })?;
        Ok(Box::new(MemRowset::new(scope_schema(SCOPE_COLUMNS), rows)))
    }

    fn create_command(&mut self) -> Result<Box<dyn Command>> {
        Ok(Box::new(FtCommand {
            service: Arc::clone(&self.service),
            catalog: self.catalog.clone(),
            text: None,
        }))
    }
}

struct FtCommand {
    service: Arc<SearchService>,
    catalog: String,
    text: Option<String>,
}

impl Command for FtCommand {
    fn set_text(&mut self, text: &str) -> Result<()> {
        self.text = Some(text.to_string());
        Ok(())
    }

    fn execute(&mut self) -> Result<CommandResult> {
        let text = self
            .text
            .as_deref()
            .ok_or_else(|| DhqpError::Provider("full-text command has no text".into()))?;
        let (columns, query) = parse_scope_query(text)?;
        let hits = self.service.query_keys(&self.catalog, &query)?;
        let rows = self.service.with_catalog(&self.catalog, |cat| {
            hits.iter()
                .map(|&(id, rank)| match cat.document(id) {
                    Some(d) => doc_row(d, rank, &columns),
                    // Row-keyed (relational) catalogs have no document
                    // metadata; emit id + rank only.
                    None => Row::new(
                        columns
                            .iter()
                            .map(|(n, _)| match *n {
                                "rank" => Value::Int(rank),
                                "doc_id" => Value::Int(id as i64),
                                _ => Value::Null,
                            })
                            .collect(),
                    ),
                })
                .collect::<Vec<Row>>()
        })?;
        Ok(CommandResult::Rowset(Box::new(MemRowset::new(
            scope_schema(&columns),
            rows,
        ))))
    }
}

fn scope_schema(columns: &[(&str, DataType)]) -> Schema {
    Schema::new(columns.iter().map(|(n, t)| Column::new(*n, *t)).collect())
}

fn doc_row(d: &crate::service::Document, rank: i64, columns: &[(&str, DataType)]) -> Row {
    let values = columns
        .iter()
        .map(|(name, _)| match *name {
            "path" => Value::Str(d.path.clone()),
            "directory" => {
                let dir = d
                    .path
                    .rfind(['/', '\\'])
                    .map(|i| d.path[..i].to_string())
                    .unwrap_or_default();
                Value::Str(dir)
            }
            "filename" => Value::Str(d.file_name().to_string()),
            "size" => Value::Int(d.size as i64),
            "create" => Value::Date(d.created),
            "write" => Value::Date(d.modified),
            "rank" => Value::Int(rank),
            "doc_id" => Value::Int(d.id as i64),
            _ => Value::Null,
        })
        .collect();
    Row::with_bookmark(values, d.id)
}

/// Parse the Index-Server-ish command text: column list between SELECT and
/// FROM, and the CONTAINS('...') query string.
fn parse_scope_query(text: &str) -> Result<(Vec<(&'static str, DataType)>, String)> {
    let upper = text.to_uppercase();
    let select_pos = upper
        .find("SELECT")
        .ok_or_else(|| DhqpError::Parse("full-text command must start with SELECT".into()))?;
    let from_pos = upper
        .find("FROM")
        .ok_or_else(|| DhqpError::Parse("full-text command missing FROM SCOPE()".into()))?;
    if !upper[from_pos..]
        .trim_start_matches("FROM")
        .trim_start()
        .starts_with("SCOPE()")
    {
        return Err(DhqpError::Parse(
            "full-text command must select FROM SCOPE()".into(),
        ));
    }
    let col_text = &text[select_pos + 6..from_pos];
    let mut columns = Vec::new();
    for raw in col_text.split(',') {
        let name = raw.trim().to_lowercase();
        if name == "*" {
            columns = SCOPE_COLUMNS.to_vec();
            break;
        }
        let known = SCOPE_COLUMNS
            .iter()
            .find(|(n, _)| *n == name)
            .ok_or_else(|| DhqpError::Parse(format!("unknown SCOPE column '{name}'")))?;
        columns.push(*known);
    }
    if columns.is_empty() {
        return Err(DhqpError::Parse(
            "full-text command selects no columns".into(),
        ));
    }
    // Extract CONTAINS('...') — quotes inside are already unescaped by the
    // outer SQL parser when this arrived via OPENROWSET.
    let contains_pos = upper
        .find("CONTAINS(")
        .ok_or_else(|| DhqpError::Parse("full-text command missing CONTAINS(...)".into()))?;
    let after = &text[contains_pos + "CONTAINS(".len()..];
    let open = after
        .find('\'')
        .ok_or_else(|| DhqpError::Parse("CONTAINS argument must be a quoted string".into()))?;
    let rest = &after[open + 1..];
    // The argument may itself contain doubled quotes ('' → ').
    let mut query = String::new();
    let mut chars = rest.chars().peekable();
    loop {
        match chars.next() {
            Some('\'') => {
                if chars.peek() == Some(&'\'') {
                    query.push('\'');
                    chars.next();
                } else {
                    break;
                }
            }
            Some(c) => query.push(c),
            None => {
                return Err(DhqpError::Parse("unterminated CONTAINS argument".into()));
            }
        }
    }
    Ok((columns, query))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Document;
    use dhqp_oledb::RowsetExt;

    fn provider() -> FullTextProvider {
        let svc = Arc::new(SearchService::new());
        svc.create_catalog("DQLiterature").unwrap();
        for (path, body) in [
            ("d:\\lit\\parallel.txt", "parallel database systems"),
            ("d:\\lit\\hetero.txt", "heterogeneous query processing"),
            ("d:\\lit\\other.txt", "unrelated cooking text"),
        ] {
            svc.index_document(
                "DQLiterature",
                Document {
                    id: 0,
                    path: path.into(),
                    doc_type: "txt".into(),
                    raw: body.into(),
                    size: body.len() as u64,
                    created: 9000,
                    modified: 9001,
                },
            )
            .unwrap();
        }
        FullTextProvider::new(svc, "DQLiterature")
    }

    #[test]
    fn capability_class_is_pass_through() {
        let p = provider();
        assert_eq!(
            p.capabilities().class(),
            dhqp_oledb::ProviderClass::QueryPassThrough
        );
        assert!(p.capabilities().has_command());
    }

    #[test]
    fn paper_2_2_command_executes() {
        let p = provider();
        let mut s = p.create_session().unwrap();
        let mut cmd = s.create_command().unwrap();
        cmd.set_text(
            "Select Path, Directory, FileName, size, Create, Write from SCOPE() \
             where CONTAINS('\"Parallel database\" OR \"heterogeneous query\"')",
        )
        .unwrap();
        let mut rs = cmd.execute().unwrap().into_rowset().unwrap();
        assert_eq!(rs.schema().len(), 6);
        let rows = rs.collect_rows().unwrap();
        assert_eq!(rows.len(), 2);
        assert!(matches!(rows[0].get(0), Value::Str(p) if p.contains("d:\\lit")));
    }

    #[test]
    fn rank_column_and_ordering() {
        let p = provider();
        let mut s = p.create_session().unwrap();
        let mut cmd = s.create_command().unwrap();
        cmd.set_text("SELECT path, rank FROM SCOPE() WHERE CONTAINS('database OR query')")
            .unwrap();
        let mut rs = cmd.execute().unwrap().into_rowset().unwrap();
        let rows = rs.collect_rows().unwrap();
        assert!(!rows.is_empty());
        let ranks: Vec<i64> = rows
            .iter()
            .map(|r| match r.get(1) {
                Value::Int(i) => *i,
                other => panic!("rank should be int, got {other}"),
            })
            .collect();
        let mut sorted = ranks.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(ranks, sorted, "results come back rank-descending");
    }

    #[test]
    fn open_rowset_lists_scope() {
        let p = provider();
        let mut s = p.create_session().unwrap();
        let mut rs = s.open_rowset("SCOPE").unwrap();
        assert_eq!(rs.count_rows().unwrap(), 3);
        assert!(s.open_rowset("other").is_err());
    }

    #[test]
    fn command_text_errors() {
        let p = provider();
        let mut s = p.create_session().unwrap();
        let mut cmd = s.create_command().unwrap();
        cmd.set_text("SELECT nope FROM SCOPE() WHERE CONTAINS('x')")
            .unwrap();
        assert!(cmd.execute().is_err());
        cmd.set_text("SELECT path FROM elsewhere WHERE CONTAINS('x')")
            .unwrap();
        assert!(cmd.execute().is_err());
        cmd.set_text("SELECT path FROM SCOPE()").unwrap();
        assert!(cmd.execute().is_err());
    }
}
