//! The full-text query language: the Index Server dialect of Table 1.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! expr    := or
//! or      := and (OR and)*
//! and     := unary ((AND)? unary)*        -- adjacency is implicit AND
//! unary   := NOT unary | primary
//! primary := "phrase words" | word NEAR word | word | ( expr )
//! ```

use crate::index::InvertedIndex;
use dhqp_types::{DhqpError, Result};
use std::collections::BTreeMap;

/// Parsed full-text query.
#[derive(Debug, Clone, PartialEq)]
pub enum FtQuery {
    Word(String),
    Phrase(Vec<String>),
    Near {
        left: String,
        right: String,
        distance: u32,
    },
    And(Vec<FtQuery>),
    Or(Vec<FtQuery>),
    Not(Box<FtQuery>),
}

impl FtQuery {
    /// Parse query text.
    pub fn parse(text: &str) -> Result<FtQuery> {
        let tokens = lex(text)?;
        let mut p = QParser { tokens, pos: 0 };
        let q = p.parse_or()?;
        if p.pos != p.tokens.len() {
            return Err(DhqpError::Parse(format!(
                "unexpected trailing token in full-text query: {:?}",
                p.tokens[p.pos]
            )));
        }
        Ok(q)
    }

    /// Evaluate against an index, producing `doc → rank` (descending rank
    /// is the provider's job). A bare NOT is rejected: negation only
    /// restricts a positive query.
    pub fn evaluate(&self, index: &InvertedIndex) -> Result<BTreeMap<u64, f64>> {
        match self {
            FtQuery::Word(w) => {
                let mut out = BTreeMap::new();
                if let Some(postings) = index.lookup(w) {
                    for (&doc, positions) in postings {
                        out.insert(doc, index.tf_idf(w, doc, positions.len() as u32));
                    }
                }
                Ok(out)
            }
            FtQuery::Phrase(words) => {
                let mut out = BTreeMap::new();
                for (doc, tf) in index.phrase_docs(words) {
                    // Score a phrase by its rarest word, scaled by hits.
                    let score = words
                        .iter()
                        .map(|w| index.tf_idf(w, doc, tf))
                        .fold(f64::INFINITY, f64::min);
                    out.insert(doc, if score.is_finite() { score * 1.5 } else { 0.0 });
                }
                Ok(out)
            }
            FtQuery::Near {
                left,
                right,
                distance,
            } => {
                let mut out = BTreeMap::new();
                for (doc, hits) in index.near_docs(left, right, *distance) {
                    let score = index.tf_idf(left, doc, hits) + index.tf_idf(right, doc, hits);
                    out.insert(doc, score);
                }
                Ok(out)
            }
            FtQuery::And(parts) => {
                let mut positives: Vec<BTreeMap<u64, f64>> = Vec::new();
                let mut negatives: Vec<BTreeMap<u64, f64>> = Vec::new();
                for part in parts {
                    match part {
                        FtQuery::Not(inner) => negatives.push(inner.evaluate(index)?),
                        other => positives.push(other.evaluate(index)?),
                    }
                }
                if positives.is_empty() {
                    return Err(DhqpError::Parse(
                        "full-text query must contain at least one positive term".into(),
                    ));
                }
                let mut acc = positives.remove(0);
                for p in positives {
                    acc = acc
                        .into_iter()
                        .filter_map(|(doc, s)| p.get(&doc).map(|s2| (doc, s + s2)))
                        .collect();
                }
                for n in negatives {
                    acc.retain(|doc, _| !n.contains_key(doc));
                }
                Ok(acc)
            }
            FtQuery::Or(parts) => {
                let mut acc: BTreeMap<u64, f64> = BTreeMap::new();
                for part in parts {
                    for (doc, s) in part.evaluate(index)? {
                        *acc.entry(doc).or_insert(0.0) += s;
                    }
                }
                Ok(acc)
            }
            FtQuery::Not(_) => Err(DhqpError::Parse(
                "full-text NOT must be combined with a positive term".into(),
            )),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum QToken {
    Word(String),
    Phrase(Vec<String>),
    And,
    Or,
    Not,
    Near,
    LParen,
    RParen,
}

fn lex(text: &str) -> Result<Vec<QToken>> {
    let mut out = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '(' {
            chars.next();
            out.push(QToken::LParen);
        } else if c == ')' {
            chars.next();
            out.push(QToken::RParen);
        } else if c == '"' {
            chars.next();
            let mut phrase = String::new();
            loop {
                match chars.next() {
                    Some('"') => break,
                    Some(ch) => phrase.push(ch),
                    None => {
                        return Err(DhqpError::Parse(
                            "unterminated phrase in full-text query".into(),
                        ))
                    }
                }
            }
            let words: Vec<String> = crate::tokenizer::tokenize(&phrase)
                .into_iter()
                .map(|t| t.term)
                .collect();
            if words.is_empty() {
                return Err(DhqpError::Parse("empty phrase in full-text query".into()));
            }
            out.push(QToken::Phrase(words));
        } else if c.is_alphanumeric() {
            let mut word = String::new();
            while let Some(&ch) = chars.peek() {
                if ch.is_alphanumeric() || ch == '\'' {
                    word.push(ch);
                    chars.next();
                } else {
                    break;
                }
            }
            out.push(match word.to_ascii_uppercase().as_str() {
                "AND" => QToken::And,
                "OR" => QToken::Or,
                "NOT" => QToken::Not,
                "NEAR" => QToken::Near,
                _ => QToken::Word(word.to_lowercase()),
            });
        } else {
            return Err(DhqpError::Parse(format!(
                "unexpected character '{c}' in full-text query"
            )));
        }
    }
    Ok(out)
}

struct QParser {
    tokens: Vec<QToken>,
    pos: usize,
}

impl QParser {
    fn peek(&self) -> Option<&QToken> {
        self.tokens.get(self.pos)
    }

    fn parse_or(&mut self) -> Result<FtQuery> {
        let mut parts = vec![self.parse_and()?];
        while self.peek() == Some(&QToken::Or) {
            self.pos += 1;
            parts.push(self.parse_and()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            FtQuery::Or(parts)
        })
    }

    fn parse_and(&mut self) -> Result<FtQuery> {
        let mut parts = vec![self.parse_unary()?];
        loop {
            match self.peek() {
                Some(&QToken::And) => {
                    self.pos += 1;
                    parts.push(self.parse_unary()?);
                }
                // Implicit AND between adjacent terms.
                Some(&QToken::Word(_))
                | Some(&QToken::Phrase(_))
                | Some(&QToken::Not)
                | Some(&QToken::LParen) => {
                    parts.push(self.parse_unary()?);
                }
                _ => break,
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            FtQuery::And(parts)
        })
    }

    fn parse_unary(&mut self) -> Result<FtQuery> {
        if self.peek() == Some(&QToken::Not) {
            self.pos += 1;
            return Ok(FtQuery::Not(Box::new(self.parse_unary()?)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<FtQuery> {
        match self.tokens.get(self.pos).cloned() {
            Some(QToken::Word(w)) => {
                self.pos += 1;
                if self.peek() == Some(&QToken::Near) {
                    self.pos += 1;
                    let Some(QToken::Word(right)) = self.tokens.get(self.pos).cloned() else {
                        return Err(DhqpError::Parse("NEAR requires a word on each side".into()));
                    };
                    self.pos += 1;
                    return Ok(FtQuery::Near {
                        left: w,
                        right,
                        distance: 8,
                    });
                }
                Ok(FtQuery::Word(w))
            }
            Some(QToken::Phrase(words)) => {
                self.pos += 1;
                Ok(FtQuery::Phrase(words))
            }
            Some(QToken::LParen) => {
                self.pos += 1;
                let inner = self.parse_or()?;
                if self.tokens.get(self.pos) != Some(&QToken::RParen) {
                    return Err(DhqpError::Parse("missing ')' in full-text query".into()));
                }
                self.pos += 1;
                Ok(inner)
            }
            other => Err(DhqpError::Parse(format!(
                "expected word, phrase or '(' in full-text query, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> InvertedIndex {
        let mut ix = InvertedIndex::new();
        ix.add_document(1, "Parallel database systems and query processing");
        ix.add_document(2, "Heterogeneous query processing in federated systems");
        ix.add_document(3, "Cooking recipes for pasta");
        ix
    }

    #[test]
    fn paper_query_phrase_or_phrase() {
        // The §2.2 example: "Parallel database" OR "heterogeneous query".
        let q = FtQuery::parse("\"Parallel database\" OR \"heterogeneous query\"").unwrap();
        let hits = q.evaluate(&index()).unwrap();
        assert!(hits.contains_key(&1));
        assert!(hits.contains_key(&2));
        assert!(!hits.contains_key(&3));
    }

    #[test]
    fn implicit_and() {
        let q = FtQuery::parse("query processing").unwrap();
        assert!(matches!(q, FtQuery::And(_)));
        let hits = q.evaluate(&index()).unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn not_restricts() {
        let q = FtQuery::parse("query AND NOT federated").unwrap();
        let hits = q.evaluate(&index()).unwrap();
        assert!(hits.contains_key(&1));
        assert!(!hits.contains_key(&2));
        // Bare NOT is invalid.
        assert!(FtQuery::parse("NOT pasta")
            .unwrap()
            .evaluate(&index())
            .is_err());
    }

    #[test]
    fn near_and_parens() {
        let q = FtQuery::parse("(query NEAR processing) OR pasta").unwrap();
        let hits = q.evaluate(&index()).unwrap();
        assert!(hits.contains_key(&1));
        assert!(hits.contains_key(&2));
        assert!(hits.contains_key(&3));
    }

    #[test]
    fn ranking_orders_by_relevance() {
        let mut ix = InvertedIndex::new();
        ix.add_document(1, "database database database and more");
        ix.add_document(
            2,
            "a database appears once in this long text about many things",
        );
        let q = FtQuery::parse("database").unwrap();
        let hits = q.evaluate(&ix).unwrap();
        assert!(hits[&1] > hits[&2]);
    }

    #[test]
    fn parse_errors() {
        assert!(FtQuery::parse("\"unterminated").is_err());
        assert!(FtQuery::parse("()").is_err());
        assert!(FtQuery::parse("a OR").is_err());
        assert!(FtQuery::parse("a NEAR \"phrase\"").is_err());
        assert!(FtQuery::parse("\"\"").is_err());
    }
}
