//! The search service: catalogs, document stores and IFilter-style text
//! extraction (paper §2.2–§2.3).
//!
//! "Users need to setup a full-text catalog/index first [...] For all
//! third-party document types, one needs to install necessary IFilters. The
//! IFilter is an interface for retrieving text and properties out of
//! documents."

use crate::index::InvertedIndex;
use crate::query::FtQuery;
use dhqp_types::{DhqpError, Result};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};

/// A document registered in a catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    pub id: u64,
    /// File-system path.
    pub path: String,
    /// Lowercased extension used to pick an IFilter ("txt", "html", ...).
    pub doc_type: String,
    /// Raw (pre-filter) content.
    pub raw: String,
    pub size: u64,
    /// Days since epoch.
    pub created: i32,
    pub modified: i32,
}

impl Document {
    pub fn file_name(&self) -> &str {
        self.path.rsplit(['/', '\\']).next().unwrap_or(&self.path)
    }
}

/// IFilter analog: extracts indexable text from one document format.
pub trait IFilter: Send + Sync {
    fn extract(&self, raw: &str) -> String;
}

/// Plain text passes through.
pub struct PlainTextFilter;

impl IFilter for PlainTextFilter {
    fn extract(&self, raw: &str) -> String {
        raw.to_string()
    }
}

/// Strips `<tags>` and unescapes a few entities.
pub struct HtmlFilter;

impl IFilter for HtmlFilter {
    fn extract(&self, raw: &str) -> String {
        let mut out = String::with_capacity(raw.len());
        let mut in_tag = false;
        for c in raw.chars() {
            match c {
                '<' => in_tag = true,
                '>' => {
                    in_tag = false;
                    out.push(' ');
                }
                c if !in_tag => out.push(c),
                _ => {}
            }
        }
        out.replace("&amp;", "&")
            .replace("&lt;", "<")
            .replace("&gt;", ">")
            .replace("&nbsp;", " ")
    }
}

/// Strips Markdown syntax characters.
pub struct MarkdownFilter;

impl IFilter for MarkdownFilter {
    fn extract(&self, raw: &str) -> String {
        raw.chars()
            .map(|c| {
                if matches!(c, '#' | '*' | '`' | '_' | '[' | ']' | '(' | ')') {
                    ' '
                } else {
                    c
                }
            })
            .collect()
    }
}

/// One full-text catalog: an index over a document collection (or over the
/// rows of a SQL table, where the "document id" is the row's bookmark).
#[derive(Default)]
pub struct FullTextCatalog {
    pub name: String,
    index: InvertedIndex,
    documents: BTreeMap<u64, Document>,
    next_id: u64,
}

impl FullTextCatalog {
    pub fn new(name: impl Into<String>) -> Self {
        FullTextCatalog {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Index text for a row key directly (the §2.3 relational path: the
    /// caller extracts the column text and keys by row identity).
    pub fn index_row(&mut self, key: u64, text: &str) {
        self.index.add_document(key, text);
    }

    /// Drop a row from the index (maintenance on UPDATE/DELETE).
    pub fn remove_row(&mut self, key: u64) {
        self.index.remove_document(key);
        self.documents.remove(&key);
    }

    pub fn doc_count(&self) -> usize {
        self.index.doc_count()
    }

    pub fn document(&self, id: u64) -> Option<&Document> {
        self.documents.get(&id)
    }

    /// All registered documents in id order.
    pub fn documents_iter(&self) -> impl Iterator<Item = &Document> + '_ {
        self.documents.values()
    }

    /// Evaluate a query, ranked descending; rank scaled to 0..=1000 like
    /// the search service's rank column.
    pub fn query(&self, text: &str) -> Result<Vec<(u64, i64)>> {
        let q = FtQuery::parse(text)?;
        let scores = q.evaluate(&self.index)?;
        let max = scores.values().cloned().fold(0.0f64, f64::max);
        let mut ranked: Vec<(u64, i64)> = scores
            .into_iter()
            .map(|(doc, s)| {
                (
                    doc,
                    if max > 0.0 {
                        (s / max * 1000.0) as i64
                    } else {
                        0
                    },
                )
            })
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        Ok(ranked)
    }
}

/// The search service: named catalogs plus the installed IFilter registry.
pub struct SearchService {
    catalogs: RwLock<HashMap<String, FullTextCatalog>>,
    filters: HashMap<String, Box<dyn IFilter>>,
}

impl Default for SearchService {
    fn default() -> Self {
        Self::new()
    }
}

impl SearchService {
    /// A service with the standard filters installed (txt, log, html, md).
    pub fn new() -> Self {
        let mut filters: HashMap<String, Box<dyn IFilter>> = HashMap::new();
        filters.insert("txt".into(), Box::new(PlainTextFilter));
        filters.insert("log".into(), Box::new(PlainTextFilter));
        filters.insert("html".into(), Box::new(HtmlFilter));
        filters.insert("htm".into(), Box::new(HtmlFilter));
        filters.insert("md".into(), Box::new(MarkdownFilter));
        SearchService {
            catalogs: RwLock::new(HashMap::new()),
            filters,
        }
    }

    /// Install an additional IFilter for a document type.
    pub fn install_filter(&mut self, doc_type: &str, filter: Box<dyn IFilter>) {
        self.filters.insert(doc_type.to_lowercase(), filter);
    }

    pub fn create_catalog(&self, name: &str) -> Result<()> {
        let mut catalogs = self.catalogs.write();
        if catalogs.contains_key(&name.to_lowercase()) {
            return Err(DhqpError::Catalog(format!(
                "full-text catalog '{name}' already exists"
            )));
        }
        catalogs.insert(name.to_lowercase(), FullTextCatalog::new(name));
        Ok(())
    }

    pub fn has_catalog(&self, name: &str) -> bool {
        self.catalogs.read().contains_key(&name.to_lowercase())
    }

    /// Index one document into a catalog, running it through the installed
    /// IFilter for its type. Unknown types fail, as in the real service.
    pub fn index_document(&self, catalog: &str, mut doc: Document) -> Result<u64> {
        let filter = self
            .filters
            .get(&doc.doc_type.to_lowercase())
            .ok_or_else(|| {
                DhqpError::Unsupported(format!(
                    "no IFilter installed for document type '{}'",
                    doc.doc_type
                ))
            })?;
        let text = filter.extract(&doc.raw);
        let mut catalogs = self.catalogs.write();
        let cat = catalogs
            .get_mut(&catalog.to_lowercase())
            .ok_or_else(|| DhqpError::Catalog(format!("no full-text catalog '{catalog}'")))?;
        if doc.id == 0 {
            cat.next_id += 1;
            doc.id = cat.next_id;
        }
        let id = doc.id;
        cat.index
            .add_document(id, &format!("{} {}", doc.path, text));
        cat.documents.insert(id, doc);
        Ok(id)
    }

    /// Index text keyed by an external row identity (§2.3 relational path).
    pub fn index_row(&self, catalog: &str, key: u64, text: &str) -> Result<()> {
        let mut catalogs = self.catalogs.write();
        let cat = catalogs
            .get_mut(&catalog.to_lowercase())
            .ok_or_else(|| DhqpError::Catalog(format!("no full-text catalog '{catalog}'")))?;
        cat.index_row(key, text);
        Ok(())
    }

    pub fn remove_row(&self, catalog: &str, key: u64) -> Result<()> {
        let mut catalogs = self.catalogs.write();
        let cat = catalogs
            .get_mut(&catalog.to_lowercase())
            .ok_or_else(|| DhqpError::Catalog(format!("no full-text catalog '{catalog}'")))?;
        cat.remove_row(key);
        Ok(())
    }

    /// Ranked `(key, rank)` results for a query — the rowset the relational
    /// engine joins with base tables on row identity (Figure 2).
    pub fn query_keys(&self, catalog: &str, query: &str) -> Result<Vec<(u64, i64)>> {
        let catalogs = self.catalogs.read();
        let cat = catalogs
            .get(&catalog.to_lowercase())
            .ok_or_else(|| DhqpError::Catalog(format!("no full-text catalog '{catalog}'")))?;
        cat.query(query)
    }

    /// Run `f` against a catalog under the read lock.
    pub fn with_catalog<R>(
        &self,
        catalog: &str,
        f: impl FnOnce(&FullTextCatalog) -> R,
    ) -> Result<R> {
        let catalogs = self.catalogs.read();
        let cat = catalogs
            .get(&catalog.to_lowercase())
            .ok_or_else(|| DhqpError::Catalog(format!("no full-text catalog '{catalog}'")))?;
        Ok(f(cat))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(path: &str, doc_type: &str, raw: &str) -> Document {
        Document {
            id: 0,
            path: path.into(),
            doc_type: doc_type.into(),
            raw: raw.into(),
            size: raw.len() as u64,
            created: 10_000,
            modified: 10_001,
        }
    }

    fn service_with_docs() -> SearchService {
        let svc = SearchService::new();
        svc.create_catalog("DQLiterature").unwrap();
        svc.index_document(
            "DQLiterature",
            doc(
                "d:\\docs\\parallel.txt",
                "txt",
                "Parallel database systems survey",
            ),
        )
        .unwrap();
        svc.index_document(
            "DQLiterature",
            doc(
                "d:\\docs\\hetero.html",
                "html",
                "<h1>Heterogeneous query</h1> processing notes",
            ),
        )
        .unwrap();
        svc.index_document(
            "DQLiterature",
            doc("d:\\docs\\misc.md", "md", "# Cooking *pasta*"),
        )
        .unwrap();
        svc
    }

    #[test]
    fn paper_scenario_query_over_catalog() {
        let svc = service_with_docs();
        let hits = svc
            .query_keys(
                "dqliterature",
                "\"Parallel database\" OR \"heterogeneous query\"",
            )
            .unwrap();
        assert_eq!(hits.len(), 2);
        // Ranks are scaled 0..=1000, descending.
        assert!(hits[0].1 >= hits[1].1);
        assert!(hits[0].1 <= 1000);
    }

    #[test]
    fn ifilters_strip_markup() {
        let svc = service_with_docs();
        // "h1" is markup, not content: must not be indexed.
        assert!(svc.query_keys("DQLiterature", "h1").unwrap().is_empty());
        assert_eq!(
            svc.query_keys("DQLiterature", "heterogeneous")
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn unknown_doc_type_requires_ifilter() {
        let svc = service_with_docs();
        let err = svc
            .index_document("DQLiterature", doc("x.pdf", "pdf", "binaryish"))
            .unwrap_err();
        assert_eq!(err.kind(), "unsupported");
    }

    #[test]
    fn installing_a_filter_enables_the_type() {
        let mut svc = SearchService::new();
        svc.install_filter("pdf", Box::new(PlainTextFilter));
        svc.create_catalog("c").unwrap();
        assert!(svc
            .index_document("c", doc("x.pdf", "pdf", "now indexable"))
            .is_ok());
        assert_eq!(svc.query_keys("c", "indexable").unwrap().len(), 1);
    }

    #[test]
    fn relational_row_indexing_and_maintenance() {
        let svc = SearchService::new();
        svc.create_catalog("articles").unwrap();
        svc.index_row("articles", 100, "distributed query optimization")
            .unwrap();
        svc.index_row("articles", 200, "cooking").unwrap();
        let hits = svc.query_keys("articles", "query").unwrap();
        assert_eq!(hits, vec![(100, 1000)]);
        svc.remove_row("articles", 100).unwrap();
        assert!(svc.query_keys("articles", "query").unwrap().is_empty());
    }

    #[test]
    fn catalog_errors() {
        let svc = SearchService::new();
        assert!(svc.query_keys("ghost", "x").is_err());
        svc.create_catalog("c").unwrap();
        assert!(
            svc.create_catalog("C").is_err(),
            "catalog names are case-insensitive"
        );
    }

    #[test]
    fn file_name_helper() {
        let d = doc("d:\\mail\\docs\\file.txt", "txt", "");
        assert_eq!(d.file_name(), "file.txt");
    }
}
