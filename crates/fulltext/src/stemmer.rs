//! Inflection folding: a compact suffix stemmer plus an irregular-verb
//! table, sufficient for the paper's example — "'runner', 'run', and 'ran'
//! can all be equivalent in full-text searches".

/// Stem a lowercase term to its index form.
pub fn stem(term: &str) -> String {
    // Irregular forms first.
    if let Some(base) = irregular(term) {
        return base.to_string();
    }
    let mut s = term.to_string();
    // Plural / verbal suffixes, longest first.
    for (suffix, replace) in [
        ("sses", "ss"),
        ("ies", "y"),
        ("ning", "n"),
        ("nning", "n"),
        ("ing", ""),
        ("ies", "y"),
        ("ied", "y"),
        ("ed", ""),
        ("ers", ""),
        ("er", ""),
        ("est", ""),
        ("s", ""),
    ] {
        if let Some(stripped) = s.strip_suffix(suffix) {
            // Never strip a word to fewer than 2 characters.
            if stripped.len() >= 2 {
                s = format!("{stripped}{replace}");
                break;
            }
        }
    }
    // Undouble trailing consonants introduced by -er/-ing/-ed stripping
    // (runner → runn → run, stopped → stopp → stop).
    let bytes = s.as_bytes();
    if bytes.len() >= 3 {
        let last = bytes[bytes.len() - 1];
        let prev = bytes[bytes.len() - 2];
        if last == prev && !matches!(last, b'a' | b'e' | b'i' | b'o' | b'u' | b's' | b'l') {
            s.pop();
        }
    }
    s
}

/// Small irregular table covering common verbs in technical prose.
fn irregular(term: &str) -> Option<&'static str> {
    Some(match term {
        "ran" | "runs" | "running" | "run" => "run",
        "went" | "gone" | "goes" => "go",
        "wrote" | "written" | "writes" | "writing" => "write",
        "read" | "reads" | "reading" => "read",
        "found" | "finds" | "finding" => "find",
        "built" | "builds" | "building" => "build",
        "sent" | "sends" | "sending" => "send",
        "indices" => "index",
        "queries" | "queried" => "query",
        "databases" => "database",
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_runner_run_ran() {
        assert_eq!(stem("runner"), "run");
        assert_eq!(stem("run"), "run");
        assert_eq!(stem("ran"), "run");
        assert_eq!(stem("running"), "run");
    }

    #[test]
    fn plurals() {
        assert_eq!(stem("systems"), "system");
        assert_eq!(stem("queries"), "query");
        assert_eq!(stem("classes"), "class");
        assert_eq!(stem("indices"), "index");
    }

    #[test]
    fn verb_forms() {
        assert_eq!(stem("joined"), "join");
        assert_eq!(stem("joining"), "join");
        assert_eq!(stem("stopped"), "stop");
        assert_eq!(stem("wrote"), "write");
    }

    #[test]
    fn short_words_survive() {
        assert_eq!(stem("as"), "as");
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("db"), "db");
    }

    #[test]
    fn stemming_is_idempotent_on_common_words() {
        for w in ["parallel", "database", "heterogeneous", "query", "server"] {
            let once = stem(w);
            assert_eq!(stem(&once), once, "{w}");
        }
    }
}
