//! Word breaking: text → (term, position) pairs.

/// A token with its word position in the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub term: String,
    pub position: u32,
}

/// Split text into lowercase alphanumeric words. Positions count words, so
/// proximity queries reason in word distances.
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let mut position = 0u32;
    let mut current = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() || c == '\'' {
            current.extend(c.to_lowercase());
        } else if !current.is_empty() {
            out.push(Token {
                term: strip_apostrophes(&current),
                position,
            });
            position += 1;
            current.clear();
        }
    }
    if !current.is_empty() {
        out.push(Token {
            term: strip_apostrophes(&current),
            position,
        });
    }
    out
}

/// Drop possessive apostrophes (`server's` → `servers` would be wrong; we
/// strip the suffix instead: `server's` → `server`).
fn strip_apostrophes(term: &str) -> String {
    term.trim_matches('\'')
        .strip_suffix("'s")
        .map(str::to_string)
        .unwrap_or_else(|| term.trim_matches('\'').replace('\'', ""))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terms(text: &str) -> Vec<String> {
        tokenize(text).into_iter().map(|t| t.term).collect()
    }

    #[test]
    fn splits_and_lowercases() {
        assert_eq!(
            terms("Parallel Database Systems!"),
            vec!["parallel", "database", "systems"]
        );
    }

    #[test]
    fn positions_are_word_offsets() {
        let toks = tokenize("a b  c");
        assert_eq!(toks[2].position, 2);
    }

    #[test]
    fn numbers_and_mixed() {
        assert_eq!(
            terms("SQL Server 2000, v2.0"),
            vec!["sql", "server", "2000", "v2", "0"]
        );
    }

    #[test]
    fn possessives_fold() {
        assert_eq!(terms("the server's log"), vec!["the", "server", "log"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(terms("").is_empty());
        assert!(terms("... --- !!!").is_empty());
    }
}
