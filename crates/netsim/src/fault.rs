//! Deterministic fault injection for simulated links.
//!
//! A [`FaultConfig`] describes *what* can go wrong on a link (connect
//! refusals, transient command errors, mid-stream rowset drops, stalls) and
//! with what probability; a [`FaultPlan`] turns that into *when* it goes
//! wrong: each injection site keeps a monotone operation counter, and the
//! decision for operation `k` is a pure hash of `(seed, link, site, k)`.
//! The same seed therefore produces the same fault schedule on every run —
//! chaos tests are reproducible bit-for-bit, and a retry that re-issues
//! operation `k+1` is not re-punished for operation `k`'s fault.
//!
//! Faults are injected by [`crate::NetworkedDataSource`], i.e. below the
//! OLE DB provider seam, so every provider inherits them without knowing.

use dhqp_types::{DhqpError, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What can go wrong on one link, and how often.
///
/// Probabilities are in `[0.0, 1.0]`; `0.0` disables a fault class. The
/// plan draws one deterministic uniform per (site, operation) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed mixed into every fault decision. Two links with the same seed
    /// still fault independently (the link name is mixed in too).
    pub seed: u64,
    /// Probability that a session open is refused outright.
    pub connect_refusals: f64,
    /// Probability that a command execution or rowset/index open fails
    /// before producing rows.
    pub command_errors: f64,
    /// Probability that a streaming rowset drops mid-stream (the fault
    /// fires on one deterministic row of the stream, not row zero).
    pub stream_drops: f64,
    /// Probability that a command stalls: the link sleeps `stall_ms` and
    /// then reports a deadline hit ([`DhqpError::Timeout`]).
    pub stalls: f64,
    /// Simulated stall duration before the timeout surfaces.
    pub stall_ms: u64,
    /// Total faults this plan may inject across all sites; `0` means
    /// unlimited. A budget of 1 yields exactly one transient failure.
    pub max_faults: u64,
    /// When true, only read-only work (commands whose text starts with
    /// `SELECT`, rowset/index opens) is faulted; DML and 2PC traffic is
    /// exempt so chaos runs never duplicate non-idempotent work.
    pub reads_only: bool,
}

impl FaultConfig {
    /// A plan that injects nothing (useful as an explicit "reliable" knob).
    pub fn none() -> Self {
        FaultConfig {
            seed: 0,
            connect_refusals: 0.0,
            command_errors: 0.0,
            stream_drops: 0.0,
            stalls: 0.0,
            stall_ms: 0,
            max_faults: 0,
            reads_only: true,
        }
    }

    /// The acceptance-criteria plan: exactly one transient command error
    /// per link, reads only. A retrying executor must produce results
    /// identical to the fault-free run.
    pub fn one_transient_per_link(seed: u64) -> Self {
        FaultConfig {
            seed,
            command_errors: 1.0,
            max_faults: 1,
            ..FaultConfig::none()
        }
    }

    /// A permanently dead member: every read command and rowset open
    /// fails, with no fault budget, so retries never succeed — the shape
    /// that trips a circuit breaker rather than riding it out. (Connects
    /// are left alone so metadata operations at definition time still
    /// resolve; only query traffic is dead.)
    pub fn dead(seed: u64) -> Self {
        FaultConfig {
            seed,
            command_errors: 1.0,
            ..FaultConfig::none()
        }
    }

    /// Chaos plan from the environment: `DHQP_FAULT_SEED=<n>` enables
    /// [`FaultConfig::one_transient_per_link`] with that seed. Unset, empty
    /// or `0` disables injection.
    pub fn from_env() -> Option<Self> {
        let seed = std::env::var("DHQP_FAULT_SEED").ok()?.trim().parse().ok()?;
        if seed == 0 {
            return None;
        }
        Some(FaultConfig::one_transient_per_link(seed))
    }
}

/// Injection sites a plan distinguishes; each keeps its own counter so
/// connect decisions never perturb command decisions.
#[derive(Debug, Clone, Copy)]
enum Site {
    Connect = 1,
    Command = 2,
    Stream = 3,
    Stall = 4,
}

/// One link's fault schedule: the config plus per-site operation counters
/// and the remaining fault budget.
#[derive(Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    link_hash: u64,
    connects: AtomicU64,
    commands: AtomicU64,
    streams: AtomicU64,
    injected: AtomicU64,
}

/// SplitMix64 finalizer: a well-mixed 64-bit hash of the combined
/// (seed, link, site, op) identity.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn hash_str(s: &str) -> u64 {
    s.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

impl FaultPlan {
    pub fn new(link_name: &str, config: FaultConfig) -> Self {
        FaultPlan {
            config,
            link_hash: hash_str(link_name),
            connects: AtomicU64::new(0),
            commands: AtomicU64::new(0),
            streams: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    pub fn config(&self) -> FaultConfig {
        self.config
    }

    /// Faults this plan has injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Deterministic uniform in `[0, 1)` for operation `op` at `site`.
    fn uniform(&self, site: Site, op: u64) -> f64 {
        let x = splitmix64(
            self.config.seed.wrapping_mul(0x9e3779b97f4a7c15)
                ^ self.link_hash.rotate_left(17)
                ^ ((site as u64) << 56)
                ^ op,
        );
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Draw the decision for one operation; consumes budget when it fires.
    fn decide(&self, site: Site, counter: &AtomicU64, probability: f64) -> bool {
        if probability <= 0.0 {
            return false;
        }
        let op = counter.fetch_add(1, Ordering::Relaxed);
        if self.uniform(site, op) >= probability {
            return false;
        }
        // Respect the budget without over-counting under concurrency: claim
        // a slot, back out if the budget was already exhausted.
        if self.config.max_faults > 0 {
            let claimed = self.injected.fetch_add(1, Ordering::Relaxed);
            if claimed >= self.config.max_faults {
                self.injected.fetch_sub(1, Ordering::Relaxed);
                return false;
            }
        } else {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// Fault decision for a session open. `Err(Unavailable)` on refusal.
    pub fn on_connect(&self, link_name: &str) -> Result<()> {
        if self.decide(Site::Connect, &self.connects, self.config.connect_refusals) {
            return Err(DhqpError::Unavailable(format!(
                "injected fault: connection refused by '{link_name}'"
            )));
        }
        Ok(())
    }

    /// Fault decision for a command execution (read-only text only, when
    /// `reads_only` is set). A stall sleeps then times out; a command
    /// error is instantaneous.
    pub fn on_command(&self, link_name: &str, text: &str) -> Result<()> {
        if self.config.reads_only && !is_read_only(text) {
            return Ok(());
        }
        self.read_fault(link_name)
    }

    /// Fault decision for a rowset or index open. Opens are inherently
    /// read-only requests, so they share the command fault classes (and
    /// the command operation counter).
    pub fn on_open(&self, link_name: &str) -> Result<()> {
        self.read_fault(link_name)
    }

    fn read_fault(&self, link_name: &str) -> Result<()> {
        if self.decide(Site::Stall, &self.commands, self.config.stalls) {
            if self.config.stall_ms > 0 {
                std::thread::sleep(Duration::from_millis(self.config.stall_ms));
            }
            return Err(DhqpError::Timeout(format!(
                "injected fault: command stalled past deadline on '{link_name}'"
            )));
        }
        if self.decide(Site::Command, &self.commands, self.config.command_errors) {
            return Err(DhqpError::Unavailable(format!(
                "injected fault: transient command error on '{link_name}'"
            )));
        }
        Ok(())
    }

    /// Fault decision for one rowset stream: when it fires, returns the
    /// deterministic row index at which the stream drops.
    pub fn on_stream(&self) -> Option<u64> {
        if !self.decide(Site::Stream, &self.streams, self.config.stream_drops) {
            return None;
        }
        // Drop between rows 1 and 8 so the fault lands mid-stream, after
        // some rows were already delivered.
        let op = self.streams.load(Ordering::Relaxed);
        Some(1 + splitmix64(self.config.seed ^ self.link_hash ^ op) % 8)
    }
}

/// Conservative idempotency test: only plain `SELECT` text is fair game
/// for injection (and hence transparent retry) under `reads_only` plans.
pub fn is_read_only(text: &str) -> bool {
    text.trim_start()
        .get(..6)
        .is_some_and(|head| head.eq_ignore_ascii_case("select"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_across_plans() {
        let a = FaultPlan::new("wan1", FaultConfig::one_transient_per_link(7));
        let b = FaultPlan::new("wan1", FaultConfig::one_transient_per_link(7));
        let seq_a: Vec<bool> = (0..16)
            .map(|_| a.on_command("wan1", "SELECT 1").is_err())
            .collect();
        let seq_b: Vec<bool> = (0..16)
            .map(|_| b.on_command("wan1", "SELECT 1").is_err())
            .collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn budget_caps_total_injections() {
        let plan = FaultPlan::new("m1", FaultConfig::one_transient_per_link(1));
        let errors = (0..32)
            .filter(|_| plan.on_command("m1", "SELECT x FROM t").is_err())
            .count();
        assert_eq!(errors, 1);
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn reads_only_plans_exempt_dml() {
        let plan = FaultPlan::new(
            "m1",
            FaultConfig {
                command_errors: 1.0,
                ..FaultConfig::none()
            },
        );
        assert!(plan.on_command("m1", "INSERT INTO t VALUES (1)").is_ok());
        assert!(plan.on_command("m1", "UPDATE t SET x = 1").is_ok());
        assert!(plan.on_command("m1", "  select x FROM t").is_err());
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn connect_refusals_surface_as_unavailable() {
        let plan = FaultPlan::new(
            "m1",
            FaultConfig {
                connect_refusals: 1.0,
                max_faults: 1,
                ..FaultConfig::none()
            },
        );
        let err = plan.on_connect("m1").unwrap_err();
        assert_eq!(err.kind(), "unavailable");
        assert!(err.message().contains("connection refused"), "{err}");
        // Budget spent: the next connect succeeds.
        assert!(plan.on_connect("m1").is_ok());
    }

    #[test]
    fn stream_drops_pick_a_mid_stream_row() {
        let plan = FaultPlan::new(
            "m1",
            FaultConfig {
                stream_drops: 1.0,
                ..FaultConfig::none()
            },
        );
        let at = plan.on_stream().expect("certain drop fires");
        assert!((1..=8).contains(&at), "{at}");
        // Deterministic: an identical plan picks the same row.
        let twin = FaultPlan::new(
            "m1",
            FaultConfig {
                stream_drops: 1.0,
                ..FaultConfig::none()
            },
        );
        assert_eq!(twin.on_stream(), Some(at));
    }

    #[test]
    fn stalls_surface_as_timeout() {
        let plan = FaultPlan::new(
            "m1",
            FaultConfig {
                stalls: 1.0,
                stall_ms: 1,
                max_faults: 1,
                ..FaultConfig::none()
            },
        );
        let err = plan.on_command("m1", "SELECT 1").unwrap_err();
        assert_eq!(err.kind(), "timeout");
        assert!(err.is_retryable());
    }

    #[test]
    fn different_links_fault_at_different_operations() {
        // With a 50% rate, two links sharing one seed should not produce
        // identical decision sequences (the link name is mixed in).
        let cfg = FaultConfig {
            command_errors: 0.5,
            ..FaultConfig::none()
        };
        let a = FaultPlan::new("member1", cfg);
        let b = FaultPlan::new("member2", cfg);
        let seq_a: Vec<bool> = (0..64)
            .map(|_| a.on_command("a", "SELECT 1").is_err())
            .collect();
        let seq_b: Vec<bool> = (0..64)
            .map(|_| b.on_command("b", "SELECT 1").is_err())
            .collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn env_plan_parses_seed() {
        // Touching the process environment is race-prone in parallel test
        // runs, so exercise the parse path only when the variable is unset.
        if std::env::var("DHQP_FAULT_SEED").is_err() {
            assert!(FaultConfig::from_env().is_none());
        }
        let c = FaultConfig::one_transient_per_link(9);
        assert_eq!(c.seed, 9);
        assert_eq!(c.max_faults, 1);
        assert!(c.reads_only);
    }
}
