//! Simulated network links between the DHQP and remote providers.
//!
//! The paper's remote cost model "aims at finding plans with minimal network
//! traffic" (§4.1.3). To make that objective *observable* without real
//! machines, every remote data source in this repo is wrapped in a
//! [`NetworkLink`] that:
//!
//! * counts requests (round trips), rows and bytes in both directions, and
//! * optionally injects latency/bandwidth delay so wall-clock benchmarks
//!   reflect traffic differences, not just counters.
//!
//! Benches snapshot link stats before and after a query to report the
//! rows/bytes-shipped columns of the experiment tables.

//! Links can also misbehave on purpose: [`FaultConfig`]/[`FaultPlan`]
//! inject deterministic, seeded faults (refused connects, transient command
//! errors, mid-stream drops, stalls) through the same wrapper, so the
//! executor's retry and 2PC recovery paths are testable without real
//! network flakiness. `DHQP_FAULT_SEED=<n>` arms a default chaos plan.

pub mod fault;
pub mod link;
pub mod wrap;

pub use fault::{FaultConfig, FaultPlan};
pub use link::{
    HistogramSnapshot, LatencySummary, LinkStats, NetworkConfig, NetworkLink, TrafficSnapshot,
};
pub use wrap::NetworkedDataSource;
