//! Simulated network links between the DHQP and remote providers.
//!
//! The paper's remote cost model "aims at finding plans with minimal network
//! traffic" (§4.1.3). To make that objective *observable* without real
//! machines, every remote data source in this repo is wrapped in a
//! [`NetworkLink`] that:
//!
//! * counts requests (round trips), rows and bytes in both directions, and
//! * optionally injects latency/bandwidth delay so wall-clock benchmarks
//!   reflect traffic differences, not just counters.
//!
//! Benches snapshot link stats before and after a query to report the
//! rows/bytes-shipped columns of the experiment tables.

pub mod link;
pub mod wrap;

pub use link::{LinkStats, NetworkConfig, NetworkLink, TrafficSnapshot};
pub use wrap::NetworkedDataSource;
