//! Link configuration, accounting and delay model.

pub use dhqp_oledb::TrafficSnapshot;
use dhqp_oledb::{record_wait, WaitClass};
pub use dhqp_oledb::{HistogramSnapshot, LatencySummary, LogHistogram};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Static link parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// One-way request latency in microseconds, charged per round trip.
    pub latency_us: u64,
    /// Link bandwidth in bytes per millisecond (e.g. 100_000 ≈ 100 MB/s).
    pub bytes_per_ms: u64,
    /// When false the link only accounts; when true it also sleeps so
    /// wall-clock measurements include simulated transfer time.
    pub simulate_delay: bool,
}

impl NetworkConfig {
    /// A fast LAN: 0.5 ms round trips, ~100 MB/s, accounting only.
    pub fn lan() -> Self {
        NetworkConfig {
            latency_us: 500,
            bytes_per_ms: 100_000,
            simulate_delay: false,
        }
    }

    /// A LAN with delay simulation enabled — used by benches so network
    /// traffic shows up in wall time.
    pub fn lan_timed() -> Self {
        NetworkConfig {
            simulate_delay: true,
            ..NetworkConfig::lan()
        }
    }

    /// A slow WAN: 20 ms round trips, ~2 MB/s.
    pub fn wan_timed() -> Self {
        NetworkConfig {
            latency_us: 20_000,
            bytes_per_ms: 2_000,
            simulate_delay: true,
        }
    }

    /// Accounting-only link with zero parameters (unit tests).
    pub fn untimed() -> Self {
        NetworkConfig {
            latency_us: 0,
            bytes_per_ms: 0,
            simulate_delay: false,
        }
    }

    /// Simulated wire time for a payload of `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        if self.bytes_per_ms == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(bytes.saturating_mul(1000) / self.bytes_per_ms)
    }
}

/// Monotonic counters for one link (shared across sessions/rowsets).
#[derive(Debug, Default)]
pub struct LinkStats {
    pub requests: AtomicU64,
    pub rows: AtomicU64,
    pub bytes: AtomicU64,
    /// Row-shipping transfers: one per [`NetworkLink::record_rows`] call.
    /// Row-at-a-time cursoring flushes one row per call, batched cursoring
    /// K rows, so `rows / batches` gauges the realized batch size.
    pub batches: AtomicU64,
    /// Faults the link's fault plan injected (not part of
    /// [`TrafficSnapshot`]: faults are not wire traffic).
    pub faults: AtomicU64,
    /// Modeled per-request round-trip times, in microseconds. Recorded from
    /// the delay model whether or not the link actually sleeps, so
    /// accounting-only LANs still report their configured latency
    /// distribution.
    pub latency: LogHistogram,
    /// Per-transfer payload sizes in bytes (requests and row batches).
    pub payload: LogHistogram,
}

// `TrafficSnapshot` lives in `dhqp_oledb` (re-exported above) so the
// executor can read per-source traffic through `DataSource::traffic`
// without depending on the network simulator.

/// A shared handle to one simulated link.
#[derive(Clone)]
pub struct NetworkLink {
    name: Arc<str>,
    config: NetworkConfig,
    stats: Arc<LinkStats>,
}

impl NetworkLink {
    pub fn new(name: impl Into<String>, config: NetworkConfig) -> Self {
        NetworkLink {
            name: name.into().into(),
            config,
            stats: Arc::new(LinkStats::default()),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn config(&self) -> NetworkConfig {
        self.config
    }

    /// Record one round trip carrying `request_bytes` of command/request
    /// payload, sleeping for the configured latency when simulation is on.
    pub fn record_request(&self, request_bytes: u64) {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes.fetch_add(request_bytes, Ordering::Relaxed);
        let d = Duration::from_micros(self.config.latency_us)
            + self.config.transfer_time(request_bytes);
        self.stats.latency.record(d.as_micros() as u64);
        self.stats.payload.record(request_bytes);
        // Wait accounting uses the modeled duration whether or not the link
        // sleeps (same contract as the latency histogram above), so
        // accounting-only LANs report deterministic NETWORK_IO totals.
        if !d.is_zero() {
            record_wait(WaitClass::NetworkIo, d);
        }
        if self.config.simulate_delay && !d.is_zero() {
            std::thread::sleep(d);
        }
    }

    /// Record `rows` result rows totalling `bytes` on the wire. Returns the
    /// simulated transfer duration (already slept when simulation is on).
    pub fn record_rows(&self, rows: u64, bytes: u64) -> Duration {
        self.stats.rows.fetch_add(rows, Ordering::Relaxed);
        self.stats.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.stats.payload.record(bytes);
        let d = self.config.transfer_time(bytes);
        if !d.is_zero() {
            record_wait(WaitClass::NetworkIo, d);
        }
        if self.config.simulate_delay && !d.is_zero() {
            std::thread::sleep(d);
        }
        d
    }

    /// Record one injected fault on this link.
    pub fn record_fault(&self) {
        self.stats.faults.fetch_add(1, Ordering::Relaxed);
    }

    /// Faults injected on this link since creation (or the last reset).
    pub fn faults_injected(&self) -> u64 {
        self.stats.faults.load(Ordering::Relaxed)
    }

    /// Current counter values.
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            requests: self.stats.requests.load(Ordering::Relaxed),
            rows: self.stats.rows.load(Ordering::Relaxed),
            bytes: self.stats.bytes.load(Ordering::Relaxed),
            batches: self.stats.batches.load(Ordering::Relaxed),
        }
    }

    /// Modeled per-request round-trip time distribution (microseconds).
    pub fn latency_histogram(&self) -> HistogramSnapshot {
        self.stats.latency.snapshot()
    }

    /// Per-transfer payload size distribution (bytes).
    pub fn payload_histogram(&self) -> HistogramSnapshot {
        self.stats.payload.snapshot()
    }

    /// p50/p95/p99 of the modeled round-trip time (microseconds).
    pub fn latency_summary(&self) -> LatencySummary {
        self.stats.latency.snapshot().latency_summary()
    }

    /// Reset all counters (benches do this between measurements).
    pub fn reset(&self) {
        self.stats.requests.store(0, Ordering::Relaxed);
        self.stats.rows.store(0, Ordering::Relaxed);
        self.stats.bytes.store(0, Ordering::Relaxed);
        self.stats.batches.store(0, Ordering::Relaxed);
        self.stats.faults.store(0, Ordering::Relaxed);
        self.stats.latency.clear();
        self.stats.payload.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetworkLink>();
        assert_send_sync::<LinkStats>();
        assert_send_sync::<NetworkConfig>();
    }

    #[test]
    fn concurrent_accounting_stays_exact() {
        // Parallel exchange branches meter the same link from several
        // worker threads; the atomic counters must not lose updates.
        let link = NetworkLink::new("r0", NetworkConfig::untimed());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let link = link.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        link.record_request(10);
                        link.record_rows(3, 48);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = link.snapshot();
        assert_eq!(s.requests, 4000);
        assert_eq!(s.rows, 12_000);
        assert_eq!(s.bytes, 4000 * 10 + 4000 * 48);
    }

    #[test]
    fn accounting_accumulates() {
        let link = NetworkLink::new("r0", NetworkConfig::untimed());
        link.record_request(100);
        link.record_rows(10, 800);
        link.record_rows(5, 400);
        let s = link.snapshot();
        assert_eq!(s.requests, 1);
        assert_eq!(s.rows, 15);
        assert_eq!(s.bytes, 1300);
        assert_eq!(s.batches, 2);
        assert_eq!(s.rows_per_round_trip(), Some(7.5));
    }

    #[test]
    fn rows_per_round_trip_gauges_flush_size() {
        let link = NetworkLink::new("r0", NetworkConfig::untimed());
        assert_eq!(link.snapshot().rows_per_round_trip(), None);
        // Row-at-a-time: one flush per row → gauge of 1.
        for _ in 0..4 {
            link.record_rows(1, 16);
        }
        assert_eq!(link.snapshot().rows_per_round_trip(), Some(1.0));
        link.reset();
        // Batched: one flush per chunk → gauge of the chunk size.
        link.record_rows(8, 128);
        link.record_rows(8, 128);
        assert_eq!(link.snapshot().rows_per_round_trip(), Some(8.0));
    }

    #[test]
    fn snapshot_diff() {
        let link = NetworkLink::new("r0", NetworkConfig::untimed());
        link.record_rows(10, 100);
        let before = link.snapshot();
        link.record_rows(7, 70);
        let delta = link.snapshot().since(&before);
        assert_eq!(delta.rows, 7);
        assert_eq!(delta.bytes, 70);
        assert_eq!(delta.requests, 0);
    }

    #[test]
    fn reset_zeroes_counters() {
        let link = NetworkLink::new("r0", NetworkConfig::untimed());
        link.record_request(5);
        link.record_fault();
        link.reset();
        assert_eq!(link.snapshot(), TrafficSnapshot::default());
        assert_eq!(link.faults_injected(), 0);
    }

    #[test]
    fn latency_histogram_tracks_model_without_sleeping() {
        // An accounting-only LAN must still report its modeled round-trip
        // distribution: 500µs latency + 1000B at 100_000 B/ms = 510µs per
        // request, so every percentile clamps to the 510µs maximum.
        let link = NetworkLink::new("r0", NetworkConfig::lan());
        for _ in 0..10 {
            link.record_request(1000);
        }
        let s = link.latency_summary();
        assert_eq!(s.count, 10);
        assert!(s.p50_us >= 510 && s.p50_us <= 1023, "p50={}", s.p50_us);
        assert_eq!(s.max_us, 510);
        assert!(s.p99_us >= s.p50_us.min(s.max_us));
        let bytes = link.payload_histogram();
        assert_eq!(bytes.count, 10);
        link.reset();
        assert!(link.latency_histogram().is_empty());
        assert!(link.payload_histogram().is_empty());
    }

    #[test]
    fn faults_are_counted_separately_from_traffic() {
        let link = NetworkLink::new("r0", NetworkConfig::untimed());
        link.record_request(5);
        link.record_fault();
        link.record_fault();
        assert_eq!(link.faults_injected(), 2);
        assert_eq!(link.snapshot().requests, 1);
    }

    #[test]
    fn snapshot_diff_across_reset_saturates() {
        // Regression: `since` across a link reset (or with arguments in the
        // wrong order) used to underflow and panic; it must clamp to zero.
        let link = NetworkLink::new("r0", NetworkConfig::untimed());
        link.record_request(100);
        link.record_rows(10, 800);
        let before = link.snapshot();
        link.reset();
        link.record_rows(2, 20);
        let delta = link.snapshot().since(&before);
        assert_eq!(delta, TrafficSnapshot::default());
        // Wrong-order subtraction clamps too.
        let newer = {
            link.record_rows(5, 50);
            link.snapshot()
        };
        let older = TrafficSnapshot::default();
        assert_eq!(older.since(&newer), TrafficSnapshot::default());
    }

    #[test]
    fn clones_share_counters() {
        let a = NetworkLink::new("r0", NetworkConfig::untimed());
        let b = a.clone();
        a.record_rows(1, 10);
        b.record_rows(2, 20);
        assert_eq!(a.snapshot().rows, 3);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let cfg = NetworkConfig {
            latency_us: 0,
            bytes_per_ms: 1000,
            simulate_delay: false,
        };
        assert_eq!(cfg.transfer_time(1000), Duration::from_millis(1));
        assert_eq!(cfg.transfer_time(0), Duration::ZERO);
        assert_eq!(
            NetworkConfig::untimed().transfer_time(1_000_000),
            Duration::ZERO
        );
    }

    #[test]
    fn timed_link_sleeps_for_latency() {
        let cfg = NetworkConfig {
            latency_us: 2000,
            bytes_per_ms: 0,
            simulate_delay: true,
        };
        let link = NetworkLink::new("slow", cfg);
        let t0 = std::time::Instant::now();
        link.record_request(0);
        assert!(t0.elapsed() >= Duration::from_micros(1800));
    }
}
