//! Wrapping a provider behind a simulated link.
//!
//! `NetworkedDataSource` decorates any [`DataSource`] so that every session
//! interaction — opening rowsets, executing commands, fetching by bookmark,
//! DML, 2PC messages — is metered through a [`NetworkLink`]. The inner
//! provider is unaware; the DHQP above is unaware; only the link sees the
//! traffic. This is the measurement seam for every distributed experiment.

use crate::link::NetworkLink;
use dhqp_oledb::{
    Command, CommandResult, DataSource, Histogram, KeyRange, ProviderCapabilities, Rowset, Session,
    TableInfo, TrafficSnapshot, TxnId,
};
use dhqp_types::{Result, Row, Schema, Value};
use std::sync::Arc;

/// A data source reachable only across a simulated network link.
pub struct NetworkedDataSource {
    inner: Arc<dyn DataSource>,
    link: NetworkLink,
}

impl NetworkedDataSource {
    pub fn new(inner: Arc<dyn DataSource>, link: NetworkLink) -> Self {
        NetworkedDataSource { inner, link }
    }

    pub fn link(&self) -> &NetworkLink {
        &self.link
    }
}

impl DataSource for NetworkedDataSource {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn capabilities(&self) -> ProviderCapabilities {
        let mut caps = self.inner.capabilities();
        // Advertise the link latency so the optimizer's remote cost model
        // sees it (connection property, §4.1.3).
        caps.latency_hint_us = caps.latency_hint_us.max(self.link.config().latency_us);
        caps
    }

    fn traffic(&self) -> Option<TrafficSnapshot> {
        Some(self.link.snapshot())
    }

    fn tables(&self) -> Result<Vec<TableInfo>> {
        // Metadata round trip; schema rowsets are small, charge a nominal
        // payload.
        self.link.record_request(64);
        self.inner.tables()
    }

    fn create_session(&self) -> Result<Box<dyn Session>> {
        self.link.record_request(32);
        Ok(Box::new(NetworkedSession {
            inner: self.inner.create_session()?,
            link: self.link.clone(),
        }))
    }
}

struct NetworkedSession {
    inner: Box<dyn Session>,
    link: NetworkLink,
}

/// A rowset whose rows are metered as they cross the link.
struct MeteredRowset {
    inner: Box<dyn Rowset>,
    link: NetworkLink,
}

impl Rowset for MeteredRowset {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next(&mut self) -> Result<Option<Row>> {
        let row = self.inner.next()?;
        if let Some(r) = &row {
            self.link.record_rows(1, r.wire_size() as u64);
        }
        Ok(row)
    }
}

fn rows_wire_size(rows: &[Row]) -> u64 {
    rows.iter().map(|r| r.wire_size() as u64).sum()
}

impl Session for NetworkedSession {
    fn open_rowset(&mut self, table: &str) -> Result<Box<dyn Rowset>> {
        self.link.record_request(32 + table.len() as u64);
        Ok(Box::new(MeteredRowset {
            inner: self.inner.open_rowset(table)?,
            link: self.link.clone(),
        }))
    }

    fn create_command(&mut self) -> Result<Box<dyn Command>> {
        Ok(Box::new(NetworkedCommand {
            inner: self.inner.create_command()?,
            link: self.link.clone(),
            text_len: 0,
        }))
    }

    fn open_index(
        &mut self,
        table: &str,
        index: &str,
        range: &KeyRange,
    ) -> Result<Box<dyn Rowset>> {
        self.link
            .record_request(48 + table.len() as u64 + index.len() as u64);
        Ok(Box::new(MeteredRowset {
            inner: self.inner.open_index(table, index, range)?,
            link: self.link.clone(),
        }))
    }

    fn fetch_by_bookmarks(&mut self, table: &str, bookmarks: &[u64]) -> Result<Vec<Row>> {
        self.link.record_request(32 + 8 * bookmarks.len() as u64);
        let rows = self.inner.fetch_by_bookmarks(table, bookmarks)?;
        self.link
            .record_rows(rows.len() as u64, rows_wire_size(&rows));
        Ok(rows)
    }

    fn histogram(&mut self, table: &str, column: &str) -> Result<Option<Histogram>> {
        self.link.record_request(32);
        let h = self.inner.histogram(table, column)?;
        if let Some(h) = &h {
            // A histogram ships one (upper, rows, distinct) triple per step.
            self.link
                .record_rows(h.buckets.len() as u64, 24 * h.buckets.len() as u64);
        }
        Ok(h)
    }

    fn join_transaction(&mut self, txn: TxnId) -> Result<()> {
        self.link.record_request(16);
        self.inner.join_transaction(txn)
    }

    fn prepare(&mut self, txn: TxnId) -> Result<()> {
        self.link.record_request(16);
        self.inner.prepare(txn)
    }

    fn commit(&mut self, txn: TxnId) -> Result<()> {
        self.link.record_request(16);
        self.inner.commit(txn)
    }

    fn abort(&mut self, txn: TxnId) -> Result<()> {
        self.link.record_request(16);
        self.inner.abort(txn)
    }

    fn insert(&mut self, table: &str, rows: &[Row]) -> Result<u64> {
        self.link.record_request(32 + rows_wire_size(rows));
        self.inner.insert(table, rows)
    }

    fn delete_by_bookmarks(&mut self, table: &str, bookmarks: &[u64]) -> Result<u64> {
        self.link.record_request(32 + 8 * bookmarks.len() as u64);
        self.inner.delete_by_bookmarks(table, bookmarks)
    }

    fn update_by_bookmarks(
        &mut self,
        table: &str,
        bookmarks: &[u64],
        updates: &[Row],
    ) -> Result<u64> {
        self.link
            .record_request(32 + 8 * bookmarks.len() as u64 + rows_wire_size(updates));
        self.inner.update_by_bookmarks(table, bookmarks, updates)
    }
}

struct NetworkedCommand {
    inner: Box<dyn Command>,
    link: NetworkLink,
    text_len: u64,
}

impl Command for NetworkedCommand {
    fn set_text(&mut self, text: &str) -> Result<()> {
        self.text_len = text.len() as u64;
        self.inner.set_text(text)
    }

    fn bind_parameter(&mut self, ordinal: usize, value: Value) -> Result<()> {
        self.text_len += value.wire_size() as u64;
        self.inner.bind_parameter(ordinal, value)
    }

    fn execute(&mut self) -> Result<CommandResult> {
        // The command text crosses the wire on execute.
        self.link.record_request(self.text_len.max(16));
        match self.inner.execute()? {
            CommandResult::Rowset(rs) => Ok(CommandResult::Rowset(Box::new(MeteredRowset {
                inner: rs,
                link: self.link.clone(),
            }))),
            CommandResult::RowCount(n) => Ok(CommandResult::RowCount(n)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::NetworkConfig;
    use dhqp_oledb::RowsetExt;
    use dhqp_storage::{LocalDataSource, StorageEngine, TableDef};
    use dhqp_types::{Column, DataType};

    fn networked() -> NetworkedDataSource {
        let engine = Arc::new(StorageEngine::new("remote0"));
        engine
            .create_table(
                TableDef::new("t", Schema::new(vec![Column::not_null("x", DataType::Int)]))
                    .with_index("pk", &["x"], true),
            )
            .unwrap();
        let rows: Vec<Row> = (0..10).map(|i| Row::new(vec![Value::Int(i)])).collect();
        engine.insert_rows("t", &rows).unwrap();
        let link = NetworkLink::new("link-r0", NetworkConfig::untimed());
        NetworkedDataSource::new(Arc::new(LocalDataSource::new(engine)), link)
    }

    #[test]
    fn networked_decorators_cross_threads() {
        // Exchange workers open sessions and drain metered rowsets off the
        // consumer thread; the whole decorator stack must be Send (and the
        // shared source Sync).
        fn assert_send_sync<T: Send + Sync>() {}
        fn assert_send<T: Send>() {}
        assert_send_sync::<NetworkedDataSource>();
        assert_send::<NetworkedSession>();
        assert_send::<MeteredRowset>();
        assert_send::<NetworkedCommand>();
    }

    #[test]
    fn rowset_traffic_is_metered_per_row() {
        let ds = networked();
        let mut s = ds.create_session().unwrap();
        let before = ds.link().snapshot();
        let mut rs = s.open_rowset("t").unwrap();
        assert_eq!(rs.count_rows().unwrap(), 10);
        let delta = ds.link().snapshot().since(&before);
        assert_eq!(delta.rows, 10);
        assert_eq!(delta.requests, 1);
        assert_eq!(delta.bytes, 33 + 10 * 16); // request header + 10 rows of (8 hdr + 8 int)
    }

    #[test]
    fn index_open_counts_one_round_trip() {
        let ds = networked();
        let mut s = ds.create_session().unwrap();
        let before = ds.link().snapshot();
        let mut rs = s
            .open_index("t", "pk", &KeyRange::eq(vec![Value::Int(3)]))
            .unwrap();
        assert_eq!(rs.count_rows().unwrap(), 1);
        let delta = ds.link().snapshot().since(&before);
        assert_eq!(delta.requests, 1);
        assert_eq!(delta.rows, 1);
    }

    #[test]
    fn bookmark_fetch_meters_request_and_rows() {
        let ds = networked();
        let mut s = ds.create_session().unwrap();
        let mut rs = s.open_rowset("t").unwrap();
        let bm = rs.collect_rows().unwrap()[0].bookmark.unwrap();
        let before = ds.link().snapshot();
        let rows = s.fetch_by_bookmarks("t", &[bm]).unwrap();
        assert_eq!(rows.len(), 1);
        let delta = ds.link().snapshot().since(&before);
        assert_eq!(delta.requests, 1);
        assert_eq!(delta.rows, 1);
    }

    #[test]
    fn capabilities_carry_link_latency() {
        let engine = Arc::new(StorageEngine::new("r"));
        let link = NetworkLink::new("l", NetworkConfig::lan());
        let ds = NetworkedDataSource::new(Arc::new(LocalDataSource::new(engine)), link);
        assert_eq!(ds.capabilities().latency_hint_us, 500);
    }
}
