//! Wrapping a provider behind a simulated link.
//!
//! `NetworkedDataSource` decorates any [`DataSource`] so that every session
//! interaction — opening rowsets, executing commands, fetching by bookmark,
//! DML, 2PC messages — is metered through a [`NetworkLink`]. The inner
//! provider is unaware; the DHQP above is unaware; only the link sees the
//! traffic. This is the measurement seam for every distributed experiment.
//!
//! The same seam injects faults: when a [`FaultPlan`] is attached, session
//! opens can be refused, command executions can fail or stall, and result
//! streams can drop mid-flight — all deterministically, per
//! [`crate::fault`]. Sessions enlisted in a distributed transaction are
//! never faulted (their work is not idempotent and must reach the 2PC
//! layer, whose failure semantics are exercised separately), and
//! `reads_only` plans exempt DML command text too.

use crate::fault::{FaultConfig, FaultPlan};
use crate::link::NetworkLink;
use dhqp_oledb::{emit_event, has_hook};
use dhqp_oledb::{
    Command, CommandResult, DataSource, Histogram, KeyRange, LatencySummary, ProviderCapabilities,
    Rowset, Session, TableInfo, TrafficSnapshot, TxnId,
};
use dhqp_types::{DhqpError, Result, Row, RowBatch, Schema, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Raise a `fault` event for one injected fault, if the current thread's
/// activity scope carries an event hook (attribute strings are only built
/// when someone is listening).
fn fault_event(link: &NetworkLink, site: &str, detail: &str) {
    if has_hook() {
        emit_event(
            "fault",
            &[
                ("link", link.name().to_string()),
                ("site", site.to_string()),
                ("detail", detail.to_string()),
            ],
        );
    }
}

/// A data source reachable only across a simulated network link.
pub struct NetworkedDataSource {
    inner: Arc<dyn DataSource>,
    link: NetworkLink,
    faults: Option<Arc<FaultPlan>>,
}

impl NetworkedDataSource {
    /// Wrap `inner` behind `link`. When `DHQP_FAULT_SEED` is set in the
    /// environment the link also carries that seed's chaos plan (one
    /// transient read fault per link), so the whole test suite can run
    /// under fault injection without per-callsite changes.
    pub fn new(inner: Arc<dyn DataSource>, link: NetworkLink) -> Self {
        let faults =
            FaultConfig::from_env().map(|config| Arc::new(FaultPlan::new(link.name(), config)));
        NetworkedDataSource {
            inner,
            link,
            faults,
        }
    }

    /// Wrap with an explicit fault plan (chaos tests).
    pub fn with_faults(inner: Arc<dyn DataSource>, link: NetworkLink, config: FaultConfig) -> Self {
        let plan = Arc::new(FaultPlan::new(link.name(), config));
        NetworkedDataSource {
            inner,
            link,
            faults: Some(plan),
        }
    }

    /// Wrap with injection disabled even if `DHQP_FAULT_SEED` is set —
    /// for tests asserting exact traffic parity.
    pub fn reliable(inner: Arc<dyn DataSource>, link: NetworkLink) -> Self {
        NetworkedDataSource {
            inner,
            link,
            faults: None,
        }
    }

    pub fn link(&self) -> &NetworkLink {
        &self.link
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }
}

impl DataSource for NetworkedDataSource {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn capabilities(&self) -> ProviderCapabilities {
        let mut caps = self.inner.capabilities();
        // Advertise the link latency so the optimizer's remote cost model
        // sees it (connection property, §4.1.3).
        caps.latency_hint_us = caps.latency_hint_us.max(self.link.config().latency_us);
        caps
    }

    fn traffic(&self) -> Option<TrafficSnapshot> {
        Some(self.link.snapshot())
    }

    fn latency(&self) -> Option<LatencySummary> {
        Some(self.link.latency_summary())
    }

    fn tables(&self) -> Result<Vec<TableInfo>> {
        // Metadata round trip; schema rowsets are small, charge a nominal
        // payload.
        self.link.record_request(64);
        self.inner.tables()
    }

    fn create_session(&self) -> Result<Box<dyn Session>> {
        self.link.record_request(32);
        if let Some(plan) = &self.faults {
            if let Err(e) = plan.on_connect(self.link.name()) {
                self.link.record_fault();
                fault_event(&self.link, "connect", e.message());
                return Err(e);
            }
        }
        Ok(Box::new(NetworkedSession {
            inner: self.inner.create_session()?,
            link: self.link.clone(),
            faults: self.faults.clone(),
            enlisted: Arc::new(AtomicBool::new(false)),
        }))
    }
}

struct NetworkedSession {
    inner: Box<dyn Session>,
    link: NetworkLink,
    faults: Option<Arc<FaultPlan>>,
    /// Set once the session joins a distributed transaction; shared with
    /// the session's commands so enlisted work is exempt from injection.
    enlisted: Arc<AtomicBool>,
}

impl NetworkedSession {
    /// Stream-drop decision for a rowset this session is about to serve:
    /// `Some(n)` means the stream fails after delivering `n` rows.
    fn stream_drop(&self) -> Option<u64> {
        if self.enlisted.load(Ordering::Relaxed) {
            return None;
        }
        let at = self.faults.as_ref()?.on_stream()?;
        self.link.record_fault();
        fault_event(&self.link, "stream", &format!("drop after {at} rows"));
        Some(at)
    }

    /// Fault decision for a rowset/index open (a read request; enlisted
    /// sessions are exempt like everywhere else).
    fn open_fault(&self) -> Result<()> {
        if self.enlisted.load(Ordering::Relaxed) {
            return Ok(());
        }
        if let Some(plan) = &self.faults {
            if let Err(e) = plan.on_open(self.link.name()) {
                self.link.record_fault();
                fault_event(&self.link, "open", e.message());
                return Err(e);
            }
        }
        Ok(())
    }
}

/// A rowset whose rows are metered as they cross the link, and which may
/// carry an injected mid-stream drop.
struct MeteredRowset {
    inner: Box<dyn Rowset>,
    link: NetworkLink,
    /// Injected fault: fail after this many rows were delivered.
    drop_at: Option<u64>,
    delivered: u64,
}

impl MeteredRowset {
    fn new(inner: Box<dyn Rowset>, link: NetworkLink, drop_at: Option<u64>) -> Self {
        MeteredRowset {
            inner,
            link,
            drop_at,
            delivered: 0,
        }
    }
}

impl Rowset for MeteredRowset {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next(&mut self) -> Result<Option<Row>> {
        if let Some(at) = self.drop_at {
            if self.delivered >= at {
                return Err(DhqpError::Unavailable(format!(
                    "injected fault: stream dropped after {} rows on '{}'",
                    self.delivered,
                    self.link.name()
                )));
            }
        }
        let row = self.inner.next()?;
        if let Some(r) = &row {
            self.delivered += 1;
            self.link.record_rows(1, r.wire_size() as u64);
        }
        Ok(row)
    }

    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        // One simulated round trip per chunk: one latency/bandwidth charge,
        // one NETWORK_IO wait slice, one fault window. Rows and bytes land
        // on the same counters as the row path, so traffic totals are
        // byte-identical — only the flush count (and the amortized waits)
        // differ.
        let mut want = max.max(1);
        if let Some(at) = self.drop_at {
            // Re-slice the chunk at the fault boundary: the rows before the
            // drop are delivered, the call after the boundary fails.
            let remaining = (at - self.delivered.min(at)) as usize;
            if remaining == 0 {
                return Err(DhqpError::Unavailable(format!(
                    "injected fault: stream dropped after {} rows on '{}'",
                    self.delivered,
                    self.link.name()
                )));
            }
            want = want.min(remaining);
        }
        let batch = match self.inner.next_batch(want)? {
            Some(b) => b,
            None => return Ok(None),
        };
        self.delivered += batch.len() as u64;
        self.link
            .record_rows(batch.len() as u64, batch.wire_size() as u64);
        if has_hook() {
            emit_event(
                "batch_flush",
                &[
                    ("link", self.link.name().to_string()),
                    ("rows", batch.len().to_string()),
                    ("bytes", batch.wire_size().to_string()),
                ],
            );
        }
        Ok(Some(batch))
    }
}

fn rows_wire_size(rows: &[Row]) -> u64 {
    rows.iter().map(|r| r.wire_size() as u64).sum()
}

impl Session for NetworkedSession {
    fn open_rowset(&mut self, table: &str) -> Result<Box<dyn Rowset>> {
        self.link.record_request(32 + table.len() as u64);
        self.open_fault()?;
        let drop_at = self.stream_drop();
        Ok(Box::new(MeteredRowset::new(
            self.inner.open_rowset(table)?,
            self.link.clone(),
            drop_at,
        )))
    }

    fn create_command(&mut self) -> Result<Box<dyn Command>> {
        Ok(Box::new(NetworkedCommand {
            inner: self.inner.create_command()?,
            link: self.link.clone(),
            faults: self.faults.clone(),
            enlisted: Arc::clone(&self.enlisted),
            text: String::new(),
            text_len: 0,
        }))
    }

    fn open_index(
        &mut self,
        table: &str,
        index: &str,
        range: &KeyRange,
    ) -> Result<Box<dyn Rowset>> {
        self.link
            .record_request(48 + table.len() as u64 + index.len() as u64);
        self.open_fault()?;
        let drop_at = self.stream_drop();
        Ok(Box::new(MeteredRowset::new(
            self.inner.open_index(table, index, range)?,
            self.link.clone(),
            drop_at,
        )))
    }

    fn fetch_by_bookmarks(&mut self, table: &str, bookmarks: &[u64]) -> Result<Vec<Row>> {
        self.link.record_request(32 + 8 * bookmarks.len() as u64);
        let rows = self.inner.fetch_by_bookmarks(table, bookmarks)?;
        self.link
            .record_rows(rows.len() as u64, rows_wire_size(&rows));
        Ok(rows)
    }

    fn histogram(&mut self, table: &str, column: &str) -> Result<Option<Histogram>> {
        self.link.record_request(32);
        let h = self.inner.histogram(table, column)?;
        if let Some(h) = &h {
            // A histogram ships one (upper, rows, distinct) triple per step.
            self.link
                .record_rows(h.buckets.len() as u64, 24 * h.buckets.len() as u64);
        }
        Ok(h)
    }

    fn join_transaction(&mut self, txn: TxnId) -> Result<()> {
        self.link.record_request(16);
        self.inner.join_transaction(txn)?;
        // From here on this session carries transactional state; faults on
        // it would force non-idempotent resends, so injection stops.
        self.enlisted.store(true, Ordering::Relaxed);
        Ok(())
    }

    fn prepare(&mut self, txn: TxnId) -> Result<()> {
        self.link.record_request(16);
        self.inner.prepare(txn)
    }

    fn commit(&mut self, txn: TxnId) -> Result<()> {
        self.link.record_request(16);
        self.inner.commit(txn)
    }

    fn abort(&mut self, txn: TxnId) -> Result<()> {
        self.link.record_request(16);
        self.inner.abort(txn)
    }

    fn insert(&mut self, table: &str, rows: &[Row]) -> Result<u64> {
        self.link.record_request(32 + rows_wire_size(rows));
        self.inner.insert(table, rows)
    }

    fn delete_by_bookmarks(&mut self, table: &str, bookmarks: &[u64]) -> Result<u64> {
        self.link.record_request(32 + 8 * bookmarks.len() as u64);
        self.inner.delete_by_bookmarks(table, bookmarks)
    }

    fn update_by_bookmarks(
        &mut self,
        table: &str,
        bookmarks: &[u64],
        updates: &[Row],
    ) -> Result<u64> {
        self.link
            .record_request(32 + 8 * bookmarks.len() as u64 + rows_wire_size(updates));
        self.inner.update_by_bookmarks(table, bookmarks, updates)
    }
}

struct NetworkedCommand {
    inner: Box<dyn Command>,
    link: NetworkLink,
    faults: Option<Arc<FaultPlan>>,
    enlisted: Arc<AtomicBool>,
    text: String,
    text_len: u64,
}

impl Command for NetworkedCommand {
    fn set_text(&mut self, text: &str) -> Result<()> {
        self.text_len = text.len() as u64;
        self.text = text.to_string();
        self.inner.set_text(text)
    }

    fn bind_parameter(&mut self, ordinal: usize, value: Value) -> Result<()> {
        self.text_len += value.wire_size() as u64;
        self.inner.bind_parameter(ordinal, value)
    }

    fn execute(&mut self) -> Result<CommandResult> {
        // The command text crosses the wire on execute.
        self.link.record_request(self.text_len.max(16));
        let mut drop_at = None;
        if let Some(plan) = &self.faults {
            if !self.enlisted.load(Ordering::Relaxed) {
                if let Err(e) = plan.on_command(self.link.name(), &self.text) {
                    self.link.record_fault();
                    fault_event(&self.link, "command", e.message());
                    return Err(e);
                }
                if crate::fault::is_read_only(&self.text) {
                    drop_at = plan.on_stream();
                    if let Some(at) = drop_at {
                        self.link.record_fault();
                        fault_event(&self.link, "stream", &format!("drop after {at} rows"));
                    }
                }
            }
        }
        match self.inner.execute()? {
            CommandResult::Rowset(rs) => Ok(CommandResult::Rowset(Box::new(MeteredRowset::new(
                rs,
                self.link.clone(),
                drop_at,
            )))),
            CommandResult::RowCount(n) => Ok(CommandResult::RowCount(n)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::NetworkConfig;
    use dhqp_oledb::RowsetExt;
    use dhqp_storage::{LocalDataSource, StorageEngine, TableDef};
    use dhqp_types::{Column, DataType};

    /// Minimal command-capable provider: any command returns ten int rows
    /// (the storage-crate `LocalDataSource` has no command support).
    struct StubSource;

    fn ten_rows() -> Box<dyn Rowset> {
        let schema = Schema::new(vec![Column::not_null("x", DataType::Int)]);
        let rows = (0..10).map(|i| Row::new(vec![Value::Int(i)])).collect();
        Box::new(dhqp_oledb::MemRowset::new(schema, rows))
    }

    impl DataSource for StubSource {
        fn name(&self) -> &str {
            "stub"
        }

        fn capabilities(&self) -> ProviderCapabilities {
            ProviderCapabilities::simple("stub")
        }

        fn tables(&self) -> Result<Vec<TableInfo>> {
            Ok(vec![])
        }

        fn create_session(&self) -> Result<Box<dyn Session>> {
            Ok(Box::new(StubSession))
        }
    }

    struct StubSession;

    impl Session for StubSession {
        fn open_rowset(&mut self, _table: &str) -> Result<Box<dyn Rowset>> {
            Ok(ten_rows())
        }

        fn create_command(&mut self) -> Result<Box<dyn Command>> {
            Ok(Box::new(StubCommand))
        }

        fn join_transaction(&mut self, _txn: TxnId) -> Result<()> {
            Ok(())
        }

        fn abort(&mut self, _txn: TxnId) -> Result<()> {
            Ok(())
        }
    }

    struct StubCommand;

    impl Command for StubCommand {
        fn set_text(&mut self, _text: &str) -> Result<()> {
            Ok(())
        }

        fn bind_parameter(&mut self, _ordinal: usize, _value: Value) -> Result<()> {
            Ok(())
        }

        fn execute(&mut self) -> Result<CommandResult> {
            Ok(CommandResult::Rowset(ten_rows()))
        }
    }

    fn remote_engine() -> Arc<StorageEngine> {
        let engine = Arc::new(StorageEngine::new("remote0"));
        engine
            .create_table(
                TableDef::new("t", Schema::new(vec![Column::not_null("x", DataType::Int)]))
                    .with_index("pk", &["x"], true),
            )
            .unwrap();
        let rows: Vec<Row> = (0..10).map(|i| Row::new(vec![Value::Int(i)])).collect();
        engine.insert_rows("t", &rows).unwrap();
        engine
    }

    fn networked() -> NetworkedDataSource {
        let link = NetworkLink::new("link-r0", NetworkConfig::untimed());
        NetworkedDataSource::reliable(Arc::new(LocalDataSource::new(remote_engine())), link)
    }

    fn faulty(config: FaultConfig) -> NetworkedDataSource {
        let link = NetworkLink::new("link-r0", NetworkConfig::untimed());
        NetworkedDataSource::with_faults(
            Arc::new(LocalDataSource::new(remote_engine())),
            link,
            config,
        )
    }

    fn faulty_stub(config: FaultConfig) -> NetworkedDataSource {
        let link = NetworkLink::new("link-r0", NetworkConfig::untimed());
        NetworkedDataSource::with_faults(Arc::new(StubSource), link, config)
    }

    #[test]
    fn networked_decorators_cross_threads() {
        // Exchange workers open sessions and drain metered rowsets off the
        // consumer thread; the whole decorator stack must be Send (and the
        // shared source Sync).
        fn assert_send_sync<T: Send + Sync>() {}
        fn assert_send<T: Send>() {}
        assert_send_sync::<NetworkedDataSource>();
        assert_send::<NetworkedSession>();
        assert_send::<MeteredRowset>();
        assert_send::<NetworkedCommand>();
    }

    #[test]
    fn rowset_traffic_is_metered_per_row() {
        let ds = networked();
        let mut s = ds.create_session().unwrap();
        let before = ds.link().snapshot();
        let mut rs = s.open_rowset("t").unwrap();
        assert_eq!(rs.count_rows().unwrap(), 10);
        let delta = ds.link().snapshot().since(&before);
        assert_eq!(delta.rows, 10);
        assert_eq!(delta.requests, 1);
        assert_eq!(delta.bytes, 33 + 10 * 16); // request header + 10 rows of (8 hdr + 8 int)
    }

    #[test]
    fn batched_pull_ships_one_round_trip_per_chunk() {
        // Same rows, same bytes — but one wire flush per chunk instead of
        // one per row.
        let per_row = {
            let ds = networked();
            let mut s = ds.create_session().unwrap();
            let before = ds.link().snapshot();
            let mut rs = s.open_rowset("t").unwrap();
            while rs.next().unwrap().is_some() {}
            ds.link().snapshot().since(&before)
        };
        let batched = {
            let ds = networked();
            let mut s = ds.create_session().unwrap();
            let before = ds.link().snapshot();
            let mut rs = s.open_rowset("t").unwrap();
            while rs.next_batch(4).unwrap().is_some() {}
            ds.link().snapshot().since(&before)
        };
        assert_eq!(per_row.rows, 10);
        assert_eq!(per_row.batches, 10);
        assert_eq!(batched.rows, 10);
        assert_eq!(batched.batches, 3); // 4 + 4 + 2
        assert_eq!(per_row.bytes, batched.bytes);
        assert_eq!(per_row.requests, batched.requests);
    }

    #[test]
    fn injected_stream_drop_reslices_a_mid_fault_batch() {
        let ds = faulty(FaultConfig {
            stream_drops: 1.0,
            max_faults: 1,
            ..FaultConfig::none()
        });
        let mut s = ds.create_session().unwrap();
        let mut rs = s.open_rowset("t").unwrap();
        let mut delivered = 0u64;
        let err = loop {
            match rs.next_batch(4) {
                Ok(Some(b)) => {
                    assert!(b.len() <= 4);
                    delivered += b.len() as u64;
                }
                Ok(None) => panic!("stream must drop before completion"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), "unavailable");
        assert!((1..10).contains(&delivered), "delivered={delivered}");
        assert!(err.message().contains(&format!("after {delivered} rows")));
        // The delivered prefix is exactly what the link metered.
        assert_eq!(ds.link().snapshot().rows, delivered);
        // Budget spent: a reopened stream completes, batched.
        let mut rs = s.open_rowset("t").unwrap();
        let mut total = 0;
        while let Some(b) = rs.next_batch(4).unwrap() {
            total += b.len();
        }
        assert_eq!(total, 10);
    }

    #[test]
    fn index_open_counts_one_round_trip() {
        let ds = networked();
        let mut s = ds.create_session().unwrap();
        let before = ds.link().snapshot();
        let mut rs = s
            .open_index("t", "pk", &KeyRange::eq(vec![Value::Int(3)]))
            .unwrap();
        assert_eq!(rs.count_rows().unwrap(), 1);
        let delta = ds.link().snapshot().since(&before);
        assert_eq!(delta.requests, 1);
        assert_eq!(delta.rows, 1);
    }

    #[test]
    fn bookmark_fetch_meters_request_and_rows() {
        let ds = networked();
        let mut s = ds.create_session().unwrap();
        let mut rs = s.open_rowset("t").unwrap();
        let bm = rs.collect_rows().unwrap()[0].bookmark.unwrap();
        let before = ds.link().snapshot();
        let rows = s.fetch_by_bookmarks("t", &[bm]).unwrap();
        assert_eq!(rows.len(), 1);
        let delta = ds.link().snapshot().since(&before);
        assert_eq!(delta.requests, 1);
        assert_eq!(delta.rows, 1);
    }

    #[test]
    fn capabilities_carry_link_latency() {
        let engine = Arc::new(StorageEngine::new("r"));
        let link = NetworkLink::new("l", NetworkConfig::lan());
        let ds = NetworkedDataSource::reliable(Arc::new(LocalDataSource::new(engine)), link);
        assert_eq!(ds.capabilities().latency_hint_us, 500);
    }

    #[test]
    fn injected_command_error_is_transient_and_budgeted() {
        let ds = faulty_stub(FaultConfig::one_transient_per_link(3));
        let run = |ds: &NetworkedDataSource| -> Result<u64> {
            let mut s = ds.create_session()?;
            let mut cmd = s.create_command()?;
            cmd.set_text("SELECT x FROM t")?;
            cmd.execute()?.into_rowset()?.count_rows()
        };
        let err = run(&ds).unwrap_err();
        assert_eq!(err.kind(), "unavailable");
        assert!(err.is_retryable());
        assert_eq!(ds.link().faults_injected(), 1);
        // Budget of one: the retry succeeds.
        assert_eq!(run(&ds).unwrap(), 10);
        assert_eq!(ds.link().faults_injected(), 1);
    }

    #[test]
    fn injected_stream_drop_fails_mid_stream() {
        let ds = faulty(FaultConfig {
            stream_drops: 1.0,
            max_faults: 1,
            ..FaultConfig::none()
        });
        let mut s = ds.create_session().unwrap();
        let mut rs = s.open_rowset("t").unwrap();
        let mut delivered = 0;
        let err = loop {
            match rs.next() {
                Ok(Some(_)) => delivered += 1,
                Ok(None) => panic!("stream must drop before completion"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), "unavailable");
        assert!(delivered >= 1, "drop lands mid-stream, not before row one");
        assert!(err.message().contains("stream dropped"), "{err}");
        // Budget spent: a reopened stream completes.
        assert_eq!(s.open_rowset("t").unwrap().count_rows().unwrap(), 10);
    }

    #[test]
    fn enlisted_sessions_are_never_faulted() {
        let ds = faulty_stub(FaultConfig {
            command_errors: 1.0,
            stream_drops: 1.0,
            reads_only: false,
            ..FaultConfig::none()
        });
        let mut s = ds.create_session().unwrap();
        s.join_transaction(41).unwrap();
        // Both the rowset and the command path stay clean under a plan
        // that otherwise faults every operation.
        assert_eq!(s.open_rowset("t").unwrap().count_rows().unwrap(), 10);
        let mut cmd = s.create_command().unwrap();
        cmd.set_text("SELECT x FROM t").unwrap();
        assert_eq!(
            cmd.execute()
                .unwrap()
                .into_rowset()
                .unwrap()
                .count_rows()
                .unwrap(),
            10
        );
        assert_eq!(ds.link().faults_injected(), 0);
        s.abort(41).unwrap();
    }

    #[test]
    fn connect_refusal_counts_a_fault() {
        let ds = faulty(FaultConfig {
            connect_refusals: 1.0,
            max_faults: 1,
            ..FaultConfig::none()
        });
        let err = ds.create_session().map(|_| ()).unwrap_err();
        assert_eq!(err.kind(), "unavailable");
        assert_eq!(ds.link().faults_injected(), 1);
        assert!(ds.create_session().is_ok());
    }
}
