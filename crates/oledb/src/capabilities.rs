//! Provider capability descriptions (paper §3.1.1, §3.3).
//!
//! A data source object "supports interfaces used by DHQP to query the
//! capabilities of remote sources" — the SQL dialect level
//! (`DBPROP_SQLSUPPORT`), index and statistics support, and dialect details
//! (quoting characters, date literal formats, nested-SELECT support) that
//! the decoder needs to emit compliant SQL. The optimizer "constructs plans
//! such that the provider's capabilities are fully used while not
//! overshooting its limitations".

use serde::{Deserialize, Serialize};

/// Level of SQL the provider's command object accepts — the analog of the
/// `DBPROP_SQLSUPPORT` property. Ordered: each level includes the previous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SqlSupport {
    /// No command support at all: the provider can only open named rowsets
    /// (§3.3 "simple provider"). DHQP supplies *all* query functionality.
    None,
    /// "SQL Minimum": single-table SELECT with simple comparison predicates
    /// and projection. No joins, ordering, or grouping.
    Minimum,
    /// "ODBC Core": adds multi-table joins, ORDER BY, IN/BETWEEN/LIKE.
    OdbcCore,
    /// "SQL-92 Entry/Intermediate/Full": adds GROUP BY/aggregates and
    /// nested subqueries — a fully capable query processor.
    Sql92,
}

impl SqlSupport {
    pub fn supports_joins(&self) -> bool {
        *self >= SqlSupport::OdbcCore
    }

    pub fn supports_order_by(&self) -> bool {
        *self >= SqlSupport::OdbcCore
    }

    pub fn supports_group_by(&self) -> bool {
        *self >= SqlSupport::Sql92
    }

    pub fn supports_subqueries(&self) -> bool {
        *self >= SqlSupport::Sql92
    }

    /// Name as reported in explain output and the capability matrix bench.
    pub fn name(&self) -> &'static str {
        match self {
            SqlSupport::None => "none",
            SqlSupport::Minimum => "sql-minimum",
            SqlSupport::OdbcCore => "odbc-core",
            SqlSupport::Sql92 => "sql-92",
        }
    }
}

/// Broad classification from paper §3.3, derivable from the capability set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProviderClass {
    /// Connect + named rowsets only.
    Simple,
    /// Has a command object with a *proprietary* syntax: only pass-through
    /// (`OPENQUERY`) is possible.
    QueryPassThrough,
    /// Command object accepting a standard SQL dialect: full remoting.
    Sql,
    /// Additionally exposes index metadata, index rowsets and bookmarks.
    Index,
}

/// Dialect details the decoder consults when composing remote SQL
/// (paper §4.1.3: "the decoder responds to different parameter settings of
/// the connection ... e.g. the SQL dialect the remote sources support").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dialect {
    /// Identifier quoting: `"name"` vs `[name]` vs none.
    pub quote_open: char,
    pub quote_close: char,
    /// How date literals must be written, e.g. `DATE '1992-01-01'` vs
    /// `'1992-01-01'` vs `{d '1992-01-01'}` (ODBC escape).
    pub date_literal: DateLiteralStyle,
    /// Whether `SELECT ... FROM (SELECT ...)` derived tables are accepted —
    /// one of the extended properties the paper says providers communicate
    /// "beyond what is defined in SQL".
    pub nested_select: bool,
    /// Whether the dialect accepts `?`-style parameter markers, enabling the
    /// *parameterization* exploration rule against this source.
    pub parameter_markers: bool,
    /// Row-limit syntax available in this dialect, if any.
    pub limit_syntax: LimitSyntax,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DateLiteralStyle {
    /// `'1992-01-01'` (SQL Server style, collation-dependent).
    PlainString,
    /// `DATE '1992-01-01'` (SQL-92).
    Keyword,
    /// `{d '1992-01-01'}` (ODBC escape sequence).
    OdbcEscape,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LimitSyntax {
    None,
    /// `SELECT TOP n ...`
    Top,
    /// `... LIMIT n`
    Limit,
}

impl Default for Dialect {
    fn default() -> Self {
        Dialect {
            quote_open: '[',
            quote_close: ']',
            date_literal: DateLiteralStyle::PlainString,
            nested_select: true,
            parameter_markers: true,
            limit_syntax: LimitSyntax::Top,
        }
    }
}

impl Dialect {
    /// Quote an identifier for this dialect, doubling any embedded closing
    /// quote character.
    pub fn quote_ident(&self, name: &str) -> String {
        let mut s = String::with_capacity(name.len() + 2);
        s.push(self.quote_open);
        for c in name.chars() {
            s.push(c);
            if c == self.quote_close {
                s.push(c);
            }
        }
        s.push(self.quote_close);
        s
    }

    /// Render a date literal (ISO text already formatted by the caller).
    pub fn date_literal(&self, iso: &str) -> String {
        match self.date_literal {
            DateLiteralStyle::PlainString => format!("'{iso}'"),
            DateLiteralStyle::Keyword => format!("DATE '{iso}'"),
            DateLiteralStyle::OdbcEscape => format!("{{d '{iso}'}}"),
        }
    }
}

/// Everything the optimizer learns about a provider before planning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProviderCapabilities {
    /// Human-readable provider name ("SQLOLEDB", "MSIDXS", ...).
    pub provider_name: String,
    pub sql_support: SqlSupport,
    /// Command object exists but speaks a proprietary language (full-text,
    /// MDX, LDAP...): only pass-through queries are possible.
    pub proprietary_command: bool,
    /// Index metadata + `open_index` + bookmark fetch available.
    pub index_support: bool,
    /// Histogram/cardinality statistics available (§3.2.4).
    pub statistics_support: bool,
    /// Can enlist in distributed transactions (MSDTC analog).
    pub transaction_support: bool,
    pub dialect: Dialect,
    /// Estimated per-request latency in microseconds, advertised through
    /// connection properties; feeds the remote cost model.
    pub latency_hint_us: u64,
}

impl ProviderCapabilities {
    /// A provider exposing only named rowsets.
    pub fn simple(name: impl Into<String>) -> Self {
        ProviderCapabilities {
            provider_name: name.into(),
            sql_support: SqlSupport::None,
            proprietary_command: false,
            index_support: false,
            statistics_support: false,
            transaction_support: false,
            dialect: Dialect::default(),
            latency_hint_us: 0,
        }
    }

    /// A fully capable SQL-92 provider with indexes and statistics (the
    /// "remote SQL Server" shape).
    pub fn sql_server(name: impl Into<String>) -> Self {
        ProviderCapabilities {
            provider_name: name.into(),
            sql_support: SqlSupport::Sql92,
            proprietary_command: false,
            index_support: true,
            statistics_support: true,
            transaction_support: true,
            dialect: Dialect::default(),
            latency_hint_us: 500,
        }
    }

    /// The §3.3 provider classification.
    pub fn class(&self) -> ProviderClass {
        if self.proprietary_command {
            ProviderClass::QueryPassThrough
        } else if self.index_support {
            ProviderClass::Index
        } else if self.sql_support == SqlSupport::None {
            ProviderClass::Simple
        } else {
            ProviderClass::Sql
        }
    }

    /// Whether any textual command can be sent at all.
    pub fn has_command(&self) -> bool {
        self.proprietary_command || self.sql_support != SqlSupport::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_support_levels_are_ordered() {
        assert!(SqlSupport::None < SqlSupport::Minimum);
        assert!(SqlSupport::Minimum < SqlSupport::OdbcCore);
        assert!(SqlSupport::OdbcCore < SqlSupport::Sql92);
        assert!(!SqlSupport::Minimum.supports_joins());
        assert!(SqlSupport::OdbcCore.supports_joins());
        assert!(!SqlSupport::OdbcCore.supports_group_by());
        assert!(SqlSupport::Sql92.supports_subqueries());
    }

    #[test]
    fn classification_follows_paper_categories() {
        let mut caps = ProviderCapabilities::simple("CSV");
        assert_eq!(caps.class(), ProviderClass::Simple);
        assert!(!caps.has_command());

        caps.proprietary_command = true; // e.g. MSIDXS full-text
        assert_eq!(caps.class(), ProviderClass::QueryPassThrough);
        assert!(caps.has_command());

        let sql = ProviderCapabilities::sql_server("SQLOLEDB");
        assert_eq!(sql.class(), ProviderClass::Index);
        let mut no_idx = sql.clone();
        no_idx.index_support = false;
        assert_eq!(no_idx.class(), ProviderClass::Sql);
    }

    #[test]
    fn ident_quoting_escapes_close_char() {
        let d = Dialect::default();
        assert_eq!(d.quote_ident("Order Details"), "[Order Details]");
        assert_eq!(d.quote_ident("a]b"), "[a]]b]");
        let dq = Dialect {
            quote_open: '"',
            quote_close: '"',
            ..Dialect::default()
        };
        assert_eq!(dq.quote_ident("x\"y"), "\"x\"\"y\"");
    }

    #[test]
    fn date_literal_styles() {
        let mut d = Dialect::default();
        assert_eq!(d.date_literal("1992-01-01"), "'1992-01-01'");
        d.date_literal = DateLiteralStyle::Keyword;
        assert_eq!(d.date_literal("1992-01-01"), "DATE '1992-01-01'");
        d.date_literal = DateLiteralStyle::OdbcEscape;
        assert_eq!(d.date_literal("1992-01-01"), "{d '1992-01-01'}");
    }
}
