//! Data source, session and command objects (paper §3.1.1, Figure 3).
//!
//! The calling sequence mirrors OLE DB's: instantiate a data source
//! (`CoCreateInstance` + `IDBInitialize`), create a session
//! (`IDBCreateSession`), then either open a rowset directly on a named table
//! (`IOpenRowset`) or create a command, set its text, and execute it
//! (`IDBCreateCommand` → `ICommand::Execute`).
//!
//! Default method bodies return [`DhqpError::Unsupported`], so a *simple
//! provider* in the sense of §3.3 only implements `open_rowset` and gets
//! everything else — querying, indexing, statistics — layered on top by the
//! DHQP, exactly as the paper prescribes.

use crate::capabilities::ProviderCapabilities;
use crate::rowset::Rowset;
use crate::schema::TableInfo;
use crate::statistics::Histogram;
use crate::telemetry::LatencySummary;
use dhqp_types::{DhqpError, Result, Row, Value};
use serde::{Deserialize, Serialize};

/// Identifier of a distributed transaction, handed out by the coordinator.
pub type TxnId = u64;

/// A point-in-time copy of a source's wire counters; subtract two to get
/// per-query traffic. Defined here (rather than in the network simulator)
/// so the executor can attribute traffic to plan nodes through the
/// [`DataSource::traffic`] seam without knowing how a source is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TrafficSnapshot {
    pub requests: u64,
    pub rows: u64,
    pub bytes: u64,
    /// Row-shipping transfers: one per wire flush. Row-at-a-time cursoring
    /// records one per row; batched cursoring one per chunk, so
    /// `rows / batches` is the observed rows-per-round-trip gauge.
    #[serde(default)]
    pub batches: u64,
}

impl TrafficSnapshot {
    /// Traffic that happened between `earlier` and `self`. Saturating:
    /// snapshots taken across a link reset (or passed in the wrong order)
    /// clamp to zero instead of panicking on underflow.
    pub fn since(&self, earlier: &TrafficSnapshot) -> TrafficSnapshot {
        TrafficSnapshot {
            requests: self.requests.saturating_sub(earlier.requests),
            rows: self.rows.saturating_sub(earlier.rows),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            batches: self.batches.saturating_sub(earlier.batches),
        }
    }

    /// True when no traffic at all was recorded.
    pub fn is_zero(&self) -> bool {
        *self == TrafficSnapshot::default()
    }

    /// Average rows shipped per wire flush (`None` before any row shipped).
    pub fn rows_per_round_trip(&self) -> Option<f64> {
        if self.batches == 0 {
            None
        } else {
            Some(self.rows as f64 / self.batches as f64)
        }
    }
}

impl std::ops::Add for TrafficSnapshot {
    type Output = TrafficSnapshot;
    fn add(self, rhs: TrafficSnapshot) -> TrafficSnapshot {
        TrafficSnapshot {
            requests: self.requests + rhs.requests,
            rows: self.rows + rhs.rows,
            bytes: self.bytes + rhs.bytes,
            batches: self.batches + rhs.batches,
        }
    }
}

/// The connection abstraction: locate/activate a provider and describe it.
pub trait DataSource: Send + Sync {
    /// Linked-server-visible name of this data source instance.
    fn name(&self) -> &str;

    /// Capability set the optimizer plans against (`IDBProperties`/
    /// `IDBInfo`).
    fn capabilities(&self) -> ProviderCapabilities;

    /// Table metadata (`IDBSchemaRowset`): every table this source exposes,
    /// with columns, indexes and cardinality where known.
    fn tables(&self) -> Result<Vec<TableInfo>>;

    /// Create a unit-of-work session.
    fn create_session(&self) -> Result<Box<dyn Session>>;

    /// Cumulative wire-traffic counters for reaching this source, when it is
    /// metered (e.g. wrapped in a simulated network link). Local sources
    /// return `None`; the executor uses snapshot deltas to attribute
    /// requests/rows/bytes to individual remote plan nodes.
    fn traffic(&self) -> Option<TrafficSnapshot> {
        None
    }

    /// Per-request latency percentiles (microseconds) for reaching this
    /// source, when it is metered. Like [`DataSource::traffic`], local
    /// sources return `None`; simulated links report their modeled
    /// round-trip distribution.
    fn latency(&self) -> Option<LatencySummary> {
        None
    }

    /// Convenience metadata lookup.
    fn table(&self, name: &str) -> Result<TableInfo> {
        self.tables()?
            .into_iter()
            .find(|t| t.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| {
                DhqpError::Catalog(format!(
                    "table '{}' not found in source '{}'",
                    name,
                    self.name()
                ))
            })
    }
}

/// A seek range over an index (`IRowsetIndex::SetRange`): bounds are
/// composite key prefixes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KeyRange {
    /// Lower bound key prefix and whether it is inclusive.
    pub low: Option<(Vec<Value>, bool)>,
    /// Upper bound key prefix and whether it is inclusive.
    pub high: Option<(Vec<Value>, bool)>,
}

impl KeyRange {
    /// The unbounded range: full index scan in key order.
    pub fn all() -> Self {
        KeyRange::default()
    }

    /// Exact-match seek on a key prefix.
    pub fn eq(key: Vec<Value>) -> Self {
        KeyRange {
            low: Some((key.clone(), true)),
            high: Some((key, true)),
        }
    }

    /// Whether a key (compared column-wise on the shared prefix) falls in
    /// the range.
    pub fn contains(&self, key: &[Value]) -> bool {
        fn cmp_prefix(key: &[Value], bound: &[Value]) -> std::cmp::Ordering {
            for (k, b) in key.iter().zip(bound.iter()) {
                let o = k.total_cmp(b);
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        }
        if let Some((lo, inclusive)) = &self.low {
            match cmp_prefix(key, lo) {
                std::cmp::Ordering::Less => return false,
                std::cmp::Ordering::Equal if !inclusive => return false,
                _ => {}
            }
        }
        if let Some((hi, inclusive)) = &self.high {
            match cmp_prefix(key, hi) {
                std::cmp::Ordering::Greater => return false,
                std::cmp::Ordering::Equal if !inclusive => return false,
                _ => {}
            }
        }
        true
    }
}

/// Result of executing a command: either tabular data or an affected-row
/// count (DML).
pub enum CommandResult {
    Rowset(Box<dyn Rowset>),
    RowCount(u64),
}

impl CommandResult {
    pub fn into_rowset(self) -> Result<Box<dyn Rowset>> {
        match self {
            CommandResult::Rowset(r) => Ok(r),
            CommandResult::RowCount(_) => Err(DhqpError::Provider(
                "command returned a row count, expected a rowset".into(),
            )),
        }
    }

    pub fn into_row_count(self) -> Result<u64> {
        match self {
            CommandResult::RowCount(n) => Ok(n),
            CommandResult::Rowset(_) => Err(DhqpError::Provider(
                "command returned a rowset, expected a row count".into(),
            )),
        }
    }
}

/// The command object (`ICommand`): a textual query in whatever language the
/// provider speaks (Table 1 of the paper lists T-SQL, the Index Server
/// query language, MDX, LDAP, ...).
pub trait Command: Send {
    /// Set the command text (`ICommandText::SetCommandText`).
    fn set_text(&mut self, text: &str) -> Result<()>;

    /// Bind a positional parameter (enables the *parameterization*
    /// exploration rule of §4.1.2).
    fn bind_parameter(&mut self, ordinal: usize, value: Value) -> Result<()> {
        let _ = (ordinal, value);
        Err(DhqpError::Unsupported(
            "provider does not support command parameters".into(),
        ))
    }

    /// Execute and return rows or an affected count.
    fn execute(&mut self) -> Result<CommandResult>;
}

/// The session object: transactional scope + rowset factory.
#[allow(unused_variables)]
pub trait Session: Send {
    /// Open a rowset over a named base table (`IOpenRowset`). The one
    /// mandatory data-access method: every provider supports it.
    fn open_rowset(&mut self, table: &str) -> Result<Box<dyn Rowset>>;

    /// Create a command object, for providers with query support.
    fn create_command(&mut self) -> Result<Box<dyn Command>> {
        Err(DhqpError::Unsupported(
            "provider has no command support".into(),
        ))
    }

    /// Open a rowset over an index restricted to a key range
    /// (`IRowsetIndex`). Rows come back in key order carrying bookmarks.
    fn open_index(
        &mut self,
        table: &str,
        index: &str,
        range: &KeyRange,
    ) -> Result<Box<dyn Rowset>> {
        Err(DhqpError::Unsupported(
            "provider has no index support".into(),
        ))
    }

    /// Fetch base-table rows by bookmark (`IRowsetLocate`), in the order
    /// given; the basis of the *remote fetch* access path.
    fn fetch_by_bookmarks(&mut self, table: &str, bookmarks: &[u64]) -> Result<Vec<Row>> {
        Err(DhqpError::Unsupported(
            "provider has no bookmark support".into(),
        ))
    }

    /// Histogram over one column (the §3.2.4 statistics extension), `None`
    /// when the provider keeps no statistics for it.
    fn histogram(&mut self, table: &str, column: &str) -> Result<Option<Histogram>> {
        Ok(None)
    }

    /// Enlist this session in a distributed transaction
    /// (`ITransactionJoin::JoinTransaction`). Writes made through this
    /// session then commit or abort with the coordinator's decision.
    fn join_transaction(&mut self, txn: TxnId) -> Result<()> {
        Err(DhqpError::Unsupported(
            "provider cannot enlist in distributed transactions".into(),
        ))
    }

    /// 2PC phase one: promise to commit `txn`. Must be durable before
    /// returning Ok.
    fn prepare(&mut self, txn: TxnId) -> Result<()> {
        Err(DhqpError::Unsupported("provider cannot prepare".into()))
    }

    /// 2PC phase two: make `txn`'s writes visible.
    fn commit(&mut self, txn: TxnId) -> Result<()> {
        Err(DhqpError::Unsupported("provider cannot commit".into()))
    }

    /// 2PC phase two (failure path): discard `txn`'s writes.
    fn abort(&mut self, txn: TxnId) -> Result<()> {
        Err(DhqpError::Unsupported("provider cannot abort".into()))
    }

    /// Insert rows into a base table. Providers that only support command
    /// text can leave this unimplemented; the DHQP will send INSERT
    /// statements instead.
    fn insert(&mut self, table: &str, rows: &[Row]) -> Result<u64> {
        Err(DhqpError::Unsupported(
            "provider does not support direct inserts".into(),
        ))
    }

    /// Delete rows by bookmark. Returns the number deleted.
    fn delete_by_bookmarks(&mut self, table: &str, bookmarks: &[u64]) -> Result<u64> {
        Err(DhqpError::Unsupported(
            "provider does not support direct deletes".into(),
        ))
    }

    /// Update rows by bookmark: `updates[i]` replaces the row at
    /// `bookmarks[i]`.
    fn update_by_bookmarks(
        &mut self,
        table: &str,
        bookmarks: &[u64],
        updates: &[Row],
    ) -> Result<u64> {
        Err(DhqpError::Unsupported(
            "provider does not support direct updates".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rowset::MemRowset;
    use dhqp_types::Schema;

    struct NullSession;
    impl Session for NullSession {
        fn open_rowset(&mut self, _table: &str) -> Result<Box<dyn Rowset>> {
            Ok(Box::new(MemRowset::empty(Schema::empty())))
        }
    }

    #[test]
    fn trait_objects_cross_threads() {
        // The executor's exchange workers and prefetchers move sessions,
        // commands and rowsets onto worker threads while sharing the data
        // source itself — the trait bounds must guarantee it.
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        fn assert_send<T: Send + ?Sized>() {}
        assert_send_sync::<dyn DataSource>();
        assert_send::<dyn Session>();
        assert_send::<dyn Command>();
        assert_send::<dyn Rowset>();
        assert_send::<Box<dyn Rowset>>();
        assert_send_sync::<std::sync::Arc<dyn DataSource>>();
    }

    #[test]
    fn defaults_are_unsupported() {
        let mut s = NullSession;
        assert!(s.open_rowset("t").is_ok());
        assert!(matches!(s.create_command(), Err(DhqpError::Unsupported(_))));
        assert!(matches!(
            s.open_index("t", "i", &KeyRange::all()),
            Err(DhqpError::Unsupported(_))
        ));
        assert!(matches!(
            s.fetch_by_bookmarks("t", &[1]),
            Err(DhqpError::Unsupported(_))
        ));
        assert!(s.histogram("t", "c").unwrap().is_none());
        assert!(matches!(
            s.join_transaction(1),
            Err(DhqpError::Unsupported(_))
        ));
    }

    #[test]
    fn key_range_membership() {
        let r = KeyRange {
            low: Some((vec![Value::Int(10)], true)),
            high: Some((vec![Value::Int(20)], false)),
        };
        assert!(!r.contains(&[Value::Int(9)]));
        assert!(r.contains(&[Value::Int(10)]));
        assert!(r.contains(&[Value::Int(19)]));
        assert!(!r.contains(&[Value::Int(20)]));
        assert!(KeyRange::all().contains(&[Value::Int(123)]));
        let eq = KeyRange::eq(vec![Value::Int(5)]);
        assert!(eq.contains(&[Value::Int(5)]));
        assert!(!eq.contains(&[Value::Int(6)]));
    }

    #[test]
    fn composite_key_prefix_comparison() {
        // Range on (a) only; keys are (a, b).
        let r = KeyRange {
            low: Some((vec![Value::Int(3)], true)),
            high: Some((vec![Value::Int(3)], true)),
        };
        assert!(r.contains(&[Value::Int(3), Value::Int(999)]));
        assert!(!r.contains(&[Value::Int(4), Value::Int(0)]));
    }

    #[test]
    fn command_result_accessors() {
        let r = CommandResult::RowCount(3);
        assert_eq!(r.into_row_count().unwrap(), 3);
        let r = CommandResult::Rowset(Box::new(MemRowset::empty(Schema::empty())));
        assert!(r.into_rowset().is_ok());
        let r = CommandResult::RowCount(3);
        assert!(r.into_rowset().is_err());
    }
}
