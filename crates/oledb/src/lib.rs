//! OLE DB-style provider abstractions (paper §3).
//!
//! OLE DB defines a small object hierarchy — *data source* → *session* →
//! *command* → *rowset* (Figure 3 of the paper) — plus capability and
//! statistics extensions that let a query processor discover how much work a
//! source can do itself. This crate is the Rust rendering of that contract:
//!
//! | OLE DB                               | here                                   |
//! |--------------------------------------|----------------------------------------|
//! | `IDBInitialize` / `IDBCreateSession` | [`DataSource`]                         |
//! | `IOpenRowset` / `IDBCreateCommand`   | [`Session`]                            |
//! | `ICommand::Execute`                  | [`Command`]                            |
//! | `IRowset`                            | [`Rowset`]                             |
//! | `IRowsetIndex` (seek/range)          | [`Session::open_index`] + [`KeyRange`] |
//! | `IRowsetLocate` (bookmarks)          | [`Session::fetch_by_bookmarks`]        |
//! | `IDBSchemaRowset` / `TABLES_INFO`    | [`schema::TableInfo`] rowsets          |
//! | histogram rowset extension           | [`statistics::Histogram`]              |
//! | `DBPROP_SQLSUPPORT` etc.             | [`capabilities::ProviderCapabilities`] |
//! | `ITransactionJoin`                   | [`Session::join_transaction`]          |
//!
//! Every data source in the system — including the engine's own local
//! storage engine, exactly as in SQL Server — plugs in through these traits.

pub mod capabilities;
pub mod datasource;
pub mod rowset;
pub mod schema;
pub mod statistics;
pub mod telemetry;
pub mod waits;

pub use capabilities::{
    DateLiteralStyle, Dialect, LimitSyntax, ProviderCapabilities, ProviderClass, SqlSupport,
};
pub use datasource::{
    Command, CommandResult, DataSource, KeyRange, Session, TrafficSnapshot, TxnId,
};
pub use rowset::{BatchRowset, Batched, Debatched, MemRowset, Rowset, RowsetExt};
pub use schema::{ColumnInfo, IndexInfo, SchemaRowsetKind, TableInfo};
pub use statistics::{Histogram, HistogramBucket, TableStatistics};
pub use telemetry::{HistogramSnapshot, LatencySummary, LogHistogram, HISTOGRAM_BUCKETS};
pub use waits::{
    current_scope, emit_event, has_hook, install_scope, record_wait, timed_wait, ActivityScope,
    EventHook, ScopeGuard, WaitClass, WaitSnapshot, WaitStats, WaitTotals, WAIT_CLASSES,
};
