//! The rowset — OLE DB's unifying tabular abstraction (paper §3.1.2).
//!
//! "Base table providers present their data in the form of rowsets. Query
//! processors present the result of queries in the form of rowsets." Every
//! executor operator both consumes and produces this trait, so components
//! layer freely regardless of where the rows came from.
//!
//! The trait has two cursoring styles over one stream:
//!
//! * [`Rowset::next`] — the classic row-at-a-time pull.
//! * [`Rowset::next_batch`] — the vectorized pull: up to `max` rows per
//!   call as a [`RowBatch`]. The provided implementation coalesces `next`
//!   calls, so every existing rowset already speaks the batch protocol;
//!   hot-path operators override it to hand whole chunks through.
//!
//! [`BatchRowset`] is the batch-native trait for components that only think
//! in chunks, with blanket adapters in both directions: [`Batched`] lifts a
//! row cursor to the batch protocol, [`Debatched`] replays a batch cursor
//! row by row. Together they keep the row path alive as a compatibility
//! shim while each operator migrates independently.

use dhqp_types::{Result, Row, RowBatch, Schema};

/// A pull-based stream of rows with a fixed schema.
pub trait Rowset: Send {
    /// The shape of every row this rowset yields.
    fn schema(&self) -> &Schema;

    /// Fetch the next row, `None` at end of stream. Errors are sticky: after
    /// an error the rowset is in an unspecified state.
    fn next(&mut self) -> Result<Option<Row>>;

    /// Fetch up to `max` rows as one batch; `None` at end of stream, never
    /// `Some` of an empty batch. The default coalesces [`Rowset::next`]
    /// calls (the compatibility shim); batch-native rowsets override it to
    /// move whole chunks — one channel send, one simulated round trip —
    /// per call.
    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        let max = max.max(1);
        let mut batch = RowBatch::with_capacity(max);
        while batch.len() < max {
            match self.next()? {
                Some(row) => batch.push(row),
                None => break,
            }
        }
        if batch.is_empty() {
            Ok(None)
        } else {
            Ok(Some(batch))
        }
    }

    /// Remaining row count, when the rowset knows it exactly (materialized
    /// rowsets do). `None` means unknown; used to pre-size collections.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Extension helpers available on every rowset.
pub trait RowsetExt: Rowset {
    /// Drain the rowset into a vector, pre-sized from
    /// [`Rowset::size_hint`] when the remaining count is known.
    fn collect_rows(&mut self) -> Result<Vec<Row>> {
        let mut out = Vec::with_capacity(self.size_hint().unwrap_or(0));
        while let Some(r) = self.next()? {
            out.push(r);
        }
        Ok(out)
    }

    /// Drain the rowset through the batch protocol, pulling `chunk` rows
    /// per call — the vectorized drain the engine uses when batching is on.
    fn collect_rows_batched(&mut self, chunk: usize) -> Result<Vec<Row>> {
        let mut out = Vec::with_capacity(self.size_hint().unwrap_or(0));
        while let Some(batch) = self.next_batch(chunk)? {
            out.extend(batch);
        }
        Ok(out)
    }

    /// Count remaining rows. Uses the batch path so counting a batch-native
    /// rowset moves chunks, not one row per call.
    fn count_rows(&mut self) -> Result<u64> {
        let mut n = 0u64;
        while let Some(batch) = self.next_batch(COUNT_CHUNK)? {
            n += batch.len() as u64;
        }
        Ok(n)
    }
}

/// Batch granularity used by [`RowsetExt::count_rows`].
const COUNT_CHUNK: usize = 1024;

impl<T: Rowset + ?Sized> RowsetExt for T {}

impl Rowset for Box<dyn Rowset> {
    fn schema(&self) -> &Schema {
        self.as_ref().schema()
    }

    fn next(&mut self) -> Result<Option<Row>> {
        self.as_mut().next()
    }

    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        self.as_mut().next_batch(max)
    }

    fn size_hint(&self) -> Option<usize> {
        self.as_ref().size_hint()
    }
}

/// A pull-based stream of row *batches* with a fixed schema — the
/// batch-native side of the §3.1.2 abstraction.
pub trait BatchRowset: Send {
    /// The shape of every row in every batch.
    fn schema(&self) -> &Schema;

    /// Fetch the next batch of at most `max` rows; `None` at end of
    /// stream, never `Some` of an empty batch.
    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>>;
}

/// Adapter: any [`Rowset`] speaks [`BatchRowset`] by coalescing rows (or by
/// forwarding a native batch implementation, when the rowset has one).
pub struct Batched<R: Rowset>(pub R);

impl<R: Rowset> BatchRowset for Batched<R> {
    fn schema(&self) -> &Schema {
        self.0.schema()
    }

    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        self.0.next_batch(max)
    }
}

/// Adapter: any [`BatchRowset`] speaks [`Rowset`] by replaying each batch
/// row by row — the compatibility shim that lets a row-at-a-time consumer
/// sit above a batch-native producer.
pub struct Debatched<B: BatchRowset> {
    inner: B,
    /// How many rows to request per refill of the replay buffer.
    chunk: usize,
    buffer: std::vec::IntoIter<Row>,
}

impl<B: BatchRowset> Debatched<B> {
    pub fn new(inner: B, chunk: usize) -> Self {
        Debatched {
            inner,
            chunk: chunk.max(1),
            buffer: Vec::new().into_iter(),
        }
    }
}

impl<B: BatchRowset> Rowset for Debatched<B> {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next(&mut self) -> Result<Option<Row>> {
        if let Some(row) = self.buffer.next() {
            return Ok(Some(row));
        }
        match self.inner.next_batch(self.chunk)? {
            Some(batch) => {
                self.buffer = batch.into_rows().into_iter();
                Ok(self.buffer.next())
            }
            None => Ok(None),
        }
    }

    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        // Drain any replay remainder first, then forward whole batches.
        let buffered: Vec<Row> = self.buffer.by_ref().collect();
        if !buffered.is_empty() {
            return Ok(Some(RowBatch::from(buffered)));
        }
        self.inner.next_batch(max)
    }
}

/// A fully materialized in-memory rowset; the workhorse for providers that
/// compute results eagerly (schema rowsets, full-text results, spools).
pub struct MemRowset {
    schema: Schema,
    rows: std::vec::IntoIter<Row>,
}

impl MemRowset {
    pub fn new(schema: Schema, rows: Vec<Row>) -> Self {
        MemRowset {
            schema,
            rows: rows.into_iter(),
        }
    }

    pub fn empty(schema: Schema) -> Self {
        MemRowset::new(schema, Vec::new())
    }

    /// Rows remaining to be delivered.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.len() == 0
    }
}

impl Rowset for MemRowset {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>> {
        Ok(self.rows.next())
    }

    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        let take = max.max(1).min(self.rows.len());
        if take == 0 {
            return Ok(None);
        }
        Ok(Some(self.rows.by_ref().take(take).collect()))
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhqp_types::{Column, DataType, Value};

    fn rs() -> MemRowset {
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        let rows = (0..5).map(|i| Row::new(vec![Value::Int(i)])).collect();
        MemRowset::new(schema, rows)
    }

    #[test]
    fn collect_drains_all_rows() {
        let mut r = rs();
        assert_eq!(r.collect_rows().unwrap().len(), 5);
        assert!(r.next().unwrap().is_none());
    }

    #[test]
    fn count_rows() {
        assert_eq!(rs().count_rows().unwrap(), 5);
    }

    #[test]
    fn boxed_rowset_delegates() {
        let mut b: Box<dyn Rowset> = Box::new(rs());
        assert_eq!(b.schema().len(), 1);
        assert_eq!(b.size_hint(), Some(5));
        assert_eq!(b.collect_rows().unwrap().len(), 5);
    }

    #[test]
    fn mem_rowset_len_tracks_remaining() {
        let mut r = rs();
        assert_eq!(r.len(), 5);
        assert!(!r.is_empty());
        r.next().unwrap();
        assert_eq!(r.len(), 4);
        assert_eq!(r.size_hint(), Some(4));
    }

    #[test]
    fn next_batch_chunks_and_terminates() {
        let mut r = rs();
        let b = r.next_batch(2).unwrap().unwrap();
        assert_eq!(b.len(), 2);
        let b = r.next_batch(100).unwrap().unwrap();
        assert_eq!(b.len(), 3); // partial final batch
        assert!(r.next_batch(2).unwrap().is_none());
    }

    #[test]
    fn default_next_batch_coalesces_next_calls() {
        // A rowset with no override still speaks the batch protocol.
        struct OneByOne(std::vec::IntoIter<Row>, Schema);
        impl Rowset for OneByOne {
            fn schema(&self) -> &Schema {
                &self.1
            }
            fn next(&mut self) -> Result<Option<Row>> {
                Ok(self.0.next())
            }
        }
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        let rows: Vec<Row> = (0..5).map(|i| Row::new(vec![Value::Int(i)])).collect();
        let mut r = OneByOne(rows.into_iter(), schema);
        assert_eq!(r.next_batch(3).unwrap().unwrap().len(), 3);
        assert_eq!(r.next_batch(3).unwrap().unwrap().len(), 2);
        assert!(r.next_batch(3).unwrap().is_none());
        assert_eq!(r.size_hint(), None);
    }

    #[test]
    fn batched_and_debatched_round_trip() {
        let batched = Batched(rs());
        let mut row_view = Debatched::new(batched, 2);
        let rows = row_view.collect_rows().unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[4].get(0), &Value::Int(4));

        // Mixed cursoring: a row pull mid-stream leaves a replay remainder
        // that the next batch pull must surface before new chunks.
        let mut mixed = Debatched::new(Batched(rs()), 3);
        assert_eq!(mixed.next().unwrap().unwrap().get(0), &Value::Int(0));
        let remainder = mixed.next_batch(10).unwrap().unwrap();
        assert_eq!(remainder.len(), 2); // rows 1,2 buffered from the chunk of 3
        let fresh = mixed.next_batch(10).unwrap().unwrap();
        assert_eq!(fresh.len(), 2); // rows 3,4
        assert!(mixed.next_batch(10).unwrap().is_none());
    }

    #[test]
    fn count_rows_uses_batch_path() {
        // MemRowset's native batches move chunks; the count must still be
        // exact across partial final batches.
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        let rows = (0..2500).map(|i| Row::new(vec![Value::Int(i)])).collect();
        let mut r = MemRowset::new(schema, rows);
        assert_eq!(r.count_rows().unwrap(), 2500);
    }
}
