//! The rowset — OLE DB's unifying tabular abstraction (paper §3.1.2).
//!
//! "Base table providers present their data in the form of rowsets. Query
//! processors present the result of queries in the form of rowsets." Every
//! executor operator both consumes and produces this trait, so components
//! layer freely regardless of where the rows came from.

use dhqp_types::{Result, Row, Schema};

/// A pull-based stream of rows with a fixed schema.
pub trait Rowset: Send {
    /// The shape of every row this rowset yields.
    fn schema(&self) -> &Schema;

    /// Fetch the next row, `None` at end of stream. Errors are sticky: after
    /// an error the rowset is in an unspecified state.
    fn next(&mut self) -> Result<Option<Row>>;
}

/// Extension helpers available on every rowset.
pub trait RowsetExt: Rowset {
    /// Drain the rowset into a vector.
    fn collect_rows(&mut self) -> Result<Vec<Row>> {
        let mut out = Vec::new();
        while let Some(r) = self.next()? {
            out.push(r);
        }
        Ok(out)
    }

    /// Count remaining rows without materializing them.
    fn count_rows(&mut self) -> Result<u64> {
        let mut n = 0;
        while self.next()?.is_some() {
            n += 1;
        }
        Ok(n)
    }
}

impl<T: Rowset + ?Sized> RowsetExt for T {}

impl Rowset for Box<dyn Rowset> {
    fn schema(&self) -> &Schema {
        self.as_ref().schema()
    }

    fn next(&mut self) -> Result<Option<Row>> {
        self.as_mut().next()
    }
}

/// A fully materialized in-memory rowset; the workhorse for providers that
/// compute results eagerly (schema rowsets, full-text results, spools).
pub struct MemRowset {
    schema: Schema,
    rows: std::vec::IntoIter<Row>,
}

impl MemRowset {
    pub fn new(schema: Schema, rows: Vec<Row>) -> Self {
        MemRowset {
            schema,
            rows: rows.into_iter(),
        }
    }

    pub fn empty(schema: Schema) -> Self {
        MemRowset::new(schema, Vec::new())
    }
}

impl Rowset for MemRowset {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>> {
        Ok(self.rows.next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhqp_types::{Column, DataType, Value};

    fn rs() -> MemRowset {
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        let rows = (0..5).map(|i| Row::new(vec![Value::Int(i)])).collect();
        MemRowset::new(schema, rows)
    }

    #[test]
    fn collect_drains_all_rows() {
        let mut r = rs();
        assert_eq!(r.collect_rows().unwrap().len(), 5);
        assert!(r.next().unwrap().is_none());
    }

    #[test]
    fn count_rows() {
        assert_eq!(rs().count_rows().unwrap(), 5);
    }

    #[test]
    fn boxed_rowset_delegates() {
        let mut b: Box<dyn Rowset> = Box::new(rs());
        assert_eq!(b.schema().len(), 1);
        assert_eq!(b.collect_rows().unwrap().len(), 5);
    }
}
