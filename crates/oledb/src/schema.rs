//! Schema metadata — the `IDBSchemaRowset` analog (paper Table 2).
//!
//! "Rowsets are also used to return metadata, such as database schema,
//! supported data type information, extended column information and
//! statistics." Providers describe their tables with [`TableInfo`]; the
//! generic [`SchemaRowsetKind::to_rowset`] renders that metadata *as a
//! rowset*, preserving OLE DB's everything-is-a-rowset discipline (the
//! `TABLES_INFO` schema rowset carries cardinality, §3.2.4).

use crate::rowset::MemRowset;
use dhqp_types::{Column, DataType, Row, Schema, Value};
use serde::{Deserialize, Serialize};

/// Column metadata as exposed by a provider.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnInfo {
    pub name: String,
    pub data_type: DataType,
    pub nullable: bool,
}

impl ColumnInfo {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnInfo {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }

    pub fn not_null(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnInfo {
            name: name.into(),
            data_type,
            nullable: false,
        }
    }

    pub fn to_column(&self) -> Column {
        Column {
            name: self.name.clone(),
            data_type: self.data_type,
            nullable: self.nullable,
        }
    }
}

/// Index metadata (`IDBSchemaRowset` indexes rowset). Required for the
/// *index provider* category of §3.3.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexInfo {
    pub name: String,
    /// Key column names in key order.
    pub key_columns: Vec<String>,
    pub unique: bool,
}

/// Table metadata, including the `TABLES_INFO` cardinality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableInfo {
    pub name: String,
    pub columns: Vec<ColumnInfo>,
    pub indexes: Vec<IndexInfo>,
    /// Row count as reported through TABLES_INFO, if the provider knows it.
    pub cardinality: Option<u64>,
}

impl TableInfo {
    pub fn new(name: impl Into<String>, columns: Vec<ColumnInfo>) -> Self {
        TableInfo {
            name: name.into(),
            columns,
            indexes: Vec::new(),
            cardinality: None,
        }
    }

    pub fn with_cardinality(mut self, n: u64) -> Self {
        self.cardinality = Some(n);
        self
    }

    pub fn with_index(mut self, index: IndexInfo) -> Self {
        self.indexes.push(index);
        self
    }

    /// The runtime [`Schema`] of rowsets opened on this table.
    pub fn schema(&self) -> Schema {
        Schema::new(self.columns.iter().map(ColumnInfo::to_column).collect())
    }

    /// Case-insensitive column lookup.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Find an index whose leading key column is `column`.
    pub fn index_on(&self, column: &str) -> Option<&IndexInfo> {
        self.indexes.iter().find(|ix| {
            ix.key_columns
                .first()
                .is_some_and(|k| k.eq_ignore_ascii_case(column))
        })
    }
}

/// Which schema rowset to materialize, mirroring the OLE DB schema-rowset
/// GUIDs the paper lists in Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemaRowsetKind {
    /// One row per table: name, column count, cardinality.
    Tables,
    /// One row per column: table, name, type, nullable.
    Columns,
    /// One row per index key column: table, index, column, position, unique.
    Indexes,
}

impl SchemaRowsetKind {
    /// Render provider metadata as a rowset of this kind.
    pub fn to_rowset(self, tables: &[TableInfo]) -> MemRowset {
        match self {
            SchemaRowsetKind::Tables => {
                let schema = Schema::new(vec![
                    Column::not_null("TABLE_NAME", DataType::Str),
                    Column::not_null("COLUMN_COUNT", DataType::Int),
                    Column::new("CARDINALITY", DataType::Int),
                ]);
                let rows = tables
                    .iter()
                    .map(|t| {
                        Row::new(vec![
                            Value::Str(t.name.clone()),
                            Value::Int(t.columns.len() as i64),
                            t.cardinality.map_or(Value::Null, |n| Value::Int(n as i64)),
                        ])
                    })
                    .collect();
                MemRowset::new(schema, rows)
            }
            SchemaRowsetKind::Columns => {
                let schema = Schema::new(vec![
                    Column::not_null("TABLE_NAME", DataType::Str),
                    Column::not_null("COLUMN_NAME", DataType::Str),
                    Column::not_null("DATA_TYPE", DataType::Str),
                    Column::not_null("IS_NULLABLE", DataType::Bool),
                ]);
                let rows = tables
                    .iter()
                    .flat_map(|t| {
                        t.columns.iter().map(move |c| {
                            Row::new(vec![
                                Value::Str(t.name.clone()),
                                Value::Str(c.name.clone()),
                                Value::Str(c.data_type.sql_name().to_string()),
                                Value::Bool(c.nullable),
                            ])
                        })
                    })
                    .collect();
                MemRowset::new(schema, rows)
            }
            SchemaRowsetKind::Indexes => {
                let schema = Schema::new(vec![
                    Column::not_null("TABLE_NAME", DataType::Str),
                    Column::not_null("INDEX_NAME", DataType::Str),
                    Column::not_null("COLUMN_NAME", DataType::Str),
                    Column::not_null("ORDINAL", DataType::Int),
                    Column::not_null("IS_UNIQUE", DataType::Bool),
                ]);
                let rows = tables
                    .iter()
                    .flat_map(|t| {
                        t.indexes.iter().flat_map(move |ix| {
                            ix.key_columns.iter().enumerate().map(move |(pos, col)| {
                                Row::new(vec![
                                    Value::Str(t.name.clone()),
                                    Value::Str(ix.name.clone()),
                                    Value::Str(col.clone()),
                                    Value::Int(pos as i64 + 1),
                                    Value::Bool(ix.unique),
                                ])
                            })
                        })
                    })
                    .collect();
                MemRowset::new(schema, rows)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rowset::RowsetExt;

    fn sample() -> Vec<TableInfo> {
        vec![TableInfo::new(
            "customer",
            vec![
                ColumnInfo::not_null("c_custkey", DataType::Int),
                ColumnInfo::new("c_name", DataType::Str),
            ],
        )
        .with_cardinality(1500)
        .with_index(IndexInfo {
            name: "pk_customer".into(),
            key_columns: vec!["c_custkey".into()],
            unique: true,
        })]
    }

    #[test]
    fn tables_rowset_reports_cardinality() {
        let mut rs = SchemaRowsetKind::Tables.to_rowset(&sample());
        let rows = rs.collect_rows().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Value::Str("customer".into()));
        assert_eq!(rows[0].get(2), &Value::Int(1500));
    }

    #[test]
    fn columns_rowset_one_row_per_column() {
        let mut rs = SchemaRowsetKind::Columns.to_rowset(&sample());
        let rows = rs.collect_rows().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get(1), &Value::Str("c_name".into()));
        assert_eq!(rows[0].get(3), &Value::Bool(false));
    }

    #[test]
    fn indexes_rowset_one_row_per_key_column() {
        let mut rs = SchemaRowsetKind::Indexes.to_rowset(&sample());
        let rows = rs.collect_rows().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(1), &Value::Str("pk_customer".into()));
        assert_eq!(rows[0].get(4), &Value::Bool(true));
    }

    #[test]
    fn index_lookup_by_leading_column() {
        let t = &sample()[0];
        assert!(t.index_on("C_CUSTKEY").is_some());
        assert!(t.index_on("c_name").is_none());
        assert_eq!(t.column_index("C_NAME"), Some(1));
    }
}
