//! Statistics rowsets (paper §3.2.4).
//!
//! "Another supported extension allows remote sources to pass statistical
//! information (including histograms) from remote sources into the optimizer
//! to generate more accurate cardinality estimates over remote operations.
//! This commonly provides order of magnitude improvements on cardinality
//! estimates." Experiment E7 measures exactly that claim.
//!
//! Histograms are equi-depth: each bucket holds roughly the same number of
//! rows between an exclusive lower and an inclusive upper bound, with a
//! distinct-value count for equality estimates.

use dhqp_types::{Interval, IntervalBound, IntervalSet, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One histogram step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Inclusive upper bound of the bucket.
    pub upper: Value,
    /// Rows with values in `(previous_upper, upper]`.
    pub rows: f64,
    /// Distinct values in the bucket.
    pub distinct: f64,
}

/// An equi-depth histogram over one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Minimum non-null value (the exclusive floor of the first bucket is
    /// just below it).
    pub min: Value,
    pub buckets: Vec<HistogramBucket>,
    pub null_rows: f64,
    pub total_rows: f64,
}

/// Map a value onto the real line for within-bucket interpolation; `None`
/// for types we do not interpolate (strings fall back to whole-bucket
/// counting).
fn as_real(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        Value::Date(d) => Some(*d as f64),
        Value::Bool(b) => Some(*b as i64 as f64),
        _ => None,
    }
}

impl Histogram {
    /// Build an equi-depth histogram from a sorted, non-null value sample.
    /// `values` must be sorted by [`Value::total_cmp`].
    pub fn build(values: &[Value], bucket_count: usize, null_rows: f64) -> Option<Histogram> {
        if values.is_empty() || bucket_count == 0 {
            return None;
        }
        let per_bucket = (values.len() as f64 / bucket_count as f64).ceil() as usize;
        let per_bucket = per_bucket.max(1);
        let mut buckets = Vec::new();
        let mut start = 0;
        while start < values.len() {
            let mut end = (start + per_bucket).min(values.len());
            // Extend the bucket so equal values never straddle a boundary —
            // otherwise equality estimates double-count.
            while end < values.len() && values[end] == values[end - 1] {
                end += 1;
            }
            let slice = &values[start..end];
            let mut distinct = 1.0;
            for w in slice.windows(2) {
                if w[0] != w[1] {
                    distinct += 1.0;
                }
            }
            buckets.push(HistogramBucket {
                upper: slice[slice.len() - 1].clone(),
                rows: slice.len() as f64,
                distinct,
            });
            start = end;
        }
        Some(Histogram {
            min: values[0].clone(),
            buckets,
            null_rows,
            total_rows: values.len() as f64 + null_rows,
        })
    }

    /// Estimated number of rows equal to `v`.
    pub fn estimate_eq(&self, v: &Value) -> f64 {
        if v.is_null() {
            return 0.0;
        }
        let mut lower = &self.min;
        for b in &self.buckets {
            let in_bucket = v.total_cmp(lower) != std::cmp::Ordering::Less
                && v.total_cmp(&b.upper) != std::cmp::Ordering::Greater;
            if in_bucket {
                return b.rows / b.distinct.max(1.0);
            }
            lower = &b.upper;
        }
        0.0
    }

    /// Estimated number of rows whose value lies in `interval`.
    pub fn estimate_interval(&self, interval: &Interval) -> f64 {
        if interval.is_empty() {
            return 0.0;
        }
        let mut rows = 0.0;
        let mut lower = self.min.clone();
        let mut first = true;
        for b in &self.buckets {
            // Bucket covers [lower, upper] for the first bucket, else
            // (lower, upper].
            let bucket_iv = if first {
                Interval {
                    low: IntervalBound::Included(lower.clone()),
                    high: IntervalBound::Included(b.upper.clone()),
                }
            } else {
                Interval {
                    low: IntervalBound::Excluded(lower.clone()),
                    high: IntervalBound::Included(b.upper.clone()),
                }
            };
            if let Some(overlap) = bucket_iv.intersect(interval) {
                rows += b.rows * fraction_of(&bucket_iv, &overlap, b.distinct);
            }
            lower = b.upper.clone();
            first = false;
        }
        rows
    }

    /// Estimated rows whose value lies in any interval of `set`.
    pub fn estimate_set(&self, set: &IntervalSet) -> f64 {
        set.intervals()
            .iter()
            .map(|i| self.estimate_interval(i))
            .sum()
    }

    /// Selectivity (fraction of all rows, nulls excluded by predicates).
    pub fn selectivity(&self, set: &IntervalSet) -> f64 {
        if self.total_rows <= 0.0 {
            return 0.0;
        }
        (self.estimate_set(set) / self.total_rows).clamp(0.0, 1.0)
    }
}

/// Fraction of `bucket` covered by `overlap`, interpolating linearly for
/// numeric/date domains and falling back to a distinct-count heuristic for
/// strings.
fn fraction_of(bucket: &Interval, overlap: &Interval, distinct: f64) -> f64 {
    let ends = |iv: &Interval| -> Option<(f64, f64)> {
        let lo = match &iv.low {
            IntervalBound::Included(v) | IntervalBound::Excluded(v) => as_real(v)?,
            IntervalBound::Unbounded => f64::NEG_INFINITY,
        };
        let hi = match &iv.high {
            IntervalBound::Included(v) | IntervalBound::Excluded(v) => as_real(v)?,
            IntervalBound::Unbounded => f64::INFINITY,
        };
        Some((lo, hi))
    };
    let is_point = matches!(
        (&overlap.low, &overlap.high),
        (IntervalBound::Included(a), IntervalBound::Included(b)) if a == b
    );
    match (ends(bucket), ends(overlap)) {
        (Some((blo, bhi)), Some((olo, ohi))) if bhi > blo && bhi.is_finite() && blo.is_finite() => {
            if is_point {
                // A point lookup inside a wide bucket hits one distinct
                // value's share of rows, not a zero-width slice.
                1.0 / distinct.max(1.0)
            } else {
                ((ohi.min(bhi) - olo.max(blo)) / (bhi - blo)).clamp(0.0, 1.0)
            }
        }
        // Degenerate single-value bucket or non-numeric domain: a point
        // overlap hits one distinct value; anything wider is assumed to
        // cover the whole bucket.
        _ => {
            if is_point {
                1.0 / distinct.max(1.0)
            } else {
                1.0
            }
        }
    }
}

/// Per-table statistics bundle a provider can expose.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TableStatistics {
    pub row_count: Option<u64>,
    /// Histograms keyed by lower-cased column name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl TableStatistics {
    pub fn histogram(&self, column: &str) -> Option<&Histogram> {
        self.histograms.get(&column.to_ascii_lowercase())
    }

    pub fn set_histogram(&mut self, column: &str, h: Histogram) {
        self.histograms.insert(column.to_ascii_lowercase(), h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(range: std::ops::Range<i64>) -> Vec<Value> {
        range.map(Value::Int).collect()
    }

    #[test]
    fn build_equi_depth() {
        let h = Histogram::build(&ints(0..1000), 10, 0.0).unwrap();
        assert_eq!(h.buckets.len(), 10);
        assert!((h.total_rows - 1000.0).abs() < 1e-9);
        for b in &h.buckets {
            assert!((b.rows - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn equality_estimate_uses_distinct_counts() {
        let h = Histogram::build(&ints(0..1000), 10, 0.0).unwrap();
        let est = h.estimate_eq(&Value::Int(512));
        assert!((est - 1.0).abs() < 0.5, "estimate {est} should be about 1");
        assert_eq!(h.estimate_eq(&Value::Int(5000)), 0.0);
        assert_eq!(h.estimate_eq(&Value::Null), 0.0);
    }

    #[test]
    fn range_estimate_interpolates() {
        let h = Histogram::build(&ints(0..1000), 10, 0.0).unwrap();
        let set = IntervalSet::single(Interval::between(Value::Int(0), Value::Int(249)));
        let est = h.estimate_set(&set);
        assert!(
            (est - 250.0).abs() < 30.0,
            "estimate {est} should be near 250"
        );
        assert!((h.selectivity(&set) - 0.25).abs() < 0.05);
    }

    #[test]
    fn skewed_duplicates_stay_in_one_bucket() {
        // 900 copies of 7 plus 0..100 — heavy skew.
        let mut vals = vec![Value::Int(7); 900];
        vals.extend(ints(0..100));
        vals.sort_by(|a, b| a.total_cmp(b));
        let h = Histogram::build(&vals, 10, 0.0).unwrap();
        let est = h.estimate_eq(&Value::Int(7));
        assert!(est > 100.0, "skewed key should estimate high, got {est}");
    }

    #[test]
    fn disjoint_set_estimates_add() {
        let h = Histogram::build(&ints(0..1000), 10, 0.0).unwrap();
        let set = IntervalSet::single(Interval::between(Value::Int(0), Value::Int(99))).union(
            &IntervalSet::single(Interval::between(Value::Int(500), Value::Int(599))),
        );
        let est = h.estimate_set(&set);
        assert!(
            (est - 200.0).abs() < 40.0,
            "estimate {est} should be near 200"
        );
    }

    #[test]
    fn empty_input_yields_no_histogram() {
        assert!(Histogram::build(&[], 10, 0.0).is_none());
    }

    #[test]
    fn table_statistics_lookup_is_case_insensitive() {
        let mut stats = TableStatistics::default();
        stats.set_histogram(
            "C_NationKey",
            Histogram::build(&ints(0..25), 5, 0.0).unwrap(),
        );
        assert!(stats.histogram("c_nationkey").is_some());
        assert!(stats.histogram("C_NATIONKEY").is_some());
        assert!(stats.histogram("missing").is_none());
    }
}
