//! Lock-free log-bucketed histograms for wire telemetry.
//!
//! Links and engines record latencies (in microseconds) and payload sizes
//! (in bytes) into a [`LogHistogram`]: a fixed array of power-of-two
//! buckets updated with relaxed atomics, so the recording path costs one
//! `leading_zeros` and one `fetch_add` — cheap enough to leave on
//! unconditionally. Percentiles come from a cumulative walk over a
//! [`HistogramSnapshot`] and are reported as the upper edge of the bucket
//! the requested rank falls in (log-bucket resolution: exact to within 2×).
//!
//! Defined here (rather than in the network simulator) for the same reason
//! as [`TrafficSnapshot`](crate::TrafficSnapshot): the executor and the
//! engine's DMVs read latency distributions through the
//! [`DataSource::latency`](crate::DataSource::latency) seam without knowing
//! how a source is reached.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets. Bucket `i` counts observations in
/// `[2^i, 2^(i+1))` (bucket 0 also absorbs zero), so 40 buckets span one
/// microsecond to ~12 days — far beyond any modeled link latency.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A fixed log2-bucketed histogram, safe to record into from any thread
/// without locks.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl LogHistogram {
    /// Index of the bucket covering `value`: `floor(log2(value))`, clamped.
    fn bucket_of(value: u64) -> usize {
        if value < 2 {
            0
        } else {
            ((63 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Record one observation (relaxed atomics: counters only, no ordering
    /// is implied between them).
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Zero every counter (used by link resets between bench phases).
    pub fn clear(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`LogHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Upper edge of the bucket holding the `p`-th percentile observation
    /// (`p` in `0.0..=100.0`), clamped to the recorded maximum. Zero when
    /// the histogram is empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket i covers [2^i, 2^(i+1)); report the upper edge,
                // clamped so p100 never exceeds the true maximum.
                let upper = if i + 1 >= 64 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The three percentiles everyone asks for, as one copyable struct.
    pub fn latency_summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            p50_us: self.percentile(50.0),
            p95_us: self.percentile(95.0),
            p99_us: self.percentile(99.0),
            max_us: self.max,
        }
    }
}

/// Request-latency percentiles for one source, in microseconds. The unit is
/// fixed by the [`DataSource::latency`](crate::DataSource::latency) contract
/// even though [`LogHistogram`] itself is unit-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    pub count: u64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_and_percentiles() {
        let h = LogHistogram::default();
        assert!(h.snapshot().is_empty());
        assert_eq!(h.snapshot().percentile(99.0), 0);
        for _ in 0..99 {
            h.record(500); // bucket 8: [256, 512)
        }
        h.record(20_000); // bucket 14: [16384, 32768)
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 20_000);
        // p50/p95 land in the 500µs bucket [256, 512); upper edge 511.
        assert_eq!(s.percentile(50.0), 511);
        assert_eq!(s.percentile(95.0), 511);
        // p100 hits the outlier bucket but clamps to the true max.
        assert_eq!(s.percentile(100.0), 20_000);
        let sum = s.latency_summary();
        assert!(sum.p50_us >= 500 && sum.p50_us <= 511);
        assert!(sum.p99_us >= sum.p50_us);
        h.clear();
        assert!(h.snapshot().is_empty());
    }

    #[test]
    fn edge_values() {
        let h = LogHistogram::default();
        h.record(0);
        h.record(1);
        h.record(u64::MAX); // clamps to the last bucket without panicking
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1);
        // The last bucket's upper edge, not the raw max: overflow values
        // are clamped into bucket 39 whose edge is 2^40 - 1.
        assert_eq!(s.percentile(100.0), (1u64 << HISTOGRAM_BUCKETS) - 1);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = LogHistogram::default().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0);
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(s.percentile(p), 0);
        }
        assert_eq!(s.latency_summary(), LatencySummary::default());
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let h = LogHistogram::default();
        h.record(300); // bucket 8: [256, 512)
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean(), 300);
        // Every rank falls in the one occupied bucket, and the upper edge
        // clamps to the (only) observed value.
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(s.percentile(p), 300, "p={p}");
        }
    }

    #[test]
    fn top_bucket_saturates_without_losing_counts() {
        let h = LogHistogram::default();
        // Everything at/above 2^39 collapses into the final bucket.
        h.record(1u64 << 39);
        h.record(1u64 << 45);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 3);
        assert_eq!(s.count, 3);
        assert_eq!(s.max, u64::MAX);
        // sum wraps-by-saturation is not promised; count/max must be exact.
        assert_eq!(s.percentile(50.0), (1u64 << HISTOGRAM_BUCKETS) - 1);
    }

    #[test]
    fn snapshot_while_recording_is_internally_sane() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let h = Arc::new(LogHistogram::default());
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let h = Arc::clone(&h);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    h.record(n % 1000 + 1);
                    n += 1;
                }
                n
            })
        };
        // Snapshots taken mid-stream must never observe more bucketed
        // observations than the final count, and percentiles must not
        // panic on a moving target.
        let mut snapshots = Vec::new();
        for _ in 0..50 {
            let s = h.snapshot();
            let bucketed: u64 = s.buckets.iter().sum();
            assert!(s.percentile(99.0) <= s.max.max(1024));
            snapshots.push((bucketed, s.count));
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        let total = writer.join().unwrap();
        for (bucketed, _) in snapshots {
            assert!(bucketed <= total, "{bucketed} > {total}");
        }
        assert_eq!(h.snapshot().count, total);
        let final_bucketed: u64 = h.snapshot().buckets.iter().sum();
        assert_eq!(final_bucketed, total);
    }

    #[test]
    fn concurrent_recording() {
        use std::sync::Arc;
        let h = Arc::new(LogHistogram::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        h.record(i);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count, 4000);
    }
}
