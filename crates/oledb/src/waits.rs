//! Wait-state accounting and the activity scope low layers report into.
//!
//! SQL Server's signature diagnostic surface is `sys.dm_os_wait_stats`:
//! every blocking point in the engine is tagged with a *wait class* and
//! accumulates `(count, total_time, max_time)` per class. This module is
//! that taxonomy for the DHQP — the modeled link round trips, retry
//! backoff sleeps, exchange channel stalls, spool materialization, 2PC
//! votes and the compile path all report here.
//!
//! It lives in `dhqp_oledb` for the same layering reason as
//! [`LogHistogram`](crate::LogHistogram): the network simulator, the
//! executor and the transaction coordinator all block, but none of them may
//! depend on the engine crate that aggregates and serves the numbers. They
//! instead call the free functions [`record_wait`] / [`emit_event`], which
//! fan out to whatever [`ActivityScope`] the engine installed on the
//! current thread (a no-op when nothing is installed, so library users who
//! never arm the engine pay one thread-local read per blocking point).
//!
//! Worker threads (exchange branches, the prefetcher) are spawned while a
//! scope is installed; the spawner captures [`current_scope`] and installs
//! it in the worker body so waits incurred off the consumer thread still
//! land in the same per-query and engine-cumulative sinks.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Why time elapsed: the engine's wait-class taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaitClass {
    /// Modeled link round-trip and transfer time (netsim delay model).
    NetworkIo,
    /// Retry backoff sleeps between attempts on a transient remote error.
    RetryBackoff,
    /// An exchange producer blocked because the bounded channel was full.
    ExchangeQueueFull,
    /// The exchange consumer blocked because no producer had a row ready.
    ExchangeQueueEmpty,
    /// Spool miss: materializing the child rowset into the shared cache.
    Spool,
    /// 2PC phase one: collecting prepare votes from every participant.
    DtcPrepare,
    /// 2PC phase two: delivering the commit decision.
    DtcCommit,
    /// Compile path: parse + bind + optimize for one statement.
    PlanCompile,
    /// Fetching remote table metadata/histograms for the stats cache.
    StatsFetch,
    /// A remote operation rejected fast because the link's circuit
    /// breaker was open (no wire traffic, no backoff burned).
    CircuitOpen,
}

/// Number of wait classes (array-indexed accounting).
pub const WAIT_CLASSES: usize = 10;

impl WaitClass {
    /// Every class, in DMV display order.
    pub const ALL: [WaitClass; WAIT_CLASSES] = [
        WaitClass::NetworkIo,
        WaitClass::RetryBackoff,
        WaitClass::ExchangeQueueFull,
        WaitClass::ExchangeQueueEmpty,
        WaitClass::Spool,
        WaitClass::DtcPrepare,
        WaitClass::DtcCommit,
        WaitClass::PlanCompile,
        WaitClass::StatsFetch,
        WaitClass::CircuitOpen,
    ];

    /// The SQL Server-style ALL_CAPS wait-type name.
    pub fn name(self) -> &'static str {
        match self {
            WaitClass::NetworkIo => "NETWORK_IO",
            WaitClass::RetryBackoff => "RETRY_BACKOFF",
            WaitClass::ExchangeQueueFull => "EXCHANGE_QUEUE_FULL",
            WaitClass::ExchangeQueueEmpty => "EXCHANGE_QUEUE_EMPTY",
            WaitClass::Spool => "SPOOL",
            WaitClass::DtcPrepare => "DTC_PREPARE",
            WaitClass::DtcCommit => "DTC_COMMIT",
            WaitClass::PlanCompile => "PLAN_COMPILE",
            WaitClass::StatsFetch => "STATS_FETCH",
            WaitClass::CircuitOpen => "CIRCUIT_OPEN",
        }
    }

    fn index(self) -> usize {
        match self {
            WaitClass::NetworkIo => 0,
            WaitClass::RetryBackoff => 1,
            WaitClass::ExchangeQueueFull => 2,
            WaitClass::ExchangeQueueEmpty => 3,
            WaitClass::Spool => 4,
            WaitClass::DtcPrepare => 5,
            WaitClass::DtcCommit => 6,
            WaitClass::PlanCompile => 7,
            WaitClass::StatsFetch => 8,
            WaitClass::CircuitOpen => 9,
        }
    }
}

/// Per-class `(count, total, max)` atomics — the same relaxed lock-free
/// idiom as [`LogHistogram`](crate::LogHistogram), so recording from
/// exchange workers costs three `fetch_add`-class operations and no locks.
#[derive(Debug, Default)]
pub struct WaitStats {
    counts: [AtomicU64; WAIT_CLASSES],
    total_us: [AtomicU64; WAIT_CLASSES],
    max_us: [AtomicU64; WAIT_CLASSES],
}

impl WaitStats {
    /// Record one wait of `d` under `class`.
    pub fn record(&self, class: WaitClass, d: Duration) {
        let i = class.index();
        let us = d.as_micros() as u64;
        self.counts[i].fetch_add(1, Ordering::Relaxed);
        self.total_us[i].fetch_add(us, Ordering::Relaxed);
        self.max_us[i].fetch_max(us, Ordering::Relaxed);
    }

    /// Point-in-time copy of every class.
    pub fn snapshot(&self) -> WaitSnapshot {
        let mut classes = [WaitTotals::default(); WAIT_CLASSES];
        for (i, slot) in classes.iter_mut().enumerate() {
            *slot = WaitTotals {
                count: self.counts[i].load(Ordering::Relaxed),
                total_us: self.total_us[i].load(Ordering::Relaxed),
                max_us: self.max_us[i].load(Ordering::Relaxed),
            };
        }
        WaitSnapshot { classes }
    }

    /// Zero every class — `DBCC SQLPERF('sys.dm_os_wait_stats', CLEAR)`.
    pub fn clear(&self) {
        for i in 0..WAIT_CLASSES {
            self.counts[i].store(0, Ordering::Relaxed);
            self.total_us[i].store(0, Ordering::Relaxed);
            self.max_us[i].store(0, Ordering::Relaxed);
        }
    }
}

/// One class's accumulated totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaitTotals {
    pub count: u64,
    pub total_us: u64,
    pub max_us: u64,
}

/// A point-in-time copy of a [`WaitStats`], indexed by [`WaitClass`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaitSnapshot {
    classes: [WaitTotals; WAIT_CLASSES],
}

impl WaitSnapshot {
    pub fn get(&self, class: WaitClass) -> WaitTotals {
        self.classes[class.index()]
    }

    /// `(class, totals)` for every class with at least one wait.
    pub fn nonzero(&self) -> Vec<(WaitClass, WaitTotals)> {
        WaitClass::ALL
            .iter()
            .map(|&c| (c, self.get(c)))
            .filter(|(_, t)| t.count > 0)
            .collect()
    }

    /// Total waited time across all classes.
    pub fn total_wait_us(&self) -> u64 {
        self.classes.iter().map(|t| t.total_us).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.classes.iter().all(|t| t.count == 0)
    }

    /// The class that accounts for the most waited time, if any time was
    /// waited at all — a slow query's one-word diagnosis.
    pub fn dominant(&self) -> Option<WaitClass> {
        WaitClass::ALL
            .iter()
            .copied()
            .filter(|c| self.get(*c).total_us > 0)
            .max_by_key(|c| self.get(*c).total_us)
    }
}

/// Receiver for structured events raised below the engine crate (retry
/// attempts, injected faults, exchange worker lifecycle, 2PC transitions).
/// The engine's event bus implements this and translates the string kinds
/// into its typed event ring.
pub trait EventHook: Send + Sync {
    fn emit(&self, kind: &'static str, attrs: &[(&'static str, String)]);
}

/// What the engine installs per statement: the wait sinks every blocking
/// point reports into, plus the optional event hook.
#[derive(Clone, Default)]
pub struct ActivityScope {
    sinks: Vec<Arc<WaitStats>>,
    hook: Option<Arc<dyn EventHook>>,
}

impl ActivityScope {
    pub fn new(sinks: Vec<Arc<WaitStats>>, hook: Option<Arc<dyn EventHook>>) -> Self {
        ActivityScope { sinks, hook }
    }

    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty() && self.hook.is_none()
    }
}

thread_local! {
    static CURRENT: RefCell<ActivityScope> = RefCell::new(ActivityScope::default());
}

/// Install `scope` on this thread until the returned guard drops, restoring
/// whatever was installed before (statements nest: a DMV query issued while
/// handling another statement sees its own scope, then the outer one
/// again).
pub fn install_scope(scope: ActivityScope) -> ScopeGuard {
    let previous = CURRENT.with(|c| c.replace(scope));
    ScopeGuard { previous }
}

/// The scope currently installed on this thread (empty when none). Spawners
/// capture this and re-install it inside worker threads.
pub fn current_scope() -> ActivityScope {
    CURRENT.with(|c| c.borrow().clone())
}

/// Restores the previously installed scope on drop.
pub struct ScopeGuard {
    previous: ActivityScope,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.replace(std::mem::take(&mut self.previous));
        });
    }
}

/// Record one wait into every sink of the current thread's scope.
pub fn record_wait(class: WaitClass, d: Duration) {
    CURRENT.with(|c| {
        for sink in &c.borrow().sinks {
            sink.record(class, d);
        }
    });
}

/// Raise one structured event through the current thread's hook, if any.
/// `attrs` are only rendered by the receiver, so an un-hooked thread pays
/// for building them — callers on hot paths should check [`has_hook`]
/// first when attribute construction allocates.
pub fn emit_event(kind: &'static str, attrs: &[(&'static str, String)]) {
    CURRENT.with(|c| {
        if let Some(hook) = &c.borrow().hook {
            hook.emit(kind, attrs);
        }
    });
}

/// Whether the current thread's scope carries an event hook.
pub fn has_hook() -> bool {
    CURRENT.with(|c| c.borrow().hook.is_some())
}

/// Time `f` and record the elapsed time under `class`.
pub fn timed_wait<T>(class: WaitClass, f: impl FnOnce() -> T) -> T {
    let t0 = std::time::Instant::now();
    let out = f();
    record_wait(class, t0.elapsed());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot_per_class() {
        let w = WaitStats::default();
        w.record(WaitClass::NetworkIo, Duration::from_micros(500));
        w.record(WaitClass::NetworkIo, Duration::from_micros(1500));
        w.record(WaitClass::RetryBackoff, Duration::from_millis(10));
        let s = w.snapshot();
        assert_eq!(s.get(WaitClass::NetworkIo).count, 2);
        assert_eq!(s.get(WaitClass::NetworkIo).total_us, 2000);
        assert_eq!(s.get(WaitClass::NetworkIo).max_us, 1500);
        assert_eq!(s.get(WaitClass::RetryBackoff).count, 1);
        assert_eq!(s.dominant(), Some(WaitClass::RetryBackoff));
        assert_eq!(s.total_wait_us(), 12_000);
        assert_eq!(s.nonzero().len(), 2);
        w.clear();
        assert!(w.snapshot().is_empty());
        assert_eq!(w.snapshot().dominant(), None);
    }

    #[test]
    fn scope_fans_out_and_restores() {
        let engine = Arc::new(WaitStats::default());
        let query = Arc::new(WaitStats::default());
        record_wait(WaitClass::Spool, Duration::from_millis(1)); // no scope: dropped
        {
            let _g = install_scope(ActivityScope::new(
                vec![Arc::clone(&engine), Arc::clone(&query)],
                None,
            ));
            record_wait(WaitClass::Spool, Duration::from_millis(2));
            {
                // Nested statement gets its own scope...
                let inner = Arc::new(WaitStats::default());
                let _g2 = install_scope(ActivityScope::new(vec![Arc::clone(&inner)], None));
                record_wait(WaitClass::Spool, Duration::from_millis(4));
                assert_eq!(inner.snapshot().get(WaitClass::Spool).count, 1);
            }
            // ...and the outer scope is back after it finishes.
            record_wait(WaitClass::Spool, Duration::from_millis(8));
        }
        record_wait(WaitClass::Spool, Duration::from_millis(16)); // dropped again
        for sink in [&engine, &query] {
            let t = sink.snapshot().get(WaitClass::Spool);
            assert_eq!(t.count, 2);
            assert_eq!(t.total_us, 10_000);
        }
    }

    #[test]
    fn worker_threads_inherit_a_captured_scope() {
        let sink = Arc::new(WaitStats::default());
        let _g = install_scope(ActivityScope::new(vec![Arc::clone(&sink)], None));
        let scope = current_scope();
        std::thread::spawn(move || {
            let _g = install_scope(scope);
            record_wait(WaitClass::ExchangeQueueFull, Duration::from_millis(3));
        })
        .join()
        .unwrap();
        assert_eq!(sink.snapshot().get(WaitClass::ExchangeQueueFull).count, 1);
    }

    #[test]
    fn events_reach_the_hook() {
        use std::sync::Mutex;
        struct Capture(Mutex<Vec<String>>);
        impl EventHook for Capture {
            fn emit(&self, kind: &'static str, attrs: &[(&'static str, String)]) {
                self.0
                    .lock()
                    .unwrap()
                    .push(format!("{kind}:{}", attrs.len()));
            }
        }
        let hook = Arc::new(Capture(Mutex::new(Vec::new())));
        assert!(!has_hook());
        emit_event("dropped", &[]);
        {
            let _g = install_scope(ActivityScope::new(vec![], Some(hook.clone())));
            assert!(has_hook());
            emit_event("retry", &[("server", "m1".to_string())]);
        }
        assert_eq!(hook.0.lock().unwrap().as_slice(), ["retry:1"]);
    }

    #[test]
    fn timed_wait_records_elapsed() {
        let sink = Arc::new(WaitStats::default());
        let _g = install_scope(ActivityScope::new(vec![Arc::clone(&sink)], None));
        let out = timed_wait(WaitClass::PlanCompile, || {
            std::thread::sleep(Duration::from_millis(2));
            7
        });
        assert_eq!(out, 7);
        let t = sink.snapshot().get(WaitClass::PlanCompile);
        assert_eq!(t.count, 1);
        assert!(t.total_us >= 1500, "{t:?}");
    }

    #[test]
    fn class_names_are_screaming_snake() {
        for c in WaitClass::ALL {
            assert!(c
                .name()
                .chars()
                .all(|ch| ch.is_ascii_uppercase() || ch == '_' || ch.is_ascii_digit()));
        }
        assert_eq!(WaitClass::ALL.len(), WAIT_CLASSES);
    }
}
