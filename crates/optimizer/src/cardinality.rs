//! Logical property derivation: output columns, cardinality estimates, the
//! constraint-domain framework, keys and row widths.
//!
//! Histograms fetched from providers (§3.2.4) ride along in the properties
//! so every operator above a `Get` can refine estimates — this is the
//! machinery experiment E7 turns off to measure the paper's
//! "order of magnitude improvements on cardinality estimates" claim.

use crate::logical::{JoinKind, LogicalOp};
use crate::props::{ColumnId, ColumnRegistry, LogicalProps};
use crate::scalar::{CmpOp, ScalarExpr};
use dhqp_oledb::Histogram;
use dhqp_types::{DataType, IntervalSet};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Default selectivities when no histogram can answer (classic
/// System-R-style magic numbers).
pub const SEL_EQ_DEFAULT: f64 = 0.05;
pub const SEL_RANGE_DEFAULT: f64 = 1.0 / 3.0;
pub const SEL_LIKE_DEFAULT: f64 = 0.25;
pub const SEL_OTHER_DEFAULT: f64 = 0.5;
const DEFAULT_NDV: f64 = 100.0;

fn width_of(t: DataType) -> f64 {
    match t {
        DataType::Bool => 1.0,
        DataType::Int | DataType::Float => 8.0,
        DataType::Date => 4.0,
        DataType::Str => 24.0,
    }
}

/// Histograms available to an operator, keyed by column identity.
pub type HistogramMap = BTreeMap<ColumnId, Arc<Histogram>>;

/// Derive group properties for `op` given its children's properties.
pub fn derive_props(
    op: &LogicalOp,
    children: &[&LogicalProps],
    registry: &ColumnRegistry,
) -> LogicalProps {
    match op {
        LogicalOp::Get { meta, columns } => {
            let mut domains = BTreeMap::new();
            for (pos, domain) in &meta.checks {
                domains.insert(meta.column_id(*pos), domain.clone());
            }
            let mut histograms = BTreeMap::new();
            if let Some(stats) = &meta.stats {
                for (pos, col) in meta.schema.columns().iter().enumerate() {
                    if let Some(h) = stats.histogram(&col.name) {
                        histograms.insert(meta.column_id(pos), Arc::new(h.clone()));
                    }
                }
            }
            let keys = meta
                .indexes
                .iter()
                .filter(|ix| ix.unique && ix.key_columns.len() == 1)
                .filter_map(|ix| {
                    meta.schema
                        .index_of(&ix.key_columns[0])
                        .map(|pos| meta.column_id(pos))
                })
                .collect();
            let row_width = columns
                .iter()
                .map(|&c| width_of(registry.meta(c).data_type))
                .sum::<f64>()
                + 8.0;
            LogicalProps {
                columns: columns.clone(),
                cardinality: meta.estimated_rows(),
                row_width,
                domains,
                keys,
                histograms,
            }
        }
        LogicalOp::EmptyGet { columns } => LogicalProps {
            columns: columns.clone(),
            cardinality: 0.0,
            row_width: 8.0,
            domains: BTreeMap::new(),
            keys: Vec::new(),
            histograms: BTreeMap::new(),
        },
        LogicalOp::Values { columns, rows } => LogicalProps {
            columns: columns.clone(),
            cardinality: rows.len() as f64,
            row_width: columns
                .iter()
                .map(|&c| width_of(registry.meta(c).data_type))
                .sum::<f64>()
                + 8.0,
            domains: BTreeMap::new(),
            keys: Vec::new(),
            histograms: BTreeMap::new(),
        },
        LogicalOp::Filter { predicate } => {
            let child = children[0];
            let sel = predicate_selectivity(predicate, child);
            let mut domains = child.domains.clone();
            let mut contradiction = false;
            for col in predicate.columns() {
                let pred_dom = predicate.domain_for(col);
                if !pred_dom.is_full() {
                    let merged = child.domain_of(col).intersect(&pred_dom);
                    contradiction |= merged.is_empty();
                    domains.insert(col, merged);
                }
            }
            let cardinality = if contradiction {
                0.0
            } else {
                (child.cardinality * sel).max(0.0)
            };
            LogicalProps {
                columns: child.columns.clone(),
                cardinality,
                row_width: child.row_width,
                domains,
                keys: child.keys.clone(),
                histograms: child.histograms.clone(),
            }
        }
        LogicalOp::StartupFilter { .. } => {
            let child = children[0];
            child.clone()
        }
        LogicalOp::Project { outputs } => {
            let child = children[0];
            let mut domains = BTreeMap::new();
            let mut keys = Vec::new();
            let mut histograms = BTreeMap::new();
            for (out, expr) in outputs {
                if let ScalarExpr::Column(src) = expr {
                    if let Some(d) = child.domains.get(src) {
                        domains.insert(*out, d.clone());
                    }
                    if child.keys.contains(src) {
                        keys.push(*out);
                    }
                    if let Some(h) = child.histograms.get(src) {
                        histograms.insert(*out, Arc::clone(h));
                    }
                }
            }
            let row_width = outputs
                .iter()
                .map(|(c, _)| width_of(registry.meta(*c).data_type))
                .sum::<f64>()
                + 8.0;
            LogicalProps {
                columns: outputs.iter().map(|(c, _)| *c).collect(),
                cardinality: child.cardinality,
                row_width,
                domains,
                keys,
                histograms,
            }
        }
        LogicalOp::Join { kind, predicate } => {
            let (l, r) = (children[0], children[1]);
            let mut columns = l.columns.clone();
            if kind.produces_right() {
                columns.extend(r.columns.iter().copied());
            }
            let inner_card = join_cardinality(predicate.as_ref(), l, r);
            let cardinality = match kind {
                JoinKind::Inner => inner_card,
                JoinKind::Cross => l.cardinality * r.cardinality,
                JoinKind::LeftOuter => inner_card.max(l.cardinality),
                JoinKind::Semi => (l.cardinality * 0.5).max(1.0).min(l.cardinality),
                JoinKind::Anti => (l.cardinality * 0.5).max(0.0),
            };
            let mut domains = l.domains.clone();
            let mut histograms = l.histograms.clone();
            if kind.produces_right() {
                domains.extend(r.domains.iter().map(|(k, v)| (*k, v.clone())));
                histograms.extend(r.histograms.iter().map(|(k, v)| (*k, Arc::clone(v))));
            }
            // Equi-join transfers domain knowledge across sides.
            if let Some(p) = predicate {
                for (lc, rc) in equi_key_columns(p, l, r) {
                    let merged = join_domains(&domains, l, r, lc, rc);
                    domains.insert(lc, merged.clone());
                    if kind.produces_right() {
                        domains.insert(rc, merged);
                    }
                }
            }
            let keys = match kind {
                JoinKind::Semi | JoinKind::Anti => l.keys.clone(),
                _ => Vec::new(),
            };
            let row_width = l.row_width
                + if kind.produces_right() {
                    r.row_width
                } else {
                    0.0
                };
            LogicalProps {
                columns,
                cardinality,
                row_width,
                domains,
                keys,
                histograms,
            }
        }
        LogicalOp::Aggregate { group_by, aggs } => {
            let child = children[0];
            let mut columns = group_by.clone();
            columns.extend(aggs.iter().map(|a| a.output));
            let groups = if group_by.is_empty() {
                1.0
            } else {
                let ndv: f64 = group_by
                    .iter()
                    .map(|c| {
                        child
                            .histograms
                            .get(c)
                            .map(|h| h.buckets.iter().map(|b| b.distinct).sum::<f64>())
                            .unwrap_or(DEFAULT_NDV)
                    })
                    .product();
                ndv.min(child.cardinality).max(1.0)
            };
            let mut domains = BTreeMap::new();
            let mut keys = Vec::new();
            for c in group_by {
                if let Some(d) = child.domains.get(c) {
                    domains.insert(*c, d.clone());
                }
            }
            if group_by.len() == 1 {
                keys.push(group_by[0]);
            }
            let row_width = columns
                .iter()
                .map(|&c| width_of(registry.meta(c).data_type))
                .sum::<f64>()
                + 8.0;
            LogicalProps {
                columns,
                cardinality: groups,
                row_width,
                domains,
                keys,
                histograms: BTreeMap::new(),
            }
        }
        LogicalOp::UnionAll { output } => {
            let cardinality = children.iter().map(|c| c.cardinality).sum();
            // Domain of output column i is the union of each child's i-th
            // column domain — this is how a partitioned view's combined
            // domain is known to the pruning rules.
            let mut domains = BTreeMap::new();
            for (i, out) in output.iter().enumerate() {
                let mut dom: Option<IntervalSet> = None;
                for child in children {
                    let child_col = child.columns.get(i);
                    let d = child_col
                        .map(|c| child.domain_of(*c))
                        .unwrap_or_else(IntervalSet::full);
                    dom = Some(match dom {
                        None => d,
                        Some(acc) => acc.union(&d),
                    });
                }
                if let Some(d) = dom {
                    if !d.is_full() {
                        domains.insert(*out, d);
                    }
                }
            }
            let row_width = children.first().map(|c| c.row_width).unwrap_or(8.0);
            LogicalProps {
                columns: output.clone(),
                cardinality,
                row_width,
                domains,
                keys: Vec::new(),
                histograms: BTreeMap::new(),
            }
        }
        LogicalOp::Limit { n } => {
            let child = children[0];
            LogicalProps {
                cardinality: child.cardinality.min(*n as f64),
                ..child.clone()
            }
        }
    }
}

/// Merge the domains of two equi-joined columns.
fn join_domains(
    domains: &BTreeMap<ColumnId, IntervalSet>,
    l: &LogicalProps,
    r: &LogicalProps,
    lc: ColumnId,
    rc: ColumnId,
) -> IntervalSet {
    let ld = domains.get(&lc).cloned().unwrap_or_else(|| l.domain_of(lc));
    let rd = domains.get(&rc).cloned().unwrap_or_else(|| r.domain_of(rc));
    ld.intersect(&rd)
}

/// Extract `(left column, right column)` pairs from equality conjuncts that
/// bridge the two sides.
pub fn equi_key_columns(
    predicate: &ScalarExpr,
    l: &LogicalProps,
    r: &LogicalProps,
) -> Vec<(ColumnId, ColumnId)> {
    let mut out = Vec::new();
    for conj in predicate.conjuncts() {
        if let ScalarExpr::Cmp {
            op: CmpOp::Eq,
            left,
            right,
        } = &conj
        {
            if let (ScalarExpr::Column(a), ScalarExpr::Column(b)) = (left.as_ref(), right.as_ref())
            {
                if l.columns.contains(a) && r.columns.contains(b) {
                    out.push((*a, *b));
                } else if l.columns.contains(b) && r.columns.contains(a) {
                    out.push((*b, *a));
                }
            }
        }
    }
    out
}

/// Estimated distinct values of a column.
fn ndv(props: &LogicalProps, col: ColumnId) -> f64 {
    if props.keys.contains(&col) {
        return props.cardinality.max(1.0);
    }
    props
        .histograms
        .get(&col)
        .map(|h| h.buckets.iter().map(|b| b.distinct).sum::<f64>())
        .unwrap_or(DEFAULT_NDV)
        .min(props.cardinality.max(1.0))
}

/// Inner-join cardinality estimate.
fn join_cardinality(predicate: Option<&ScalarExpr>, l: &LogicalProps, r: &LogicalProps) -> f64 {
    let cross = l.cardinality * r.cardinality;
    let Some(p) = predicate else { return cross };
    let keys = equi_key_columns(p, l, r);
    let mut card = cross;
    for (lc, rc) in &keys {
        // When one side joins on its unique key, containment gives the
        // classic FK estimate: one match per foreign-key row.
        let divisor = if l.keys.contains(lc) {
            ndv(l, *lc)
        } else if r.keys.contains(rc) {
            ndv(r, *rc)
        } else {
            ndv(l, *lc).max(ndv(r, *rc))
        };
        card /= divisor.max(1.0);
    }
    if keys.is_empty() {
        card *= predicate_selectivity(p, l).max(0.01);
    }
    // Residual non-equi conjuncts.
    let residual = p.conjuncts().len().saturating_sub(keys.len());
    for _ in 0..residual.min(2) {
        if !keys.is_empty() {
            card *= 0.9;
        }
    }
    card.max(0.0)
}

/// Selectivity of a filter predicate against its input.
pub fn predicate_selectivity(predicate: &ScalarExpr, input: &LogicalProps) -> f64 {
    let mut sel = 1.0;
    for conj in predicate.conjuncts() {
        sel *= conjunct_selectivity(&conj, input);
    }
    sel.clamp(0.0, 1.0)
}

fn conjunct_selectivity(conj: &ScalarExpr, input: &LogicalProps) -> f64 {
    // Single-column predicates answerable from a histogram.
    let cols = conj.columns();
    if cols.len() == 1 {
        let col = *cols.iter().next().expect("len checked");
        let dom = conj.domain_for(col);
        if !dom.is_full() {
            if dom.is_empty() {
                return 0.0;
            }
            if let Some(h) = input.histograms.get(&col) {
                return h.selectivity(&dom).clamp(0.0001, 1.0);
            }
            // No histogram: shape-based defaults.
            return match conj {
                ScalarExpr::Cmp { op: CmpOp::Eq, .. } => SEL_EQ_DEFAULT,
                ScalarExpr::Cmp { op: CmpOp::Neq, .. } => 1.0 - SEL_EQ_DEFAULT,
                ScalarExpr::Cmp { .. } => SEL_RANGE_DEFAULT,
                ScalarExpr::InList { list, .. } => (SEL_EQ_DEFAULT * list.len() as f64).min(0.8),
                _ => SEL_OTHER_DEFAULT,
            };
        }
    }
    match conj {
        ScalarExpr::Like { .. } => SEL_LIKE_DEFAULT,
        ScalarExpr::IsNull { negated, .. } => {
            if *negated {
                0.9
            } else {
                0.1
            }
        }
        ScalarExpr::Cmp { op, .. } => {
            if *op == CmpOp::Eq {
                SEL_EQ_DEFAULT.max(0.01)
            } else {
                SEL_RANGE_DEFAULT
            }
        }
        ScalarExpr::Or(list) => {
            let mut pass = 0.0;
            for e in list {
                pass += conjunct_selectivity(e, input);
            }
            pass.min(1.0)
        }
        ScalarExpr::Literal(dhqp_types::Value::Bool(b)) => {
            if *b {
                1.0
            } else {
                0.0
            }
        }
        _ => SEL_OTHER_DEFAULT,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{test_table_meta, Locality, LogicalExpr, TableMeta};
    use dhqp_oledb::TableStatistics;
    use dhqp_types::Value;
    use std::sync::Arc;

    fn table_with_hist(reg: &mut ColumnRegistry) -> Arc<TableMeta> {
        let meta = test_table_meta(0, "t", Locality::Local, &[("k", DataType::Int)], reg, 1000);
        let vals: Vec<Value> = (0..1000).map(Value::Int).collect();
        let mut stats = TableStatistics {
            row_count: Some(1000),
            ..Default::default()
        };
        stats.set_histogram("k", Histogram::build(&vals, 16, 0.0).unwrap());
        let mut m = (*meta).clone();
        m.stats = Some(stats);
        Arc::new(m)
    }

    fn props_of(tree: &LogicalExpr, reg: &ColumnRegistry) -> LogicalProps {
        let child_props: Vec<LogicalProps> =
            tree.children.iter().map(|c| props_of(c, reg)).collect();
        let refs: Vec<&LogicalProps> = child_props.iter().collect();
        derive_props(&tree.op, &refs, reg)
    }

    #[test]
    fn histogram_beats_default_selectivity() {
        let mut reg = ColumnRegistry::new();
        let meta = table_with_hist(&mut reg);
        let col = meta.column_id(0);
        // k < 100 is truly 10% selective.
        let pred = ScalarExpr::cmp(
            CmpOp::Lt,
            ScalarExpr::Column(col),
            ScalarExpr::literal(Value::Int(100)),
        );
        let tree = LogicalExpr::get(Arc::clone(&meta)).filter(pred.clone());
        let props = props_of(&tree, &reg);
        assert!(
            (props.cardinality - 100.0).abs() < 30.0,
            "histogram estimate {} should be near 100",
            props.cardinality
        );
        // Without the histogram the default range guess (1/3) applies.
        let mut bare = (*meta).clone();
        bare.stats = None;
        bare.id = 7;
        let tree = LogicalExpr::get(Arc::new(bare)).filter(pred);
        let props = props_of(&tree, &reg);
        assert!((props.cardinality - 333.0).abs() < 5.0);
    }

    #[test]
    fn filter_narrows_domain_and_detects_contradiction() {
        let mut reg = ColumnRegistry::new();
        let meta = test_table_meta(
            0,
            "t",
            Locality::Local,
            &[("k", DataType::Int)],
            &mut reg,
            100,
        );
        let col = meta.column_id(0);
        let gt50 = ScalarExpr::cmp(
            CmpOp::Gt,
            ScalarExpr::Column(col),
            ScalarExpr::literal(Value::Int(50)),
        );
        let eq20 = ScalarExpr::eq(ScalarExpr::Column(col), ScalarExpr::literal(Value::Int(20)));
        let tree = LogicalExpr::get(meta).filter(gt50).filter(eq20);
        let props = props_of(&tree, &reg);
        assert!(
            props.domain_of(col).is_empty(),
            "50<k AND k=20 is contradictory"
        );
        assert_eq!(props.cardinality, 0.0);
    }

    #[test]
    fn key_join_cardinality_is_fk_side() {
        let mut reg = ColumnRegistry::new();
        let mut nation = (*test_table_meta(
            0,
            "nation",
            Locality::Local,
            &[("nk", DataType::Int)],
            &mut reg,
            25,
        ))
        .clone();
        nation.indexes.push(dhqp_oledb::IndexInfo {
            name: "pk".into(),
            key_columns: vec!["nk".into()],
            unique: true,
        });
        let nation = Arc::new(nation);
        let cust = test_table_meta(
            1,
            "customer",
            Locality::Local,
            &[("ck", DataType::Int), ("cnk", DataType::Int)],
            &mut reg,
            1500,
        );
        let join = LogicalExpr::join(
            crate::logical::JoinKind::Inner,
            LogicalExpr::get(Arc::clone(&cust)),
            LogicalExpr::get(Arc::clone(&nation)),
            Some(ScalarExpr::eq(
                ScalarExpr::Column(cust.column_id(1)),
                ScalarExpr::Column(nation.column_id(0)),
            )),
        );
        let props = props_of(&join, &reg);
        // Joining to a key: about one match per customer.
        assert!(
            (props.cardinality - 1500.0).abs() < 300.0,
            "estimate {} should be near 1500",
            props.cardinality
        );
    }

    #[test]
    fn union_all_merges_partition_domains() {
        let mut reg = ColumnRegistry::new();
        let mk = |id: u32, lo: i64, hi: i64, reg: &mut ColumnRegistry| {
            let mut m = (*test_table_meta(
                id,
                &format!("p{id}"),
                Locality::Local,
                &[("k", DataType::Int)],
                reg,
                100,
            ))
            .clone();
            m.checks = vec![(
                0,
                IntervalSet::single(dhqp_types::Interval::between(
                    Value::Int(lo),
                    Value::Int(hi),
                )),
            )];
            Arc::new(m)
        };
        let p1 = mk(0, 0, 9, &mut reg);
        let p2 = mk(1, 10, 19, &mut reg);
        let out = vec![reg.allocate("k", "v", DataType::Int, true)];
        let union = LogicalExpr::new(
            LogicalOp::UnionAll {
                output: out.clone(),
            },
            vec![LogicalExpr::get(p1), LogicalExpr::get(p2)],
        );
        let props = props_of(&union, &reg);
        assert_eq!(props.cardinality, 200.0);
        let dom = props.domain_of(out[0]);
        assert!(dom.contains(&Value::Int(5)));
        assert!(dom.contains(&Value::Int(15)));
        assert!(!dom.contains(&Value::Int(25)));
    }

    #[test]
    fn aggregate_groups_bounded_by_input() {
        let mut reg = ColumnRegistry::new();
        let meta = table_with_hist(&mut reg);
        let col = meta.column_id(0);
        let out = reg.allocate("cnt", "", DataType::Int, false);
        let agg = LogicalExpr::get(meta).aggregate(
            vec![col],
            vec![crate::scalar::AggCall {
                func: crate::scalar::AggFunc::CountStar,
                arg: None,
                distinct: false,
                output: out,
            }],
        );
        let props = props_of(&agg, &reg);
        assert!(props.cardinality <= 1000.0);
        assert!(
            props.cardinality > 500.0,
            "k is unique-ish: {}",
            props.cardinality
        );
    }
}
