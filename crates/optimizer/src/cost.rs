//! The cost model.
//!
//! Local operators are costed with classic per-row CPU/IO rates. Remote
//! operators follow the paper's model (§4.1.3): "SQL Server DHQP defines a
//! simple cost model based on the output cardinality of a remote operator.
//! It aims at finding plans with minimal network traffic" — so the dominant
//! terms for remote ops are per-request latency and `rows × width` wire
//! bytes, with only a nominal charge for the work the autonomous remote
//! system performs itself.
//!
//! One cost unit ≈ one microsecond of local work; network terms are
//! expressed in the same unit via [`CostModel::net_byte`].

use dhqp_oledb::ProviderCapabilities;

/// Tunable cost constants. The defaults produce the paper's Figure 4 plan
/// choice on TPC-H-shaped data.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Per-row cost of a local sequential scan.
    pub scan_row: f64,
    /// Fixed cost of positioning an index cursor.
    pub index_seek: f64,
    /// Per-row cost of an index range read.
    pub index_row: f64,
    /// Per-row cost of evaluating a predicate or projection.
    pub cpu_row: f64,
    /// Per-row cost of inserting into a hash table.
    pub hash_build_row: f64,
    /// Per-row cost of probing a hash table.
    pub hash_probe_row: f64,
    /// Per-comparison cost during sorting (multiplied by n·log₂n).
    pub sort_cmp: f64,
    /// Per-row cost of writing a spool.
    pub spool_write_row: f64,
    /// Per-row cost of replaying a spooled row.
    pub spool_read_row: f64,
    /// Cost per byte shipped over a link (the minimal-network-traffic
    /// objective lives here).
    pub net_byte: f64,
    /// Cost charged per remote round trip on top of the provider's
    /// advertised latency.
    pub request_overhead: f64,
    /// Nominal per-row charge for work executed by the autonomous remote
    /// system (it has its own optimizer; we mostly care about traffic).
    pub remote_exec_row: f64,
    /// Expected probability that a startup filter lets its subtree run; the
    /// expected-cost multiplier for runtime-pruned branches.
    pub startup_pass_probability: f64,
    /// Bytes one rendered join-key literal occupies inside a shipped
    /// `IN`-list (semi-join reduction's outbound payload).
    pub semijoin_key_width: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            scan_row: 1.0,
            index_seek: 20.0,
            index_row: 1.2,
            cpu_row: 0.2,
            hash_build_row: 2.0,
            hash_probe_row: 1.0,
            sort_cmp: 0.3,
            spool_write_row: 1.0,
            spool_read_row: 0.1,
            net_byte: 0.05,
            request_overhead: 100.0,
            remote_exec_row: 0.05,
            startup_pass_probability: 0.5,
            semijoin_key_width: 12.0,
        }
    }
}

impl CostModel {
    /// Latency charge for one round trip to a provider.
    pub fn round_trip(&self, caps: &ProviderCapabilities) -> f64 {
        self.request_overhead + caps.latency_hint_us as f64
    }

    /// Wire cost of shipping `rows` of `width`-byte rows.
    pub fn transfer(&self, rows: f64, width: f64) -> f64 {
        rows.max(0.0) * width.max(1.0) * self.net_byte
    }

    /// Cost of sorting `rows` rows.
    pub fn sort(&self, rows: f64) -> f64 {
        let n = rows.max(2.0);
        n * n.log2() * self.sort_cmp
    }

    /// Cost of a remote operator returning `out_rows` of `width` bytes,
    /// where the remote side must process roughly `remote_input_rows`.
    /// "Based on the output cardinality of a remote operator" — the output
    /// terms dominate by construction.
    pub fn remote_result(
        &self,
        caps: &ProviderCapabilities,
        out_rows: f64,
        width: f64,
        remote_input_rows: f64,
    ) -> f64 {
        self.round_trip(caps)
            + self.transfer(out_rows, width)
            + out_rows.max(0.0) * self.cpu_row
            + remote_input_rows.max(0.0) * self.remote_exec_row
    }

    /// Cost of a semi-join-reduced remote fetch: `keys` join keys ship
    /// outbound as `IN`-list text, then the remote returns only the
    /// `out_rows` matching rows — the Fig.-4 crossover lives in the
    /// tension between these two terms as the build side grows.
    pub fn semijoin_remote(
        &self,
        caps: &ProviderCapabilities,
        keys: f64,
        out_rows: f64,
        width: f64,
        remote_input_rows: f64,
    ) -> f64 {
        self.transfer(keys, self.semijoin_key_width)
            + self.remote_result(caps, out_rows, width, remote_input_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps() -> ProviderCapabilities {
        ProviderCapabilities::sql_server("SQLOLEDB")
    }

    #[test]
    fn remote_cost_scales_with_output_not_input() {
        let m = CostModel::default();
        // Same remote work, small vs large result: result size dominates.
        let small = m.remote_result(&caps(), 100.0, 50.0, 1_000_000.0);
        let large = m.remote_result(&caps(), 1_000_000.0, 50.0, 1_000_000.0);
        assert!(large > small * 10.0, "large={large} small={small}");
    }

    #[test]
    fn figure4_shape_pushdown_loses_when_intermediate_result_is_large() {
        // Figure 4: plan (a) ships customer⋈supplier (a large join result);
        // plan (b) ships customer and supplier separately. With TPC-H-like
        // cardinalities the join result is ~customer × supplier-per-nation,
        // far larger than the two base tables.
        let m = CostModel::default();
        let customers = 150_000.0;
        let suppliers = 10_000.0;
        let nations = 25.0;
        let join_out = customers * suppliers / nations; // ≈ 60M pairs
        let plan_a = m.remote_result(&caps(), join_out, 60.0, customers + suppliers);
        let plan_b = m.remote_result(&caps(), customers, 40.0, customers)
            + m.remote_result(&caps(), suppliers, 20.0, suppliers);
        assert!(plan_b < plan_a / 100.0, "plan_b={plan_b} plan_a={plan_a}");
    }

    #[test]
    fn sort_is_superlinear() {
        let m = CostModel::default();
        assert!(m.sort(20_000.0) > 2.0 * m.sort(10_000.0));
        assert!(m.sort(0.0) >= 0.0);
    }

    #[test]
    fn round_trip_includes_provider_latency() {
        let m = CostModel::default();
        let mut c = caps();
        c.latency_hint_us = 5_000;
        assert!(m.round_trip(&c) > 5_000.0);
    }
}
