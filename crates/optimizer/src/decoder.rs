//! The decoder: logical trees back into provider-dialect SQL (§4.1.3).
//!
//! "The decoder takes a logical query tree as its input and decodes it into
//! an equivalent SQL statement. [...] When composing the SQL statement, the
//! decoder responds to different parameter settings of the connection [...]
//! e.g. the SQL dialect the remote sources support."
//!
//! Capability gating follows §3.3's `DBPROP_SQLSUPPORT` levels: a
//! SQL-Minimum provider receives only single-table conjunctive selections;
//! ODBC-Core adds joins, ORDER BY and richer predicates; SQL-92 adds
//! grouping. Semi/anti joins are never decoded — "an abstract operator
//! (such as a semi-join) with no direct SQL corollary" (§4.1.4) — and when
//! one alternative of a memo group is undecodable the decoder simply tries
//! the group's other alternatives ("pick any remotable tree from the same
//! group").

use crate::logical::{JoinKind, LogicalOp};
use crate::memo::{GroupId, Memo};
use crate::physical::{ParamSource, RemoteParam};
use crate::props::{ColumnId, ColumnRegistry};
use crate::scalar::{AggFunc, ScalarExpr};
use dhqp_oledb::{LimitSyntax, ProviderCapabilities, SqlSupport};
use dhqp_types::{DataType, Value};
use std::collections::{BTreeSet, HashMap};

/// A fully rendered remote statement.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteSql {
    pub sql: String,
    /// Parameters referenced by the statement, in the order they should be
    /// bound.
    pub params: Vec<RemoteParam>,
    /// Output columns, matching the group's canonical column order.
    pub columns: Vec<ColumnId>,
}

/// Partially composed SELECT; composable until an aggregate/limit forces a
/// derived-table wrap.
#[derive(Debug, Clone)]
struct SqlQuery {
    /// `(column id, SQL fragment)` — the SELECT list in child order.
    select: Vec<(ColumnId, String)>,
    from: String,
    wheres: Vec<String>,
    group_by: Vec<String>,
    aggregated: bool,
}

impl SqlQuery {
    fn is_simple(&self) -> bool {
        !self.aggregated
    }

    fn fragment_of(&self, id: ColumnId) -> Option<&str> {
        self.select
            .iter()
            .find(|(c, _)| *c == id)
            .map(|(_, f)| f.as_str())
    }

    fn colmap(&self) -> HashMap<ColumnId, String> {
        self.select.iter().map(|(c, f)| (*c, f.clone())).collect()
    }

    /// Render as a complete SELECT with output columns aliased `c<id>`, in
    /// `order` (which must be a subset of the select list).
    fn render(
        &self,
        order: &[ColumnId],
        dialect: &dhqp_oledb::Dialect,
        top: Option<u64>,
        order_by: &[String],
    ) -> Option<String> {
        let mut sql = String::from("SELECT ");
        if let Some(n) = top {
            match dialect.limit_syntax {
                LimitSyntax::Top => sql.push_str(&format!("TOP {n} ")),
                LimitSyntax::Limit | LimitSyntax::None => {}
            }
        }
        for (i, id) in order.iter().enumerate() {
            if i > 0 {
                sql.push_str(", ");
            }
            let frag = self.fragment_of(*id)?;
            sql.push_str(&format!(
                "{frag} AS {}",
                dialect.quote_ident(&format!("c{}", id.0))
            ));
        }
        sql.push_str(" FROM ");
        sql.push_str(&self.from);
        if !self.wheres.is_empty() {
            sql.push_str(" WHERE ");
            sql.push_str(&self.wheres.join(" AND "));
        }
        if !self.group_by.is_empty() {
            sql.push_str(" GROUP BY ");
            sql.push_str(&self.group_by.join(", "));
        }
        if !order_by.is_empty() {
            sql.push_str(" ORDER BY ");
            sql.push_str(&order_by.join(", "));
        }
        if let (Some(n), LimitSyntax::Limit) = (top, dialect.limit_syntax) {
            sql.push_str(&format!(" LIMIT {n}"));
        }
        Some(sql)
    }
}

/// Decoder for one target server.
pub struct Decoder<'a> {
    memo: &'a Memo,
    registry: &'a ColumnRegistry,
    caps: &'a ProviderCapabilities,
    server: &'a str,
    cache: HashMap<GroupId, Option<SqlQuery>>,
    params: BTreeSet<String>,
    derived_counter: u32,
}

impl<'a> Decoder<'a> {
    pub fn new(
        memo: &'a Memo,
        registry: &'a ColumnRegistry,
        caps: &'a ProviderCapabilities,
        server: &'a str,
    ) -> Self {
        Decoder {
            memo,
            registry,
            caps,
            server,
            cache: HashMap::new(),
            params: BTreeSet::new(),
            derived_counter: 0,
        }
    }

    /// Build the complete remote statement for a group: the *build remote
    /// query* implementation rule's core. `extra_pred` is ANDed into the
    /// statement (used by the parameterization rule to push correlation
    /// predicates), `corr_params` names parameters bound from outer rows.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        &mut self,
        group: GroupId,
        extra_pred: Option<&ScalarExpr>,
        corr_params: &[(String, ColumnId)],
        ordering: &[(ColumnId, bool)],
        top: Option<u64>,
    ) -> Option<RemoteSql> {
        if self.caps.sql_support == SqlSupport::None || self.caps.proprietary_command {
            return None;
        }
        let mut q = self.decode_group(group)?;
        let out_cols: Vec<ColumnId> = self.memo.group(group).props.columns.clone();
        if let Some(p) = extra_pred {
            if !q.is_simple() {
                q = self.wrap(q)?;
            }
            let map = q.colmap();
            let frag = self.render_expr(p, &map)?;
            q.wheres.push(frag);
        }
        let order_by: Vec<String> = if ordering.is_empty() {
            Vec::new()
        } else {
            if !self.caps.sql_support.supports_order_by() {
                return None;
            }
            let map = q.colmap();
            ordering
                .iter()
                .map(|(c, asc)| {
                    map.get(c)
                        .map(|f| format!("{f} {}", if *asc { "ASC" } else { "DESC" }))
                })
                .collect::<Option<Vec<_>>>()?
        };
        if top.is_some() && self.caps.dialect.limit_syntax == LimitSyntax::None {
            return None;
        }
        let sql = q.render(&out_cols, &self.caps.dialect, top, &order_by)?;
        let mut params: Vec<RemoteParam> = self
            .params
            .iter()
            .map(|name| {
                let source = corr_params
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, col)| ParamSource::OuterColumn(*col))
                    .unwrap_or_else(|| ParamSource::QueryParam(name.clone()));
                RemoteParam {
                    name: name.clone(),
                    source,
                }
            })
            .collect();
        params.sort_by(|a, b| a.name.cmp(&b.name));
        Some(RemoteSql {
            sql,
            params,
            columns: out_cols,
        })
    }

    /// Decode a group by trying each logical alternative until one works —
    /// the §4.1.4 "pick any remotable tree from the same group" extension.
    fn decode_group(&mut self, group: GroupId) -> Option<SqlQuery> {
        if let Some(cached) = self.cache.get(&group) {
            return cached.clone();
        }
        // Mark in-progress to break any accidental cycles.
        self.cache.insert(group, None);
        let expr_ids = self.memo.group(group).exprs.clone();
        for eid in expr_ids {
            let mexpr = self.memo.expr(eid).clone();
            if let Some(q) = self.decode_expr(&mexpr.op, &mexpr.children) {
                self.cache.insert(group, Some(q.clone()));
                return Some(q);
            }
        }
        self.cache.insert(group, None);
        None
    }

    fn decode_expr(&mut self, op: &LogicalOp, children: &[GroupId]) -> Option<SqlQuery> {
        match op {
            LogicalOp::Get { meta, columns } => {
                if meta.source.server_name() != Some(self.server) {
                    return None;
                }
                let alias = format!("t{}", meta.id);
                let from = format!(
                    "{} AS {}",
                    self.caps.dialect.quote_ident(&meta.table),
                    self.caps.dialect.quote_ident(&alias)
                );
                let select = columns
                    .iter()
                    .map(|&c| {
                        let pos = meta.position_of(c)?;
                        let col_name = &meta.schema.column(pos).name;
                        Some((
                            c,
                            format!(
                                "{}.{}",
                                self.caps.dialect.quote_ident(&alias),
                                self.caps.dialect.quote_ident(col_name)
                            ),
                        ))
                    })
                    .collect::<Option<Vec<_>>>()?;
                Some(SqlQuery {
                    select,
                    from,
                    wheres: Vec::new(),
                    group_by: Vec::new(),
                    aggregated: false,
                })
            }
            LogicalOp::Filter { predicate } => {
                let mut q = self.decode_group(children[0])?;
                if !q.is_simple() {
                    q = self.wrap(q)?;
                }
                let map = q.colmap();
                let frag = self.render_expr(predicate, &map)?;
                q.wheres.push(frag);
                Some(q)
            }
            LogicalOp::Project { outputs } => {
                let q = self.decode_group(children[0])?;
                let q = if q.is_simple() { q } else { self.wrap(q)? };
                let map = q.colmap();
                let select = outputs
                    .iter()
                    .map(|(c, e)| Some((*c, self.render_expr(e, &map)?)))
                    .collect::<Option<Vec<_>>>()?;
                Some(SqlQuery { select, ..q })
            }
            LogicalOp::Join { kind, predicate } => {
                if !self.caps.sql_support.supports_joins() {
                    return None;
                }
                let join_word = match kind {
                    JoinKind::Inner => "INNER JOIN",
                    JoinKind::Cross => "CROSS JOIN",
                    JoinKind::LeftOuter => "LEFT OUTER JOIN",
                    // No direct SQL corollary (§4.1.4) without correlated
                    // EXISTS rewriting, which we do not remote.
                    JoinKind::Semi | JoinKind::Anti => return None,
                };
                let l = self.decode_group(children[0])?;
                let r = self.decode_group(children[1])?;
                let l = if l.is_simple() { l } else { self.wrap(l)? };
                let mut r = if r.is_simple() { r } else { self.wrap(r)? };
                let mut select = l.select.clone();
                select.extend(r.select.iter().cloned());
                let full_map: HashMap<ColumnId, String> =
                    select.iter().map(|(c, f)| (*c, f.clone())).collect();
                let mut on = match predicate {
                    Some(p) => self.render_expr(p, &full_map)?,
                    None => "1 = 1".to_string(),
                };
                let mut wheres = l.wheres.clone();
                match kind {
                    JoinKind::LeftOuter => {
                        // Right-side residual predicates must join the ON
                        // clause to preserve outer-join semantics.
                        for w in r.wheres.drain(..) {
                            on = format!("{on} AND {w}");
                        }
                    }
                    _ => wheres.extend(r.wheres.iter().cloned()),
                }
                let from = if *kind == JoinKind::Cross && predicate.is_none() {
                    format!("{} CROSS JOIN {}", l.from, r.from)
                } else {
                    format!("{} {join_word} {} ON {on}", l.from, r.from)
                };
                Some(SqlQuery {
                    select,
                    from,
                    wheres,
                    group_by: Vec::new(),
                    aggregated: false,
                })
            }
            LogicalOp::Aggregate { group_by, aggs } => {
                if !self.caps.sql_support.supports_group_by() {
                    return None;
                }
                let q = self.decode_group(children[0])?;
                let q = if q.is_simple() { q } else { self.wrap(q)? };
                let map = q.colmap();
                let mut select = Vec::new();
                let mut group_frags = Vec::new();
                for g in group_by {
                    let frag = map.get(g)?.clone();
                    select.push((*g, frag.clone()));
                    group_frags.push(frag);
                }
                for agg in aggs {
                    let inner = match (&agg.func, &agg.arg) {
                        (AggFunc::CountStar, _) => "*".to_string(),
                        (_, Some(a)) => self.render_expr(a, &map)?,
                        (_, None) => return None,
                    };
                    let frag = format!(
                        "{}({}{inner})",
                        agg.func.sql_name(),
                        if agg.distinct { "DISTINCT " } else { "" }
                    );
                    select.push((agg.output, frag));
                }
                Some(SqlQuery {
                    select,
                    from: q.from,
                    wheres: q.wheres,
                    group_by: group_frags,
                    aggregated: true,
                })
            }
            // TOP inside a subtree needs a derived wrap; only supported at
            // statement root (handled by `build`). UnionAll members may live
            // on different servers, startup filters and empties are local by
            // nature, Values has no remote home.
            LogicalOp::Limit { .. }
            | LogicalOp::UnionAll { .. }
            | LogicalOp::StartupFilter { .. }
            | LogicalOp::EmptyGet { .. }
            | LogicalOp::Values { .. } => None,
        }
    }

    /// Wrap a query as a derived table (needs nested-SELECT support).
    fn wrap(&mut self, q: SqlQuery) -> Option<SqlQuery> {
        if !self.caps.dialect.nested_select {
            return None;
        }
        let cols: Vec<ColumnId> = q.select.iter().map(|(c, _)| *c).collect();
        let rendered = q.render(&cols, &self.caps.dialect, None, &[])?;
        self.derived_counter += 1;
        let alias = format!("d{}", self.derived_counter);
        let quoted = self.caps.dialect.quote_ident(&alias);
        let select = cols
            .iter()
            .map(|&c| {
                (
                    c,
                    format!(
                        "{quoted}.{}",
                        self.caps.dialect.quote_ident(&format!("c{}", c.0))
                    ),
                )
            })
            .collect();
        Some(SqlQuery {
            select,
            from: format!("({rendered}) AS {quoted}"),
            wheres: Vec::new(),
            group_by: Vec::new(),
            aggregated: false,
        })
    }

    /// Render a scalar expression, or `None` when the dialect/level cannot
    /// express it ("not overshooting its limitations", §3.3).
    fn render_expr(&mut self, e: &ScalarExpr, map: &HashMap<ColumnId, String>) -> Option<String> {
        let minimum = self.caps.sql_support == SqlSupport::Minimum;
        Some(match e {
            ScalarExpr::Literal(v) => self.render_literal(v),
            ScalarExpr::Column(c) => map.get(c)?.clone(),
            ScalarExpr::Param(p) => {
                if !self.caps.dialect.parameter_markers {
                    return None;
                }
                self.params.insert(p.clone());
                format!("@{p}")
            }
            ScalarExpr::Cmp { op, left, right } => format!(
                "({} {} {})",
                self.render_expr(left, map)?,
                op.sql_symbol(),
                self.render_expr(right, map)?
            ),
            ScalarExpr::Arith { op, left, right } => {
                if minimum {
                    return None;
                }
                format!(
                    "({} {} {})",
                    self.render_expr(left, map)?,
                    op.sql_symbol(),
                    self.render_expr(right, map)?
                )
            }
            ScalarExpr::And(list) => {
                let parts: Vec<String> = list
                    .iter()
                    .map(|p| self.render_expr(p, map))
                    .collect::<Option<_>>()?;
                format!("({})", parts.join(" AND "))
            }
            ScalarExpr::Or(list) => {
                if minimum {
                    return None;
                }
                let parts: Vec<String> = list
                    .iter()
                    .map(|p| self.render_expr(p, map))
                    .collect::<Option<_>>()?;
                format!("({})", parts.join(" OR "))
            }
            ScalarExpr::Not(inner) => {
                if minimum {
                    return None;
                }
                format!("NOT ({})", self.render_expr(inner, map)?)
            }
            ScalarExpr::IsNull { expr, negated } => {
                if minimum {
                    return None;
                }
                format!(
                    "({} IS {}NULL)",
                    self.render_expr(expr, map)?,
                    if *negated { "NOT " } else { "" }
                )
            }
            ScalarExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                if minimum {
                    return None;
                }
                format!(
                    "({} {}LIKE '{}')",
                    self.render_expr(expr, map)?,
                    if *negated { "NOT " } else { "" },
                    pattern.replace('\'', "''")
                )
            }
            ScalarExpr::InList {
                expr,
                list,
                negated,
            } => {
                if minimum {
                    return None;
                }
                let vals: Vec<String> = list.iter().map(|v| self.render_literal(v)).collect();
                format!(
                    "({} {}IN ({}))",
                    self.render_expr(expr, map)?,
                    if *negated { "NOT " } else { "" },
                    vals.join(", ")
                )
            }
            ScalarExpr::Func { name, args } => {
                // Conservative whitelist of portable scalar functions.
                if minimum || !matches!(name.as_str(), "UPPER" | "LOWER" | "ABS" | "LEN") {
                    return None;
                }
                let parts: Vec<String> = args
                    .iter()
                    .map(|a| self.render_expr(a, map))
                    .collect::<Option<_>>()?;
                format!("{name}({})", parts.join(", "))
            }
            ScalarExpr::Cast { expr, to } => {
                if minimum {
                    return None;
                }
                format!(
                    "CAST({} AS {})",
                    self.render_expr(expr, map)?,
                    to.sql_name()
                )
            }
            // Startup predicates are evaluated by the local executor only.
            ScalarExpr::ParamInDomain { .. } => return None,
        })
    }

    fn render_literal(&self, v: &Value) -> String {
        match v {
            Value::Date(d) => self
                .caps
                .dialect
                .date_literal(&dhqp_types::value::format_date(*d)),
            other => other.to_sql_literal(),
        }
    }

    /// The registry, exposed for callers composing correlation names.
    pub fn registry(&self) -> &ColumnRegistry {
        self.registry
    }
}

/// Data type of a scalar expression where statically known (used by the
/// binder and the remote-param machinery).
pub fn static_type(e: &ScalarExpr, registry: &ColumnRegistry) -> Option<DataType> {
    match e {
        ScalarExpr::Literal(v) => v.data_type(),
        ScalarExpr::Column(c) => Some(registry.meta(*c).data_type),
        ScalarExpr::Cast { to, .. } => Some(*to),
        ScalarExpr::Cmp { .. }
        | ScalarExpr::And(_)
        | ScalarExpr::Or(_)
        | ScalarExpr::Not(_)
        | ScalarExpr::IsNull { .. }
        | ScalarExpr::Like { .. }
        | ScalarExpr::InList { .. }
        | ScalarExpr::ParamInDomain { .. } => Some(DataType::Bool),
        ScalarExpr::Arith { left, right, .. } => {
            match (static_type(left, registry), static_type(right, registry)) {
                (Some(DataType::Float), _) | (_, Some(DataType::Float)) => Some(DataType::Float),
                (Some(DataType::Date), _) => Some(DataType::Date),
                (Some(t), _) => Some(t),
                _ => None,
            }
        }
        ScalarExpr::Param(_) | ScalarExpr::Func { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{test_table_meta, Locality, LogicalExpr, TableMeta};
    use crate::scalar::CmpOp;
    use std::sync::Arc;

    fn remote_pair() -> (
        ColumnRegistry,
        Memo,
        GroupId,
        Arc<TableMeta>,
        Arc<TableMeta>,
    ) {
        let mut reg = ColumnRegistry::new();
        let c = test_table_meta(
            0,
            "customer",
            Locality::remote("remote0"),
            &[("c_custkey", DataType::Int), ("c_nationkey", DataType::Int)],
            &mut reg,
            1500,
        );
        let s = test_table_meta(
            1,
            "supplier",
            Locality::remote("remote0"),
            &[("s_suppkey", DataType::Int), ("s_nationkey", DataType::Int)],
            &mut reg,
            100,
        );
        let tree = LogicalExpr::join(
            JoinKind::Inner,
            LogicalExpr::get(Arc::clone(&c)),
            LogicalExpr::get(Arc::clone(&s)),
            Some(ScalarExpr::eq(
                ScalarExpr::Column(c.column_id(1)),
                ScalarExpr::Column(s.column_id(1)),
            )),
        );
        let mut memo = Memo::new();
        let root = memo.insert_tree(&tree, &reg);
        (reg, memo, root, c, s)
    }

    #[test]
    fn decodes_paper_join_to_sql() {
        let (reg, memo, root, ..) = remote_pair();
        let caps = ProviderCapabilities::sql_server("SQLOLEDB");
        let mut d = Decoder::new(&memo, &reg, &caps, "remote0");
        let out = d.build(root, None, &[], &[], None).unwrap();
        assert_eq!(
            out.sql,
            "SELECT [t0].[c_custkey] AS [c0], [t0].[c_nationkey] AS [c1], \
             [t1].[s_suppkey] AS [c2], [t1].[s_nationkey] AS [c3] \
             FROM [customer] AS [t0] INNER JOIN [supplier] AS [t1] \
             ON ([t0].[c_nationkey] = [t1].[s_nationkey])"
        );
        assert_eq!(out.columns.len(), 4);
        assert!(out.params.is_empty());
    }

    #[test]
    fn minimum_level_rejects_joins_but_takes_simple_filters() {
        let (reg, memo, root, c, _) = remote_pair();
        let mut caps = ProviderCapabilities::sql_server("EXCELISH");
        caps.sql_support = SqlSupport::Minimum;
        let mut d = Decoder::new(&memo, &reg, &caps, "remote0");
        assert!(
            d.build(root, None, &[], &[], None).is_none(),
            "joins exceed SQL Minimum"
        );

        // A single-table select with a simple comparison decodes.
        let mut memo2 = Memo::new();
        let filter = LogicalExpr::get(Arc::clone(&c)).filter(ScalarExpr::cmp(
            CmpOp::Gt,
            ScalarExpr::Column(c.column_id(0)),
            ScalarExpr::literal(Value::Int(10)),
        ));
        let g = memo2.insert_tree(&filter, &reg);
        let mut d = Decoder::new(&memo2, &reg, &caps, "remote0");
        let out = d.build(g, None, &[], &[], None).unwrap();
        assert!(out.sql.contains("WHERE ([t0].[c_custkey] > 10)"));

        // ...but an OR predicate exceeds Minimum.
        let mut memo3 = Memo::new();
        let or_filter = LogicalExpr::get(Arc::clone(&c)).filter(ScalarExpr::Or(vec![
            ScalarExpr::eq(
                ScalarExpr::Column(c.column_id(0)),
                ScalarExpr::literal(Value::Int(1)),
            ),
            ScalarExpr::eq(
                ScalarExpr::Column(c.column_id(0)),
                ScalarExpr::literal(Value::Int(2)),
            ),
        ]));
        let g3 = memo3.insert_tree(&or_filter, &reg);
        let mut d = Decoder::new(&memo3, &reg, &caps, "remote0");
        assert!(d.build(g3, None, &[], &[], None).is_none());
    }

    #[test]
    fn wrong_server_does_not_decode() {
        let (reg, memo, root, ..) = remote_pair();
        let caps = ProviderCapabilities::sql_server("SQLOLEDB");
        let mut d = Decoder::new(&memo, &reg, &caps, "other-server");
        assert!(d.build(root, None, &[], &[], None).is_none());
    }

    #[test]
    fn extra_predicate_and_params() {
        let (reg, memo, root, c, _) = remote_pair();
        let caps = ProviderCapabilities::sql_server("SQLOLEDB");
        let mut d = Decoder::new(&memo, &reg, &caps, "remote0");
        let corr = ScalarExpr::eq(
            ScalarExpr::Column(c.column_id(0)),
            ScalarExpr::Param("__corr0".into()),
        );
        let out = d
            .build(
                root,
                Some(&corr),
                &[("__corr0".into(), ColumnId(99))],
                &[],
                None,
            )
            .unwrap();
        assert!(out.sql.contains("([t0].[c_custkey] = @__corr0)"));
        assert_eq!(out.params.len(), 1);
        assert_eq!(out.params[0].source, ParamSource::OuterColumn(ColumnId(99)));
    }

    #[test]
    fn ordering_and_top_render() {
        let (reg, memo, root, c, _) = remote_pair();
        let caps = ProviderCapabilities::sql_server("SQLOLEDB");
        let mut d = Decoder::new(&memo, &reg, &caps, "remote0");
        let out = d
            .build(root, None, &[], &[(c.column_id(0), false)], Some(10))
            .unwrap();
        assert!(out.sql.starts_with("SELECT TOP 10 "));
        assert!(out.sql.ends_with("ORDER BY [t0].[c_custkey] DESC"));
    }

    #[test]
    fn aggregate_requires_sql92() {
        let mut reg = ColumnRegistry::new();
        let t = test_table_meta(
            0,
            "orders",
            Locality::remote("r"),
            &[("o_k", DataType::Int)],
            &mut reg,
            100,
        );
        let out_col = reg.allocate("cnt", "", DataType::Int, false);
        let agg = LogicalExpr::get(Arc::clone(&t)).aggregate(
            vec![t.column_id(0)],
            vec![crate::scalar::AggCall {
                func: AggFunc::CountStar,
                arg: None,
                distinct: false,
                output: out_col,
            }],
        );
        let mut memo = Memo::new();
        let g = memo.insert_tree(&agg, &reg);
        let caps = ProviderCapabilities::sql_server("SQLOLEDB");
        let mut d = Decoder::new(&memo, &reg, &caps, "r");
        let out = d.build(g, None, &[], &[], None).unwrap();
        assert!(out.sql.contains("GROUP BY [t0].[o_k]"));
        assert!(out.sql.contains("COUNT(*) AS [c1]"));

        let mut odbc = caps.clone();
        odbc.sql_support = SqlSupport::OdbcCore;
        let mut d = Decoder::new(&memo, &reg, &odbc, "r");
        assert!(
            d.build(g, None, &[], &[], None).is_none(),
            "GROUP BY exceeds ODBC Core"
        );
    }

    #[test]
    fn semi_join_has_no_sql_corollary() {
        let mut reg = ColumnRegistry::new();
        let a = test_table_meta(
            0,
            "a",
            Locality::remote("r"),
            &[("x", DataType::Int)],
            &mut reg,
            10,
        );
        let b = test_table_meta(
            1,
            "b",
            Locality::remote("r"),
            &[("y", DataType::Int)],
            &mut reg,
            10,
        );
        let semi = LogicalExpr::join(
            JoinKind::Semi,
            LogicalExpr::get(Arc::clone(&a)),
            LogicalExpr::get(b),
            Some(ScalarExpr::eq(
                ScalarExpr::Column(a.column_id(0)),
                ScalarExpr::Column(ColumnId(1)),
            )),
        );
        let mut memo = Memo::new();
        let g = memo.insert_tree(&semi, &reg);
        let caps = ProviderCapabilities::sql_server("SQLOLEDB");
        let mut d = Decoder::new(&memo, &reg, &caps, "r");
        assert!(d.build(g, None, &[], &[], None).is_none());
    }

    #[test]
    fn decoder_picks_a_remotable_alternative_from_the_group() {
        // First alternative in the group is a semi join (not decodable);
        // a second, decodable inner-join alternative is inserted by hand —
        // the §4.1.4 framework extension lets the decoder use it.
        let (reg, _, _, c, s) = remote_pair();
        let semi = LogicalExpr::join(
            JoinKind::Semi,
            LogicalExpr::get(Arc::clone(&c)),
            LogicalExpr::get(Arc::clone(&s)),
            Some(ScalarExpr::eq(
                ScalarExpr::Column(c.column_id(1)),
                ScalarExpr::Column(s.column_id(1)),
            )),
        );
        let mut memo = Memo::new();
        let root = memo.insert_tree(&semi, &reg);
        let caps = ProviderCapabilities::sql_server("SQLOLEDB");
        let mut d = Decoder::new(&memo, &reg, &caps, "remote0");
        assert!(
            d.build(root, None, &[], &[], None).is_none(),
            "semi join alone is undecodable"
        );

        // Insert an inner-join alternative into the same group (the test
        // stands in for a rule that produced it).
        let root_expr = memo.expr(memo.group(root).exprs[0]).clone();
        let LogicalOp::Join { predicate, .. } = &root_expr.op else {
            panic!("join")
        };
        memo.insert_alternative(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                predicate: predicate.clone(),
            },
            root_expr.children.clone(),
            root,
        )
        .expect("new alternative");
        let mut d = Decoder::new(&memo, &reg, &caps, "remote0");
        let out = d
            .build(root, None, &[], &[], None)
            .expect("second alternative decodes");
        assert!(out.sql.contains("INNER JOIN"));
    }

    #[test]
    fn date_literals_follow_dialect() {
        let mut reg = ColumnRegistry::new();
        let t = test_table_meta(
            0,
            "l",
            Locality::remote("r"),
            &[("d", DataType::Date)],
            &mut reg,
            10,
        );
        let pred = ScalarExpr::cmp(
            CmpOp::Ge,
            ScalarExpr::Column(t.column_id(0)),
            ScalarExpr::literal(Value::Date(
                dhqp_types::value::parse_date("1992-01-01").unwrap(),
            )),
        );
        let tree = LogicalExpr::get(Arc::clone(&t)).filter(pred);
        let mut memo = Memo::new();
        let g = memo.insert_tree(&tree, &reg);
        let mut caps = ProviderCapabilities::sql_server("ORAOLEDB");
        caps.dialect.date_literal = dhqp_oledb::capabilities::DateLiteralStyle::Keyword;
        let mut d = Decoder::new(&memo, &reg, &caps, "r");
        let out = d.build(g, None, &[], &[], None).unwrap();
        assert!(out.sql.contains("DATE '1992-01-01'"), "{}", out.sql);
    }
}
