//! EXPLAIN rendering: plan trees plus search telemetry.

use crate::physical::PhysNode;
use crate::search::OptimizerStats;

/// A rendered explanation of one optimized query.
#[derive(Debug, Clone)]
pub struct ExplainPlan {
    pub plan_text: String,
    pub est_cost: f64,
    pub est_rows: f64,
    pub stats: OptimizerStats,
}

impl ExplainPlan {
    pub fn new(plan: &PhysNode, stats: OptimizerStats) -> Self {
        ExplainPlan {
            plan_text: plan.display_indent(),
            est_cost: plan.est_cost,
            est_rows: plan.est_rows,
            stats,
        }
    }

    /// Full human-readable report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&self.plan_text);
        s.push_str(&format!(
            "-- est_rows={:.0} est_cost={:.0} memo: {} groups / {} exprs, {} rules fired\n",
            self.est_rows,
            self.est_cost,
            self.stats.groups,
            self.stats.exprs,
            self.stats.rules_fired
        ));
        for (phase, cost, dur) in &self.stats.phases {
            s.push_str(&format!(
                "-- phase {}: best cost {:.0} in {:.2?}\n",
                phase.name(),
                cost,
                dur
            ));
        }
        if self.stats.early_exit {
            s.push_str("-- early exit: phase threshold met\n");
        }
        s
    }
}
