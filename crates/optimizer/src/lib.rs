//! The Cascades-style cost-based optimizer with native distributed query
//! support (paper §4.1).
//!
//! Architecture, following the paper closely:
//!
//! * **One algebra for local and remote.** Logical operators are
//!   location-transparent; a [`logical::TableMeta`] tags each `Get` with its
//!   [`logical::Locality`] and provider capabilities. Exploration rules
//!   never look at locality; implementation rules do (§4.1.3).
//! * **Memo** ([`memo`]) stores equivalence classes (*groups*) of logical
//!   and physical expressions; duplicate detection prevents re-search.
//! * **Rules** ([`rules`]) are split into exploration (logical→logical) and
//!   implementation (logical→physical), each carrying a *promise* used to
//!   order application; operator *guidance* prunes rules that cannot match
//!   (§4.1.1).
//! * **Properties**: logical group properties include output columns, keys,
//!   cardinality and the constraint-domain framework (§4.1.5); physical
//!   properties track delivered sort order, with a Sort *enforcer* and the
//!   *spool over remote* enforcer (§4.1.2/4.1.4).
//! * **Phases** ([`search::OptimizationPhase`]): transaction-processing,
//!   quick-plan and full optimization, with cost-based early exit.
//! * **Decoder** ([`decoder`]): turns a remotable logical subtree back into
//!   provider-dialect SQL, honouring `DBPROP_SQLSUPPORT` levels and dialect
//!   details; the *build remote query* rule may pick any remotable
//!   alternative from a group (§4.1.4).

pub mod cardinality;
pub mod cost;
pub mod decoder;
pub mod explain;
pub mod logical;
pub mod memo;
pub mod physical;
pub mod props;
pub mod rules;
pub mod scalar;
pub mod search;

pub use logical::{JoinKind, Locality, LogicalExpr, LogicalOp, TableMeta};
pub use physical::{PhysNode, PhysicalOp};
pub use props::{ColumnId, ColumnMeta, ColumnRegistry};
pub use scalar::{AggCall, AggFunc, ArithOp, CmpOp, ScalarExpr};
pub use search::{OptimizationPhase, Optimizer, OptimizerConfig, OptimizerStats};
