//! Logical operators and the pre-memo logical expression tree.
//!
//! "At the beginning of optimization, both local and distributed queries are
//! algebrized in the same way, i.e., the same logical operator is used no
//! matter the data source is local or remote, except that the remote data
//! sources are tagged with a flag indicating their level of remotability"
//! (paper §4.1.3). Here that flag is [`TableMeta::source`]
//! ([`Locality`]) plus the provider capability snapshot on the metadata.

use crate::props::ColumnId;
use crate::scalar::{AggCall, ScalarExpr};
use dhqp_oledb::{IndexInfo, ProviderCapabilities, TableStatistics};
use dhqp_types::{IntervalSet, Schema, Value};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Where a base table lives.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Locality {
    Local,
    /// A linked server, by name.
    Remote(Arc<str>),
}

impl Locality {
    pub fn remote(name: &str) -> Locality {
        Locality::Remote(Arc::from(name))
    }

    pub fn is_remote(&self) -> bool {
        matches!(self, Locality::Remote(_))
    }

    pub fn server_name(&self) -> Option<&str> {
        match self {
            Locality::Local => None,
            Locality::Remote(s) => Some(s),
        }
    }
}

impl fmt::Display for Locality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Locality::Local => f.write_str("local"),
            Locality::Remote(s) => write!(f, "remote:{s}"),
        }
    }
}

/// Join kinds in the logical algebra. `RightOuter` is normalized to
/// `LeftOuter` by the binder; EXISTS/IN subqueries arrive as `Semi`/`Anti`
/// (the paper's semi-join unrolling, §4.1.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    Inner,
    Cross,
    LeftOuter,
    Semi,
    Anti,
}

impl JoinKind {
    /// Whether left/right children may be swapped by the commute rule.
    pub fn commutable(&self) -> bool {
        matches!(self, JoinKind::Inner | JoinKind::Cross)
    }

    /// Whether the join's output includes right-side columns.
    pub fn produces_right(&self) -> bool {
        matches!(
            self,
            JoinKind::Inner | JoinKind::Cross | JoinKind::LeftOuter
        )
    }
}

/// Snapshot of everything the optimizer knows about one base table
/// reference, captured by the binder from provider metadata.
#[derive(Debug, Clone)]
pub struct TableMeta {
    /// Unique per FROM-clause reference within one optimization (two scans
    /// of the same table get different ids — they are distinct leaves).
    pub id: u32,
    pub source: Locality,
    /// Table name as known to the source.
    pub table: String,
    /// FROM-clause binding (alias).
    pub alias: String,
    pub schema: Schema,
    /// One [`ColumnId`] per schema column, in schema order.
    pub column_ids: Vec<ColumnId>,
    /// Cardinality from TABLES_INFO, if the provider reports one.
    pub cardinality: Option<u64>,
    pub indexes: Vec<IndexInfo>,
    /// Histogram statistics, when fetched (§3.2.4).
    pub stats: Option<TableStatistics>,
    /// Capability snapshot of the owning provider.
    pub caps: ProviderCapabilities,
    /// CHECK constraint domains: `(schema column position, domain)` —
    /// seeds for the constraint property framework.
    pub checks: Vec<(usize, IntervalSet)>,
}

impl TableMeta {
    /// The [`ColumnId`] of a schema column by position.
    pub fn column_id(&self, position: usize) -> ColumnId {
        self.column_ids[position]
    }

    /// Position of a column id within this table, if it belongs to it.
    pub fn position_of(&self, id: ColumnId) -> Option<usize> {
        self.column_ids.iter().position(|&c| c == id)
    }

    /// The estimated row count, defaulting pessimistically when unknown.
    pub fn estimated_rows(&self) -> f64 {
        self.cardinality.map(|c| c as f64).unwrap_or(1000.0)
    }
}

impl PartialEq for TableMeta {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl Eq for TableMeta {}
impl Hash for TableMeta {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

/// Logical relational operators.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LogicalOp {
    /// Scan of a base table (local or remote — same operator, §4.1.3).
    Get {
        meta: Arc<TableMeta>,
        columns: Vec<ColumnId>,
    },
    /// A statically pruned subtree: produces no rows (constraint framework
    /// reduced a predicate to constant false, §4.1.5).
    EmptyGet { columns: Vec<ColumnId> },
    /// Row filter. One child.
    Filter { predicate: ScalarExpr },
    /// Column-free filter evaluated once before the subtree runs (runtime
    /// partition pruning, §4.1.5). One child.
    StartupFilter { predicate: ScalarExpr },
    /// Computed projection defining new column ids. One child.
    Project {
        outputs: Vec<(ColumnId, ScalarExpr)>,
    },
    /// Binary join. Two children.
    Join {
        kind: JoinKind,
        predicate: Option<ScalarExpr>,
    },
    /// Grouped aggregation. One child.
    Aggregate {
        group_by: Vec<ColumnId>,
        aggs: Vec<AggCall>,
    },
    /// Bag union; `output[i]` is fed by each child's i-th column. N children
    /// (the partitioned-view expansion, §4.1.5).
    UnionAll { output: Vec<ColumnId> },
    /// First-n. One child.
    Limit { n: u64 },
    /// Constant rows (INSERT ... VALUES, tests).
    Values {
        columns: Vec<ColumnId>,
        rows: Vec<Vec<Value>>,
    },
}

impl LogicalOp {
    /// Short operator name for explain output.
    pub fn name(&self) -> &'static str {
        match self {
            LogicalOp::Get { .. } => "Get",
            LogicalOp::EmptyGet { .. } => "EmptyGet",
            LogicalOp::Filter { .. } => "Filter",
            LogicalOp::StartupFilter { .. } => "StartupFilter",
            LogicalOp::Project { .. } => "Project",
            LogicalOp::Join { .. } => "Join",
            LogicalOp::Aggregate { .. } => "Aggregate",
            LogicalOp::UnionAll { .. } => "UnionAll",
            LogicalOp::Limit { .. } => "Limit",
            LogicalOp::Values { .. } => "Values",
        }
    }

    /// Number of children this operator requires, `None` for variadic.
    pub fn arity(&self) -> Option<usize> {
        match self {
            LogicalOp::Get { .. } | LogicalOp::EmptyGet { .. } | LogicalOp::Values { .. } => {
                Some(0)
            }
            LogicalOp::Filter { .. }
            | LogicalOp::StartupFilter { .. }
            | LogicalOp::Project { .. }
            | LogicalOp::Aggregate { .. }
            | LogicalOp::Limit { .. } => Some(1),
            LogicalOp::Join { .. } => Some(2),
            LogicalOp::UnionAll { .. } => None,
        }
    }
}

/// A logical expression tree (pre-memo form, as produced by the binder and
/// consumed by [`crate::search::Optimizer::optimize`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LogicalExpr {
    pub op: LogicalOp,
    pub children: Vec<LogicalExpr>,
}

impl LogicalExpr {
    pub fn new(op: LogicalOp, children: Vec<LogicalExpr>) -> Self {
        debug_assert!(
            op.arity().is_none_or(|a| a == children.len()),
            "arity mismatch for {op:?}"
        );
        LogicalExpr { op, children }
    }

    pub fn get(meta: Arc<TableMeta>) -> Self {
        let columns = meta.column_ids.clone();
        LogicalExpr::new(LogicalOp::Get { meta, columns }, vec![])
    }

    pub fn filter(self, predicate: ScalarExpr) -> Self {
        LogicalExpr::new(LogicalOp::Filter { predicate }, vec![self])
    }

    pub fn project(self, outputs: Vec<(ColumnId, ScalarExpr)>) -> Self {
        LogicalExpr::new(LogicalOp::Project { outputs }, vec![self])
    }

    pub fn join(
        kind: JoinKind,
        left: LogicalExpr,
        right: LogicalExpr,
        predicate: Option<ScalarExpr>,
    ) -> Self {
        LogicalExpr::new(LogicalOp::Join { kind, predicate }, vec![left, right])
    }

    pub fn aggregate(self, group_by: Vec<ColumnId>, aggs: Vec<AggCall>) -> Self {
        LogicalExpr::new(LogicalOp::Aggregate { group_by, aggs }, vec![self])
    }

    pub fn limit(self, n: u64) -> Self {
        LogicalExpr::new(LogicalOp::Limit { n }, vec![self])
    }

    /// Output columns of this subtree, derived structurally.
    pub fn output_columns(&self) -> Vec<ColumnId> {
        match &self.op {
            LogicalOp::Get { columns, .. }
            | LogicalOp::EmptyGet { columns }
            | LogicalOp::Values { columns, .. } => columns.clone(),
            LogicalOp::Filter { .. }
            | LogicalOp::StartupFilter { .. }
            | LogicalOp::Limit { .. } => self.children[0].output_columns(),
            LogicalOp::Project { outputs } => outputs.iter().map(|(c, _)| *c).collect(),
            LogicalOp::Join { kind, .. } => {
                let mut cols = self.children[0].output_columns();
                if kind.produces_right() {
                    cols.extend(self.children[1].output_columns());
                }
                cols
            }
            LogicalOp::Aggregate { group_by, aggs } => {
                let mut cols = group_by.clone();
                cols.extend(aggs.iter().map(|a| a.output));
                cols
            }
            LogicalOp::UnionAll { output } => output.clone(),
        }
    }

    /// All `Get` leaves under this tree.
    pub fn leaf_tables(&self) -> Vec<&Arc<TableMeta>> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves<'a>(&'a self, out: &mut Vec<&'a Arc<TableMeta>>) {
        if let LogicalOp::Get { meta, .. } = &self.op {
            out.push(meta);
        }
        for c in &self.children {
            c.collect_leaves(out);
        }
    }

    /// The set of distinct source localities under this tree — the basis of
    /// the locality-grouping rules ("grouping joins based on locality",
    /// §4.1.2). A tree whose set is one remote server is remoting-eligible.
    pub fn localities(&self) -> Vec<Locality> {
        let mut out: Vec<Locality> = Vec::new();
        for meta in self.leaf_tables() {
            if !out.contains(&meta.source) {
                out.push(meta.source.clone());
            }
        }
        out
    }

    /// Pretty tree rendering for tests and debugging.
    pub fn display_tree(&self) -> String {
        let mut s = String::new();
        self.fmt_tree(&mut s, 0);
        s
    }

    fn fmt_tree(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        for _ in 0..depth {
            out.push_str("  ");
        }
        match &self.op {
            LogicalOp::Get { meta, .. } => {
                let _ = writeln!(out, "Get({} @ {})", meta.alias, meta.source);
            }
            LogicalOp::Filter { predicate } => {
                let _ = writeln!(out, "Filter({predicate})");
            }
            LogicalOp::StartupFilter { predicate } => {
                let _ = writeln!(out, "StartupFilter({predicate})");
            }
            LogicalOp::Join { kind, predicate } => {
                let _ = match predicate {
                    Some(p) => writeln!(out, "Join[{kind:?}]({p})"),
                    None => writeln!(out, "Join[{kind:?}]"),
                };
            }
            other => {
                let _ = writeln!(out, "{}", other.name());
            }
        }
        for c in &self.children {
            c.fmt_tree(out, depth + 1);
        }
    }
}

/// Test helper: build a [`TableMeta`] with the given columns and locality.
pub fn test_table_meta(
    id: u32,
    alias: &str,
    source: Locality,
    columns: &[(&str, dhqp_types::DataType)],
    registry: &mut crate::props::ColumnRegistry,
    cardinality: u64,
) -> Arc<TableMeta> {
    use dhqp_types::Column;
    let schema = Schema::new(
        columns
            .iter()
            .map(|(n, t)| Column::new(*n, *t))
            .collect::<Vec<_>>(),
    );
    let column_ids = columns
        .iter()
        .map(|(n, t)| registry.allocate(*n, alias, *t, true))
        .collect();
    let caps = if source.is_remote() {
        ProviderCapabilities::sql_server("SQLOLEDB")
    } else {
        ProviderCapabilities::simple("NATIVE")
    };
    Arc::new(TableMeta {
        id,
        source,
        table: alias.to_string(),
        alias: alias.to_string(),
        schema,
        column_ids,
        cardinality: Some(cardinality),
        indexes: Vec::new(),
        stats: None,
        caps,
        checks: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::ColumnRegistry;
    use crate::scalar::CmpOp;
    use dhqp_types::DataType;

    fn setup() -> (ColumnRegistry, Arc<TableMeta>, Arc<TableMeta>) {
        let mut reg = ColumnRegistry::new();
        let t1 = test_table_meta(
            0,
            "customer",
            Locality::remote("remote0"),
            &[("c_custkey", DataType::Int), ("c_nationkey", DataType::Int)],
            &mut reg,
            1500,
        );
        let t2 = test_table_meta(
            1,
            "nation",
            Locality::Local,
            &[("n_nationkey", DataType::Int)],
            &mut reg,
            25,
        );
        (reg, t1, t2)
    }

    #[test]
    fn output_columns_flow_through_operators() {
        let (_, cust, nation) = setup();
        let join = LogicalExpr::join(
            JoinKind::Inner,
            LogicalExpr::get(Arc::clone(&cust)),
            LogicalExpr::get(Arc::clone(&nation)),
            Some(ScalarExpr::eq(
                ScalarExpr::Column(cust.column_id(1)),
                ScalarExpr::Column(nation.column_id(0)),
            )),
        );
        assert_eq!(join.output_columns().len(), 3);
        let filtered = join.clone().filter(ScalarExpr::cmp(
            CmpOp::Gt,
            ScalarExpr::Column(cust.column_id(0)),
            ScalarExpr::literal(Value::Int(10)),
        ));
        assert_eq!(filtered.output_columns().len(), 3);
        // Semi join drops right columns.
        let semi = LogicalExpr::join(
            JoinKind::Semi,
            LogicalExpr::get(Arc::clone(&cust)),
            LogicalExpr::get(Arc::clone(&nation)),
            None,
        );
        assert_eq!(semi.output_columns().len(), 2);
    }

    #[test]
    fn localities_deduplicate() {
        let (_, cust, nation) = setup();
        let join = LogicalExpr::join(
            JoinKind::Cross,
            LogicalExpr::join(
                JoinKind::Cross,
                LogicalExpr::get(Arc::clone(&cust)),
                LogicalExpr::get(Arc::clone(&cust)),
                None,
            ),
            LogicalExpr::get(nation),
            None,
        );
        let locs = join.localities();
        assert_eq!(locs.len(), 2);
        assert!(locs.contains(&Locality::remote("remote0")));
        assert!(locs.contains(&Locality::Local));
    }

    #[test]
    fn table_meta_identity_is_by_id() {
        let (_, cust, _) = setup();
        let mut clone = (*cust).clone();
        clone.alias = "different".into();
        assert_eq!(*cust, clone, "same id means equal regardless of payload");
    }

    #[test]
    fn display_tree_renders_hierarchy() {
        let (_, cust, nation) = setup();
        let tree = LogicalExpr::join(
            JoinKind::Inner,
            LogicalExpr::get(cust),
            LogicalExpr::get(nation),
            None,
        )
        .limit(5);
        let s = tree.display_tree();
        assert!(s.contains("Limit"));
        assert!(s.contains("Get(customer @ remote:remote0)"));
        assert!(s.contains("Get(nation @ local)"));
    }
}
